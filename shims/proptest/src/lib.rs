//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so this workspace vendors a
//! deterministic randomized-testing harness exposing the `proptest` API
//! subset its test suites use: the [`proptest!`] macro, range/tuple/`Just`/
//! collection/array strategies, `prop_map`/`prop_flat_map`/`prop_filter`/
//! `prop_filter_map`, `any::<T>()`, and the `prop_assert*` macros.
//!
//! Differences from real proptest: sampling is plain Monte Carlo (no
//! shrinking — a failure reports the concrete case that produced it), and
//! string strategies support only simple `[class]{m,n}` patterns. Runs are
//! deterministic: the seed derives from the test name (override with
//! `PROPTEST_SEED`).

use std::ops::Range;

/// The deterministic generator threaded through strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`; `n` must be non-zero.
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A value generator (no shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Retains only values satisfying `pred` (resamples otherwise).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            reason,
        }
    }

    /// Maps through `f`, resampling whenever `f` returns `None`.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            reason,
        }
    }

    /// Boxes the strategy (API-compat helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// How many resamples a filter performs before giving up.
const MAX_REJECTS: usize = 10_000;

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: too many rejects ({})", self.reason);
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map: too many rejects ({})", self.reason);
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObj<Value = T>>);

trait StrategyObj {
    type Value;
    fn sample_obj(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> StrategyObj for S {
    type Value = S::Value;
    fn sample_obj(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_obj(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    };
}
int_range_strategy!(usize);
int_range_strategy!(u64);
int_range_strategy!(u32);
int_range_strategy!(u16);
int_range_strategy!(u8);
int_range_strategy!(i64);
int_range_strategy!(i32);
int_range_strategy!(i16);
int_range_strategy!(i8);

macro_rules! float_range_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    };
}
float_range_strategy!(f64);
float_range_strategy!(f32);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Simple pattern strategy: `&str` of the form `[class]{m,n}` (or a literal
/// with no metacharacters) generates matching `String`s.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        match parse_simple_pattern(self) {
            None => (*self).to_string(), // literal pattern
            Some((chars, min, max)) => {
                let len = min + rng.index(max - min + 1);
                (0..len).map(|_| chars[rng.index(chars.len())]).collect()
            }
        }
    }
}

/// Parses `[a-cx]{m,n}` / `[a-c]{m}` / `[a-c]` patterns; `None` = literal.
fn parse_simple_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let bytes: Vec<char> = pat.chars().collect();
    if bytes.first() != Some(&'[') {
        assert!(
            !pat.contains(['[', ']', '{', '}', '*', '+', '?', '.', '\\', '|', '(', ')']),
            "string strategy shim supports only `[class]{{m,n}}` or literal patterns, got {pat:?}"
        );
        return None;
    }
    let close = bytes
        .iter()
        .position(|&c| c == ']')
        .unwrap_or_else(|| panic!("unterminated char class in {pat:?}"));
    let mut chars = Vec::new();
    let mut i = 1;
    while i < close {
        if i + 2 < close && bytes[i + 1] == '-' {
            let (a, b) = (bytes[i], bytes[i + 2]);
            assert!(a <= b, "bad range {a}-{b} in {pat:?}");
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(bytes[i]);
            i += 1;
        }
    }
    assert!(!chars.is_empty(), "empty char class in {pat:?}");
    let rest: String = bytes[close + 1..].iter().collect();
    if rest.is_empty() {
        return Some((chars, 1, 1));
    }
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported quantifier {rest:?} in {pat:?}"));
    let (min, max) = match inner.split_once(',') {
        Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
        None => {
            let n = inner.trim().parse().unwrap();
            (n, n)
        }
    };
    assert!(min <= max, "bad quantifier in {pat:?}");
    Some((chars, min, max))
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// The `any::<T>()` strategy for this type.
    fn arbitrary() -> AnyStrategy<Self>;
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_uniform {
    ($t:ty, $sample:expr) => {
        impl Arbitrary for $t {
            fn arbitrary() -> AnyStrategy<$t> {
                AnyStrategy(std::marker::PhantomData)
            }
        }
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $sample;
                f(rng)
            }
        }
    };
}
arbitrary_uniform!(bool, |r| r.next_u64() & 1 == 1);
arbitrary_uniform!(u8, |r| r.next_u64() as u8);
arbitrary_uniform!(u16, |r| r.next_u64() as u16);
arbitrary_uniform!(u32, |r| r.next_u64() as u32);
arbitrary_uniform!(u64, |r| r.next_u64());
arbitrary_uniform!(usize, |r| r.next_u64() as usize);
arbitrary_uniform!(i32, |r| r.next_u64() as i32);
arbitrary_uniform!(i64, |r| r.next_u64() as i64);
arbitrary_uniform!(f64, |r| f64::from_bits(r.next_u64() >> 2));
arbitrary_uniform!(f32, |r| f32::from_bits((r.next_u64() >> 34) as u32));

/// Uniform full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    T::arbitrary()
}

/// Numeric `ANY` constants (`proptest::num::u64::ANY` style).
pub mod num {
    /// `u64` strategies.
    pub mod u64 {
        /// Full-domain `u64`.
        pub const ANY: super::super::AnyStrategy<u64> =
            super::super::AnyStrategy(std::marker::PhantomData);
    }
    /// `u32` strategies.
    pub mod u32 {
        /// Full-domain `u32`.
        pub const ANY: super::super::AnyStrategy<u32> =
            super::super::AnyStrategy(std::marker::PhantomData);
    }
    /// `i64` strategies.
    pub mod i64 {
        /// Full-domain `i64`.
        pub const ANY: super::super::AnyStrategy<i64> =
            super::super::AnyStrategy(std::marker::PhantomData);
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification for [`vec()`](fn@vec).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.min + rng.index(self.size.max - self.size.min + 1);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Array strategies.
pub mod array {
    use super::{Strategy, TestRng};

    macro_rules! uniform_array {
        ($fn_name:ident, $ty_name:ident, $n:expr) => {
            /// Strategy for fixed-size arrays with a shared element strategy.
            pub struct $ty_name<S>(S);

            /// Generates `[T; N]` with every element drawn from `element`.
            pub fn $fn_name<S: Strategy>(element: S) -> $ty_name<S> {
                $ty_name(element)
            }

            impl<S: Strategy> Strategy for $ty_name<S> {
                type Value = [S::Value; $n];
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    std::array::from_fn(|_| self.0.sample(rng))
                }
            }
        };
    }
    uniform_array!(uniform2, ArrayStrategy2, 2);
    uniform_array!(uniform3, ArrayStrategy3, 3);
    uniform_array!(uniform4, ArrayStrategy4, 4);
    uniform_array!(uniform8, ArrayStrategy8, 8);
}

/// Runner configuration.
pub mod test_runner {
    /// Number-of-cases configuration (`ProptestConfig` subset).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Derives the deterministic base seed for a named test.
pub fn base_seed(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            return v;
        }
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The common imports.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, proptest, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
}

/// Defines deterministic randomized tests (proptest's macro, minus
/// shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        $(#[test] fn $name:ident ( $($args:tt)* ) $body:block)*
    ) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default())
            $(#[test] fn $name ( $($args)* ) $body)*);
    };
    (@with_config ($cfg:expr)
        $(#[test] fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::TestRng::new($crate::base_seed(concat!(
                    module_path!(), "::", stringify!($name)
                )));
                for _case in 0..config.cases {
                    // A closure so `prop_assume!` can skip the case via
                    // early return. `mut` stays for bodies that mutate
                    // captured state.
                    #[allow(unused_mut)]
                    let mut one_case = |rng: &mut $crate::TestRng| {
                        $(let $pat = $crate::Strategy::sample(&($strat), rng);)+
                        $body
                    };
                    one_case(&mut rng);
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&x));
            let f = (-1.0f64..1.0).sample(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::new(2);
        let s = (1usize..5)
            .prop_flat_map(|n| collection::vec(0.0f64..1.0, n))
            .prop_map(|v| v.len())
            .prop_filter("nonzero", |&n| n > 0);
        for _ in 0..100 {
            let n = s.sample(&mut rng);
            assert!((1..5).contains(&n));
        }
    }

    #[test]
    fn string_pattern_strategy() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = "[a-c]{0,2}".sample(&mut rng);
            assert!(s.len() <= 2);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke((a, b) in (0usize..10, 0usize..10), c in any::<bool>()) {
            prop_assume!(a + b < 18);
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(c as usize * 2 % 2, 0);
        }
    }
}
