//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, deterministic implementation of the exact API subset it uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::random`], and
//! [`Rng::random_range`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — high-quality, fast, and stable across platforms, which is all
//! the paper reproduction needs ("every experiment is seeded with the same
//! constant").

/// Types that can be sampled uniformly over their full domain by
/// [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types [`Rng::random_range`] can sample uniformly between two bounds.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! float_uniform {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let u = <$t as Standard>::sample_standard(rng);
                start + u * (end - start)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                Self::sample_half_open(rng, start, end)
            }
        }
    };
}
float_uniform!(f64);
float_uniform!(f32);

macro_rules! int_uniform {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as i128 - start as i128) as u128;
                // Debiased draw; the retry loop terminates with overwhelming
                // probability after one iteration.
                let zone = u128::from(u64::MAX) + 1;
                let limit = zone - zone % span;
                loop {
                    let x = u128::from(rng.next_u64());
                    if x < limit {
                        return (start as i128 + (x % span) as i128) as $t;
                    }
                }
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                if start == end {
                    return start;
                }
                if let Some(e1) = end.checked_add(1) {
                    Self::sample_half_open(rng, start, e1)
                } else {
                    // Full-width inclusive range: a raw draw already covers it.
                    (rng.next_u64() as $t).wrapping_add(start)
                }
            }
        }
    };
}
int_uniform!(usize);
int_uniform!(u64);
int_uniform!(u32);
int_uniform!(u16);
int_uniform!(u8);
int_uniform!(i64);
int_uniform!(i32);
int_uniform!(i16);
int_uniform!(i8);

/// Ranges that [`Rng::random_range`] can sample a `T` from. One blanket impl
/// per range shape (as in real `rand`) so type inference unifies the range's
/// element type with how the sampled value is used.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "random_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (s, e) = self.into_inner();
        assert!(s <= e, "random_range: empty range");
        T::sample_inclusive(rng, s, e)
    }
}

/// The random-number-generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly over the type's full domain.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// `StdRng`; not cryptographically secure, which the workspace never
    /// needs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&x));
            let y: f32 = rng.random_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let k: usize = rng.random_range(0..5);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let k: i64 = rng.random_range(-3..=3);
            assert!((-3..=3).contains(&k));
        }
    }

    #[test]
    fn uniform_f64_is_plausibly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
