//! Offline stand-in for `crossbeam`: scoped threads built on
//! `std::thread::scope` (stable since Rust 1.63), exposing the
//! `crossbeam::thread::scope(|s| { s.spawn(|_| …); })` call shape this
//! workspace uses.

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Dummy handle passed to spawned closures (crossbeam passes the scope
    /// itself; the workspace's closures ignore the argument).
    pub struct SpawnHandle(());

    /// A scope in which borrowing threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives a placeholder
        /// argument mirroring crossbeam's `|scope|` parameter.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&SpawnHandle) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(&SpawnHandle(())))
        }
    }

    /// Runs `f` with a scope handle, joining all spawned threads before
    /// returning. Returns `Err` if any spawned thread (or `f`) panicked —
    /// matching crossbeam's result-based panic reporting.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_borrow_stack_data() {
            let counter = AtomicUsize::new(0);
            super::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
                }
            })
            .expect("no panics");
            assert_eq!(counter.load(Ordering::Relaxed), 4);
        }

        #[test]
        fn panicking_thread_reports_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
