//! Offline stand-in for `parking_lot`: poison-free [`Mutex`] and [`Condvar`]
//! wrappers over `std::sync`, exposing the subset of the real crate's API
//! this workspace uses. Slightly slower than real parking_lot, identical
//! semantics (panics while holding a lock simply release it).

use std::sync::{self, MutexGuard as StdGuard};

/// A mutex whose `lock()` never returns a poison error (matching
/// `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable usable with [`MutexGuard`] (matching
/// `parking_lot::Condvar`'s `wait(&mut guard)` signature).
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Temporarily move the std guard out to hand it to std's wait; the
        // placeholder is never observed because `wait` either returns a new
        // guard or panics (and the outer guard is forgotten on unwind only
        // inside this call).
        replace_with(guard, |g| {
            self.0.wait(g.0).unwrap_or_else(|e| e.into_inner())
        });
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Replaces the std guard inside `guard` with `f(old_guard)`'s result.
/// Aborts the process if `f` panics (std's `Condvar::wait` only panics on
/// re-entrant misuse, which this workspace never does).
fn replace_with<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> StdGuard<'a, T>,
) {
    // SAFETY: `old` is read out and fully replaced before any unwinding
    // path could observe `*guard`; if `f` panics we abort (no double drop).
    unsafe {
        let old = std::ptr::read(guard);
        let abort_on_unwind = AbortOnUnwind;
        let new = f(old);
        std::mem::forget(abort_on_unwind);
        std::ptr::write(guard, MutexGuard(new));
    }
}

struct AbortOnUnwind;
impl Drop for AbortOnUnwind {
    fn drop(&mut self) {
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0usize));
        let hits = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                let hits = Arc::clone(&hits);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        assert!(t.join().unwrap());
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 1);
    }
}
