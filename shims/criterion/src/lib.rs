//! Offline stand-in for `criterion`.
//!
//! Implements the API subset this workspace's benches use — `criterion_group!`
//! / `criterion_main!`, benchmark groups with `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! and `Bencher::iter` — over a plain wall-clock measurement loop
//! (`std::time::Instant`, median-of-samples reporting, no statistics engine).
//!
//! Results print to stdout. When the `CRITERION_JSON_DIR` environment
//! variable names a directory, each group additionally writes
//! `<dir>/<group>.json` containing an `environment` record (the host's
//! `available_parallelism`, i.e. usable core count — parallel-path numbers
//! are meaningless without it) and a `results` array of
//! `{name, median_ns, mean_ns, samples}` records, so perf baselines can be
//! committed and diffed across PRs *with* the hardware context that
//! produced them.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies a parameterized benchmark (`name/param`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), param),
        }
    }

    /// Builds a bare parameter id.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            full: param.to_string(),
        }
    }
}

/// Measurement state handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back invocations of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// One benchmark's recorded samples (per-iteration nanoseconds).
struct BenchResult {
    name: String,
    samples_ns: Vec<f64>,
}

impl BenchResult {
    fn median_ns(&self) -> f64 {
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let n = s.len();
        if n == 0 {
            return f64::NAN;
        }
        if n % 2 == 1 {
            s[n / 2]
        } else {
            0.5 * (s[n / 2 - 1] + s[n / 2])
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return f64::NAN;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }
}

/// The top-level harness context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored; the shim
    /// has no CLI).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
            results: Vec::new(),
            finished: false,
        }
    }
}

/// A group of benchmarks sharing configuration; prints (and optionally
/// writes JSON) on [`BenchmarkGroup::finish`] / drop.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    results: Vec<BenchResult>,
    finished: bool,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total sampling budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkName,
        mut f: F,
    ) -> &mut Self {
        let name = id.into_benchmark_name();
        let samples = run_bench(
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        let result = BenchResult {
            name: format!("{}/{}", self.name, name),
            samples_ns: samples,
        };
        println!(
            "bench {:<56} median {:>12}  mean {:>12}",
            result.name,
            fmt_ns(result.median_ns()),
            fmt_ns(result.mean_ns()),
        );
        self.results.push(result);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Reports the group (stdout + optional JSON) — also runs on drop.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if let Ok(dir) = std::env::var("CRITERION_JSON_DIR") {
            let dir = std::path::Path::new(&dir);
            let _ = std::fs::create_dir_all(dir);
            // Parallel-path timings are uninterpretable without the
            // parallelism that produced them (see the workspace's 1-core
            // re-baseline caveat), so every baseline records it.
            // `available_parallelism` (cgroup/affinity aware), not a
            // physical core count the process may not actually have.
            let cores = std::thread::available_parallelism().map_or(0, |p| p.get());
            let mut out = String::from("{\n");
            out.push_str(&format!(
                "  \"environment\": {{\"available_parallelism\": {cores}}},\n"
            ));
            out.push_str("  \"results\": [\n");
            for (i, r) in self.results.iter().enumerate() {
                let sep = if i + 1 == self.results.len() { "" } else { "," };
                out.push_str(&format!(
                    "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"samples\": {}}}{}\n",
                    r.name,
                    r.median_ns(),
                    r.mean_ns(),
                    r.samples_ns.len(),
                    sep
                ));
            }
            out.push_str("  ]\n}\n");
            let path = dir.join(format!("{}.json", self.name));
            if let Err(e) = std::fs::write(&path, out) {
                eprintln!("criterion shim: failed to write {}: {e}", path.display());
            }
        }
    }
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Benchmark-name conversion for `bench_function`'s flexible id argument.
pub trait IntoBenchmarkName {
    /// The display name.
    fn into_benchmark_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_benchmark_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_benchmark_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_benchmark_name(self) -> String {
        self.full
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    f: &mut F,
) -> Vec<f64> {
    // Warm-up and iteration-count calibration: run single iterations until
    // the warm-up budget is spent, tracking the observed per-call time.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_call = Duration::from_nanos(1);
    let mut calls = 0u64;
    while warm_start.elapsed() < warm_up || calls == 0 {
        f(&mut b);
        per_call = b.elapsed.max(Duration::from_nanos(1));
        calls += 1;
    }
    // Choose iters so each sample takes ~ measurement / sample_size.
    let per_sample = measurement.as_nanos() as u64 / sample_size.max(1) as u64;
    let iters = (per_sample / per_call.as_nanos().max(1) as u64).clamp(1, 1_000_000_000);
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples
}

fn fmt_ns(ns: f64) -> String {
    if ns.is_nan() {
        return "n/a".into();
    }
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke_records_samples() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("shim_smoke");
            g.sample_size(3)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(5));
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            assert_eq!(g.results.len(), 2);
            assert!(g.results[0].median_ns() >= 0.0);
            g.finish();
        }
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).full, "a/3");
        assert_eq!(BenchmarkId::from_parameter(7).full, "7");
    }
}
