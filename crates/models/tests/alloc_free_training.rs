//! Tier-1 allocation-behavior test for the *training* hot path: after
//! warm-up, the fused planned backward's chain refresh + scan
//! (`VanillaRnn::fused_planned_scan`) must be allocation-free — not just
//! the scan kernels, but the per-iteration chain handling too.
//!
//! Single `#[test]` so no concurrent test thread pollutes the process-wide
//! counters.

use bppsa_core::BppsaOptions;
use bppsa_models::{BitstreamDataset, FusedPlannedState, RnnBatchSample, VanillaRnn};
use bppsa_tensor::init::seeded_rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAllocator;

static TRACKING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_fused_planned_scan_is_allocation_free() {
    let data = BitstreamDataset::<f64>::generate(12, 24, 3);
    let rnn = VanillaRnn::<f64>::new(1, 10, 10, &mut seeded_rng(4));

    // Prepare one mini-batch outside the counted region (forward passes and
    // seed scaling allocate by design).
    let prepared: Vec<_> = (0..6)
        .map(|i| {
            let sample = data.sample(i);
            let states = rnn.forward(&sample.bits);
            let (_, seed, g_logits) = rnn.loss_and_seed(&states, sample.label);
            (sample.bits.clone(), states, seed, g_logits)
        })
        .collect();
    let batch: Vec<RnnBatchSample<'_, f64>> = prepared
        .iter()
        .map(|(bits, states, seed, g)| (bits.as_slice(), states, seed.clone(), g.clone()))
        .collect();

    let mut state = FusedPlannedState::<f64>::new();
    let opts = BppsaOptions::serial();
    // Warm-up: builds the chain, the plan, and the workspace.
    let reference = rnn.fused_planned_scan(&batch, opts, &mut state).clone();
    let _ = rnn.fused_planned_scan(&batch, opts, &mut state);
    assert_eq!(state.plans_built(), 1);

    ALLOCS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    let _ = rnn.fused_planned_scan(&batch, opts, &mut state);
    TRACKING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "steady-state fused_planned_scan (chain refresh + scan) must not allocate"
    );

    // Still correct after the counted run.
    let out = rnn.fused_planned_scan(&batch, opts, &mut state);
    assert!(out.max_abs_diff(&reference) < 1e-12);
}
