//! Routing recurrent backward passes through the `bppsa-serve` front door.
//!
//! [`PooledChainSet`](crate::PooledChainSet) fans a mini-batch's per-sample
//! chains over a *directly owned* [`BatchedBackward`](bppsa_core::BatchedBackward);
//! this module supplies the complementary deployment shape — the same
//! per-sample chains submitted as **independent requests** to a
//! [`BppsaService`], which coalesces them (together with any other traffic
//! sharing the service) into batched fan-outs under its deadline policy.
//! Training uses it via
//! [`BackwardMethod::BppsaServed`](crate::train::BackwardMethod::BppsaServed);
//! inference-time gradient serving over *heterogeneous* sequence lengths
//! uses [`VanillaRnn::serve_sample_gradients`](crate::VanillaRnn::serve_sample_gradients)
//! on a shared service.
//!
//! The gradient-sum validity argument is the pooled path's (§2.2: the
//! optimizer consumes the batch sum, which is insensitive to which
//! lane/workspace computed which sample), and so is the shape economy: the
//! per-sample chain shape is batch-size independent, so a whole training
//! run — remainder batches included — routes through **one** service lane.

use bppsa_core::{BackwardResult, JacobianChain};
use bppsa_serve::{BppsaService, ServeConfig, SubmitRefusal, Ticket};
use bppsa_tensor::Scalar;
use std::time::Duration;

/// Terminal submit failure of a served backward pass: one request's
/// submission was refused and the refusal stuck — either it is not
/// retryable at all ([`SubmitRefusal::is_transient`] is `false`), or the
/// service's [`RetryPolicy`](bppsa_serve::RetryPolicy) budget (configured
/// in [`ServeConfig::retry`]) was exhausted retrying it. Retry pacing is
/// entirely the service's: this crate no longer hard-codes budgets or
/// backoffs.
///
/// Surfaced as a typed error (instead of the panic this path used to
/// raise) so callers sharing a service with foreign traffic can decide —
/// skip the batch, re-route to an owned executor, or abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedSubmitError {
    /// Index (within the submitted batch/request slice) of the refused
    /// request. Requests before it were submitted and have been waited
    /// out; requests after it were never submitted.
    pub index: usize,
    /// What the service answered, chain-free (the chain was returned to
    /// its slot).
    pub refusal: SubmitRefusal,
}

impl ServedSubmitError {
    /// Whether the refusal reflects **service overload** — shedding,
    /// backpressure, a warming or quarantined lane, an infeasible
    /// deadline, or memory pressure — rather than a caller-side problem
    /// ([`Shutdown`](SubmitRefusal::Shutdown),
    /// [`TicketInFlight`](SubmitRefusal::TicketInFlight)). Overload
    /// refusals are the ones worth re-routing to an owned
    /// [`BatchedBackward`](bppsa_core::BatchedBackward) executor or a less
    /// loaded service; note this is *not* the same split as
    /// [`SubmitRefusal::is_transient`] —
    /// [`Infeasible`](SubmitRefusal::Infeasible) is overload but not
    /// retryable in place, because an immediate resubmit faces the same
    /// queue and the same latency estimate.
    pub fn is_overload(&self) -> bool {
        !matches!(
            self.refusal,
            SubmitRefusal::Shutdown | SubmitRefusal::TicketInFlight
        )
    }
}

impl std::fmt::Display for ServedSubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "served backward: request {} refused past the retry budget: {}",
            self.index, self.refusal
        )
    }
}

impl std::error::Error for ServedSubmitError {}

/// A lazily-built set of structurally-identical per-sample chains plus the
/// [`BppsaService`] front door they are submitted through — the served
/// counterpart of [`PooledChainSet`](crate::PooledChainSet).
///
/// Owned by a training loop (inside
/// [`FusedPlannedState`](crate::FusedPlannedState)); models call
/// [`ServedChainSet::ensure`] with their chain shape each iteration,
/// refresh chain *values* in place via [`ServedChainSet::for_each_chain_mut`],
/// and submit-and-collect with [`ServedChainSet::execute`]. The chains are
/// clones of one template (shared `Arc` sparsity patterns), so every
/// request routes to the same lane by pointer equality, and the service
/// plans that lane exactly once per shape.
#[derive(Debug, Default)]
pub struct ServedChainSet<S> {
    service: Option<BppsaService<S>>,
    entry: Option<Entry<S>>,
}

#[derive(Debug)]
struct Entry<S> {
    /// `(chain length, element width)` of the per-sample chains.
    key: (usize, usize),
    /// One refreshable chain per batch slot (`None` only while in flight);
    /// all clones of slot 0's template.
    chains: Vec<Option<JacobianChain<S>>>,
    /// One reusable completion handle per batch slot.
    tickets: Vec<Ticket<S>>,
}

impl<S> ServedChainSet<S> {
    /// An empty set (creates its service and lane on first
    /// [`ServedChainSet::ensure`]).
    pub fn new() -> Self {
        Self {
            service: None,
            entry: None,
        }
    }

    /// Lanes the underlying service ever built — stays at `1` for a whole
    /// steady-shape training run including remainder batches, since the
    /// per-sample chain shape is batch-size independent.
    pub fn lanes_built(&self) -> usize {
        self.service.as_ref().map_or(0, BppsaService::lanes_created)
    }

    /// The underlying service, once created (for sharing with other
    /// request sources or inspecting lane state).
    pub fn service(&self) -> Option<&BppsaService<S>> {
        self.service.as_ref()
    }
}

impl<S: Scalar> ServedChainSet<S> {
    /// Ensures `n` chains of shape `key` exist (building the template with
    /// `build` when the shape changed) and that the service is sized to
    /// coalesce a full batch: `max_batch` is fixed at first use from `n`.
    /// Smaller (remainder) batches flush by deadline instead — the lane and
    /// its plan are shape-keyed, not batch-size-keyed, so they are reused.
    ///
    /// The front door always compiles the full serial-schedule plan for a
    /// lane; schedule selection (§5.2 hybrid) is not routed through it.
    pub fn ensure(
        &mut self,
        key: (usize, usize),
        n: usize,
        build: impl FnOnce() -> JacobianChain<S>,
    ) {
        self.service.get_or_insert_with(|| {
            BppsaService::new(ServeConfig {
                max_batch: n.max(1),
                // Training submits the whole batch back-to-back; the
                // deadline only covers remainder batches below max_batch.
                max_delay: Duration::from_micros(100),
                queue_cap: (2 * n).max(16),
                ..ServeConfig::default()
            })
        });
        let rebuild = match &self.entry {
            Some(e) => e.key != key,
            None => true,
        };
        if rebuild {
            let template = build();
            self.entry = Some(Entry {
                key,
                chains: vec![Some(template)],
                tickets: vec![Ticket::new()],
            });
        }
        let entry = self.entry.as_mut().expect("entry just ensured");
        while entry.chains.len() < n {
            let clone = entry.chains[0]
                .as_ref()
                .expect("template at rest between executes")
                .clone();
            entry.chains.push(Some(clone));
            entry.tickets.push(Ticket::new());
        }
    }

    /// Applies `refresh` to each of the first `n` chains, for in-place
    /// value refresh between iterations.
    ///
    /// # Panics
    ///
    /// Panics if [`ServedChainSet::ensure`] has not provided `n` chains.
    pub fn for_each_chain_mut(
        &mut self,
        n: usize,
        mut refresh: impl FnMut(usize, &mut JacobianChain<S>),
    ) {
        let entry = self.entry.as_mut().expect("ensure() not called");
        for (k, slot) in entry.chains[..n].iter_mut().enumerate() {
            refresh(k, slot.as_mut().expect("chain at rest"));
        }
    }

    /// Submits the first `n` chains as independent service requests
    /// (through the service's [`RetryPolicy`](bppsa_serve::RetryPolicy) —
    /// transient refusals like shedding or quarantine retry with backoff),
    /// waits for all of them, and streams each result to
    /// `consume(k, result)` on the calling thread (requests complete
    /// concurrently inside the service; consumption is sequential, so
    /// `consume` may freely mutate captured state). The chains return to
    /// their slots afterwards — on success *and* on error, so a refused
    /// batch can simply be re-executed.
    ///
    /// # Errors
    ///
    /// [`ServedSubmitError`] when a submission is refused past the retry
    /// budget. Requests submitted before the refusal are waited out (their
    /// results are discarded — the batch is incomplete) and every chain is
    /// back in its slot when this returns.
    ///
    /// # Panics
    ///
    /// Panics if [`ServedChainSet::ensure`] has not provided `n` chains, or
    /// if an *accepted* request fails (the owned service's default config
    /// has no breaker, no hard deadline, and no fault injection, so an
    /// accepted request can only fail on an internal bug).
    pub fn execute(
        &mut self,
        n: usize,
        consume: &mut dyn FnMut(usize, &BackwardResult<S>),
    ) -> Result<(), ServedSubmitError> {
        let entry = self.entry.as_mut().expect("ensure() not called");
        let service = self.service.as_ref().expect("service created by ensure");
        let mut failure = None;
        let mut submitted = 0;
        for (k, (slot, ticket)) in entry.chains[..n].iter_mut().zip(&entry.tickets).enumerate() {
            let chain = slot.take().expect("chain at rest");
            match service.submit_retrying(chain, ticket) {
                Ok(()) => submitted += 1,
                Err(e) => {
                    failure = Some(ServedSubmitError {
                        index: k,
                        refusal: e.kind(),
                    });
                    *slot = Some(e.into_chain());
                    break;
                }
            }
        }
        // Even on a refusal, everything already accepted must land (and
        // hand its chain back) before the error surfaces — never leave
        // requests in flight behind a returned error.
        for (k, (slot, ticket)) in entry.chains[..submitted]
            .iter_mut()
            .zip(&entry.tickets)
            .enumerate()
        {
            ticket
                .wait()
                .unwrap_or_else(|e| panic!("served backward: request {k} failed: {e}"));
            if failure.is_none() {
                ticket.with_result(|r| consume(k, r));
            }
            *slot = Some(ticket.take_chain());
        }
        failure.map_or(Ok(()), Err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_classification_splits_refusals_by_reroutability() {
        let overload = [
            SubmitRefusal::Backpressure,
            SubmitRefusal::LaneWarming,
            SubmitRefusal::Shed,
            SubmitRefusal::Quarantined,
            SubmitRefusal::Infeasible,
            SubmitRefusal::MemoryPressure,
        ];
        for refusal in overload {
            let err = ServedSubmitError { index: 0, refusal };
            assert!(err.is_overload(), "{refusal} should classify as overload");
        }
        for refusal in [SubmitRefusal::Shutdown, SubmitRefusal::TicketInFlight] {
            let err = ServedSubmitError { index: 0, refusal };
            assert!(!err.is_overload(), "{refusal} is caller-side, not overload");
        }
        // Infeasible is the split's interesting corner: overload, yet not
        // transient — re-route it, don't resubmit it.
        assert!(!SubmitRefusal::Infeasible.is_transient());
        assert!(SubmitRefusal::MemoryPressure.is_transient());
    }
}
