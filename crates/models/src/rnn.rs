//! The vanilla (Elman) RNN of the paper's §4.1, Equation 9:
//!
//! `h_t = tanh(W_ih·x_t + b_ih + W_hh·h_{t−1} + b_hh)`
//!
//! with a softmax readout of the last hidden state. The backward dependency
//! chain over `∇h_t` is exactly the workload BPPSA targets: `T` transposed
//! Jacobians `(∂h_t/∂h_{t−1})ᵀ = W_hhᵀ · diag(1 − h_t²)`, scanned instead of
//! iterated.
//!
//! Both backward paths are provided and tested equal: [`VanillaRnn::backward_bptt`]
//! (classic back-propagation through time, the cuDNN-baseline math) and
//! [`VanillaRnn::backward_bppsa`] (chain → modified Blelloch scan →
//! Equation 2 parameter accumulation, which has no sequential dependency).

use crate::pooled::PooledChainSet;
use bppsa_core::{
    bppsa_backward, BppsaOptions, JacobianChain, Mru, PlannedBackwardCache, ScanElement,
};
use bppsa_ops::SoftmaxCrossEntropy;
use bppsa_tensor::{init, Matrix, Scalar, Vector};
use rand::rngs::StdRng;

/// A vanilla RNN with scalar-per-step input and a linear softmax readout.
///
/// # Examples
///
/// ```
/// use bppsa_models::VanillaRnn;
/// use bppsa_tensor::init::seeded_rng;
///
/// let rnn = VanillaRnn::<f32>::new(1, 20, 10, &mut seeded_rng(0));
/// let bits = vec![1.0_f32, 0.0, 1.0, 1.0];
/// let states = rnn.forward(&bits);
/// assert_eq!(states.len(), 4);
/// let (loss, _seed, _glog) = rnn.loss_and_seed(&states, 3);
/// assert!(loss > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct VanillaRnn<S> {
    wih: Matrix<S>,
    whh: Matrix<S>,
    bih: Vector<S>,
    bhh: Vector<S>,
    wout: Matrix<S>,
    bout: Vector<S>,
    input_dim: usize,
}

/// The recorded hidden states `h_0 … h_{T−1}` of one forward pass.
pub type RnnStates<S> = Vec<Vector<S>>;

/// One prepared sample of a fused mini-batch backward:
/// `(bits, states, seed, ∇logits)` with the seeds pre-scaled by `1/B`.
pub type RnnBatchSample<'a, S> = (&'a [S], &'a RnnStates<S>, Vector<S>, Vector<S>);

/// Gradients of all RNN parameters, in [`VanillaRnn::params`] layout.
#[derive(Debug, Clone)]
pub struct RnnGrads<S> {
    /// `∇W_ih` (hidden × input).
    pub d_wih: Matrix<S>,
    /// `∇W_hh` (hidden × hidden).
    pub d_whh: Matrix<S>,
    /// `∇b_ih`.
    pub d_bih: Vector<S>,
    /// `∇b_hh`.
    pub d_bhh: Vector<S>,
    /// `∇W_out` (classes × hidden).
    pub d_wout: Matrix<S>,
    /// `∇b_out`.
    pub d_bout: Vector<S>,
}

impl<S: Scalar> RnnGrads<S> {
    fn zeros(input: usize, hidden: usize, classes: usize) -> Self {
        Self {
            d_wih: Matrix::zeros(hidden, input),
            d_whh: Matrix::zeros(hidden, hidden),
            d_bih: Vector::zeros(hidden),
            d_bhh: Vector::zeros(hidden),
            d_wout: Matrix::zeros(classes, hidden),
            d_bout: Vector::zeros(classes),
        }
    }

    /// Adds another gradient set in place (mini-batch accumulation).
    pub fn accumulate(&mut self, other: &Self) {
        self.d_wih.axpy(S::ONE, &other.d_wih);
        self.d_whh.axpy(S::ONE, &other.d_whh);
        self.d_bih.axpy(S::ONE, &other.d_bih);
        self.d_bhh.axpy(S::ONE, &other.d_bhh);
        self.d_wout.axpy(S::ONE, &other.d_wout);
        self.d_bout.axpy(S::ONE, &other.d_bout);
    }

    /// Flattens into [`VanillaRnn::params`] order.
    pub fn flat(&self) -> Vec<S> {
        let mut out = Vec::new();
        out.extend_from_slice(self.d_wih.as_slice());
        out.extend_from_slice(self.d_whh.as_slice());
        out.extend_from_slice(self.d_bih.as_slice());
        out.extend_from_slice(self.d_bhh.as_slice());
        out.extend_from_slice(self.d_wout.as_slice());
        out.extend_from_slice(self.d_bout.as_slice());
        out
    }

    /// Largest absolute difference to another gradient set.
    pub fn max_abs_diff(&self, other: &Self) -> S {
        let (a, b) = (self.flat(), other.flat());
        a.iter()
            .zip(&b)
            .fold(S::ZERO, |acc, (&x, &y)| acc.maximum((x - y).abs()))
    }
}

/// Persistent planned-backward state for one RNN training loop, covering
/// both batched strategies:
///
/// * **fused** ([`VanillaRnn::backward_bppsa_batched_planned`]): the whole
///   mini-batch enters one block-diagonal scan; this state holds the
///   reusable chain (patterns shared across iterations) plus the
///   plan/workspace cache;
/// * **pooled** ([`VanillaRnn::backward_bppsa_pooled`]): one per-sample
///   chain each, fanned concurrently over a
///   [`WorkspacePool`](bppsa_core::WorkspacePool) sharing a single compiled
///   plan; this state owns the [`PooledChainSet`];
/// * **served** ([`VanillaRnn::backward_bppsa_served`]): the pooled
///   strategy routed through the `bppsa-serve` front door — per-sample
///   chains submitted as independent requests and coalesced by the
///   service's deadline micro-batcher; this state owns the
///   [`ServedChainSet`](crate::ServedChainSet).
#[derive(Debug, Default)]
pub struct FusedPlannedState<S> {
    /// Reusable chains keyed by `(batch, timesteps, hidden)` — one per
    /// mini-batch shape (e.g. the full shape plus the epoch-end remainder),
    /// so alternating shapes refresh values instead of rebuilding. Shares
    /// the plan cache's MRU policy and capacity, so a shape's chain and its
    /// plan/workspace are retained and evicted together.
    chains: Mru<((usize, usize, usize), JacobianChain<S>)>,
    cache: PlannedBackwardCache<S>,
    pooled: PooledChainSet<S>,
    served: crate::ServedChainSet<S>,
}

impl<S: Scalar> FusedPlannedState<S> {
    /// An empty state (builds chain and plan on first use).
    pub fn new() -> Self {
        Self {
            chains: Mru::default(),
            cache: PlannedBackwardCache::new(),
            pooled: PooledChainSet::new(),
            served: crate::ServedChainSet::new(),
        }
    }

    /// How many fused plans have been built — the number of distinct batch
    /// shapes seen.
    pub fn plans_built(&self) -> usize {
        self.cache.plans_built()
    }

    /// Number of currently cached fused plan/workspace pairs.
    pub fn cached_plans(&self) -> usize {
        self.cache.cached_plans()
    }

    /// The pooled per-sample chain set (the
    /// [`VanillaRnn::backward_bppsa_pooled`] state).
    pub fn pooled_mut(&mut self) -> &mut PooledChainSet<S> {
        &mut self.pooled
    }

    /// How many pooled plans have been built — stays at `1` for a whole
    /// run including remainder batches, since the per-sample chain shape is
    /// batch-size independent.
    pub fn pooled_plans_built(&self) -> usize {
        self.pooled.plans_built()
    }

    /// The served per-sample chain set (the
    /// [`VanillaRnn::backward_bppsa_served`] state).
    pub fn served_mut(&mut self) -> &mut crate::ServedChainSet<S> {
        &mut self.served
    }

    /// How many service lanes the served path has built — stays at `1` for
    /// a whole run including remainder batches (same batch-size-independent
    /// shape argument as [`FusedPlannedState::pooled_plans_built`]).
    pub fn served_lanes_built(&self) -> usize {
        self.served.lanes_built()
    }
}

impl<S: Scalar> VanillaRnn<S> {
    /// Creates an RNN with Kaiming-uniform weights.
    pub fn new(input_dim: usize, hidden: usize, classes: usize, rng: &mut StdRng) -> Self {
        Self {
            wih: init::kaiming_matrix(rng, hidden, input_dim),
            whh: init::kaiming_matrix(rng, hidden, hidden),
            bih: Vector::zeros(hidden),
            bhh: Vector::zeros(hidden),
            wout: init::kaiming_matrix(rng, classes, hidden),
            bout: Vector::zeros(classes),
            input_dim,
        }
    }

    /// Hidden-state size.
    pub fn hidden_size(&self) -> usize {
        self.whh.rows()
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.wout.rows()
    }

    /// The recurrent weight matrix `W_hh`.
    pub fn whh(&self) -> &Matrix<S> {
        &self.whh
    }

    /// Runs the forward recurrence over a scalar sequence, returning all
    /// hidden states `h_0 … h_{T−1}` (with `h_{−1} = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `input_dim != 1` (scalar sequences) or the input is empty.
    pub fn forward(&self, bits: &[S]) -> RnnStates<S> {
        assert_eq!(self.input_dim, 1, "forward: scalar-input model expected");
        assert!(!bits.is_empty(), "forward: empty sequence");
        let h_dim = self.hidden_size();
        let mut states = Vec::with_capacity(bits.len());
        let mut h = Vector::zeros(h_dim);
        for &x in bits {
            let mut z = self.whh.matvec(&h);
            for i in 0..h_dim {
                z[i] += self.wih.get(i, 0) * x + self.bih[i] + self.bhh[i];
            }
            h = z.map(|v| v.tanh());
            states.push(h.clone());
        }
        states
    }

    /// Readout logits from the last hidden state.
    pub fn logits(&self, last_h: &Vector<S>) -> Vector<S> {
        self.wout.matvec(last_h).add(&self.bout)
    }

    /// Loss, the scan seed `∇h_{T−1}`, and the logits gradient for `label`.
    pub fn loss_and_seed(&self, states: &RnnStates<S>, label: usize) -> (S, Vector<S>, Vector<S>) {
        let last = states.last().expect("nonempty states");
        let (loss, g_logits) = SoftmaxCrossEntropy::loss_and_grad(&self.logits(last), label);
        let seed = self.wout.matvec_transposed(&g_logits);
        (loss, seed, g_logits)
    }

    /// Classic BPTT: iterate `t = T−1 … 0`, maintaining `∇h_t` sequentially
    /// (the Equation 3 dependency BPPSA removes).
    pub fn backward_bptt(
        &self,
        bits: &[S],
        states: &RnnStates<S>,
        seed: &Vector<S>,
        g_logits: &Vector<S>,
    ) -> RnnGrads<S> {
        assert_eq!(bits.len(), states.len(), "bptt: states/bits mismatch");
        let h_dim = self.hidden_size();
        let mut grads = RnnGrads::zeros(self.input_dim, h_dim, self.num_classes());
        grads.d_wout = g_logits.outer(states.last().expect("nonempty"));
        grads.d_bout = g_logits.clone();

        let mut g_h = seed.clone();
        for t in (0..states.len()).rev() {
            let h_t = &states[t];
            // g_z = (1 − h²) ⊙ g_h.
            let g_z = Vector::from_fn(h_dim, |i| (S::ONE - h_t[i] * h_t[i]) * g_h[i]);
            for i in 0..h_dim {
                let v = grads.d_wih.get(i, 0) + g_z[i] * bits[t];
                grads.d_wih.set(i, 0, v);
            }
            grads.d_bih.axpy(S::ONE, &g_z);
            grads.d_bhh.axpy(S::ONE, &g_z);
            if t > 0 {
                grads.d_whh.axpy(S::ONE, &g_z.outer(&states[t - 1]));
                g_h = self.whh.matvec_transposed(&g_z);
            }
            // t == 0: h_{−1} = 0, so the ∇W_hh term vanishes and no further
            // gradient propagates.
        }
        grads
    }

    /// The transposed Jacobian `(∂h_t/∂h_{t−1})ᵀ = W_hhᵀ · diag(1 − h_t²)`.
    pub fn hidden_jacobian_t(&self, h_t: &Vector<S>) -> Matrix<S> {
        let h_dim = self.hidden_size();
        // (W_hhᵀ · diag(d))[i][j] = W_hh[j][i] · d[j].
        Matrix::from_fn(h_dim, h_dim, |i, j| {
            self.whh.get(j, i) * (S::ONE - h_t[j] * h_t[j])
        })
    }

    /// Writes [`VanillaRnn::hidden_jacobian_t`]'s values row-major into a
    /// caller-owned slice — the allocation-free refresh used when a fused
    /// chain's block values are rewritten in place between iterations.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != hidden² `.
    pub fn fill_hidden_jacobian_values(&self, h_t: &Vector<S>, out: &mut [S]) {
        let h_dim = self.hidden_size();
        assert_eq!(out.len(), h_dim * h_dim, "fill_hidden_jacobian_values");
        for i in 0..h_dim {
            for (j, o) in out[i * h_dim..(i + 1) * h_dim].iter_mut().enumerate() {
                *o = self.whh.get(j, i) * (S::ONE - h_t[j] * h_t[j]);
            }
        }
    }

    /// Builds the Equation 5 chain for the hidden-state recurrence: seed
    /// `∇h_{T−1}` plus `T` Jacobians (`t = 0 … T−1`; the `t = 0` element
    /// only pads the array — exclusive scans never emit `∇h_{−1}`).
    pub fn build_chain(&self, states: &RnnStates<S>, seed: &Vector<S>) -> JacobianChain<S> {
        let mut chain = JacobianChain::new(seed.clone());
        for h_t in states {
            chain.push(ScanElement::Dense(self.hidden_jacobian_t(h_t)));
        }
        chain
    }

    /// BPPSA: scan the hidden-state chain, then accumulate all parameter
    /// gradients from the per-step `∇h_t` — Equation 2, no sequential
    /// dependency.
    pub fn backward_bppsa(
        &self,
        bits: &[S],
        states: &RnnStates<S>,
        seed: &Vector<S>,
        g_logits: &Vector<S>,
        opts: BppsaOptions,
    ) -> RnnGrads<S> {
        assert_eq!(bits.len(), states.len(), "bppsa: states/bits mismatch");
        let h_dim = self.hidden_size();
        let chain = self.build_chain(states, seed);
        let result = bppsa_backward(&chain, opts);
        // result.grads()[i] = ∇x_{i+1} where x_{i+1} = h_i → ∇h_t = grads()[t].
        let mut grads = RnnGrads::zeros(self.input_dim, h_dim, self.num_classes());
        grads.d_wout = g_logits.outer(states.last().expect("nonempty"));
        grads.d_bout = g_logits.clone();
        for t in 0..states.len() {
            let h_t = &states[t];
            let g_h = result.grad_x(t + 1);
            let g_z = Vector::from_fn(h_dim, |i| (S::ONE - h_t[i] * h_t[i]) * g_h[i]);
            for i in 0..h_dim {
                let v = grads.d_wih.get(i, 0) + g_z[i] * bits[t];
                grads.d_wih.set(i, 0, v);
            }
            grads.d_bih.axpy(S::ONE, &g_z);
            grads.d_bhh.axpy(S::ONE, &g_z);
            if t > 0 {
                grads.d_whh.axpy(S::ONE, &g_z.outer(&states[t - 1]));
            }
        }
        grads
    }

    /// Batched BPPSA: fuses `B` samples' backward passes into **one** scan
    /// over block-diagonal Jacobians (`diag(J_t^{(1)}, …, J_t^{(B)})` per
    /// timestep), then accumulates parameter gradients across the batch.
    ///
    /// Algebraically identical to summing [`VanillaRnn::backward_bppsa`]
    /// over the batch (block-diagonal products are blockwise products), but
    /// each scan level now carries `B×` the parallel work — the batching the
    /// paper's CUDA implementation performs across thread blocks.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or sequences have unequal lengths.
    pub fn backward_bppsa_batched(
        &self,
        batch: &[RnnBatchSample<'_, S>],
        opts: BppsaOptions,
    ) -> RnnGrads<S> {
        let chain = self.build_batched_chain(batch);
        let result = bppsa_backward(&chain, opts);
        self.accumulate_batched_grads(batch, &result)
    }

    /// [`VanillaRnn::backward_bppsa_batched`] through persistent
    /// [`FusedPlannedState`]: the symbolic phase of every scan combine runs
    /// once (on the first mini-batch of each shape) and each subsequent
    /// iteration refreshes the reused chain's *values* in place and
    /// executes the numeric-only program over reused buffers — the paper's
    /// §3.3 hoisting applied to the whole training loop, with no
    /// per-iteration chain reconstruction.
    pub fn backward_bppsa_batched_planned(
        &self,
        batch: &[RnnBatchSample<'_, S>],
        opts: BppsaOptions,
        state: &mut FusedPlannedState<S>,
    ) -> RnnGrads<S> {
        let result = self.fused_planned_scan(batch, opts, state);
        self.accumulate_batched_grads(batch, result)
    }

    /// Pooled batched BPPSA: one **per-sample** chain each, all matching a
    /// single compiled plan, fanned concurrently across the scan worker
    /// pool with each sample on its own pooled workspace
    /// ([`BatchedBackward`](bppsa_core::BatchedBackward)) — the concurrent
    /// complement of the fused block-diagonal strategy.
    ///
    /// Valid whenever the optimizer consumes the batch-*accumulated*
    /// gradient (all of this crate's optimizers do): per-sample gradients
    /// are summed as results arrive, so the result equals summing
    /// [`VanillaRnn::backward_bppsa`] over the batch up to floating-point
    /// reassociation of that sum. Unlike the fused path, the plan is
    /// batch-size independent: an epoch-end remainder batch reuses the full
    /// batch's plan instead of planning a second shape.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or sequences have unequal lengths.
    pub fn backward_bppsa_pooled(
        &self,
        batch: &[RnnBatchSample<'_, S>],
        opts: BppsaOptions,
        state: &mut PooledChainSet<S>,
    ) -> RnnGrads<S> {
        assert!(!batch.is_empty(), "batched backward: empty batch");
        let t_len = batch[0].1.len();
        assert!(
            batch
                .iter()
                .all(|(bits, states, _, _)| states.len() == t_len && bits.len() == t_len),
            "batched backward: unequal sequence lengths"
        );
        let h_dim = self.hidden_size();
        state.ensure((t_len, h_dim), batch.len(), opts, || {
            self.build_batched_chain(&batch[..1])
        });
        // Refresh every sample's chain values in place (patterns are fixed).
        for (k, chain) in state.chains_mut(batch.len()).iter_mut().enumerate() {
            let (_, states, seed, _) = &batch[k];
            chain
                .seed_mut()
                .as_mut_slice()
                .copy_from_slice(seed.as_slice());
            for (t, element) in chain.jacobians_mut().iter_mut().enumerate() {
                let ScanElement::Sparse(m) = element else {
                    unreachable!("pooled chain elements are CSR")
                };
                self.fill_hidden_jacobian_values(&states[t], m.data_mut());
            }
        }
        // Fan out; sum per-sample parameter gradients as results stream in.
        let grads =
            std::sync::Mutex::new(RnnGrads::zeros(self.input_dim, h_dim, self.num_classes()));
        state.execute(batch.len(), &|k, result| {
            let (bits, states, _, g_logits) = &batch[k];
            let mut partial = RnnGrads::zeros(self.input_dim, h_dim, self.num_classes());
            self.accumulate_sample_grads(bits, states, g_logits, result, 0, &mut partial);
            grads
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .accumulate(&partial);
        });
        grads
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Served batched BPPSA: the pooled per-sample strategy routed through
    /// the `bppsa-serve` front door — each sample's chain is submitted as
    /// an **independent request** to a [`BppsaService`](bppsa_serve::BppsaService),
    /// whose deadline micro-batcher coalesces them (and any other traffic
    /// sharing the service) into batched planned-scan fan-outs.
    ///
    /// Gradient-equivalent to [`VanillaRnn::backward_bppsa_pooled`] (the
    /// optimizer consumes the batch sum; the service executes the same
    /// compiled per-sample plan over pooled workspaces), with the same
    /// batch-size-independent shape economy: remainder batches reuse the
    /// full batch's lane, so a steady run builds exactly one lane.
    ///
    /// # Errors
    ///
    /// [`ServedSubmitError`](crate::ServedSubmitError) when the front door
    /// refuses a request past the service's retry budget (see
    /// [`ServedChainSet::execute`](crate::ServedChainSet::execute)); the
    /// chains are back at rest, so the batch can be re-executed.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or sequences have unequal lengths.
    pub fn backward_bppsa_served(
        &self,
        batch: &[RnnBatchSample<'_, S>],
        state: &mut crate::ServedChainSet<S>,
    ) -> Result<RnnGrads<S>, crate::ServedSubmitError> {
        assert!(!batch.is_empty(), "batched backward: empty batch");
        let t_len = batch[0].1.len();
        assert!(
            batch
                .iter()
                .all(|(bits, states, _, _)| states.len() == t_len && bits.len() == t_len),
            "batched backward: unequal sequence lengths"
        );
        let h_dim = self.hidden_size();
        state.ensure((t_len, h_dim), batch.len(), || {
            self.build_batched_chain(&batch[..1])
        });
        // Refresh every sample's chain values in place (patterns are fixed).
        state.for_each_chain_mut(batch.len(), |k, chain| {
            let (_, states, seed, _) = &batch[k];
            chain
                .seed_mut()
                .as_mut_slice()
                .copy_from_slice(seed.as_slice());
            for (t, element) in chain.jacobians_mut().iter_mut().enumerate() {
                let ScanElement::Sparse(m) = element else {
                    unreachable!("served chain elements are CSR")
                };
                self.fill_hidden_jacobian_values(&states[t], m.data_mut());
            }
        });
        // Submit all, wait all; results are consumed sequentially on this
        // thread, so the sum accumulates without a lock.
        let mut grads = RnnGrads::zeros(self.input_dim, h_dim, self.num_classes());
        state.execute(batch.len(), &mut |k, result| {
            let (bits, states, _, g_logits) = &batch[k];
            self.accumulate_sample_grads(bits, states, g_logits, result, 0, &mut grads);
        })?;
        Ok(grads)
    }

    /// Mixed-shape inference-gradient serving: independent per-sample
    /// requests with **heterogeneous sequence lengths**, all submitted to
    /// one shared [`BppsaService`](bppsa_serve::BppsaService) — the
    /// serving-shard scenario where users' sequences differ and the router
    /// coalesces same-length requests into shared per-shape lanes.
    ///
    /// Returns each request's full parameter gradients, equal (up to the
    /// planned executor's deterministic rounding) to running
    /// [`VanillaRnn::backward_bppsa`] per sample.
    ///
    /// # Errors
    ///
    /// [`ServedSubmitError`](crate::ServedSubmitError) when a request is
    /// refused past the shared service's retry budget — a shared front
    /// door may shed load or have quarantined this sequence length's
    /// shape; requests accepted before the refusal are waited out first.
    ///
    /// # Panics
    ///
    /// Panics if any request's sequence is empty, or if an *accepted*
    /// request fails (possible only when the shared service runs a
    /// breaker, hard deadlines, or fault injection).
    pub fn serve_sample_gradients(
        &self,
        service: &bppsa_serve::BppsaService<S>,
        requests: &[RnnBatchSample<'_, S>],
    ) -> Result<Vec<RnnGrads<S>>, crate::ServedSubmitError> {
        let tickets: Vec<bppsa_serve::Ticket<S>> = requests
            .iter()
            .map(|_| bppsa_serve::Ticket::new())
            .collect();
        // A shared service may transiently refuse (load shedding, lane
        // warming under try-semantics, a quarantined shape in half-open);
        // `submit_retrying` absorbs those under the service's RetryPolicy
        // instead of failing the whole request set on the first refusal.
        let mut submitted = 0;
        let mut failure = None;
        for (k, ticket) in tickets.iter().enumerate() {
            let chain = self.build_batched_chain(&requests[k..k + 1]);
            match service.submit_retrying(chain, ticket) {
                Ok(()) => submitted += 1,
                Err(e) => {
                    failure = Some(crate::ServedSubmitError {
                        index: k,
                        refusal: e.kind(),
                    });
                    break;
                }
            }
        }
        if let Some(err) = failure {
            // Never return with requests still in flight: land everything
            // accepted before the refusal, then surface the error.
            for ticket in &tickets[..submitted] {
                let _ = ticket.wait();
                let _ = ticket.take_chain();
            }
            return Err(err);
        }
        Ok(requests
            .iter()
            .zip(&tickets)
            .enumerate()
            .map(|(k, ((bits, states, _, g_logits), ticket))| {
                ticket
                    .wait()
                    .unwrap_or_else(|e| panic!("serve_sample_gradients: request {k} failed: {e}"));
                let mut grads =
                    RnnGrads::zeros(self.input_dim, self.hidden_size(), self.num_classes());
                ticket.with_result(|r| {
                    self.accumulate_sample_grads(bits, states, g_logits, r, 0, &mut grads);
                });
                grads
            })
            .collect())
    }

    /// The scan half of [`VanillaRnn::backward_bppsa_batched_planned`]:
    /// refresh (or build) the fused chain and run the planned backward.
    /// Allocation-free in the steady state — the chain, its patterns, the
    /// plan, and the workspace all persist inside `state`.
    pub fn fused_planned_scan<'s>(
        &self,
        batch: &[RnnBatchSample<'_, S>],
        opts: BppsaOptions,
        state: &'s mut FusedPlannedState<S>,
    ) -> &'s bppsa_core::BackwardResult<S> {
        assert!(!batch.is_empty(), "batched backward: empty batch");
        let t_len = batch[0].1.len();
        assert!(
            batch
                .iter()
                .all(|(bits, states, _, _)| states.len() == t_len && bits.len() == t_len),
            "batched backward: unequal sequence lengths"
        );
        let h_dim = self.hidden_size();
        let shape = (batch.len(), t_len, h_dim);

        let FusedPlannedState { chains, cache, .. } = state;
        let ((_, chain), inserted) = chains.find_or_insert_with(
            |(sh, _)| *sh == shape,
            || (shape, self.build_batched_chain(batch)),
        );
        if !inserted {
            // Same structure: rewrite seed and block values in place. The
            // chain's Arc patterns stay identical across iterations, so the
            // plan cache's match check is pointer equality.
            let seed = chain.seed_mut().as_mut_slice();
            for (k, (_, _, sample_seed, _)) in batch.iter().enumerate() {
                seed[k * h_dim..(k + 1) * h_dim].copy_from_slice(sample_seed.as_slice());
            }
            let block = h_dim * h_dim;
            for (t, element) in chain.jacobians_mut().iter_mut().enumerate() {
                let ScanElement::Sparse(m) = element else {
                    unreachable!("fused chain elements are CSR")
                };
                let data = m.data_mut();
                for (k, (_, states, _, _)) in batch.iter().enumerate() {
                    self.fill_hidden_jacobian_values(
                        &states[t],
                        &mut data[k * block..(k + 1) * block],
                    );
                }
            }
        }

        cache.backward(chain, opts)
    }

    /// Builds the fused mini-batch chain: concatenated seeds plus one
    /// block-diagonal CSR element per timestep. The per-sample blocks use
    /// [`Csr::from_dense_pattern`](bppsa_sparse::Csr::from_dense_pattern),
    /// so the pattern depends only on `(B, T, hidden)` — deterministic
    /// across iterations, which is what makes the chain plannable.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or sequences have unequal lengths.
    pub fn build_batched_chain(&self, batch: &[RnnBatchSample<'_, S>]) -> JacobianChain<S> {
        assert!(!batch.is_empty(), "batched backward: empty batch");
        let t_len = batch[0].1.len();
        assert!(
            batch
                .iter()
                .all(|(bits, states, _, _)| states.len() == t_len && bits.len() == t_len),
            "batched backward: unequal sequence lengths"
        );

        // Seed: concatenation of per-sample seeds.
        let seeds: Vec<&Vector<S>> = batch.iter().map(|(_, _, s, _)| s).collect();
        let mut chain = JacobianChain::new(Vector::concat(&seeds));
        // Per timestep: block-diagonal of per-sample Jacobians, in CSR.
        for t in 0..t_len {
            let blocks: Vec<bppsa_sparse::Csr<S>> = batch
                .iter()
                .map(|(_, states, _, _)| {
                    bppsa_sparse::Csr::from_dense_pattern(&self.hidden_jacobian_t(&states[t]))
                })
                .collect();
            let refs: Vec<&bppsa_sparse::Csr<S>> = blocks.iter().collect();
            chain.push(ScanElement::Sparse(bppsa_sparse::Csr::block_diag(&refs)));
        }
        chain
    }

    /// Accumulates parameter gradients across the batch from the fused
    /// scan's per-timestep hidden-state gradients (Equation 2).
    fn accumulate_batched_grads(
        &self,
        batch: &[RnnBatchSample<'_, S>],
        result: &bppsa_core::BackwardResult<S>,
    ) -> RnnGrads<S> {
        let mut grads = RnnGrads::zeros(self.input_dim, self.hidden_size(), self.num_classes());
        for (k, (bits, states, _, g_logits)) in batch.iter().enumerate() {
            // ∇h_t for sample k is block k of the concatenated gradient.
            self.accumulate_sample_grads(bits, states, g_logits, result, k, &mut grads);
        }
        grads
    }

    /// Adds one sample's parameter gradients (Equation 2) into `grads`,
    /// reading `∇h_t` from block `block` of `result`'s (possibly
    /// concatenated) per-timestep gradients — block `k` of a fused
    /// mini-batch result, block `0` of a per-sample result.
    fn accumulate_sample_grads(
        &self,
        bits: &[S],
        states: &RnnStates<S>,
        g_logits: &Vector<S>,
        result: &bppsa_core::BackwardResult<S>,
        block: usize,
        grads: &mut RnnGrads<S>,
    ) {
        let h_dim = self.hidden_size();
        grads
            .d_wout
            .axpy(S::ONE, &g_logits.outer(states.last().expect("nonempty")));
        grads.d_bout.axpy(S::ONE, g_logits);
        for (t, h_t) in states.iter().enumerate() {
            let g_all = result.grad_x(t + 1);
            let g_h = &g_all.as_slice()[block * h_dim..(block + 1) * h_dim];
            let g_z = Vector::from_fn(h_dim, |i| (S::ONE - h_t[i] * h_t[i]) * g_h[i]);
            for i in 0..h_dim {
                let v = grads.d_wih.get(i, 0) + g_z[i] * bits[t];
                grads.d_wih.set(i, 0, v);
            }
            grads.d_bih.axpy(S::ONE, &g_z);
            grads.d_bhh.axpy(S::ONE, &g_z);
            if t > 0 {
                grads.d_whh.axpy(S::ONE, &g_z.outer(&states[t - 1]));
            }
        }
    }

    /// Flattened parameters: `W_ih, W_hh, b_ih, b_hh, W_out, b_out`.
    pub fn params(&self) -> Vec<S> {
        let mut out = Vec::new();
        out.extend_from_slice(self.wih.as_slice());
        out.extend_from_slice(self.whh.as_slice());
        out.extend_from_slice(self.bih.as_slice());
        out.extend_from_slice(self.bhh.as_slice());
        out.extend_from_slice(self.wout.as_slice());
        out.extend_from_slice(self.bout.as_slice());
        out
    }

    /// Overwrites parameters from [`VanillaRnn::params`] layout.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match.
    pub fn set_params(&mut self, flat: &[S]) {
        let sizes = [
            self.wih.numel(),
            self.whh.numel(),
            self.bih.len(),
            self.bhh.len(),
            self.wout.numel(),
            self.bout.len(),
        ];
        assert_eq!(
            flat.len(),
            sizes.iter().sum::<usize>(),
            "set_params: wrong length"
        );
        let mut off = 0;
        let mut take = |len: usize| {
            let s = &flat[off..off + len];
            off += len;
            s
        };
        self.wih.as_mut_slice().copy_from_slice(take(sizes[0]));
        self.whh.as_mut_slice().copy_from_slice(take(sizes[1]));
        self.bih.as_mut_slice().copy_from_slice(take(sizes[2]));
        self.bhh.as_mut_slice().copy_from_slice(take(sizes[3]));
        self.wout.as_mut_slice().copy_from_slice(take(sizes[4]));
        self.bout.as_mut_slice().copy_from_slice(take(sizes[5]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bppsa_tensor::init::seeded_rng;

    fn tiny_rnn(seed: u64) -> VanillaRnn<f64> {
        VanillaRnn::new(1, 4, 3, &mut seeded_rng(seed))
    }

    fn bits(t: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        use rand::Rng;
        (0..t)
            .map(|_| {
                if rng.random_range(0.0..1.0) < 0.4 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    #[test]
    fn forward_states_are_bounded_by_tanh() {
        let rnn = tiny_rnn(1);
        let states = rnn.forward(&bits(20, 2));
        for h in &states {
            assert!(h.iter().all(|&v| (-1.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn hidden_jacobian_matches_finite_differences() {
        let rnn = tiny_rnn(3);
        // Perturb h_{t−1} and check ∂h_t/∂h_{t−1} numerically.
        let h_prev = Vector::from_vec(vec![0.1, -0.3, 0.5, 0.0]);
        let x = 1.0;
        let step = |h: &Vector<f64>| -> Vector<f64> {
            let mut z = rnn.whh.matvec(h);
            for i in 0..4 {
                z[i] += rnn.wih.get(i, 0) * x + rnn.bih[i] + rnn.bhh[i];
            }
            z.map(f64::tanh)
        };
        let h_t = step(&h_prev);
        let jt = rnn.hidden_jacobian_t(&h_t);
        let eps = 1e-6;
        for i in 0..4 {
            let mut plus = h_prev.clone();
            plus[i] += eps;
            let mut minus = h_prev.clone();
            minus[i] -= eps;
            let (hp, hm) = (step(&plus), step(&minus));
            for j in 0..4 {
                let numeric = (hp[j] - hm[j]) / (2.0 * eps);
                // J[j][i] = ∂h_t[j]/∂h_prev[i]; Jᵀ[i][j].
                assert!(
                    (jt.get(i, j) - numeric).abs() < 1e-6,
                    "J^T[{i}][{j}]: {} vs {numeric}",
                    jt.get(i, j)
                );
            }
        }
    }

    #[test]
    fn bptt_matches_finite_differences_on_loss() {
        let rnn = tiny_rnn(5);
        let xs = bits(6, 6);
        let label = 2;
        let states = rnn.forward(&xs);
        let (_, seed, g_logits) = rnn.loss_and_seed(&states, label);
        let analytic = rnn.backward_bptt(&xs, &states, &seed, &g_logits).flat();

        let theta = rnn.params();
        let eps = 1e-6;
        for p in (0..theta.len()).step_by(7) {
            let probe = |delta: f64| -> f64 {
                let mut r = rnn.clone();
                let mut th = theta.clone();
                th[p] += delta;
                r.set_params(&th);
                let st = r.forward(&xs);
                let (loss, _, _) = r.loss_and_seed(&st, label);
                loss
            };
            let numeric = (probe(eps) - probe(-eps)) / (2.0 * eps);
            assert!(
                (analytic[p] - numeric).abs() < 1e-6,
                "param {p}: {} vs {numeric}",
                analytic[p]
            );
        }
    }

    #[test]
    fn bppsa_equals_bptt_exactly_enough() {
        for t in [1usize, 2, 3, 8, 17, 33] {
            let rnn = tiny_rnn(7);
            let xs = bits(t, 8);
            let states = rnn.forward(&xs);
            let (_, seed, g_logits) = rnn.loss_and_seed(&states, 1);
            let bptt = rnn.backward_bptt(&xs, &states, &seed, &g_logits);
            let scan = rnn.backward_bppsa(&xs, &states, &seed, &g_logits, BppsaOptions::serial());
            let diff = bptt.max_abs_diff(&scan);
            assert!(diff < 1e-10, "T={t}: diff {diff}");
        }
    }

    #[test]
    fn bppsa_threaded_and_hybrid_agree() {
        let rnn = tiny_rnn(9);
        let xs = bits(25, 10);
        let states = rnn.forward(&xs);
        let (_, seed, g_logits) = rnn.loss_and_seed(&states, 0);
        let reference = rnn.backward_bptt(&xs, &states, &seed, &g_logits);
        for opts in [
            BppsaOptions::threaded(4),
            BppsaOptions::serial().hybrid(2),
            BppsaOptions::threaded(2).hybrid(3),
        ] {
            let scan = rnn.backward_bppsa(&xs, &states, &seed, &g_logits, opts);
            assert!(reference.max_abs_diff(&scan) < 1e-10);
        }
    }

    #[test]
    fn batched_scan_equals_per_sample_sum() {
        let rnn = tiny_rnn(31);
        let t = 9;
        let all_bits: Vec<Vec<f64>> = (0..4).map(|k| bits(t, 32 + k)).collect();
        let mut batch = Vec::new();
        let mut expected = None::<RnnGrads<f64>>;
        let mut stored = Vec::new();
        for (k, xs) in all_bits.iter().enumerate() {
            let states = rnn.forward(xs);
            let (_, seed, g_logits) = rnn.loss_and_seed(&states, k % 3);
            let per = rnn.backward_bppsa(xs, &states, &seed, &g_logits, BppsaOptions::serial());
            match &mut expected {
                None => expected = Some(per),
                Some(acc) => acc.accumulate(&per),
            }
            stored.push((states, seed, g_logits));
        }
        for (xs, (states, seed, g_logits)) in all_bits.iter().zip(&stored) {
            batch.push((xs.as_slice(), states, seed.clone(), g_logits.clone()));
        }
        let batched = rnn.backward_bppsa_batched(&batch, BppsaOptions::serial());
        let expected = expected.unwrap();
        let diff = batched.max_abs_diff(&expected);
        assert!(diff < 1e-10, "diff {diff}");

        // The planned/workspace-backed path agrees too, and plans once
        // across repeated executions.
        let mut state = FusedPlannedState::new();
        for round in 0..3 {
            let planned =
                rnn.backward_bppsa_batched_planned(&batch, BppsaOptions::serial(), &mut state);
            let diff = planned.max_abs_diff(&expected);
            assert!(diff < 1e-10, "round {round}: diff {diff}");
        }
        assert_eq!(state.plans_built(), 1);
    }

    #[test]
    fn served_mixed_length_inference_gradients_match_per_sample_backward() {
        // The serving-shard scenario: independent requests with three
        // *different* sequence lengths, all submitted to one shared
        // service. The router coalesces same-length requests into shared
        // lanes, and every request's gradients match the per-sample BPPSA
        // backward.
        let rnn = tiny_rnn(61);
        let lengths = [5usize, 9, 13, 9, 5, 13, 9, 5];
        let all_bits: Vec<Vec<f64>> = lengths
            .iter()
            .enumerate()
            .map(|(k, &t)| bits(t, 62 + k as u64))
            .collect();
        let mut stored = Vec::new();
        let mut expected = Vec::new();
        for (k, xs) in all_bits.iter().enumerate() {
            let states = rnn.forward(xs);
            let (_, seed, g_logits) = rnn.loss_and_seed(&states, k % 3);
            expected.push(rnn.backward_bppsa(
                xs,
                &states,
                &seed,
                &g_logits,
                BppsaOptions::serial(),
            ));
            stored.push((states, seed, g_logits));
        }
        let requests: Vec<RnnBatchSample<'_, f64>> = all_bits
            .iter()
            .zip(&stored)
            .map(|(xs, (states, seed, g))| (xs.as_slice(), states, seed.clone(), g.clone()))
            .collect();

        let service = bppsa_serve::BppsaService::<f64>::new(bppsa_serve::ServeConfig {
            max_batch: 3,
            max_delay: std::time::Duration::from_micros(300),
            ..bppsa_serve::ServeConfig::default()
        });
        for round in 0..2 {
            let served = rnn
                .serve_sample_gradients(&service, &requests)
                .expect("service accepts all requests");
            assert_eq!(served.len(), requests.len());
            for (k, (got, expect)) in served.iter().zip(&expected).enumerate() {
                let diff = got.max_abs_diff(expect);
                assert!(diff < 1e-10, "round {round} request {k}: diff {diff}");
            }
        }
        // One lane per distinct sequence length, planned once each.
        assert_eq!(service.lanes(), 3);
        assert_eq!(service.lanes_created(), 3);
    }

    #[test]
    fn pooled_batched_equals_per_sample_sum_and_plans_once() {
        let rnn = tiny_rnn(51);
        let t = 11;
        let all_bits: Vec<Vec<f64>> = (0..5).map(|k| bits(t, 52 + k)).collect();
        let mut expected = None::<RnnGrads<f64>>;
        let mut stored = Vec::new();
        for (k, xs) in all_bits.iter().enumerate() {
            let states = rnn.forward(xs);
            let (_, seed, g_logits) = rnn.loss_and_seed(&states, k % 3);
            let per = rnn.backward_bppsa(xs, &states, &seed, &g_logits, BppsaOptions::serial());
            match &mut expected {
                None => expected = Some(per),
                Some(acc) => acc.accumulate(&per),
            }
            stored.push((states, seed, g_logits));
        }
        let batch: Vec<RnnBatchSample<'_, f64>> = all_bits
            .iter()
            .zip(&stored)
            .map(|(xs, (states, seed, g))| (xs.as_slice(), states, seed.clone(), g.clone()))
            .collect();
        let expected = expected.unwrap();
        let mut state = PooledChainSet::new();
        for round in 0..3 {
            let pooled = rnn.backward_bppsa_pooled(&batch, BppsaOptions::serial(), &mut state);
            let diff = pooled.max_abs_diff(&expected);
            assert!(diff < 1e-10, "round {round}: diff {diff}");
        }
        assert_eq!(state.plans_built(), 1);

        // A smaller "remainder" batch reuses the same plan (same per-sample
        // shape) — the pooled path's advantage over the fused one.
        let remainder = rnn.backward_bppsa_pooled(&batch[..2], BppsaOptions::serial(), &mut state);
        assert_eq!(state.plans_built(), 1);
        let mut expected2 = rnn.backward_bppsa(
            &all_bits[0],
            &stored[0].0,
            &stored[0].1,
            &stored[0].2,
            BppsaOptions::serial(),
        );
        expected2.accumulate(&rnn.backward_bppsa(
            &all_bits[1],
            &stored[1].0,
            &stored[1].1,
            &stored[1].2,
            BppsaOptions::serial(),
        ));
        assert!(remainder.max_abs_diff(&expected2) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "unequal sequence lengths")]
    fn batched_scan_rejects_ragged_batch() {
        let rnn = tiny_rnn(41);
        let xs1 = bits(5, 42);
        let xs2 = bits(7, 43);
        let s1 = rnn.forward(&xs1);
        let s2 = rnn.forward(&xs2);
        let (_, seed1, g1) = rnn.loss_and_seed(&s1, 0);
        let (_, seed2, g2) = rnn.loss_and_seed(&s2, 1);
        let batch = vec![
            (xs1.as_slice(), &s1, seed1, g1),
            (xs2.as_slice(), &s2, seed2, g2),
        ];
        let _ = rnn.backward_bppsa_batched(&batch, BppsaOptions::serial());
    }

    #[test]
    fn params_roundtrip() {
        let mut rnn = tiny_rnn(11);
        let p = rnn.params();
        let doubled: Vec<f64> = p.iter().map(|v| v * 2.0).collect();
        rnn.set_params(&doubled);
        assert_eq!(rnn.params(), doubled);
    }

    #[test]
    fn grads_accumulate_and_flatten_consistently() {
        let rnn = tiny_rnn(13);
        let xs = bits(5, 14);
        let states = rnn.forward(&xs);
        let (_, seed, g_logits) = rnn.loss_and_seed(&states, 1);
        let g = rnn.backward_bptt(&xs, &states, &seed, &g_logits);
        let mut acc = g.clone();
        acc.accumulate(&g);
        let (f1, f2) = (g.flat(), acc.flat());
        for (a, b) in f1.iter().zip(&f2) {
            assert!((b - 2.0 * a).abs() < 1e-12);
        }
        assert_eq!(f1.len(), rnn.params().len());
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_rejected() {
        let rnn = tiny_rnn(15);
        let _ = rnn.forward(&[]);
    }
}
