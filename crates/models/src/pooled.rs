//! Shared plumbing for routing recurrent models through
//! [`BatchedBackward`]: a reusable set of same-shape per-sample chains plus
//! the pooled executor they fan out on.
//!
//! The fused path (`FusedPlannedState`) merges a mini-batch into **one**
//! block-diagonal scan; this module implements the complementary strategy —
//! one *per-sample* chain each, all matching a single compiled
//! [`PlannedScan`](bppsa_core::PlannedScan), executed concurrently over a
//! [`WorkspacePool`](bppsa_core::WorkspacePool). Because the per-sample
//! chain shape is independent of the batch size, a remainder batch at epoch
//! end reuses the same plan instead of planning a second shape.
//!
//! The accumulation of per-sample parameter gradients into one update is
//! what makes this valid: the paper's optimizers consume the batch *sum*
//! (§2.2 — BPPSA is "agnostic to the exact first-order optimizer"), and a
//! sum is insensitive to which workspace computed which sample.

use bppsa_core::{
    BackwardResult, BatchedBackward, BppsaOptions, DiagonalMode, JacobianChain, PlannedScan,
};
use bppsa_tensor::Scalar;
use std::sync::Arc;

/// A lazily-built set of structurally-identical per-sample chains and the
/// [`BatchedBackward`] executor that fans them over pooled workspaces.
///
/// Owned by a training loop (e.g. inside `FusedPlannedState`); models call
/// [`PooledChainSet::ensure`] with their chain shape each iteration, refresh
/// the chains' *values* in place via [`PooledChainSet::chains_mut`], and fan
/// out with [`PooledChainSet::execute`]. Planning happens only when the
/// shape (or options) actually change; the steady state is numeric-only
/// over reused chains, one compiled plan, and pooled workspaces.
#[derive(Debug, Default)]
pub struct PooledChainSet<S> {
    entry: Option<Entry<S>>,
    plans_built: usize,
}

#[derive(Debug)]
struct Entry<S> {
    /// `(chain length, element width)` of the per-sample chains.
    key: (usize, usize),
    /// The plan-relevant parts of the caller's options: the schedule shape
    /// and the diagonal plan-kind mode. Executor choices must not force a
    /// re-plan.
    up_levels: Option<usize>,
    diagonal: DiagonalMode,
    /// One refreshable chain per batch slot; all clones of `chains[0]`, so
    /// every chain shares the template's `Arc` sparsity patterns and the
    /// plan's structural match is pointer equality.
    chains: Vec<JacobianChain<S>>,
    batched: BatchedBackward<S>,
}

impl<S: Scalar> PooledChainSet<S> {
    /// An empty set (plans on first [`PooledChainSet::ensure`]).
    pub fn new() -> Self {
        Self {
            entry: None,
            plans_built: 0,
        }
    }

    /// Ensures `n` chains of shape `key` exist, building the template chain
    /// with `build` and planning it when the shape or options changed since
    /// the last call. The plan itself always uses the serial executor —
    /// parallelism comes from fanning whole samples across the pool, not
    /// from splitting one sample's levels — while `opts` still selects the
    /// schedule (full Blelloch vs. §5.2 hybrid).
    pub fn ensure(
        &mut self,
        key: (usize, usize),
        n: usize,
        opts: BppsaOptions,
        build: impl FnOnce() -> JacobianChain<S>,
    ) {
        // Only the schedule shape is plan-relevant: re-planning on executor
        // changes would silently defeat the cache.
        let rebuild = match &self.entry {
            Some(e) => e.key != key || e.up_levels != opts.up_levels || e.diagonal != opts.diagonal,
            None => true,
        };
        if rebuild {
            let template = build();
            let mut plan_opts = BppsaOptions::serial();
            plan_opts.up_levels = opts.up_levels;
            plan_opts.diagonal = opts.diagonal;
            let plan = Arc::new(PlannedScan::plan(&template, plan_opts));
            let batched = BatchedBackward::new(plan);
            let mut chains = Vec::with_capacity(n);
            chains.push(template);
            self.entry = Some(Entry {
                key,
                up_levels: opts.up_levels,
                diagonal: opts.diagonal,
                chains,
                batched,
            });
            self.plans_built += 1;
        }
        let entry = self.entry.as_mut().expect("entry just ensured");
        while entry.chains.len() < n {
            let clone = entry.chains[0].clone();
            entry.chains.push(clone);
        }
        // Re-prewarm on growth too, so a later, larger batch of the same
        // shape stays on the allocation-free path.
        entry.batched.prewarm(n);
    }

    /// The first `n` chains, for in-place value refresh.
    ///
    /// # Panics
    ///
    /// Panics if [`PooledChainSet::ensure`] has not provided `n` chains.
    pub fn chains_mut(&mut self, n: usize) -> &mut [JacobianChain<S>] {
        &mut self.entry.as_mut().expect("ensure() not called").chains[..n]
    }

    /// Fans the first `n` chains across the worker pool (each sample on its
    /// own pooled workspace) and streams every result to `consume(k,
    /// result)` — concurrently, exactly once per index, while the workspace
    /// is held. See [`BatchedBackward::execute`].
    ///
    /// # Panics
    ///
    /// Panics if [`PooledChainSet::ensure`] has not provided `n` chains.
    pub fn execute(&self, n: usize, consume: &(dyn Fn(usize, &BackwardResult<S>) + Sync)) {
        let entry = self.entry.as_ref().expect("ensure() not called");
        entry.batched.execute(&entry.chains[..n], consume);
    }

    /// How many times a plan was built — the number of distinct `(shape,
    /// options)` pairs seen, not the iteration count. Remainder batches
    /// share the full batch's plan (per-sample shape is batch-size
    /// independent), so a steady training run reads `1`.
    pub fn plans_built(&self) -> usize {
        self.plans_built
    }

    /// The current plan, if any (for FLOP/workspace accounting).
    pub fn plan(&self) -> Option<&Arc<PlannedScan>> {
        self.entry.as_ref().map(|e| e.batched.plan())
    }
}
