//! Training loops with switchable backward paths — the machinery behind the
//! Figure 7 (convergence) and Figure 9 (loss vs wall-clock) experiments.
//!
//! Every loop times the backward portion separately so the harness can
//! report backward-pass and overall speedups the way §5.1 does.

use crate::datasets::{BitstreamDataset, SyntheticCifar};
use crate::optim::Optimizer;
use crate::rnn::{FusedPlannedState, RnnGrads, VanillaRnn};
use crate::ssm::{DiagonalSsm, SsmGrads, SsmTrainState};
use bppsa_core::{BppsaOptions, JacobianRepr, Network};
use bppsa_ops::SoftmaxCrossEntropy;
use bppsa_tensor::Scalar;
use std::time::Instant;

/// Which backward path a training loop uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackwardMethod {
    /// Classic back-propagation (the PyTorch-Autograd/cuDNN baseline).
    Bp,
    /// BPPSA: transposed-Jacobian chain + modified Blelloch scan.
    Bppsa {
        /// Scan execution options.
        opts: BppsaOptions,
        /// Jacobian representation.
        repr: JacobianRepr,
    },
    /// Batched BPPSA for recurrent loops: the whole mini-batch enters a
    /// single scan over block-diagonal Jacobians
    /// ([`VanillaRnn::backward_bppsa_batched`]). Ignored (treated as
    /// [`BackwardMethod::Bppsa`]) by feed-forward training loops.
    BppsaFused {
        /// Scan execution options.
        opts: BppsaOptions,
    },
    /// Batched BPPSA through persistent [`FusedPlannedState`]: the fused
    /// mini-batch scan is symbolically planned once per batch shape (§3.3
    /// hoisting over the whole training run) and every iteration refreshes
    /// the reused chain in place and re-executes the numeric-only program
    /// over a reused, allocation-free workspace
    /// ([`VanillaRnn::backward_bppsa_batched_planned`]). Ignored (treated
    /// as [`BackwardMethod::Bppsa`]) by feed-forward training loops.
    BppsaFusedPlanned {
        /// Scan execution options.
        opts: BppsaOptions,
    },
    /// Pooled batched BPPSA for recurrent loops: one **per-sample** chain
    /// each, all executing a single compiled plan concurrently over a
    /// workspace pool ([`VanillaRnn::backward_bppsa_pooled`]); per-sample
    /// gradients are accumulated into the batch update. Valid because the
    /// optimizer consumes the batch sum. Ignored (treated as
    /// [`BackwardMethod::Bppsa`]) by feed-forward training loops.
    BppsaPooled {
        /// Scan schedule options (the executor is always the batch
        /// fan-out; `opts.up_levels` still selects full vs. hybrid).
        opts: BppsaOptions,
    },
    /// The pooled strategy routed through the `bppsa-serve` front door:
    /// per-sample chains submitted as independent requests to a
    /// [`BppsaService`](bppsa_serve::BppsaService) and coalesced by its
    /// deadline micro-batcher ([`VanillaRnn::backward_bppsa_served`]) —
    /// training traffic exercising exactly the serving path. The front door
    /// always compiles the full serial-schedule plan per lane. Ignored
    /// (treated as serial [`BackwardMethod::Bppsa`]) by feed-forward
    /// training loops.
    BppsaServed,
}

impl BackwardMethod {
    /// BPPSA with sparse Jacobians and `threads` scan workers (spawned per
    /// level; prefer [`BackwardMethod::bppsa_pooled`] for training loops).
    pub fn bppsa_threaded(threads: usize) -> Self {
        BackwardMethod::Bppsa {
            opts: BppsaOptions::threaded(threads),
            repr: JacobianRepr::Sparse,
        }
    }

    /// BPPSA with sparse Jacobians on the persistent worker pool.
    pub fn bppsa_pooled() -> Self {
        BackwardMethod::Bppsa {
            opts: BppsaOptions::pooled(),
            repr: JacobianRepr::Sparse,
        }
    }

    /// Fused batched BPPSA (RNN loops only): one block-diagonal scan per
    /// mini-batch instead of one scan per sample.
    pub fn bppsa_fused(opts: BppsaOptions) -> Self {
        BackwardMethod::BppsaFused { opts }
    }

    /// Fused batched BPPSA with plan-once/execute-many workspace reuse (RNN
    /// loops only) — the steady-state fast path for training.
    pub fn bppsa_fused_planned(opts: BppsaOptions) -> Self {
        BackwardMethod::BppsaFusedPlanned { opts }
    }

    /// Pooled batched BPPSA (RNN loops only): per-sample scans of one
    /// compiled plan, fanned concurrently over pooled workspaces.
    pub fn bppsa_pooled_batched(opts: BppsaOptions) -> Self {
        BackwardMethod::BppsaPooled { opts }
    }

    /// Served batched BPPSA (RNN loops only): per-sample requests routed
    /// through the `bppsa-serve` deadline micro-batching front door.
    pub fn bppsa_served() -> Self {
        BackwardMethod::BppsaServed
    }

    /// Segment-parallel fused planned BPPSA for deep chains (RNN loops
    /// only): the compiled plan is split into `k` exact segments executed
    /// concurrently on worker groups carved from the pool, stitched at
    /// schedule-block interfaces — bit-for-bit identical to the
    /// unsegmented plan.
    pub fn bppsa_segmented(k: usize) -> Self {
        BackwardMethod::BppsaFusedPlanned {
            opts: BppsaOptions::pooled().segmented(k),
        }
    }
}

/// One training iteration's record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Iteration index (mini-batch counter across epochs).
    pub iteration: usize,
    /// Mean mini-batch loss.
    pub loss: f64,
    /// Cumulative wall-clock seconds since training started.
    pub wall_s: f64,
    /// Seconds spent in this iteration's backward pass.
    pub backward_s: f64,
}

/// The full log of a training run.
#[derive(Debug, Clone, Default)]
pub struct TrainLog {
    /// Per-iteration records, in order.
    pub records: Vec<IterationRecord>,
}

impl TrainLog {
    /// Total wall-clock seconds.
    pub fn total_s(&self) -> f64 {
        self.records.last().map_or(0.0, |r| r.wall_s)
    }

    /// Total seconds spent in backward passes.
    pub fn backward_s(&self) -> f64 {
        self.records.iter().map(|r| r.backward_s).sum()
    }

    /// Final recorded loss.
    pub fn final_loss(&self) -> f64 {
        self.records.last().map_or(f64::NAN, |r| r.loss)
    }

    /// Largest absolute per-iteration loss difference to another log — the
    /// Figure 7 overlap metric.
    ///
    /// # Panics
    ///
    /// Panics if the logs have different lengths.
    pub fn max_loss_gap(&self, other: &TrainLog) -> f64 {
        assert_eq!(
            self.records.len(),
            other.records.len(),
            "log length mismatch"
        );
        self.records
            .iter()
            .zip(&other.records)
            .map(|(a, b)| (a.loss - b.loss).abs())
            .fold(0.0, f64::max)
    }
}

/// Runs one mini-batch step on a sequential network classifier: forward,
/// softmax-CE loss, backward (per `method`), and gradient accumulation.
/// Returns `(mean loss, per-layer param grads, backward seconds)`.
pub fn network_batch_step<S: Scalar>(
    net: &Network<S>,
    images: &[(&bppsa_tensor::Tensor<S>, usize)],
    method: BackwardMethod,
) -> (f64, Vec<Vec<S>>, f64) {
    assert!(!images.is_empty(), "empty batch");
    let inv_b = S::ONE / S::from_usize(images.len());
    let mut total_loss = S::ZERO;
    let mut param_grads: Vec<Vec<S>> = net
        .ops()
        .iter()
        .map(|op| vec![S::ZERO; op.param_len()])
        .collect();
    let mut backward_s = 0.0;

    for &(image, label) in images {
        let tape = net.forward(image);
        let logits = tape.output().to_vector();
        let (loss, grad_logits) = SoftmaxCrossEntropy::loss_and_grad(&logits, label);
        total_loss += loss;
        let seed = grad_logits.scaled(inv_b);

        let t0 = Instant::now();
        let grads = match method {
            BackwardMethod::Bp => net.backward_bp(&tape, &seed),
            BackwardMethod::Bppsa { opts, repr } => net.backward_bppsa(&tape, &seed, repr, opts),
            BackwardMethod::BppsaFused { opts }
            | BackwardMethod::BppsaFusedPlanned { opts }
            | BackwardMethod::BppsaPooled { opts } => {
                net.backward_bppsa(&tape, &seed, JacobianRepr::Sparse, opts)
            }
            BackwardMethod::BppsaServed => {
                net.backward_bppsa(&tape, &seed, JacobianRepr::Sparse, BppsaOptions::serial())
            }
        };
        backward_s += t0.elapsed().as_secs_f64();

        for (acc, g) in param_grads.iter_mut().zip(&grads.param_grads) {
            for (a, &v) in acc.iter_mut().zip(g) {
                *a += v;
            }
        }
    }
    ((total_loss * inv_b).to_f64(), param_grads, backward_s)
}

/// Trains a network classifier on synthetic CIFAR with one optimizer per
/// layer, recording losses and wall-clock per iteration.
#[allow(clippy::too_many_arguments)]
pub fn train_network_classifier<S: Scalar>(
    net: &mut Network<S>,
    data: &SyntheticCifar<S>,
    optimizers: &mut [Box<dyn Optimizer<S>>],
    method: BackwardMethod,
    batch_size: usize,
    epochs: usize,
    max_iterations: Option<usize>,
) -> TrainLog {
    assert_eq!(
        optimizers.len(),
        net.num_layers(),
        "one optimizer per layer required"
    );
    let mut log = TrainLog::default();
    let start = Instant::now();
    let mut iteration = 0usize;
    'outer: for _epoch in 0..epochs {
        for range in data.batches(batch_size).collect::<Vec<_>>() {
            let batch: Vec<(&bppsa_tensor::Tensor<S>, usize)> = range
                .clone()
                .map(|i| {
                    let s = data.sample(i);
                    (&s.image, s.label)
                })
                .collect();
            let (loss, grads, backward_s) = network_batch_step(net, &batch, method);
            for ((op, opt), g) in net
                .ops_mut()
                .iter_mut()
                .zip(optimizers.iter_mut())
                .zip(&grads)
            {
                if op.param_len() > 0 {
                    let mut params = op.params();
                    opt.step(&mut params, g);
                    op.set_params(&params);
                }
            }
            log.records.push(IterationRecord {
                iteration,
                loss,
                wall_s: start.elapsed().as_secs_f64(),
                backward_s,
            });
            iteration += 1;
            if let Some(max) = max_iterations {
                if iteration >= max {
                    break 'outer;
                }
            }
        }
    }
    log
}

/// Classification accuracy of a network over a dataset.
pub fn evaluate_network<S: Scalar>(net: &Network<S>, data: &SyntheticCifar<S>) -> f64 {
    let mut correct = 0usize;
    for i in 0..data.len() {
        let s = data.sample(i);
        let tape = net.forward(&s.image);
        if tape.output().to_vector().argmax() == Some(s.label) {
            correct += 1;
        }
    }
    correct as f64 / data.len() as f64
}

/// Runs one RNN mini-batch step. Returns `(mean loss, summed grads,
/// backward seconds)`; seeds are pre-scaled by `1/B` so the sum is the
/// batch-mean gradient.
///
/// For [`BackwardMethod::BppsaFusedPlanned`] the plan/workspace state lives
/// only for this call; training loops should use
/// [`rnn_batch_step_cached`] so the plan amortizes across iterations.
pub fn rnn_batch_step<S: Scalar>(
    rnn: &VanillaRnn<S>,
    data: &BitstreamDataset<S>,
    indices: std::ops::Range<usize>,
    method: BackwardMethod,
) -> (f64, RnnGrads<S>, f64) {
    let mut state = FusedPlannedState::new();
    rnn_batch_step_cached(rnn, data, indices, method, &mut state)
}

/// [`rnn_batch_step`] with caller-owned [`FusedPlannedState`], so the
/// fused-planned backward re-plans (and re-builds its chain) only when the
/// mini-batch shape changes.
pub fn rnn_batch_step_cached<S: Scalar>(
    rnn: &VanillaRnn<S>,
    data: &BitstreamDataset<S>,
    indices: std::ops::Range<usize>,
    method: BackwardMethod,
    state: &mut FusedPlannedState<S>,
) -> (f64, RnnGrads<S>, f64) {
    assert!(!indices.is_empty(), "empty batch");
    let inv_b = S::ONE / S::from_usize(indices.len());
    if matches!(
        method,
        BackwardMethod::BppsaFused { .. }
            | BackwardMethod::BppsaFusedPlanned { .. }
            | BackwardMethod::BppsaPooled { .. }
            | BackwardMethod::BppsaServed
    ) {
        // One scan pass for the whole mini-batch: fused block-diagonal, or
        // per-sample chains fanned over pooled workspaces.
        let mut total_loss = S::ZERO;
        let mut prepared = Vec::with_capacity(indices.len());
        for i in indices {
            let sample = data.sample(i);
            let states = rnn.forward(&sample.bits);
            let (loss, seed, g_logits) = rnn.loss_and_seed(&states, sample.label);
            total_loss += loss;
            prepared.push((
                sample.bits.as_slice(),
                states,
                seed.scaled(inv_b),
                g_logits.scaled(inv_b),
            ));
        }
        let batch: Vec<crate::rnn::RnnBatchSample<'_, S>> = prepared
            .iter()
            .map(|(bits, states, seed, g)| (*bits, states, seed.clone(), g.clone()))
            .collect();
        let t0 = Instant::now();
        let grads = match method {
            BackwardMethod::BppsaFusedPlanned { opts } => {
                rnn.backward_bppsa_batched_planned(&batch, opts, state)
            }
            BackwardMethod::BppsaPooled { opts } => {
                rnn.backward_bppsa_pooled(&batch, opts, state.pooled_mut())
            }
            // The training loop owns its service (default config: no
            // shedding, no breaker), so a sticky refusal here is fatal —
            // but the typed error lets shared-service callers of the same
            // API decide differently.
            BackwardMethod::BppsaServed => rnn
                .backward_bppsa_served(&batch, state.served_mut())
                .unwrap_or_else(|e| panic!("served training backward: {e}")),
            BackwardMethod::BppsaFused { opts } => rnn.backward_bppsa_batched(&batch, opts),
            _ => unreachable!("guarded by the matches! above"),
        };
        let backward_s = t0.elapsed().as_secs_f64();
        return ((total_loss * inv_b).to_f64(), grads, backward_s);
    }
    let mut total_loss = S::ZERO;
    let mut accumulated: Option<RnnGrads<S>> = None;
    let mut backward_s = 0.0;

    for i in indices {
        let sample = data.sample(i);
        let states = rnn.forward(&sample.bits);
        let (loss, seed, g_logits) = rnn.loss_and_seed(&states, sample.label);
        total_loss += loss;
        let seed = seed.scaled(inv_b);
        let g_logits = g_logits.scaled(inv_b);

        let t0 = Instant::now();
        let grads = match method {
            BackwardMethod::Bp => rnn.backward_bptt(&sample.bits, &states, &seed, &g_logits),
            BackwardMethod::Bppsa { opts, .. } => {
                rnn.backward_bppsa(&sample.bits, &states, &seed, &g_logits, opts)
            }
            BackwardMethod::BppsaFused { .. }
            | BackwardMethod::BppsaFusedPlanned { .. }
            | BackwardMethod::BppsaPooled { .. }
            | BackwardMethod::BppsaServed => {
                unreachable!("handled above")
            }
        };
        backward_s += t0.elapsed().as_secs_f64();

        match &mut accumulated {
            None => accumulated = Some(grads),
            Some(acc) => acc.accumulate(&grads),
        }
    }
    (
        (total_loss * inv_b).to_f64(),
        accumulated.expect("nonempty batch"),
        backward_s,
    )
}

/// Trains the RNN on the bitstream task with a flat-parameter optimizer
/// (Adam in the paper), recording losses and wall-clock per iteration.
pub fn train_rnn<S: Scalar>(
    rnn: &mut VanillaRnn<S>,
    data: &BitstreamDataset<S>,
    optimizer: &mut dyn Optimizer<S>,
    method: BackwardMethod,
    batch_size: usize,
    epochs: usize,
    max_iterations: Option<usize>,
) -> TrainLog {
    let mut log = TrainLog::default();
    let start = Instant::now();
    let mut iteration = 0usize;
    // One chain/plan/workspace state for the whole run: the fused-planned
    // path performs its symbolic work once per mini-batch shape.
    let mut state = FusedPlannedState::new();
    'outer: for _epoch in 0..epochs {
        for range in data.batches(batch_size).collect::<Vec<_>>() {
            let (loss, grads, backward_s) =
                rnn_batch_step_cached(rnn, data, range, method, &mut state);
            let mut params = rnn.params();
            optimizer.step(&mut params, &grads.flat());
            rnn.set_params(&params);
            log.records.push(IterationRecord {
                iteration,
                loss,
                wall_s: start.elapsed().as_secs_f64(),
                backward_s,
            });
            iteration += 1;
            if let Some(max) = max_iterations {
                if iteration >= max {
                    break 'outer;
                }
            }
        }
    }
    log
}

/// Classification accuracy of the RNN over a dataset.
pub fn evaluate_rnn<S: Scalar>(rnn: &VanillaRnn<S>, data: &BitstreamDataset<S>) -> f64 {
    let mut correct = 0usize;
    for i in 0..data.len() {
        let s = data.sample(i);
        let states = rnn.forward(&s.bits);
        let logits = rnn.logits(states.last().expect("nonempty"));
        if logits.argmax() == Some(s.label) {
            correct += 1;
        }
    }
    correct as f64 / data.len() as f64
}

/// Runs one [`DiagonalSsm`] mini-batch step on the bitstream task.
/// Returns `(mean loss, summed grads, backward seconds)`; seeds are
/// pre-scaled by `1/B` so the sum is the batch-mean gradient.
///
/// Dispatch mirrors [`rnn_batch_step_cached`], with the SSM twist that
/// *every* path rides the planner's diagonal fast path:
///
/// * [`BackwardMethod::Bp`] → [`DiagonalSsm::backward_sequential`];
/// * [`BackwardMethod::Bppsa`] → per-sample [`DiagonalSsm::backward_bppsa`];
/// * [`BackwardMethod::BppsaFused`] / [`BackwardMethod::BppsaFusedPlanned`]
///   → [`DiagonalSsm::backward_bppsa_fused`] (a block-diagonal of
///   diagonals is a wider diagonal, so the fused chain plans elementwise
///   too; diagonal plans are cheap enough to rebuild per call, so both
///   variants share one implementation);
/// * [`BackwardMethod::BppsaPooled`] → [`DiagonalSsm::backward_bppsa_pooled`];
/// * [`BackwardMethod::BppsaServed`] → [`DiagonalSsm::backward_bppsa_served`]
///   (the loop owns its service, so a sticky refusal is fatal here).
pub fn ssm_batch_step<S: Scalar>(
    ssm: &DiagonalSsm<S>,
    data: &BitstreamDataset<S>,
    indices: std::ops::Range<usize>,
    method: BackwardMethod,
    state: &mut SsmTrainState<S>,
) -> (f64, SsmGrads<S>, f64) {
    assert!(!indices.is_empty(), "empty batch");
    let inv_b = S::ONE / S::from_usize(indices.len());
    if matches!(
        method,
        BackwardMethod::BppsaFused { .. }
            | BackwardMethod::BppsaFusedPlanned { .. }
            | BackwardMethod::BppsaPooled { .. }
            | BackwardMethod::BppsaServed
    ) {
        let mut total_loss = S::ZERO;
        let mut prepared = Vec::with_capacity(indices.len());
        for i in indices {
            let sample = data.sample(i);
            let states = ssm.forward(&sample.bits);
            let (loss, seed, g_logits) = ssm.loss_and_seed(&states, sample.label);
            total_loss += loss;
            prepared.push((
                sample.bits.as_slice(),
                states,
                seed.scaled(inv_b),
                g_logits.scaled(inv_b),
            ));
        }
        let batch: Vec<crate::ssm::SsmBatchSample<'_, S>> = prepared
            .iter()
            .map(|(xs, states, seed, g)| (*xs, states, seed.clone(), g.clone()))
            .collect();
        let t0 = Instant::now();
        let grads = match method {
            BackwardMethod::BppsaFused { opts } | BackwardMethod::BppsaFusedPlanned { opts } => {
                ssm.backward_bppsa_fused(&batch, opts)
            }
            BackwardMethod::BppsaPooled { opts } => {
                ssm.backward_bppsa_pooled(&batch, opts, state.pooled_mut())
            }
            BackwardMethod::BppsaServed => ssm
                .backward_bppsa_served(&batch, state.served_mut())
                .unwrap_or_else(|e| panic!("served SSM training backward: {e}")),
            _ => unreachable!("guarded by the matches! above"),
        };
        let backward_s = t0.elapsed().as_secs_f64();
        return ((total_loss * inv_b).to_f64(), grads, backward_s);
    }
    let mut total_loss = S::ZERO;
    let mut accumulated: Option<SsmGrads<S>> = None;
    let mut backward_s = 0.0;
    for i in indices {
        let sample = data.sample(i);
        let states = ssm.forward(&sample.bits);
        let (loss, seed, g_logits) = ssm.loss_and_seed(&states, sample.label);
        total_loss += loss;
        let seed = seed.scaled(inv_b);
        let g_logits = g_logits.scaled(inv_b);
        let t0 = Instant::now();
        let grads = match method {
            BackwardMethod::Bp => ssm.backward_sequential(&sample.bits, &states, &seed, &g_logits),
            BackwardMethod::Bppsa { opts, .. } => {
                ssm.backward_bppsa(&sample.bits, &states, &seed, &g_logits, opts)
            }
            _ => unreachable!("handled above"),
        };
        backward_s += t0.elapsed().as_secs_f64();
        match &mut accumulated {
            None => accumulated = Some(grads),
            Some(acc) => acc.accumulate(&grads),
        }
    }
    (
        (total_loss * inv_b).to_f64(),
        accumulated.expect("nonempty batch"),
        backward_s,
    )
}

/// Trains the SSM on the bitstream task with a flat-parameter optimizer,
/// recording losses and wall-clock per iteration (the
/// [`train_rnn`]-shaped loop for the diagonal-recurrence workload).
pub fn train_ssm<S: Scalar>(
    ssm: &mut DiagonalSsm<S>,
    data: &BitstreamDataset<S>,
    optimizer: &mut dyn Optimizer<S>,
    method: BackwardMethod,
    batch_size: usize,
    epochs: usize,
    max_iterations: Option<usize>,
) -> TrainLog {
    let mut log = TrainLog::default();
    let start = Instant::now();
    let mut iteration = 0usize;
    let mut state = SsmTrainState::new();
    'outer: for _epoch in 0..epochs {
        for range in data.batches(batch_size).collect::<Vec<_>>() {
            let (loss, grads, backward_s) = ssm_batch_step(ssm, data, range, method, &mut state);
            let mut params = ssm.params();
            optimizer.step(&mut params, &grads.flat());
            ssm.set_params(&params);
            log.records.push(IterationRecord {
                iteration,
                loss,
                wall_s: start.elapsed().as_secs_f64(),
                backward_s,
            });
            iteration += 1;
            if let Some(max) = max_iterations {
                if iteration >= max {
                    break 'outer;
                }
            }
        }
    }
    log
}

/// Seeds an optimizer per network layer (helper for
/// [`train_network_classifier`]).
pub fn sgd_per_layer<S: Scalar>(
    net: &Network<S>,
    lr: f64,
    momentum: f64,
) -> Vec<Box<dyn Optimizer<S>>> {
    (0..net.num_layers())
        .map(|_| Box::new(crate::optim::Sgd::new(lr, momentum)) as Box<dyn Optimizer<S>>)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lenet::lenet_tiny;
    use crate::optim::Adam;
    use bppsa_tensor::init::seeded_rng;

    #[test]
    fn tiny_lenet_loss_decreases_with_bp() {
        let mut net = lenet_tiny::<f32>(&mut seeded_rng(0));
        let data = SyntheticCifar::<f32>::generate(64, 8, 0.1, 1);
        let mut opts = sgd_per_layer(&net, 0.03, 0.9);
        let log =
            train_network_classifier(&mut net, &data, &mut opts, BackwardMethod::Bp, 16, 25, None);
        let first = log.records[0].loss;
        let last = log.final_loss();
        assert!(
            last < first * 0.8,
            "loss did not decrease: {first} → {last}"
        );
    }

    #[test]
    fn bp_and_bppsa_training_losses_overlap() {
        // Figure 7 in miniature: identical seeds → overlapping loss curves.
        let data = SyntheticCifar::<f32>::generate(32, 8, 0.2, 2);
        let run = |method: BackwardMethod| {
            let mut net = lenet_tiny::<f32>(&mut seeded_rng(3));
            let mut opts = sgd_per_layer(&net, 0.02, 0.9);
            train_network_classifier(&mut net, &data, &mut opts, method, 8, 3, None)
        };
        let bp = run(BackwardMethod::Bp);
        let scan = run(BackwardMethod::Bppsa {
            opts: BppsaOptions::serial(),
            repr: JacobianRepr::Sparse,
        });
        let gap = bp.max_loss_gap(&scan);
        assert!(gap < 1e-3, "loss curves diverged by {gap}");
    }

    #[test]
    fn rnn_training_loss_decreases() {
        let data = BitstreamDataset::<f32>::generate(64, 24, 4);
        let mut rnn = VanillaRnn::<f32>::new(1, 12, 10, &mut seeded_rng(5));
        let mut opt = Adam::new(0.01);
        let log = train_rnn(&mut rnn, &data, &mut opt, BackwardMethod::Bp, 16, 12, None);
        assert!(
            log.final_loss() < log.records[0].loss,
            "{} → {}",
            log.records[0].loss,
            log.final_loss()
        );
    }

    #[test]
    fn rnn_bp_and_bppsa_produce_same_training_trajectory() {
        let data = BitstreamDataset::<f32>::generate(24, 16, 6);
        let run = |method: BackwardMethod| {
            let mut rnn = VanillaRnn::<f32>::new(1, 8, 10, &mut seeded_rng(7));
            let mut opt = Adam::new(0.003);
            train_rnn(&mut rnn, &data, &mut opt, method, 8, 4, None)
        };
        let bp = run(BackwardMethod::Bp);
        let scan = run(BackwardMethod::bppsa_threaded(2));
        assert!(bp.max_loss_gap(&scan) < 1e-3);
    }

    #[test]
    fn fused_batched_scan_training_matches_bptt() {
        // One block-diagonal scan per mini-batch reproduces the per-sample
        // trajectory exactly.
        let data = BitstreamDataset::<f32>::generate(24, 12, 61);
        let run = |method: BackwardMethod| {
            let mut rnn = VanillaRnn::<f32>::new(1, 6, 10, &mut seeded_rng(62));
            let mut opt = Adam::new(0.005);
            train_rnn(&mut rnn, &data, &mut opt, method, 6, 4, None)
        };
        let bptt = run(BackwardMethod::Bp);
        let fused = run(BackwardMethod::bppsa_fused(BppsaOptions::serial()));
        assert!(bptt.max_loss_gap(&fused) < 1e-3);
    }

    #[test]
    fn fused_planned_training_matches_bptt_and_plans_once() {
        // The workspace-backed steady-state path (Fig. 9 shape): identical
        // trajectory to BPTT, with the symbolic phase hoisted out of the
        // whole run.
        let data = BitstreamDataset::<f32>::generate(24, 12, 77);
        let run = |method: BackwardMethod| {
            let mut rnn = VanillaRnn::<f32>::new(1, 6, 10, &mut seeded_rng(78));
            let mut opt = Adam::new(0.005);
            train_rnn(&mut rnn, &data, &mut opt, method, 6, 4, None)
        };
        let bptt = run(BackwardMethod::Bp);
        let planned = run(BackwardMethod::bppsa_fused_planned(BppsaOptions::serial()));
        assert!(bptt.max_loss_gap(&planned) < 1e-3);

        // And the plan really is built once across a steady-shape run.
        let rnn = VanillaRnn::<f32>::new(1, 6, 10, &mut seeded_rng(79));
        let mut state = FusedPlannedState::<f32>::new();
        for _ in 0..3 {
            let _ = rnn_batch_step_cached(
                &rnn,
                &data,
                0..6,
                BackwardMethod::bppsa_fused_planned(BppsaOptions::serial()),
                &mut state,
            );
        }
        assert_eq!(state.plans_built(), 1);
    }

    #[test]
    fn segmented_training_matches_bptt_on_deep_chains() {
        // A longer unroll hands the segment stitcher real schedule blocks
        // to split; the trajectory must still track BPTT exactly as
        // closely as the unsegmented planned path does.
        let data = BitstreamDataset::<f32>::generate(12, 48, 83);
        let run = |method: BackwardMethod| {
            let mut rnn = VanillaRnn::<f32>::new(1, 6, 10, &mut seeded_rng(84));
            let mut opt = Adam::new(0.005);
            train_rnn(&mut rnn, &data, &mut opt, method, 6, 3, None)
        };
        let bptt = run(BackwardMethod::Bp);
        let segmented = run(BackwardMethod::bppsa_segmented(2));
        assert!(bptt.max_loss_gap(&segmented) < 1e-3);

        // The deep-chain route really requests a segmented pooled plan.
        let BackwardMethod::BppsaFusedPlanned { opts } = BackwardMethod::bppsa_segmented(4) else {
            unreachable!()
        };
        assert_eq!(opts.segments, 4);
    }

    #[test]
    fn pooled_batched_training_matches_bptt_and_plans_once_with_remainder() {
        // 20 samples at batch 6 → per-epoch batches of 6, 6, 6, 2. The
        // pooled path's per-sample plan is batch-size independent, so the
        // remainder batch reuses the full batch's plan: one plan total.
        let data = BitstreamDataset::<f32>::generate(20, 12, 91);
        let run = |method: BackwardMethod| {
            let mut rnn = VanillaRnn::<f32>::new(1, 6, 10, &mut seeded_rng(92));
            let mut opt = Adam::new(0.005);
            train_rnn(&mut rnn, &data, &mut opt, method, 6, 3, None)
        };
        let bptt = run(BackwardMethod::Bp);
        let pooled = run(BackwardMethod::bppsa_pooled_batched(BppsaOptions::serial()));
        assert!(bptt.max_loss_gap(&pooled) < 1e-3);

        let rnn = VanillaRnn::<f32>::new(1, 6, 10, &mut seeded_rng(93));
        let mut state = FusedPlannedState::<f32>::new();
        let method = BackwardMethod::bppsa_pooled_batched(BppsaOptions::serial());
        for _epoch in 0..3 {
            for range in data.batches(6).collect::<Vec<_>>() {
                let _ = rnn_batch_step_cached(&rnn, &data, range, method, &mut state);
            }
        }
        assert_eq!(state.pooled_plans_built(), 1);
    }

    #[test]
    fn served_training_matches_bptt_and_builds_one_lane_with_remainder() {
        // The pooled strategy routed through the bppsa-serve front door:
        // identical trajectory (the optimizer consumes the batch sum, and
        // the service executes the same compiled per-sample plan), and the
        // whole run — 20 samples at batch 6 → per-epoch batches of
        // 6, 6, 6, 2 — builds exactly one service lane, because the
        // per-sample shape is batch-size independent.
        let data = BitstreamDataset::<f32>::generate(20, 12, 95);
        let run = |method: BackwardMethod| {
            let mut rnn = VanillaRnn::<f32>::new(1, 6, 10, &mut seeded_rng(96));
            let mut opt = Adam::new(0.005);
            train_rnn(&mut rnn, &data, &mut opt, method, 6, 3, None)
        };
        let bptt = run(BackwardMethod::Bp);
        let served = run(BackwardMethod::bppsa_served());
        assert!(bptt.max_loss_gap(&served) < 1e-3);

        let rnn = VanillaRnn::<f32>::new(1, 6, 10, &mut seeded_rng(97));
        let mut state = FusedPlannedState::<f32>::new();
        for _epoch in 0..3 {
            for range in data.batches(6).collect::<Vec<_>>() {
                let _ = rnn_batch_step_cached(
                    &rnn,
                    &data,
                    range,
                    BackwardMethod::bppsa_served(),
                    &mut state,
                );
            }
        }
        assert_eq!(state.served_lanes_built(), 1);
    }

    #[test]
    fn served_and_pooled_batch_steps_agree() {
        // Same per-sample plans, same summation order (sequential consume
        // vs locked accumulate — both in index order on this data): the
        // served step reproduces the pooled step's gradients to fp noise.
        let data = BitstreamDataset::<f32>::generate(12, 10, 98);
        let rnn = VanillaRnn::<f32>::new(1, 6, 10, &mut seeded_rng(99));
        let mut pooled_state = FusedPlannedState::<f32>::new();
        let mut served_state = FusedPlannedState::<f32>::new();
        let (pooled_loss, pooled_grads, _) = rnn_batch_step_cached(
            &rnn,
            &data,
            0..6,
            BackwardMethod::bppsa_pooled_batched(BppsaOptions::serial()),
            &mut pooled_state,
        );
        let (served_loss, served_grads, _) = rnn_batch_step_cached(
            &rnn,
            &data,
            0..6,
            BackwardMethod::bppsa_served(),
            &mut served_state,
        );
        assert_eq!(pooled_loss, served_loss);
        assert!(pooled_grads.max_abs_diff(&served_grads) < 1e-5);
    }

    #[test]
    fn ssm_training_loss_decreases() {
        let data = BitstreamDataset::<f32>::generate(64, 24, 105);
        let mut ssm = DiagonalSsm::<f32>::new(12, 10, &mut seeded_rng(106));
        let mut opt = Adam::new(0.01);
        let log = train_ssm(&mut ssm, &data, &mut opt, BackwardMethod::Bp, 16, 12, None);
        assert!(
            log.final_loss() < log.records[0].loss,
            "{} → {}",
            log.records[0].loss,
            log.final_loss()
        );
    }

    #[test]
    fn ssm_training_methods_share_the_trajectory() {
        // The diagonal-recurrence workload through every backward route:
        // identical loss trajectories (the per-sample chains and the wide
        // fused chain all compute the same scan).
        let data = BitstreamDataset::<f32>::generate(20, 24, 101);
        let run = |method: BackwardMethod| {
            let mut ssm = DiagonalSsm::<f32>::new(8, 10, &mut seeded_rng(102));
            let mut opt = Adam::new(0.01);
            train_ssm(&mut ssm, &data, &mut opt, method, 6, 3, None)
        };
        let sequential = run(BackwardMethod::Bp);
        for method in [
            BackwardMethod::bppsa_threaded(2),
            BackwardMethod::bppsa_fused(BppsaOptions::serial()),
            BackwardMethod::bppsa_pooled_batched(BppsaOptions::serial()),
            BackwardMethod::bppsa_served(),
        ] {
            let gap = sequential.max_loss_gap(&run(method));
            assert!(gap < 1e-3, "{method:?} diverged by {gap}");
        }
    }

    #[test]
    fn ssm_batched_runs_stay_on_one_diagonal_plan_and_lane() {
        // 20 samples at batch 6 → per-epoch batches of 6, 6, 6, 2. The
        // per-sample chain shape is batch-size independent, so the pooled
        // path plans once and the served path builds one lane — and that
        // single pooled plan compiled the diagonal fast path.
        let data = BitstreamDataset::<f32>::generate(20, 24, 103);
        let ssm = DiagonalSsm::<f32>::new(8, 10, &mut seeded_rng(104));
        for method in [
            BackwardMethod::bppsa_pooled_batched(BppsaOptions::serial()),
            BackwardMethod::bppsa_served(),
        ] {
            let mut state = SsmTrainState::<f32>::new();
            for _epoch in 0..3 {
                for range in data.batches(6).collect::<Vec<_>>() {
                    let _ = ssm_batch_step(&ssm, &data, range, method, &mut state);
                }
            }
            match method {
                BackwardMethod::BppsaPooled { .. } => {
                    assert_eq!(state.pooled_plans_built(), 1);
                    assert!(state
                        .pooled()
                        .plan()
                        .expect("planned")
                        .diagonal_kernel()
                        .is_some());
                }
                _ => assert_eq!(state.served_lanes_built(), 1),
            }
        }
    }

    #[test]
    fn fused_planned_remainder_batches_plan_each_shape_once() {
        // 20 samples at batch 6 → per-epoch batches of 6, 6, 6, 2: the
        // full and remainder shapes must each plan once, with no
        // re-planning across epochs.
        let data = BitstreamDataset::<f32>::generate(20, 10, 81);
        let rnn = VanillaRnn::<f32>::new(1, 5, 10, &mut seeded_rng(82));
        let mut state = FusedPlannedState::<f32>::new();
        let method = BackwardMethod::bppsa_fused_planned(BppsaOptions::serial());
        for _epoch in 0..3 {
            for range in data.batches(6).collect::<Vec<_>>() {
                let _ = rnn_batch_step_cached(&rnn, &data, range, method, &mut state);
            }
        }
        assert_eq!(state.plans_built(), 2);
        assert_eq!(state.cached_plans(), 2);
    }

    #[test]
    fn max_iterations_caps_the_run() {
        let data = BitstreamDataset::<f32>::generate(64, 8, 8);
        let mut rnn = VanillaRnn::<f32>::new(1, 6, 10, &mut seeded_rng(9));
        let mut opt = Adam::new(0.01);
        let log = train_rnn(
            &mut rnn,
            &data,
            &mut opt,
            BackwardMethod::Bp,
            8,
            100,
            Some(5),
        );
        assert_eq!(log.records.len(), 5);
    }

    #[test]
    fn evaluate_rnn_learns_above_chance() {
        // Short training on an easy (long-sequence) task beats 10% chance.
        let data = BitstreamDataset::<f32>::generate(60, 64, 10);
        let mut rnn = VanillaRnn::<f32>::new(1, 16, 10, &mut seeded_rng(11));
        let mut opt = Adam::new(0.01);
        let _ = train_rnn(&mut rnn, &data, &mut opt, BackwardMethod::Bp, 12, 30, None);
        let acc = evaluate_rnn(&rnn, &data);
        assert!(acc > 0.2, "accuracy {acc} not above chance");
    }
}
