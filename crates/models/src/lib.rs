//! # bppsa-models — models, datasets, optimizers, pruning, training
//!
//! Everything the BPPSA evaluation (§4–5) trains:
//!
//! * [`VanillaRnn`] — the Elman RNN of Equation 9 with both BPTT and BPPSA
//!   backward paths (Figures 9/10's workload);
//! * [`DiagonalSsm`] — a diagonal linear-recurrence (SSM) toy whose scan
//!   chain the planner compiles into the elementwise diagonal fast path;
//! * [`lenet5`] — LeNet-5 for the Figure 7 convergence experiment;
//! * [`vgg11`] / [`vgg11_convs`] — VGG-11 for Table 1 and the §4.2 pruned
//!   retraining micro-benchmark (Figure 11);
//! * [`BitstreamDataset`] — the Equation 8 synthetic task;
//! * [`SyntheticCifar`] — the documented CIFAR-10 substitution;
//! * [`Sgd`] / [`Adam`] — the paper's optimizers;
//! * [`prune`] — See et al.-style magnitude pruning (97% in §4.2);
//! * [`train`] — training loops with switchable backward methods and
//!   per-iteration wall-clock/loss logging.
//!
//! ```
//! use bppsa_models::{BitstreamDataset, VanillaRnn};
//! use bppsa_core::BppsaOptions;
//! use bppsa_tensor::init::seeded_rng;
//!
//! let data = BitstreamDataset::<f64>::generate(4, 32, 0);
//! let rnn = VanillaRnn::<f64>::new(1, 20, 10, &mut seeded_rng(1));
//! let s = data.sample(0);
//! let states = rnn.forward(&s.bits);
//! let (_, seed, g_logits) = rnn.loss_and_seed(&states, s.label);
//! let bptt = rnn.backward_bptt(&s.bits, &states, &seed, &g_logits);
//! let scan = rnn.backward_bppsa(&s.bits, &states, &seed, &g_logits, BppsaOptions::serial());
//! assert!(bptt.max_abs_diff(&scan) < 1e-9);
//! ```

#![warn(missing_docs)]

mod datasets;
mod gru;
mod lenet;
mod optim;
mod pooled;
mod rnn;
mod served;
mod ssm;
mod vgg;

pub mod prune;
pub mod train;

pub use datasets::{BitstreamDataset, BitstreamSample, ImageSample, SyntheticCifar};
pub use gru::{Gru, GruStep};
pub use lenet::{lenet5, lenet_tiny};
pub use optim::{Adam, Optimizer, Sgd};
pub use pooled::PooledChainSet;
pub use rnn::{FusedPlannedState, RnnBatchSample, RnnGrads, RnnStates, VanillaRnn};
pub use served::{ServedChainSet, ServedSubmitError};
pub use ssm::{DiagonalSsm, SsmBatchSample, SsmGrads, SsmStates, SsmTrainState};
pub use vgg::{vgg11, vgg11_conv_geometry, vgg11_convs, VGG11_WIDTHS};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<VanillaRnn<f32>>();
        assert_send::<BitstreamDataset<f32>>();
        assert_send::<SyntheticCifar<f32>>();
    }
}
