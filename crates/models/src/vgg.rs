//! VGG-11 (Simonyan & Zisserman 2015) adapted to 32×32 CIFAR-style inputs —
//! the network of the paper's Table 1, Figure 4, and the pruned retraining
//! micro-benchmark (§4.2, Figure 11).

use bppsa_core::Network;
use bppsa_ops::{Conv2d, Conv2dConfig, Flatten, Linear, MaxPool2d, Relu};
use bppsa_tensor::Scalar;
use rand::rngs::StdRng;

/// The 8 convolution widths of VGG-11 and where max-pools fall (after convs
/// 1, 2, 4, 6, 8) — "conv-64, pool, conv-128, pool, conv-256 ×2, pool,
/// conv-512 ×2, pool, conv-512 ×2, pool".
pub const VGG11_WIDTHS: [usize; 8] = [64, 128, 256, 256, 512, 512, 512, 512];

const POOL_AFTER: [bool; 8] = [true, true, false, true, false, true, false, true];

/// Geometry of one VGG-11 convolution on `scale`-sized inputs: returns
/// `(in_channels, out_channels, input_hw)` per conv layer.
pub fn vgg11_conv_geometry(scale: usize) -> Vec<(usize, usize, (usize, usize))> {
    let mut geoms = Vec::with_capacity(8);
    let mut channels = 3;
    let mut hw = scale;
    for (i, &width) in VGG11_WIDTHS.iter().enumerate() {
        geoms.push((channels, width, (hw, hw)));
        channels = width;
        if POOL_AFTER[i] {
            hw /= 2;
        }
    }
    geoms
}

/// Builds the full VGG-11 feature extractor + linear classifier for
/// `(3, scale, scale)` inputs (`scale` must be divisible by 32; the paper
/// uses 32).
///
/// # Panics
///
/// Panics if `scale` is not a positive multiple of 32.
pub fn vgg11<S: Scalar>(scale: usize, rng: &mut StdRng) -> Network<S> {
    assert!(
        scale >= 32 && scale.is_multiple_of(32),
        "vgg11: scale must be a positive multiple of 32 (got {scale})"
    );
    let mut net = Network::new();
    let mut hw = scale;
    let mut channels = 3usize;
    for (i, &width) in VGG11_WIDTHS.iter().enumerate() {
        net.push(Box::new(Conv2d::new(
            Conv2dConfig::vgg_style(channels, width, (hw, hw)),
            rng,
        )));
        net.push(Box::new(Relu::new(vec![width, hw, hw])));
        channels = width;
        if POOL_AFTER[i] {
            net.push(Box::new(MaxPool2d::new(width, (2, 2), (2, 2), (hw, hw))));
            hw /= 2;
        }
    }
    net.push(Box::new(Flatten::new(vec![512, hw, hw])));
    net.push(Box::new(Linear::new(512 * hw * hw, 10, rng)));
    net
}

/// Builds just the convolution operators of VGG-11 (what Figures 4 and 11
/// scan over), at an arbitrary input scale so experiments can subsample.
///
/// # Panics
///
/// Panics if `scale < 32` is not divisible by 32 — relaxed here to any
/// multiple of 32 **or** 16/8 for scaled-down experiments (must keep all
/// five pools valid, i.e. divisible by 32… for smaller scales the last
/// pools are dropped).
pub fn vgg11_convs<S: Scalar>(scale: usize, rng: &mut StdRng) -> Vec<Conv2d<S>> {
    assert!(
        scale.is_power_of_two() && scale >= 8,
        "scale must be a power of two ≥ 8"
    );
    let mut convs = Vec::with_capacity(8);
    let mut channels = 3usize;
    let mut hw = scale;
    for (i, &width) in VGG11_WIDTHS.iter().enumerate() {
        convs.push(Conv2d::new(
            Conv2dConfig::vgg_style(channels, width, (hw, hw)),
            rng,
        ));
        channels = width;
        if POOL_AFTER[i] && hw >= 2 {
            hw /= 2;
        }
    }
    convs
}

#[cfg(test)]
mod tests {
    use super::*;
    use bppsa_ops::Operator;
    use bppsa_tensor::init::seeded_rng;

    #[test]
    fn geometry_matches_vgg11_on_cifar() {
        let g = vgg11_conv_geometry(32);
        assert_eq!(g.len(), 8);
        assert_eq!(g[0], (3, 64, (32, 32)));
        assert_eq!(g[1], (64, 128, (16, 16)));
        assert_eq!(g[3], (256, 256, (8, 8)));
        assert_eq!(g[7], (512, 512, (2, 2)));
    }

    #[test]
    fn full_network_output_is_ten_classes() {
        // Building the network is cheap; running it is not (tested in the
        // bench harness instead).
        let net = vgg11::<f32>(32, &mut seeded_rng(0));
        // 8 convs + 8 relus + 5 pools + flatten + linear.
        assert_eq!(net.num_layers(), 8 + 8 + 5 + 2);
        assert_eq!(net.ops().last().unwrap().output_shape(), &[10]);
    }

    #[test]
    fn conv_stack_chains_shapewise() {
        let convs = vgg11_convs::<f32>(32, &mut seeded_rng(1));
        assert_eq!(convs.len(), 8);
        assert_eq!(convs[0].input_shape(), &[3, 32, 32]);
        assert_eq!(convs[7].output_shape(), &[512, 2, 2]);
    }

    #[test]
    fn table1_sparsity_on_first_conv() {
        let convs = vgg11_convs::<f32>(32, &mut seeded_rng(2));
        assert!((convs[0].guaranteed_sparsity() - 0.99157).abs() < 5e-5);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn bad_scale_rejected() {
        let _ = vgg11::<f32>(20, &mut seeded_rng(0));
    }
}
