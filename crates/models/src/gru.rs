//! A GRU (Cho et al. 2014) with a BPPSA backward path — an extension beyond
//! the paper's vanilla RNN showing the scan formulation is architecture-
//! agnostic: *any* recurrence with computable transposed Jacobians
//! `(∂h_t/∂h_{t−1})ᵀ` scans the same way.
//!
//! Cell (scalar input `x_t`, hidden `h`):
//!
//! ```text
//! z_t = σ(W_z x_t + U_z h_{t−1} + b_z)          (update gate)
//! r_t = σ(W_r x_t + U_r h_{t−1} + b_r)          (reset gate)
//! n_t = tanh(W_n x_t + b_nx + r_t ∘ (U_n h_{t−1} + b_nh))
//! h_t = (1 − z_t) ∘ n_t + z_t ∘ h_{t−1}
//! ```
//!
//! The hidden-to-hidden Jacobian (needed by the chain) is
//!
//! ```text
//! ∂h_t/∂h_{t−1} = diag(z)
//!   + diag(h_{t−1} − n) · diag(z(1−z)) · U_z
//!   + diag(1−z) · diag(1−n²) · [diag(r) · U_n + diag(U_n h_{t−1} + b_nh) · diag(r(1−r)) · U_r]
//! ```
//!
//! validated against finite differences, BPTT, and the scan in the tests.

use crate::pooled::PooledChainSet;
use bppsa_core::{bppsa_backward, BppsaOptions, JacobianChain, PlannedBackwardCache, ScanElement};
use bppsa_ops::SoftmaxCrossEntropy;
use bppsa_tensor::{init, Matrix, Scalar, Vector};
use rand::rngs::StdRng;

/// Per-step cached values needed by the backward passes.
#[derive(Debug, Clone)]
pub struct GruStep<S> {
    /// Update gate `z_t`.
    pub z: Vector<S>,
    /// Reset gate `r_t`.
    pub r: Vector<S>,
    /// Candidate `n_t`.
    pub n: Vector<S>,
    /// Pre-reset candidate recurrence `U_n h_{t−1} + b_nh`.
    pub un_h: Vector<S>,
    /// The resulting hidden state `h_t`.
    pub h: Vector<S>,
}

/// A single-layer GRU over scalar sequences with a linear softmax readout.
///
/// # Examples
///
/// ```
/// use bppsa_models::Gru;
/// use bppsa_tensor::init::seeded_rng;
///
/// let gru = Gru::<f64>::new(8, 10, &mut seeded_rng(0));
/// let steps = gru.forward(&[1.0, 0.0, 1.0]);
/// assert_eq!(steps.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Gru<S> {
    wz: Vector<S>,
    uz: Matrix<S>,
    bz: Vector<S>,
    wr: Vector<S>,
    ur: Matrix<S>,
    br: Vector<S>,
    wn: Vector<S>,
    un: Matrix<S>,
    bnx: Vector<S>,
    bnh: Vector<S>,
    wout: Matrix<S>,
    bout: Vector<S>,
}

fn sigmoid<S: Scalar>(x: S) -> S {
    if x >= S::ZERO {
        S::ONE / (S::ONE + (-x).exp())
    } else {
        let e = x.exp();
        e / (S::ONE + e)
    }
}

impl<S: Scalar> Gru<S> {
    /// Creates a GRU with Kaiming-uniform recurrent weights.
    pub fn new(hidden: usize, classes: usize, rng: &mut StdRng) -> Self {
        let b = init::kaiming_bound(hidden);
        Self {
            wz: init::uniform_vector(rng, hidden, b),
            uz: init::kaiming_matrix(rng, hidden, hidden),
            bz: Vector::zeros(hidden),
            wr: init::uniform_vector(rng, hidden, b),
            ur: init::kaiming_matrix(rng, hidden, hidden),
            br: Vector::zeros(hidden),
            wn: init::uniform_vector(rng, hidden, b),
            un: init::kaiming_matrix(rng, hidden, hidden),
            bnx: Vector::zeros(hidden),
            bnh: Vector::zeros(hidden),
            wout: init::kaiming_matrix(rng, classes, hidden),
            bout: Vector::zeros(classes),
        }
    }

    /// Hidden size.
    pub fn hidden_size(&self) -> usize {
        self.uz.rows()
    }

    /// One cell step from `h_prev` with scalar input `x`.
    pub fn step(&self, x: S, h_prev: &Vector<S>) -> GruStep<S> {
        let h_dim = self.hidden_size();
        let zs = {
            let mut v = self.uz.matvec(h_prev);
            for i in 0..h_dim {
                v[i] = sigmoid(v[i] + self.wz[i] * x + self.bz[i]);
            }
            v
        };
        let rs = {
            let mut v = self.ur.matvec(h_prev);
            for i in 0..h_dim {
                v[i] = sigmoid(v[i] + self.wr[i] * x + self.br[i]);
            }
            v
        };
        let un_h = {
            let mut v = self.un.matvec(h_prev);
            for i in 0..h_dim {
                v[i] += self.bnh[i];
            }
            v
        };
        let ns = Vector::from_fn(h_dim, |i| {
            (self.wn[i] * x + self.bnx[i] + rs[i] * un_h[i]).tanh()
        });
        let h = Vector::from_fn(h_dim, |i| (S::ONE - zs[i]) * ns[i] + zs[i] * h_prev[i]);
        GruStep {
            z: zs,
            r: rs,
            n: ns,
            un_h,
            h,
        }
    }

    /// Runs the recurrence over a scalar sequence (with `h_{−1} = 0`).
    ///
    /// # Panics
    ///
    /// Panics if the input is empty.
    pub fn forward(&self, xs: &[S]) -> Vec<GruStep<S>> {
        assert!(!xs.is_empty(), "gru: empty sequence");
        let mut steps = Vec::with_capacity(xs.len());
        let mut h = Vector::zeros(self.hidden_size());
        for &x in xs {
            let s = self.step(x, &h);
            h = s.h.clone();
            steps.push(s);
        }
        steps
    }

    /// Readout logits from the last hidden state.
    pub fn logits(&self, last_h: &Vector<S>) -> Vector<S> {
        self.wout.matvec(last_h).add(&self.bout)
    }

    /// Loss and the scan seed `∇h_{T−1}` for a class label.
    pub fn loss_and_seed(&self, steps: &[GruStep<S>], label: usize) -> (S, Vector<S>) {
        let last = &steps.last().expect("nonempty").h;
        let (loss, g_logits) = SoftmaxCrossEntropy::loss_and_grad(&self.logits(last), label);
        (loss, self.wout.matvec_transposed(&g_logits))
    }

    /// The transposed hidden-to-hidden Jacobian `(∂h_t/∂h_{t−1})ᵀ` at one
    /// recorded step.
    pub fn hidden_jacobian_t(&self, step: &GruStep<S>, h_prev: &Vector<S>) -> Matrix<S> {
        let h_dim = self.hidden_size();
        let mut out = Matrix::zeros(h_dim, h_dim);
        self.fill_hidden_jacobian_values(step, h_prev, out.as_mut_slice());
        out
    }

    /// Writes [`Gru::hidden_jacobian_t`]'s values row-major into a
    /// caller-owned slice — the allocation-free refresh used when a pooled
    /// chain's element values are rewritten in place between iterations.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != hidden²`.
    pub fn fill_hidden_jacobian_values(
        &self,
        step: &GruStep<S>,
        h_prev: &Vector<S>,
        out: &mut [S],
    ) {
        let h_dim = self.hidden_size();
        assert_eq!(out.len(), h_dim * h_dim, "fill_hidden_jacobian_values");
        // J[j][i] = ∂h_t[j]/∂h_prev[i]; we emit Jᵀ[i][j] directly.
        for j in 0..h_dim {
            let dz = (h_prev[j] - step.n[j]) * step.z[j] * (S::ONE - step.z[j]);
            let dn_scale = (S::ONE - step.z[j]) * (S::ONE - step.n[j] * step.n[j]);
            let dr = step.un_h[j] * step.r[j] * (S::ONE - step.r[j]);
            for i in 0..h_dim {
                let mut v = dz * self.uz.get(j, i)
                    + dn_scale * (step.r[j] * self.un.get(j, i) + dr * self.ur.get(j, i));
                if i == j {
                    v += step.z[j];
                }
                out[i * h_dim + j] = v;
            }
        }
    }

    /// Per-sample `∇h_t` sequences for a whole mini-batch via
    /// [`BatchedBackward`](bppsa_core::BatchedBackward): each sample's
    /// chain executes the same compiled plan concurrently on its own pooled
    /// workspace, with chain values refreshed in place between iterations.
    /// Gradient-equivalent to calling [`Gru::hidden_grads_bppsa`] per
    /// sample; the batch fan-out (not per-level splitting) supplies the
    /// parallelism.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or sequences have unequal lengths.
    pub fn hidden_grads_bppsa_pooled(
        &self,
        batch: &[(&[GruStep<S>], Vector<S>)],
        opts: BppsaOptions,
        state: &mut PooledChainSet<S>,
    ) -> Vec<Vec<Vector<S>>> {
        assert!(!batch.is_empty(), "pooled backward: empty batch");
        let t_len = batch[0].0.len();
        assert!(
            batch.iter().all(|(steps, _)| steps.len() == t_len),
            "pooled backward: unequal sequence lengths"
        );
        let h_dim = self.hidden_size();
        state.ensure((t_len, h_dim), batch.len(), opts, || {
            self.build_hidden_chain(batch[0].0, &batch[0].1, true)
        });
        let zero = Vector::zeros(h_dim);
        for (k, chain) in state.chains_mut(batch.len()).iter_mut().enumerate() {
            let (steps, seed) = &batch[k];
            chain
                .seed_mut()
                .as_mut_slice()
                .copy_from_slice(seed.as_slice());
            for (t, element) in chain.jacobians_mut().iter_mut().enumerate() {
                let h_prev = if t == 0 { &zero } else { &steps[t - 1].h };
                let ScanElement::Sparse(m) = element else {
                    unreachable!("pooled chain elements are CSR")
                };
                self.fill_hidden_jacobian_values(&steps[t], h_prev, m.data_mut());
            }
        }
        let out: Vec<std::sync::Mutex<Vec<Vector<S>>>> =
            batch.iter().map(|_| Default::default()).collect();
        state.execute(batch.len(), &|k, result| {
            *out[k]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) =
                (0..t_len).map(|t| result.grad_x(t + 1).clone()).collect();
        });
        out.into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            })
            .collect()
    }

    /// The `∇h_t` sequence via classic BPTT (sequential — Equation 3's
    /// dependency), returned in time order.
    pub fn hidden_grads_bptt(&self, steps: &[GruStep<S>], seed: &Vector<S>) -> Vec<Vector<S>> {
        let t_len = steps.len();
        let mut grads = vec![Vector::zeros(0); t_len];
        let mut g = seed.clone();
        for t in (0..t_len).rev() {
            grads[t] = g.clone();
            if t > 0 {
                let jt = self.hidden_jacobian_t(&steps[t], &steps[t - 1].h);
                g = jt.matvec(&g);
            }
        }
        grads
    }

    /// The `∇h_t` sequence via BPPSA: build the Equation-5 chain from the
    /// per-step Jacobians and scan it.
    pub fn hidden_grads_bppsa(
        &self,
        steps: &[GruStep<S>],
        seed: &Vector<S>,
        opts: BppsaOptions,
    ) -> Vec<Vector<S>> {
        let chain = self.build_hidden_chain(steps, seed, false);
        let result = bppsa_backward(&chain, opts);
        (0..steps.len())
            .map(|t| result.grad_x(t + 1).clone())
            .collect()
    }

    /// [`Gru::hidden_grads_bppsa`] through a plan/workspace cache: the chain
    /// enters the scan as CSR with the (dense, hence trivially
    /// deterministic) full pattern, so the whole backward pass re-executes
    /// as a numeric-only program over reused buffers every iteration.
    ///
    /// Unlike the RNN's `FusedPlannedState` path, the chain itself is still
    /// rebuilt (allocated) per call here, and the cache's match check falls
    /// back to a structural pattern compare; hoisting the GRU chain the
    /// same way is future work.
    pub fn hidden_grads_bppsa_planned(
        &self,
        steps: &[GruStep<S>],
        seed: &Vector<S>,
        opts: BppsaOptions,
        cache: &mut PlannedBackwardCache<S>,
    ) -> Vec<Vector<S>> {
        let chain = self.build_hidden_chain(steps, seed, true);
        let result = cache.backward(&chain, opts);
        (0..steps.len())
            .map(|t| result.grad_x(t + 1).clone())
            .collect()
    }

    /// Builds the Equation-5 chain over the per-step hidden Jacobians
    /// (`h_{-1} = 0`), as dense elements or as full-pattern CSR (the
    /// plannable representation).
    fn build_hidden_chain(
        &self,
        steps: &[GruStep<S>],
        seed: &Vector<S>,
        sparse: bool,
    ) -> JacobianChain<S> {
        let zero = Vector::zeros(self.hidden_size());
        let mut chain = JacobianChain::new(seed.clone());
        for (t, step) in steps.iter().enumerate() {
            let h_prev = if t == 0 { &zero } else { &steps[t - 1].h };
            let jt = self.hidden_jacobian_t(step, h_prev);
            chain.push(if sparse {
                ScanElement::Sparse(bppsa_sparse::Csr::from_dense_pattern(&jt))
            } else {
                ScanElement::Dense(jt)
            });
        }
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bppsa_tensor::init::seeded_rng;
    use rand::Rng;

    fn gru(seed: u64) -> Gru<f64> {
        Gru::new(5, 3, &mut seeded_rng(seed))
    }

    fn xs(t: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..t).map(|_| rng.random_range(-1.0..1.0)).collect()
    }

    #[test]
    fn planned_hidden_grads_match_bptt() {
        let g = gru(21);
        let x = xs(40, 22);
        let steps = g.forward(&x);
        let (_, seed) = g.loss_and_seed(&steps, 1);
        let bptt = g.hidden_grads_bptt(&steps, &seed);
        let mut cache = PlannedBackwardCache::new();
        for round in 0..3 {
            let planned =
                g.hidden_grads_bppsa_planned(&steps, &seed, BppsaOptions::serial(), &mut cache);
            for (t, (a, b)) in bptt.iter().zip(&planned).enumerate() {
                let diff = a.max_abs_diff(b);
                assert!(diff < 1e-9, "round {round} t={t}: diff {diff}");
            }
        }
        assert_eq!(cache.plans_built(), 1);
    }

    #[test]
    fn pooled_hidden_grads_match_bptt_and_plan_once() {
        let g = gru(31);
        let prepared: Vec<(Vec<GruStep<f64>>, Vector<f64>)> = (0..4)
            .map(|k| {
                let steps = g.forward(&xs(18, 32 + k));
                let (_, seed) = g.loss_and_seed(&steps, (k % 3) as usize);
                (steps, seed)
            })
            .collect();
        let batch: Vec<(&[GruStep<f64>], Vector<f64>)> = prepared
            .iter()
            .map(|(steps, seed)| (steps.as_slice(), seed.clone()))
            .collect();
        let mut state = PooledChainSet::new();
        for round in 0..3 {
            let pooled = g.hidden_grads_bppsa_pooled(&batch, BppsaOptions::serial(), &mut state);
            for (k, (steps, seed)) in prepared.iter().enumerate() {
                let bptt = g.hidden_grads_bptt(steps, seed);
                for (t, (a, b)) in bptt.iter().zip(&pooled[k]).enumerate() {
                    let diff = a.max_abs_diff(b);
                    assert!(diff < 1e-9, "round {round} k={k} t={t}: diff {diff}");
                }
            }
        }
        assert_eq!(state.plans_built(), 1);
        // Smaller batch: same per-sample shape, same plan.
        let _ = g.hidden_grads_bppsa_pooled(&batch[..2], BppsaOptions::serial(), &mut state);
        assert_eq!(state.plans_built(), 1);
    }

    #[test]
    fn fill_hidden_jacobian_values_matches_matrix_form() {
        let g = gru(41);
        let h_prev = Vector::from_vec(vec![0.2, -0.1, 0.4, 0.0, -0.3]);
        let step = g.step(0.3, &h_prev);
        let jt = g.hidden_jacobian_t(&step, &h_prev);
        let mut out = vec![0.0; 25];
        g.fill_hidden_jacobian_values(&step, &h_prev, &mut out);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(out[i * 5 + j], jt.get(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn gates_are_in_unit_interval() {
        let g = gru(1);
        let steps = g.forward(&xs(10, 2));
        for s in &steps {
            assert!(s.z.iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert!(s.r.iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert!(s.n.iter().all(|&v| (-1.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn hidden_jacobian_matches_finite_differences() {
        let g = gru(3);
        let h_prev = Vector::from_vec(vec![0.1, -0.4, 0.3, 0.0, -0.2]);
        let x = 0.7;
        let step = g.step(x, &h_prev);
        let jt = g.hidden_jacobian_t(&step, &h_prev);
        let eps = 1e-6;
        for i in 0..5 {
            let mut plus = h_prev.clone();
            plus[i] += eps;
            let mut minus = h_prev.clone();
            minus[i] -= eps;
            let (hp, hm) = (g.step(x, &plus).h, g.step(x, &minus).h);
            for j in 0..5 {
                let numeric = (hp[j] - hm[j]) / (2.0 * eps);
                assert!(
                    (jt.get(i, j) - numeric).abs() < 1e-6,
                    "Jᵀ[{i}][{j}] = {} vs numeric {numeric}",
                    jt.get(i, j)
                );
            }
        }
    }

    #[test]
    fn bppsa_hidden_grads_equal_bptt() {
        for t in [1usize, 2, 5, 16, 33] {
            let g = gru(5);
            let steps = g.forward(&xs(t, 6));
            let (_, seed) = g.loss_and_seed(&steps, 1);
            let bptt = g.hidden_grads_bptt(&steps, &seed);
            for opts in [
                BppsaOptions::serial(),
                BppsaOptions::pooled(),
                BppsaOptions::serial().hybrid(2),
            ] {
                let scan = g.hidden_grads_bppsa(&steps, &seed, opts);
                for (a, b) in bptt.iter().zip(&scan) {
                    let diff = a.max_abs_diff(b);
                    assert!(diff < 1e-10, "T={t}: diff {diff}");
                }
            }
        }
    }

    #[test]
    fn seed_grad_appears_at_last_position() {
        let g = gru(7);
        let steps = g.forward(&xs(6, 8));
        let (_, seed) = g.loss_and_seed(&steps, 0);
        let grads = g.hidden_grads_bptt(&steps, &seed);
        assert!(grads.last().unwrap().approx_eq(&seed, 0.0));
    }

    #[test]
    fn gradient_through_update_gate_preserves_state_path() {
        // With z ≈ 1 (strong carry), ∂h_t/∂h_{t−1} ≈ I — the gradient
        // highway property the GRU is built for. Force z high via bias.
        let mut g = gru(9);
        g.bz = Vector::filled(5, 25.0);
        let h_prev = Vector::from_vec(vec![0.3, -0.1, 0.2, 0.0, 0.4]);
        let step = g.step(0.5, &h_prev);
        let jt = g.hidden_jacobian_t(&step, &h_prev);
        let identity = Matrix::identity(5);
        assert!(
            jt.max_abs_diff(&identity) < 1e-6,
            "carry Jacobian deviates: {}",
            jt.max_abs_diff(&identity)
        );
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_rejected() {
        let _ = gru(11).forward(&[]);
    }
}
