//! A diagonal linear-recurrence (state-space) toy model:
//!
//! `h_t = a_t ⊙ h_{t−1} + u·x_t`, with input-dependent gates
//! `a_t = tanh(λ + g·x_t)` and a softmax readout of the last state.
//!
//! The hidden-state Jacobians are **diagonal**: `(∂h_t/∂h_{t−1})ᵀ =
//! diag(a_t)`, so the Equation 5 chain is a diagonal-CSR chain end to end
//! and the planner compiles it into the elementwise scan program
//! ([`PlannedScan::diagonal_kernel`](bppsa_core::PlannedScan::diagonal_kernel)
//! is `Some` under the default [`DiagonalMode::Auto`](bppsa_core::DiagonalMode)).
//! This is the long-sequence SSM / linear-attention workload where the
//! scan formulation shines: the per-step combine is `O(width)` instead of
//! a sparse matrix product, and chains long enough to overflow running
//! products take the log-space kernel by default.
//!
//! Backward paths mirror [`VanillaRnn`](crate::VanillaRnn):
//! [`DiagonalSsm::backward_sequential`] (the BPTT baseline),
//! [`DiagonalSsm::backward_bppsa`] (per-sample scan),
//! [`DiagonalSsm::backward_bppsa_fused`] (one mini-batch-wide scan — a
//! block-diagonal of diagonals is just a wider diagonal, so the fused
//! chain *stays on the fast path*),
//! [`DiagonalSsm::backward_bppsa_pooled`] (per-sample chains over the
//! workspace pool) and [`DiagonalSsm::backward_bppsa_served`] (the
//! `bppsa-serve` front door). Training routes through
//! [`BackwardMethod`](crate::train::BackwardMethod) via
//! [`ssm_batch_step`](crate::train::ssm_batch_step).

use crate::pooled::PooledChainSet;
use crate::served::{ServedChainSet, ServedSubmitError};
use bppsa_core::{
    bppsa_backward, BackwardResult, BppsaOptions, JacobianChain, PlannedScan, ScanElement,
};
use bppsa_ops::SoftmaxCrossEntropy;
use bppsa_sparse::Csr;
use bppsa_tensor::{init, Matrix, Scalar, Vector};
use rand::rngs::StdRng;

/// The diagonal-recurrence model: per-lane decay logits `λ`, input gates
/// `g`, input injection `u`, and a linear softmax readout.
///
/// # Examples
///
/// ```
/// use bppsa_models::DiagonalSsm;
/// use bppsa_tensor::init::seeded_rng;
///
/// let ssm = DiagonalSsm::<f32>::new(16, 10, &mut seeded_rng(0));
/// let xs = vec![1.0_f32, 0.0, 1.0, 1.0];
/// let states = ssm.forward(&xs);
/// assert_eq!(states.len(), 4);
/// let (loss, _seed, _glog) = ssm.loss_and_seed(&states, 3);
/// assert!(loss > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DiagonalSsm<S> {
    decay: Vector<S>,
    gate: Vector<S>,
    inject: Vector<S>,
    wout: Matrix<S>,
    bout: Vector<S>,
}

/// The recorded trajectory of one forward pass: hidden states
/// `h_0 … h_{T−1}` and the gates `a_0 … a_{T−1}` that produced them (the
/// gates *are* the Jacobian diagonals, so backward needs both).
#[derive(Debug, Clone)]
pub struct SsmStates<S> {
    /// Hidden states `h_t` (with `h_{−1} = 0`).
    pub h: Vec<Vector<S>>,
    /// Gates `a_t = tanh(λ + g·x_t)` — the diagonal of `(∂h_t/∂h_{t−1})ᵀ`.
    pub a: Vec<Vector<S>>,
}

impl<S> SsmStates<S> {
    /// Sequence length `T`.
    pub fn len(&self) -> usize {
        self.h.len()
    }

    /// Whether the trajectory is empty.
    pub fn is_empty(&self) -> bool {
        self.h.is_empty()
    }

    /// The last hidden state `h_{T−1}`.
    ///
    /// # Panics
    ///
    /// Panics on an empty trajectory.
    pub fn last_h(&self) -> &Vector<S> {
        self.h.last().expect("nonempty trajectory")
    }
}

/// One prepared sample of a batched SSM backward:
/// `(inputs, states, seed, ∇logits)` with the seeds pre-scaled by `1/B`.
pub type SsmBatchSample<'a, S> = (&'a [S], &'a SsmStates<S>, Vector<S>, Vector<S>);

/// Gradients of all [`DiagonalSsm`] parameters, in [`DiagonalSsm::params`]
/// layout.
#[derive(Debug, Clone)]
pub struct SsmGrads<S> {
    /// `∇λ`.
    pub d_decay: Vector<S>,
    /// `∇g`.
    pub d_gate: Vector<S>,
    /// `∇u`.
    pub d_inject: Vector<S>,
    /// `∇W_out` (classes × hidden).
    pub d_wout: Matrix<S>,
    /// `∇b_out`.
    pub d_bout: Vector<S>,
}

impl<S: Scalar> SsmGrads<S> {
    fn zeros(hidden: usize, classes: usize) -> Self {
        Self {
            d_decay: Vector::zeros(hidden),
            d_gate: Vector::zeros(hidden),
            d_inject: Vector::zeros(hidden),
            d_wout: Matrix::zeros(classes, hidden),
            d_bout: Vector::zeros(classes),
        }
    }

    /// Adds another gradient set in place (mini-batch accumulation).
    pub fn accumulate(&mut self, other: &Self) {
        self.d_decay.axpy(S::ONE, &other.d_decay);
        self.d_gate.axpy(S::ONE, &other.d_gate);
        self.d_inject.axpy(S::ONE, &other.d_inject);
        self.d_wout.axpy(S::ONE, &other.d_wout);
        self.d_bout.axpy(S::ONE, &other.d_bout);
    }

    /// Flattens into [`DiagonalSsm::params`] order.
    pub fn flat(&self) -> Vec<S> {
        let mut out = Vec::new();
        out.extend_from_slice(self.d_decay.as_slice());
        out.extend_from_slice(self.d_gate.as_slice());
        out.extend_from_slice(self.d_inject.as_slice());
        out.extend_from_slice(self.d_wout.as_slice());
        out.extend_from_slice(self.d_bout.as_slice());
        out
    }

    /// Largest absolute difference to another gradient set.
    pub fn max_abs_diff(&self, other: &Self) -> S {
        let (a, b) = (self.flat(), other.flat());
        a.iter()
            .zip(&b)
            .fold(S::ZERO, |acc, (&x, &y)| acc.maximum((x - y).abs()))
    }
}

/// Persistent batched-backward state for one SSM training loop: the pooled
/// per-sample chain set and the served front-door state (the SSM analogue
/// of [`FusedPlannedState`](crate::FusedPlannedState); the fused path
/// re-plans per call because diagonal plans are symbolic-product-free and
/// cheap to build).
#[derive(Debug, Default)]
pub struct SsmTrainState<S> {
    pooled: PooledChainSet<S>,
    served: ServedChainSet<S>,
}

impl<S: Scalar> SsmTrainState<S> {
    /// An empty state (builds chains/plans/lanes on first use).
    pub fn new() -> Self {
        Self {
            pooled: PooledChainSet::new(),
            served: ServedChainSet::new(),
        }
    }

    /// The pooled per-sample chain set.
    pub fn pooled_mut(&mut self) -> &mut PooledChainSet<S> {
        &mut self.pooled
    }

    /// The pooled chain set, shared.
    pub fn pooled(&self) -> &PooledChainSet<S> {
        &self.pooled
    }

    /// The served per-sample chain set.
    pub fn served_mut(&mut self) -> &mut ServedChainSet<S> {
        &mut self.served
    }

    /// How many pooled plans have been built — stays at `1` for a whole
    /// steady-shape run (per-sample chain shape is batch-size independent).
    pub fn pooled_plans_built(&self) -> usize {
        self.pooled.plans_built()
    }

    /// How many service lanes the served path has built — stays at `1` for
    /// a whole steady-shape run.
    pub fn served_lanes_built(&self) -> usize {
        self.served.lanes_built()
    }
}

impl<S: Scalar> DiagonalSsm<S> {
    /// Creates an SSM with uniform decay/gate/injection parameters and a
    /// Kaiming-uniform readout.
    pub fn new(hidden: usize, classes: usize, rng: &mut StdRng) -> Self {
        Self {
            decay: init::uniform_vector(rng, hidden, 1.0),
            gate: init::uniform_vector(rng, hidden, 1.0),
            inject: init::uniform_vector(rng, hidden, 1.0),
            wout: init::kaiming_matrix(rng, classes, hidden),
            bout: Vector::zeros(classes),
        }
    }

    /// Hidden-state size.
    pub fn hidden_size(&self) -> usize {
        self.decay.len()
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.wout.rows()
    }

    /// The gate vector `a = tanh(λ + g·x)` for one scalar input.
    pub fn gates(&self, x: S) -> Vector<S> {
        Vector::from_fn(self.hidden_size(), |i| {
            (self.decay[i] + self.gate[i] * x).tanh()
        })
    }

    /// Runs the forward recurrence over a scalar sequence, recording every
    /// hidden state *and* gate vector (with `h_{−1} = 0`).
    ///
    /// # Panics
    ///
    /// Panics on an empty input.
    pub fn forward(&self, xs: &[S]) -> SsmStates<S> {
        assert!(!xs.is_empty(), "forward: empty sequence");
        let h_dim = self.hidden_size();
        let mut states = SsmStates {
            h: Vec::with_capacity(xs.len()),
            a: Vec::with_capacity(xs.len()),
        };
        let mut h = Vector::zeros(h_dim);
        for &x in xs {
            let a = self.gates(x);
            h = Vector::from_fn(h_dim, |i| a[i] * h[i] + self.inject[i] * x);
            states.a.push(a);
            states.h.push(h.clone());
        }
        states
    }

    /// Readout logits from the last hidden state.
    pub fn logits(&self, last_h: &Vector<S>) -> Vector<S> {
        self.wout.matvec(last_h).add(&self.bout)
    }

    /// Loss, the scan seed `∇h_{T−1}`, and the logits gradient for `label`.
    pub fn loss_and_seed(&self, states: &SsmStates<S>, label: usize) -> (S, Vector<S>, Vector<S>) {
        let (loss, g_logits) =
            SoftmaxCrossEntropy::loss_and_grad(&self.logits(states.last_h()), label);
        let seed = self.wout.matvec_transposed(&g_logits);
        (loss, seed, g_logits)
    }

    /// Builds the Equation 5 chain: seed `∇h_{T−1}` plus `T` diagonal
    /// Jacobians `diag(a_t)` sharing one CSR pattern — the shape the
    /// planner compiles into the elementwise scan program.
    pub fn build_chain(&self, states: &SsmStates<S>, seed: &Vector<S>) -> JacobianChain<S> {
        let pattern = Csr::from_diagonal(&vec![S::ONE; self.hidden_size()]).pattern();
        let mut chain = JacobianChain::new(seed.clone());
        for a_t in &states.a {
            chain.push(ScanElement::Sparse(Csr::from_pattern_and_values(
                pattern.clone(),
                a_t.as_slice().to_vec(),
            )));
        }
        chain
    }

    /// One timestep's parameter contributions from `∇h_t` (a slice so the
    /// fused path can pass one sample's lanes of a wide batched gradient):
    /// `∇u += ∇h_t·x_t`, and through `a_t = tanh(z_t)` with
    /// `∂h_t/∂a_t = h_{t−1}` (zero at `t = 0`): `∇λ += ∇h_t ⊙ h_{t−1} ⊙
    /// (1 − a_t²)` and `∇g += x_t·` the same.
    fn accumulate_step(
        &self,
        t: usize,
        x: S,
        states: &SsmStates<S>,
        g_h: &[S],
        grads: &mut SsmGrads<S>,
    ) {
        let h_dim = self.hidden_size();
        debug_assert_eq!(g_h.len(), h_dim);
        for (i, &g) in g_h.iter().enumerate() {
            grads.d_inject[i] += g * x;
        }
        if t > 0 {
            let (a_t, h_prev) = (&states.a[t], &states.h[t - 1]);
            for (i, &g) in g_h.iter().enumerate() {
                let dz = g * h_prev[i] * (S::ONE - a_t[i] * a_t[i]);
                grads.d_decay[i] += dz;
                grads.d_gate[i] += dz * x;
            }
        }
    }

    /// Accumulates one sample's parameter gradients from a scan result
    /// whose lanes `[offset, offset + hidden)` carry this sample's `∇h_t`.
    fn accumulate_sample_grads(
        &self,
        xs: &[S],
        states: &SsmStates<S>,
        g_logits: &Vector<S>,
        result: &BackwardResult<S>,
        offset: usize,
        grads: &mut SsmGrads<S>,
    ) {
        let h_dim = self.hidden_size();
        grads.d_wout.axpy(S::ONE, &g_logits.outer(states.last_h()));
        grads.d_bout.axpy(S::ONE, g_logits);
        for (t, &x) in xs.iter().enumerate() {
            // grads()[i] = ∇x_{i+1} where x_{i+1} = h_i → ∇h_t = grad_x(t+1).
            let g_h = &result.grad_x(t + 1).as_slice()[offset..offset + h_dim];
            self.accumulate_step(t, x, states, g_h, grads);
        }
    }

    /// Sequential baseline (BPTT): iterate `t = T−1 … 0`, maintaining
    /// `∇h_{t−1} = a_t ⊙ ∇h_t` — the Equation 3 dependency the scan
    /// removes.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `states` have mismatched lengths.
    pub fn backward_sequential(
        &self,
        xs: &[S],
        states: &SsmStates<S>,
        seed: &Vector<S>,
        g_logits: &Vector<S>,
    ) -> SsmGrads<S> {
        assert_eq!(xs.len(), states.len(), "sequential: states/input mismatch");
        let h_dim = self.hidden_size();
        let mut grads = SsmGrads::zeros(h_dim, self.num_classes());
        grads.d_wout = g_logits.outer(states.last_h());
        grads.d_bout = g_logits.clone();
        let mut g_h = seed.clone();
        for t in (0..states.len()).rev() {
            self.accumulate_step(t, xs[t], states, g_h.as_slice(), &mut grads);
            if t > 0 {
                let a_t = &states.a[t];
                for i in 0..h_dim {
                    g_h[i] = a_t[i] * g_h[i];
                }
            }
        }
        grads
    }

    /// BPPSA: scan the diagonal chain, then accumulate parameter gradients
    /// from the per-step `∇h_t` (Equation 2, no sequential dependency).
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `states` have mismatched lengths.
    pub fn backward_bppsa(
        &self,
        xs: &[S],
        states: &SsmStates<S>,
        seed: &Vector<S>,
        g_logits: &Vector<S>,
        opts: BppsaOptions,
    ) -> SsmGrads<S> {
        assert_eq!(xs.len(), states.len(), "bppsa: states/input mismatch");
        let chain = self.build_chain(states, seed);
        let result = bppsa_backward(&chain, opts);
        let mut grads = SsmGrads::zeros(self.hidden_size(), self.num_classes());
        self.accumulate_sample_grads(xs, states, g_logits, &result, 0, &mut grads);
        grads
    }

    /// Fused batched BPPSA: the whole mini-batch enters **one** scan.
    /// Because a block-diagonal of diagonal matrices is itself diagonal,
    /// the fused chain is simply `B·hidden` lanes wide and *stays on the
    /// elementwise fast path* — unlike the RNN, where fusing trades the
    /// per-sample structure for block-diagonal CSR products. The plan is
    /// rebuilt per call: diagonal planning is symbolic-product-free
    /// (`O(T)` bookkeeping), so there is no §3.3 hoisting to amortize.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or sequences have unequal lengths.
    pub fn backward_bppsa_fused(
        &self,
        batch: &[SsmBatchSample<'_, S>],
        opts: BppsaOptions,
    ) -> SsmGrads<S> {
        assert!(!batch.is_empty(), "batched backward: empty batch");
        let t_len = batch[0].1.len();
        assert!(
            batch
                .iter()
                .all(|(xs, states, _, _)| states.len() == t_len && xs.len() == t_len),
            "batched backward: unequal sequence lengths"
        );
        let h_dim = self.hidden_size();
        let width = batch.len() * h_dim;
        let pattern = Csr::from_diagonal(&vec![S::ONE; width]).pattern();
        let mut seed = Vector::zeros(width);
        for (k, (_, _, s, _)) in batch.iter().enumerate() {
            seed.as_mut_slice()[k * h_dim..(k + 1) * h_dim].copy_from_slice(s.as_slice());
        }
        let mut chain = JacobianChain::new(seed);
        let mut diag = vec![S::ZERO; width];
        for t in 0..t_len {
            for (k, (_, states, _, _)) in batch.iter().enumerate() {
                diag[k * h_dim..(k + 1) * h_dim].copy_from_slice(states.a[t].as_slice());
            }
            chain.push(ScanElement::Sparse(Csr::from_pattern_and_values(
                pattern.clone(),
                diag.clone(),
            )));
        }
        let result = PlannedScan::plan(&chain, opts).execute(&chain);
        // Per-sample partials summed in batch order: the same association
        // as summing per-sample backward passes, so the fused result is
        // bit-for-bit with that sum (the linear kernel runs each fused
        // lane through the identical expression tree).
        let mut grads = SsmGrads::zeros(h_dim, self.num_classes());
        for (k, (xs, states, _, g_logits)) in batch.iter().enumerate() {
            let mut partial = SsmGrads::zeros(h_dim, self.num_classes());
            self.accumulate_sample_grads(xs, states, g_logits, &result, k * h_dim, &mut partial);
            grads.accumulate(&partial);
        }
        grads
    }

    /// Pooled batched BPPSA: one per-sample diagonal chain each, fanned
    /// concurrently over the workspace pool through a single compiled plan
    /// (which takes the elementwise fast path under the default
    /// [`DiagonalMode::Auto`](bppsa_core::DiagonalMode)). Valid because the
    /// optimizer consumes the batch sum; see
    /// [`VanillaRnn::backward_bppsa_pooled`](crate::VanillaRnn::backward_bppsa_pooled).
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or sequences have unequal lengths.
    pub fn backward_bppsa_pooled(
        &self,
        batch: &[SsmBatchSample<'_, S>],
        opts: BppsaOptions,
        state: &mut PooledChainSet<S>,
    ) -> SsmGrads<S> {
        assert!(!batch.is_empty(), "batched backward: empty batch");
        let t_len = batch[0].1.len();
        assert!(
            batch
                .iter()
                .all(|(xs, states, _, _)| states.len() == t_len && xs.len() == t_len),
            "batched backward: unequal sequence lengths"
        );
        let h_dim = self.hidden_size();
        let (xs0, states0, seed0, _) = &batch[0];
        debug_assert_eq!(xs0.len(), t_len);
        state.ensure((t_len, h_dim), batch.len(), opts, || {
            self.build_chain(states0, seed0)
        });
        // Refresh every sample's chain values in place (patterns fixed; a
        // diagonal element's values *are* the gate vector).
        for (k, chain) in state.chains_mut(batch.len()).iter_mut().enumerate() {
            let (_, states, seed, _) = &batch[k];
            chain
                .seed_mut()
                .as_mut_slice()
                .copy_from_slice(seed.as_slice());
            for (t, element) in chain.jacobians_mut().iter_mut().enumerate() {
                let ScanElement::Sparse(m) = element else {
                    unreachable!("pooled chain elements are CSR")
                };
                m.data_mut().copy_from_slice(states.a[t].as_slice());
            }
        }
        let grads = std::sync::Mutex::new(SsmGrads::zeros(h_dim, self.num_classes()));
        state.execute(batch.len(), &|k, result| {
            let (xs, states, _, g_logits) = &batch[k];
            let mut partial = SsmGrads::zeros(h_dim, self.num_classes());
            self.accumulate_sample_grads(xs, states, g_logits, result, 0, &mut partial);
            grads
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .accumulate(&partial);
        });
        grads
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Served batched BPPSA: per-sample diagonal chains submitted as
    /// independent requests to the `bppsa-serve` front door, whose lane
    /// warm-up plan compiles the same elementwise program — the serving
    /// path is transparent to the fast path. See
    /// [`VanillaRnn::backward_bppsa_served`](crate::VanillaRnn::backward_bppsa_served).
    ///
    /// # Errors
    ///
    /// [`ServedSubmitError`] when the front door refuses a request past the
    /// service's retry budget; the chains are back at rest, so the batch
    /// can be re-executed.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or sequences have unequal lengths.
    pub fn backward_bppsa_served(
        &self,
        batch: &[SsmBatchSample<'_, S>],
        state: &mut ServedChainSet<S>,
    ) -> Result<SsmGrads<S>, ServedSubmitError> {
        assert!(!batch.is_empty(), "batched backward: empty batch");
        let t_len = batch[0].1.len();
        assert!(
            batch
                .iter()
                .all(|(xs, states, _, _)| states.len() == t_len && xs.len() == t_len),
            "batched backward: unequal sequence lengths"
        );
        let h_dim = self.hidden_size();
        let (_, states0, seed0, _) = &batch[0];
        state.ensure((t_len, h_dim), batch.len(), || {
            self.build_chain(states0, seed0)
        });
        state.for_each_chain_mut(batch.len(), |k, chain| {
            let (_, states, seed, _) = &batch[k];
            chain
                .seed_mut()
                .as_mut_slice()
                .copy_from_slice(seed.as_slice());
            for (t, element) in chain.jacobians_mut().iter_mut().enumerate() {
                let ScanElement::Sparse(m) = element else {
                    unreachable!("served chain elements are CSR")
                };
                m.data_mut().copy_from_slice(states.a[t].as_slice());
            }
        });
        // Sequential consumption in batch order, via per-sample partials:
        // the sum associates exactly like summing per-sample backward
        // passes, so the served result is bit-for-bit with that sum.
        let mut grads = SsmGrads::zeros(h_dim, self.num_classes());
        state.execute(batch.len(), &mut |k, result| {
            let (xs, states, _, g_logits) = &batch[k];
            let mut partial = SsmGrads::zeros(h_dim, self.num_classes());
            self.accumulate_sample_grads(xs, states, g_logits, result, 0, &mut partial);
            grads.accumulate(&partial);
        })?;
        Ok(grads)
    }

    /// All parameters flattened (decay, gate, inject, `W_out`, `b_out`) —
    /// the order [`SsmGrads::flat`] matches.
    pub fn params(&self) -> Vec<S> {
        let mut out = Vec::new();
        out.extend_from_slice(self.decay.as_slice());
        out.extend_from_slice(self.gate.as_slice());
        out.extend_from_slice(self.inject.as_slice());
        out.extend_from_slice(self.wout.as_slice());
        out.extend_from_slice(self.bout.as_slice());
        out
    }

    /// Writes parameters back from [`DiagonalSsm::params`] layout.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn set_params(&mut self, flat: &[S]) {
        let (h, c) = (self.hidden_size(), self.num_classes());
        assert_eq!(flat.len(), 3 * h + c * h + c, "set_params: length mismatch");
        let mut at = 0;
        for dst in [&mut self.decay, &mut self.gate, &mut self.inject] {
            dst.as_mut_slice().copy_from_slice(&flat[at..at + h]);
            at += h;
        }
        self.wout
            .as_mut_slice()
            .copy_from_slice(&flat[at..at + c * h]);
        at += c * h;
        self.bout.as_mut_slice().copy_from_slice(&flat[at..at + c]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bppsa_core::{DiagonalKernel, DiagonalMode};
    use bppsa_tensor::init::seeded_rng;

    fn sample_inputs(rng: &mut StdRng, t: usize) -> Vec<f64> {
        use rand::Rng;
        (0..t).map(|_| rng.random_range(-1.0..1.0)).collect()
    }

    /// Owned per-sample forward artifacts the borrowed batch views into.
    type RawSample = (Vec<f64>, SsmStates<f64>, Vector<f64>, Vector<f64>);

    #[test]
    fn forward_records_states_and_gates() {
        let rng = &mut seeded_rng(1);
        let ssm = DiagonalSsm::<f64>::new(6, 4, rng);
        let xs = sample_inputs(rng, 17);
        let states = ssm.forward(&xs);
        assert_eq!(states.len(), 17);
        assert!(!states.is_empty());
        for (a, &x) in states.a.iter().zip(&xs) {
            assert_eq!(a.len(), 6);
            for (i, &g) in a.as_slice().iter().enumerate() {
                assert!(g.abs() < 1.0, "tanh gate out of range");
                assert_eq!(g, ssm.gates(x)[i]);
            }
        }
    }

    #[test]
    fn sequential_and_scan_backwards_agree() {
        let rng = &mut seeded_rng(2);
        let ssm = DiagonalSsm::<f64>::new(8, 5, rng);
        // Non-power-of-two lengths included: the schedule's padding path.
        for t in [1usize, 2, 33, 64, 101] {
            let xs = sample_inputs(rng, t);
            let states = ssm.forward(&xs);
            let (_, seed, g_logits) = ssm.loss_and_seed(&states, t % 5);
            let sequential = ssm.backward_sequential(&xs, &states, &seed, &g_logits);
            let scan = ssm.backward_bppsa(&xs, &states, &seed, &g_logits, BppsaOptions::serial());
            let diff = sequential.max_abs_diff(&scan).to_f64();
            assert!(diff < 1e-12, "t={t}: sequential vs scan diff {diff}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Independent validation of the calculus: central differences of
        // the scalar loss over every parameter.
        let rng = &mut seeded_rng(7);
        let ssm = DiagonalSsm::<f64>::new(4, 3, rng);
        let xs = sample_inputs(rng, 9);
        let label = 1;
        let states = ssm.forward(&xs);
        let (_, seed, g_logits) = ssm.loss_and_seed(&states, label);
        let analytic = ssm
            .backward_sequential(&xs, &states, &seed, &g_logits)
            .flat();
        let loss_at = |flat: &[f64]| {
            let mut m = ssm.clone();
            m.set_params(flat);
            let states = m.forward(&xs);
            m.loss_and_seed(&states, label).0
        };
        let base = ssm.params();
        let eps = 1e-6;
        for (i, &g) in analytic.iter().enumerate() {
            let mut up = base.clone();
            up[i] += eps;
            let mut down = base.clone();
            down[i] -= eps;
            let fd = (loss_at(&up) - loss_at(&down)) / (2.0 * eps);
            assert!(
                (g - fd).abs() <= 1e-6 * (1.0 + fd.abs()),
                "param {i}: analytic {g:e} vs finite-difference {fd:e}"
            );
        }
    }

    #[test]
    fn model_chains_plan_to_the_diagonal_kernel() {
        let rng = &mut seeded_rng(3);
        let ssm = DiagonalSsm::<f64>::new(12, 4, rng);
        let xs = sample_inputs(rng, 40);
        let states = ssm.forward(&xs);
        let (_, seed, g_logits) = ssm.loss_and_seed(&states, 2);
        let chain = ssm.build_chain(&states, &seed);
        // The default options compile the fast path for this model's chain…
        let plan = PlannedScan::plan(&chain, BppsaOptions::serial());
        assert_eq!(plan.diagonal_kernel(), Some(DiagonalKernel::Linear));
        // …and the full parameter gradients are bit-for-bit with the
        // generic CSR pipeline (the linear kernel's contract).
        let fast = ssm.backward_bppsa(&xs, &states, &seed, &g_logits, BppsaOptions::serial());
        let generic = ssm.backward_bppsa(
            &xs,
            &states,
            &seed,
            &g_logits,
            BppsaOptions::serial().diagonal(DiagonalMode::Disabled),
        );
        for (a, b) in fast.flat().iter().zip(&generic.flat()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a:e} vs {b:e}");
        }
    }

    #[test]
    fn fused_batch_is_one_wide_diagonal_scan() {
        let rng = &mut seeded_rng(4);
        let ssm = DiagonalSsm::<f64>::new(7, 3, rng);
        let raw: Vec<RawSample> = (0..3)
            .map(|k| {
                let xs = sample_inputs(rng, 29);
                let states = ssm.forward(&xs);
                let (_, seed, g_logits) = ssm.loss_and_seed(&states, k);
                (xs, states, seed, g_logits)
            })
            .collect();
        let batch: Vec<SsmBatchSample<'_, f64>> = raw
            .iter()
            .map(|(xs, st, s, g)| (xs.as_slice(), st, s.clone(), g.clone()))
            .collect();
        // The 3·7-lane fused chain still plans to the elementwise program.
        let fused = ssm.backward_bppsa_fused(&batch, BppsaOptions::serial());
        // Reference: per-sample scans summed in batch order — the linear
        // kernel runs each fused lane through the identical expression
        // tree, so the match is bit-for-bit.
        let mut reference: Option<SsmGrads<f64>> = None;
        for (xs, states, seed, g_logits) in &raw {
            let g = ssm.backward_bppsa(xs, states, seed, g_logits, BppsaOptions::serial());
            match &mut reference {
                None => reference = Some(g),
                Some(acc) => acc.accumulate(&g),
            }
        }
        let reference = reference.unwrap();
        for (a, b) in fused.flat().iter().zip(&reference.flat()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a:e} vs {b:e}");
        }
    }

    #[test]
    fn pooled_and_served_batches_match_the_per_sample_sum() {
        let rng = &mut seeded_rng(5);
        let ssm = DiagonalSsm::<f64>::new(9, 4, rng);
        let mut state = SsmTrainState::new();
        for round in 0..2 {
            let raw: Vec<RawSample> = (0..4)
                .map(|k| {
                    let xs = sample_inputs(rng, 51);
                    let states = ssm.forward(&xs);
                    let (_, seed, g_logits) = ssm.loss_and_seed(&states, (round + k) % 4);
                    (xs, states, seed, g_logits)
                })
                .collect();
            let batch: Vec<SsmBatchSample<'_, f64>> = raw
                .iter()
                .map(|(xs, st, s, g)| (xs.as_slice(), st, s.clone(), g.clone()))
                .collect();
            let mut reference: Option<SsmGrads<f64>> = None;
            for (xs, states, seed, g_logits) in &raw {
                let g = ssm.backward_bppsa(xs, states, seed, g_logits, BppsaOptions::serial());
                match &mut reference {
                    None => reference = Some(g),
                    Some(acc) => acc.accumulate(&g),
                }
            }
            let reference = reference.unwrap();

            let pooled =
                ssm.backward_bppsa_pooled(&batch, BppsaOptions::serial(), state.pooled_mut());
            // Pooled sums stream in completion order — same addends,
            // possibly reassociated.
            let diff = pooled.max_abs_diff(&reference);
            assert!(diff < 1e-10, "round {round}: pooled diff {diff}");

            // Served consumption is sequential in batch order: bit-for-bit
            // with the reference sum.
            let served = ssm
                .backward_bppsa_served(&batch, state.served_mut())
                .expect("owned service accepts");
            for (a, b) in served.flat().iter().zip(&reference.flat()) {
                assert_eq!(a.to_bits(), b.to_bits(), "round {round}: {a:e} vs {b:e}");
            }
        }
        // One shape, one plan, one lane — and the pooled plan took the
        // fast path under the default options.
        assert_eq!(state.pooled_plans_built(), 1);
        assert_eq!(state.served_lanes_built(), 1);
        assert!(state
            .pooled()
            .plan()
            .expect("planned")
            .diagonal_kernel()
            .is_some());
    }

    #[test]
    fn params_round_trip_and_grad_layout_match() {
        let rng = &mut seeded_rng(6);
        let mut ssm = DiagonalSsm::<f64>::new(5, 3, rng);
        let flat = ssm.params();
        assert_eq!(flat.len(), 3 * 5 + 3 * 5 + 3);
        assert_eq!(
            flat.len(),
            SsmGrads::<f64>::zeros(5, 3).flat().len(),
            "params and grads must share one layout"
        );
        let doubled: Vec<f64> = flat.iter().map(|v| v * 2.0).collect();
        ssm.set_params(&doubled);
        assert_eq!(ssm.params(), doubled);
    }
}
