//! First-order optimizers: SGD with momentum (the Figure 7 experiment) and
//! Adam (the Figure 9 RNN experiment).
//!
//! BPPSA is "agnostic to the exact first-order optimizer being used" (§2.2)
//! because it reconstructs the exact gradients; these optimizers consume
//! gradients from either backward path interchangeably.

use bppsa_tensor::Scalar;

/// A flat-parameter optimizer: updates one parameter buffer from one
/// gradient buffer, holding whatever state it needs.
pub trait Optimizer<S: Scalar>: Send {
    /// Applies one update step: `params ← params − update(grads)`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grads.len()` or if the length changes
    /// between calls.
    fn step(&mut self, params: &mut [S], grads: &[S]);

    /// Learning rate currently in effect.
    fn learning_rate(&self) -> f64;
}

/// Stochastic gradient descent with classical momentum (Qian 1999):
/// `v ← μ·v + g; θ ← θ − lr·v` — PyTorch's convention, matching the
/// paper's LeNet-5 setup (lr = 0.001, μ = 0.9).
#[derive(Debug, Clone)]
pub struct Sgd<S> {
    lr: S,
    momentum: S,
    velocity: Vec<S>,
}

impl<S: Scalar> Sgd<S> {
    /// Creates an SGD optimizer.
    pub fn new(lr: f64, momentum: f64) -> Self {
        Self {
            lr: S::from_f64(lr),
            momentum: S::from_f64(momentum),
            velocity: Vec::new(),
        }
    }
}

impl<S: Scalar> Optimizer<S> for Sgd<S> {
    fn step(&mut self, params: &mut [S], grads: &[S]) {
        assert_eq!(params.len(), grads.len(), "sgd: length mismatch");
        if self.velocity.is_empty() {
            self.velocity = vec![S::ZERO; params.len()];
        }
        assert_eq!(self.velocity.len(), params.len(), "sgd: length changed");
        for ((p, &g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            *v = self.momentum * *v + g;
            *p -= self.lr * *v;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr.to_f64()
    }
}

/// Adam (Kingma & Ba 2015) with bias correction — the paper's RNN optimizer
/// (lr = 3×10⁻⁵).
#[derive(Debug, Clone)]
pub struct Adam<S> {
    lr: S,
    beta1: S,
    beta2: S,
    eps: S,
    t: i32,
    m: Vec<S>,
    v: Vec<S>,
}

impl<S: Scalar> Adam<S> {
    /// Creates an Adam optimizer with the standard β = (0.9, 0.999),
    /// ε = 1e−8.
    pub fn new(lr: f64) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Creates an Adam optimizer with explicit hyper-parameters.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        Self {
            lr: S::from_f64(lr),
            beta1: S::from_f64(beta1),
            beta2: S::from_f64(beta2),
            eps: S::from_f64(eps),
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl<S: Scalar> Optimizer<S> for Adam<S> {
    fn step(&mut self, params: &mut [S], grads: &[S]) {
        assert_eq!(params.len(), grads.len(), "adam: length mismatch");
        if self.m.is_empty() {
            self.m = vec![S::ZERO; params.len()];
            self.v = vec![S::ZERO; params.len()];
        }
        assert_eq!(self.m.len(), params.len(), "adam: length changed");
        self.t += 1;
        let bc1 = S::ONE - self.beta1.powi(self.t);
        let bc2 = S::ONE - self.beta2.powi(self.t);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (S::ONE - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (S::ONE - self.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr.to_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes ½‖θ‖² and checks convergence toward zero.
    fn drive<O: Optimizer<f64>>(mut opt: O, steps: usize) -> f64 {
        let mut theta = vec![1.0f64, -2.0, 3.0];
        for _ in 0..steps {
            let grads: Vec<f64> = theta.clone();
            opt.step(&mut theta, &grads);
        }
        theta.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    #[test]
    fn sgd_without_momentum_is_plain_descent() {
        let mut opt = Sgd::<f64>::new(0.1, 0.0);
        let mut theta = vec![1.0f64];
        opt.step(&mut theta, &[1.0]);
        assert!((theta[0] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn sgd_momentum_accumulates_velocity() {
        let mut opt = Sgd::<f64>::new(0.1, 0.9);
        let mut theta = vec![0.0f64];
        opt.step(&mut theta, &[1.0]); // v=1, θ=-0.1
        opt.step(&mut theta, &[1.0]); // v=1.9, θ=-0.29
        assert!((theta[0] + 0.29).abs() < 1e-12);
    }

    #[test]
    fn both_optimizers_converge_on_quadratic() {
        assert!(drive(Sgd::new(0.1, 0.9), 200) < 1e-3);
        assert!(drive(Adam::new(0.05), 500) < 1e-2);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step is ≈ lr·sign(g).
        let mut opt = Adam::<f64>::new(0.01);
        let mut theta = vec![0.0f64];
        opt.step(&mut theta, &[42.0]);
        assert!((theta[0] + 0.01).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = Sgd::<f32>::new(0.1, 0.0);
        let mut theta = vec![0.0f32; 2];
        opt.step(&mut theta, &[1.0]);
    }

    #[test]
    fn learning_rate_accessor() {
        assert_eq!(Sgd::<f32>::new(0.001, 0.9).learning_rate() as f32, 0.001);
        assert_eq!(Adam::<f32>::new(3e-5).learning_rate() as f32, 3e-5);
    }
}
