//! LeNet-5 (LeCun et al. 1998) adapted to 32×32×3 CIFAR-style inputs — the
//! model of the paper's §3.5 convergence experiment (Figure 7).

use bppsa_core::Network;
use bppsa_ops::{Conv2d, Conv2dConfig, Flatten, Linear, MaxPool2d, Relu};
use bppsa_tensor::Scalar;
use rand::rngs::StdRng;

/// Builds LeNet-5 for `(3, 32, 32)` inputs and 10 classes:
/// conv5×5(3→6) → ReLU → pool2 → conv5×5(6→16) → ReLU → pool2 →
/// flatten(400) → fc120 → ReLU → fc84 → ReLU → fc10.
///
/// # Examples
///
/// ```
/// use bppsa_models::lenet5;
/// use bppsa_tensor::{init::seeded_rng, Tensor};
///
/// let net = lenet5::<f32>(&mut seeded_rng(0));
/// let tape = net.forward(&Tensor::zeros(vec![3, 32, 32]));
/// assert_eq!(tape.output().shape(), &[10]);
/// ```
pub fn lenet5<S: Scalar>(rng: &mut StdRng) -> Network<S> {
    let mut net = Network::new();
    net.push(Box::new(Conv2d::new(
        Conv2dConfig {
            in_channels: 3,
            out_channels: 6,
            kernel: (5, 5),
            stride: (1, 1),
            padding: (0, 0),
            input_hw: (32, 32),
        },
        rng,
    )));
    net.push(Box::new(Relu::new(vec![6, 28, 28])));
    net.push(Box::new(MaxPool2d::new(6, (2, 2), (2, 2), (28, 28))));
    net.push(Box::new(Conv2d::new(
        Conv2dConfig {
            in_channels: 6,
            out_channels: 16,
            kernel: (5, 5),
            stride: (1, 1),
            padding: (0, 0),
            input_hw: (14, 14),
        },
        rng,
    )));
    net.push(Box::new(Relu::new(vec![16, 10, 10])));
    net.push(Box::new(MaxPool2d::new(16, (2, 2), (2, 2), (10, 10))));
    net.push(Box::new(Flatten::new(vec![16, 5, 5])));
    net.push(Box::new(Linear::new(400, 120, rng)));
    net.push(Box::new(Relu::new(vec![120])));
    net.push(Box::new(Linear::new(120, 84, rng)));
    net.push(Box::new(Relu::new(vec![84])));
    net.push(Box::new(Linear::new(84, 10, rng)));
    net
}

/// A reduced LeNet (8×8 inputs, narrow layers) for fast tests that still
/// exercise every operator kind.
pub fn lenet_tiny<S: Scalar>(rng: &mut StdRng) -> Network<S> {
    let mut net = Network::new();
    net.push(Box::new(Conv2d::new(
        Conv2dConfig {
            in_channels: 3,
            out_channels: 4,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (0, 0),
            input_hw: (8, 8),
        },
        rng,
    )));
    net.push(Box::new(Relu::new(vec![4, 6, 6])));
    net.push(Box::new(MaxPool2d::new(4, (2, 2), (2, 2), (6, 6))));
    net.push(Box::new(Flatten::new(vec![4, 3, 3])));
    net.push(Box::new(Linear::new(36, 16, rng)));
    net.push(Box::new(Relu::new(vec![16])));
    net.push(Box::new(Linear::new(16, 10, rng)));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use bppsa_core::{BppsaOptions, JacobianRepr};
    use bppsa_tensor::init::{seeded_rng, uniform_tensor, uniform_vector};

    #[test]
    fn lenet5_shapes_flow() {
        let net = lenet5::<f32>(&mut seeded_rng(0));
        assert_eq!(net.num_layers(), 12);
        let tape = net.forward(&uniform_tensor(&mut seeded_rng(1), vec![3, 32, 32], 1.0));
        assert_eq!(tape.output().shape(), &[10]);
    }

    #[test]
    fn lenet5_param_count_matches_formula() {
        let net = lenet5::<f32>(&mut seeded_rng(0));
        let expected = (6 * 3 * 25 + 6)
            + (16 * 6 * 25 + 16)
            + (400 * 120 + 120)
            + (120 * 84 + 84)
            + (84 * 10 + 10);
        assert_eq!(net.num_params(), expected);
    }

    #[test]
    fn tiny_lenet_bppsa_equals_bp() {
        let net = lenet_tiny::<f64>(&mut seeded_rng(2));
        let x = uniform_tensor(&mut seeded_rng(3), vec![3, 8, 8], 1.0);
        let tape = net.forward(&x);
        let g = uniform_vector(&mut seeded_rng(4), 10, 1.0);
        let bp = net.backward_bp(&tape, &g);
        let scan = net.backward_bppsa(&tape, &g, JacobianRepr::Sparse, BppsaOptions::serial());
        let diff = bp.max_abs_diff(&scan);
        assert!(diff < 1e-10, "diff {diff}");
    }
}
