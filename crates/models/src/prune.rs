//! Magnitude pruning (See et al. 2016, as used in the paper's §4.2): zero
//! the smallest-magnitude fraction of each operator's *weights* (class-
//! uniform — per-layer thresholds; biases are kept).
//!
//! The paper prunes 97% of conv/linear weights of VGG-11, retrains, and
//! observes that the pruned weights make the analytically-generated
//! transposed Jacobians sparser — shrinking BPPSA's per-step cost
//! (Figure 11).

use bppsa_core::Network;
use bppsa_ops::Operator;
use bppsa_tensor::Scalar;

/// Zeroes the `fraction` smallest-magnitude entries of `weights`, in place.
/// Returns the number of zeroed entries.
///
/// # Panics
///
/// Panics if `fraction` is not in `[0, 1]`.
pub fn prune_slice<S: Scalar>(weights: &mut [S], fraction: f64) -> usize {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "prune fraction {fraction} outside [0, 1]"
    );
    let k = ((weights.len() as f64) * fraction).round() as usize;
    if k == 0 {
        return 0;
    }
    let mut mags: Vec<(f64, usize)> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| (w.abs().to_f64(), i))
        .collect();
    mags.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite weights"));
    for &(_, i) in mags.iter().take(k) {
        weights[i] = S::ZERO;
    }
    k
}

/// Prunes one operator's weight portion (its [`Operator::prunable_len`]
/// leading parameters) to the given sparsity fraction. Returns the number
/// of zeroed weights.
pub fn prune_operator<S: Scalar>(op: &mut dyn Operator<S>, fraction: f64) -> usize {
    let prunable = op.prunable_len();
    if prunable == 0 {
        return 0;
    }
    let mut params = op.params();
    let zeroed = prune_slice(&mut params[..prunable], fraction);
    op.set_params(&params);
    zeroed
}

/// Prunes every parameterized operator of a network to `fraction` sparsity.
/// Returns the total number of zeroed weights.
pub fn prune_network<S: Scalar>(net: &mut Network<S>, fraction: f64) -> usize {
    net.ops_mut()
        .iter_mut()
        .map(|op| prune_operator(op.as_mut(), fraction))
        .sum()
}

/// Measured weight sparsity of an operator (zeros among prunable weights).
pub fn weight_sparsity<S: Scalar>(op: &dyn Operator<S>) -> f64 {
    let prunable = op.prunable_len();
    if prunable == 0 {
        return 0.0;
    }
    let params = op.params();
    let zeros = params[..prunable].iter().filter(|&&w| w == S::ZERO).count();
    zeros as f64 / prunable as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bppsa_ops::{Conv2d, Conv2dConfig, Linear};
    use bppsa_tensor::init::seeded_rng;

    #[test]
    fn prune_slice_zeroes_smallest() {
        let mut w = vec![0.5f64, -0.1, 0.9, 0.05, -0.7];
        let k = prune_slice(&mut w, 0.4);
        assert_eq!(k, 2);
        assert_eq!(w, vec![0.5, 0.0, 0.9, 0.0, -0.7]);
    }

    #[test]
    fn prune_zero_fraction_is_noop() {
        let mut w = vec![1.0f32, 2.0];
        assert_eq!(prune_slice(&mut w, 0.0), 0);
        assert_eq!(w, vec![1.0, 2.0]);
    }

    #[test]
    fn prune_full_fraction_zeroes_everything() {
        let mut w = vec![1.0f32, -2.0, 3.0];
        prune_slice(&mut w, 1.0);
        assert!(w.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn operator_pruning_preserves_biases() {
        let mut rng = seeded_rng(0);
        let mut layer = Linear::<f64>::from_parts(
            bppsa_tensor::init::uniform_matrix(&mut rng, 4, 4, 1.0),
            bppsa_tensor::Vector::filled(4, 7.0),
        );
        let zeroed = prune_operator(&mut layer, 0.97);
        assert!(zeroed >= 15);
        assert!(weight_sparsity(&layer) >= 0.9);
        assert!(layer.bias().iter().all(|&b| b == 7.0));
    }

    #[test]
    fn conv_pruning_hits_target_sparsity() {
        let mut rng = seeded_rng(1);
        let mut conv = Conv2d::<f32>::new(Conv2dConfig::vgg_style(4, 8, (8, 8)), &mut rng);
        prune_operator(&mut conv, 0.97);
        let s = weight_sparsity(&conv);
        assert!((s - 0.97).abs() < 0.01, "sparsity {s}");
    }

    #[test]
    fn pruned_conv_jacobian_shrinks_by_the_same_factor() {
        // §4.2's key mechanism: Jacobian values come only from the weights,
        // so 97% weight sparsity → ≈97% fewer Jacobian non-zeros.
        let mut rng = seeded_rng(2);
        let mut conv = Conv2d::<f32>::new(Conv2dConfig::vgg_style(2, 4, (8, 8)), &mut rng);
        let dense_nnz = conv.transposed_jacobian_pruned().nnz();
        prune_operator(&mut conv, 0.97);
        let pruned_nnz = conv.transposed_jacobian_pruned().nnz();
        let ratio = pruned_nnz as f64 / dense_nnz as f64;
        assert!(ratio < 0.08, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_fraction_rejected() {
        let mut w = vec![1.0f32];
        prune_slice(&mut w, 1.5);
    }
}
