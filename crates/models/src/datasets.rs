//! Synthetic datasets for the paper's two benchmarks.
//!
//! * [`BitstreamDataset`] — the §4.1 task, reproduced exactly: classify
//!   bitstreams `x_t ~ Bernoulli(0.05 + c·0.1)` into their class `c ∈ 0..10`
//!   (Equation 8, Figure 8).
//! * [`SyntheticCifar`] — the documented CIFAR-10 substitution (DESIGN.md
//!   §6): 32×32×3 images drawn from class-conditional Gaussian blobs around
//!   distinct per-class mean patterns, so LeNet-5 training losses decrease
//!   and Figure 7's exactness comparison is meaningful.

use bppsa_tensor::init::seeded_rng;
use bppsa_tensor::{Scalar, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

/// One labelled bitstream sample.
#[derive(Debug, Clone, PartialEq)]
pub struct BitstreamSample<S> {
    /// The bit sequence `x_0 … x_{T−1}` as scalars in {0, 1}.
    pub bits: Vec<S>,
    /// The class `c ∈ 0..num_classes`.
    pub label: usize,
}

/// The bitstream-classification dataset of §4.1 (Equation 8).
///
/// # Examples
///
/// ```
/// use bppsa_models::BitstreamDataset;
///
/// let ds = BitstreamDataset::<f32>::generate(100, 50, 42);
/// assert_eq!(ds.len(), 100);
/// assert_eq!(ds.sample(0).bits.len(), 50);
/// assert!(ds.sample(0).label < 10);
/// ```
#[derive(Debug, Clone)]
pub struct BitstreamDataset<S> {
    samples: Vec<BitstreamSample<S>>,
    seq_len: usize,
}

impl<S: Scalar> BitstreamDataset<S> {
    /// Number of classes (fixed at 10, as in the paper).
    pub const NUM_CLASSES: usize = 10;

    /// Generates `n` samples of length `seq_len` with the given seed.
    /// Labels cycle deterministically through the classes; bits follow
    /// Equation 8: `x_t ~ Bernoulli(0.05 + c × 0.1)`.
    pub fn generate(n: usize, seq_len: usize, seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        let samples = (0..n)
            .map(|k| {
                let label = k % Self::NUM_CLASSES;
                let p = 0.05 + label as f64 * 0.1;
                let bits = (0..seq_len)
                    .map(|_| {
                        if rng.random_range(0.0..1.0) < p {
                            S::ONE
                        } else {
                            S::ZERO
                        }
                    })
                    .collect();
                BitstreamSample { bits, label }
            })
            .collect();
        Self { samples, seq_len }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sequence length `T`.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// The `i`-th sample.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn sample(&self, i: usize) -> &BitstreamSample<S> {
        &self.samples[i]
    }

    /// Iterates over mini-batches of sample indices.
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        let n = self.samples.len();
        (0..n.div_ceil(batch_size)).map(move |b| {
            let start = b * batch_size;
            start..(start + batch_size).min(n)
        })
    }
}

/// One labelled image sample.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageSample<S> {
    /// A `(3, h, w)` image tensor.
    pub image: Tensor<S>,
    /// The class label.
    pub label: usize,
}

/// A synthetic stand-in for CIFAR-10 (see DESIGN.md §6): 10 classes of
/// `(3, size, size)` images, each class a fixed random smooth pattern plus
/// per-sample Gaussian noise.
#[derive(Debug, Clone)]
pub struct SyntheticCifar<S> {
    samples: Vec<ImageSample<S>>,
    size: usize,
}

impl<S: Scalar> SyntheticCifar<S> {
    /// Number of classes (10, like CIFAR-10).
    pub const NUM_CLASSES: usize = 10;

    /// Generates `n` images of side `size` with the given seed and noise
    /// standard deviation (0.3 gives a learnable-but-not-trivial task).
    pub fn generate(n: usize, size: usize, noise_std: f64, seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        let numel = 3 * size * size;
        // Per-class mean pattern: smooth low-frequency random fields.
        let means: Vec<Vec<f64>> = (0..Self::NUM_CLASSES)
            .map(|_| Self::smooth_pattern(&mut rng, size))
            .collect();
        let samples = (0..n)
            .map(|k| {
                let label = k % Self::NUM_CLASSES;
                let mut data = Vec::with_capacity(numel);
                for &mean in &means[label] {
                    let noise: f64 = bppsa_tensor::init::normal(&mut rng);
                    data.push(S::from_f64(mean + noise_std * noise));
                }
                ImageSample {
                    image: Tensor::from_vec(vec![3, size, size], data),
                    label,
                }
            })
            .collect();
        Self { samples, size }
    }

    /// Low-frequency pattern: sum of a few random 2-D cosines per channel.
    fn smooth_pattern(rng: &mut StdRng, size: usize) -> Vec<f64> {
        let mut out = vec![0.0f64; 3 * size * size];
        for c in 0..3 {
            for _ in 0..3 {
                let fx = rng.random_range(0.5..2.5);
                let fy = rng.random_range(0.5..2.5);
                let phase = rng.random_range(0.0..std::f64::consts::TAU);
                let amp = rng.random_range(0.2..0.5);
                for y in 0..size {
                    for x in 0..size {
                        let v = amp
                            * ((fx * x as f64 / size as f64 + fy * y as f64 / size as f64)
                                * std::f64::consts::TAU
                                + phase)
                                .cos();
                        out[(c * size + y) * size + x] += v;
                    }
                }
            }
        }
        out
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Image side length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The `i`-th sample.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn sample(&self, i: usize) -> &ImageSample<S> {
        &self.samples[i]
    }

    /// Iterates over mini-batches of sample indices.
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        let n = self.samples.len();
        (0..n.div_ceil(batch_size)).map(move |b| {
            let start = b * batch_size;
            start..(start + batch_size).min(n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitstream_probabilities_follow_equation8() {
        // With T large, the empirical bit frequency per class should be near
        // 0.05 + 0.1·c (a binomial experiment, as the paper frames it).
        let ds = BitstreamDataset::<f64>::generate(40, 4000, 7);
        for k in 0..10 {
            let s = ds.sample(k);
            let freq = s.bits.iter().copied().sum::<f64>() / s.bits.len() as f64;
            let expect = 0.05 + s.label as f64 * 0.1;
            assert!(
                (freq - expect).abs() < 0.03,
                "class {}: freq {freq} vs {expect}",
                s.label
            );
        }
    }

    #[test]
    fn bitstream_generation_is_deterministic() {
        let a = BitstreamDataset::<f32>::generate(10, 100, 3);
        let b = BitstreamDataset::<f32>::generate(10, 100, 3);
        for i in 0..10 {
            assert_eq!(a.sample(i), b.sample(i));
        }
    }

    #[test]
    fn bitstream_labels_cover_all_classes() {
        let ds = BitstreamDataset::<f32>::generate(20, 5, 1);
        let mut seen = [false; 10];
        for i in 0..20 {
            seen[ds.sample(i).label] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn batches_cover_everything_once() {
        let ds = BitstreamDataset::<f32>::generate(23, 4, 9);
        let total: usize = ds.batches(8).map(|r| r.len()).sum();
        assert_eq!(total, 23);
        let last = ds.batches(8).last().unwrap();
        assert_eq!(last, 16..23);
    }

    #[test]
    fn cifar_images_have_cifar_shape() {
        let ds = SyntheticCifar::<f32>::generate(12, 32, 0.3, 5);
        assert_eq!(ds.sample(0).image.shape(), &[3, 32, 32]);
        assert_eq!(ds.len(), 12);
    }

    #[test]
    fn cifar_classes_are_separable_from_means() {
        // Same-class samples should be closer (on average) than cross-class.
        let ds = SyntheticCifar::<f64>::generate(40, 8, 0.1, 11);
        let dist = |a: &Tensor<f64>, b: &Tensor<f64>| a.max_abs_diff(b);
        let (s0a, s0b) = (ds.sample(0), ds.sample(10)); // both class 0
        let s1 = ds.sample(1); // class 1
        assert_eq!(s0a.label, s0b.label);
        assert_ne!(s0a.label, s1.label);
        assert!(dist(&s0a.image, &s0b.image) < dist(&s0a.image, &s1.image));
    }

    #[test]
    fn cifar_generation_is_deterministic() {
        let a = SyntheticCifar::<f32>::generate(4, 8, 0.3, 2);
        let b = SyntheticCifar::<f32>::generate(4, 8, 0.3, 2);
        assert_eq!(a.sample(3), b.sample(3));
    }
}
