//! The 2-D convolution operator and its analytic sparse transposed Jacobian.
//!
//! This generalizes the paper's Algorithms 2–4 (which are specialized to a
//! 3×3 kernel with padding 1) to arbitrary kernel size, stride, and padding:
//! the footnote under Algorithm 2 notes "deriving a generic routine is
//! doable" — this module is that routine. Rows of `(∂y/∂x)ᵀ` are emitted
//! directly in sorted column order (output channel-major, then output row,
//! then output column), so no post-sort is needed.
//!
//! The Jacobian's values depend **only on the filter weights** (Algorithm 4's
//! key property), which is why pruned networks shrink it: zeroed weights
//! become explicit zeros that [`bppsa_sparse::Csr::pruned`] drops (§4.2).

use crate::geometry::receptive_range;
use crate::operator::{check_input_shape, Operator};
use bppsa_sparse::Csr;
use bppsa_tensor::{init, Scalar, Tensor, Vector};
use rand::rngs::StdRng;

/// Geometry of a [`Conv2d`] operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dConfig {
    /// Input channels `c_i`.
    pub in_channels: usize,
    /// Output channels `c_o`.
    pub out_channels: usize,
    /// Kernel height/width `(h_f, w_f)`.
    pub kernel: (usize, usize),
    /// Stride `(s_h, s_w)`.
    pub stride: (usize, usize),
    /// Zero padding `(p_h, p_w)`.
    pub padding: (usize, usize),
    /// Input spatial size `(h_i, w_i)`.
    pub input_hw: (usize, usize),
}

impl Conv2dConfig {
    /// A `3×3`, stride-1, padding-1 convolution — the configuration of the
    /// paper's Algorithms 2–4 and of every VGG-11 convolution.
    pub fn vgg_style(in_channels: usize, out_channels: usize, input_hw: (usize, usize)) -> Self {
        Self {
            in_channels,
            out_channels,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
            input_hw,
        }
    }

    /// Output spatial size `(h_o, w_o)`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn output_hw(&self) -> (usize, usize) {
        let (hi, wi) = self.input_hw;
        let (kh, kw) = self.kernel;
        let (sh, sw) = self.stride;
        let (ph, pw) = self.padding;
        assert!(
            hi + 2 * ph >= kh && wi + 2 * pw >= kw,
            "conv2d: kernel {:?} larger than padded input ({}, {})",
            self.kernel,
            hi + 2 * ph,
            wi + 2 * pw
        );
        ((hi + 2 * ph - kh) / sh + 1, (wi + 2 * pw - kw) / sw + 1)
    }
}

/// A 2-D convolution layer over `(c, h, w)` tensors (single sample,
/// channels-first).
///
/// # Examples
///
/// ```
/// use bppsa_ops::{Conv2d, Conv2dConfig, Operator};
/// use bppsa_tensor::init::seeded_rng;
///
/// let cfg = Conv2dConfig::vgg_style(3, 8, (8, 8));
/// let conv = Conv2d::<f32>::new(cfg, &mut seeded_rng(0));
/// assert_eq!(conv.output_shape(), &[8, 8, 8]);
/// // Table 1: the Jacobian is overwhelmingly guaranteed-zero.
/// assert!(conv.guaranteed_sparsity() > 0.8);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d<S> {
    cfg: Conv2dConfig,
    /// Weights `(c_o, c_i, k_h, k_w)`.
    weight: Tensor<S>,
    bias: Vector<S>,
    input_shape: Vec<usize>,
    output_shape: Vec<usize>,
}

impl<S: Scalar> Conv2d<S> {
    /// Creates a layer with Kaiming-uniform weights and zero bias.
    pub fn new(cfg: Conv2dConfig, rng: &mut StdRng) -> Self {
        let (kh, kw) = cfg.kernel;
        let fan_in = cfg.in_channels * kh * kw;
        let weight = init::uniform_tensor(
            rng,
            vec![cfg.out_channels, cfg.in_channels, kh, kw],
            init::kaiming_bound(fan_in),
        );
        Self::from_parts(cfg, weight, Vector::zeros(cfg.out_channels))
    }

    /// Creates a layer from explicit weights and bias.
    ///
    /// # Panics
    ///
    /// Panics if `weight.shape() != (c_o, c_i, k_h, k_w)` or
    /// `bias.len() != c_o`.
    pub fn from_parts(cfg: Conv2dConfig, weight: Tensor<S>, bias: Vector<S>) -> Self {
        let (kh, kw) = cfg.kernel;
        assert_eq!(
            weight.shape(),
            &[cfg.out_channels, cfg.in_channels, kh, kw],
            "conv2d: bad weight shape"
        );
        assert_eq!(bias.len(), cfg.out_channels, "conv2d: bad bias length");
        let (hi, wi) = cfg.input_hw;
        let (ho, wo) = cfg.output_hw();
        Self {
            cfg,
            weight,
            bias,
            input_shape: vec![cfg.in_channels, hi, wi],
            output_shape: vec![cfg.out_channels, ho, wo],
        }
    }

    /// The layer geometry.
    pub fn config(&self) -> &Conv2dConfig {
        &self.cfg
    }

    /// The weight tensor `(c_o, c_i, k_h, k_w)`.
    pub fn weight(&self) -> &Tensor<S> {
        &self.weight
    }

    /// Mutable weights (used by pruning).
    pub fn weight_mut(&mut self) -> &mut Tensor<S> {
        &mut self.weight
    }

    /// The bias vector.
    pub fn bias(&self) -> &Vector<S> {
        &self.bias
    }

    /// Number of structural non-zeros of the transposed Jacobian, computed
    /// in closed form: `c_i · c_o · (Σ_iy cnt(iy)) · (Σ_ix cnt(ix))`.
    pub fn jacobian_nnz(&self) -> usize {
        let (hi, wi) = self.cfg.input_hw;
        let (ho, wo) = self.cfg.output_hw();
        let (kh, kw) = self.cfg.kernel;
        let (sh, sw) = self.cfg.stride;
        let (ph, pw) = self.cfg.padding;
        let sum_h: usize = (0..hi)
            .map(|iy| {
                let (lo, hi_) = receptive_range(iy, ph, kh, sh, ho);
                hi_.saturating_sub(lo)
                    .saturating_add(if lo <= hi_ { 1 } else { 0 })
            })
            .sum();
        let sum_w: usize = (0..wi)
            .map(|ix| {
                let (lo, hi_) = receptive_range(ix, pw, kw, sw, wo);
                hi_.saturating_sub(lo)
                    .saturating_add(if lo <= hi_ { 1 } else { 0 })
            })
            .sum();
        self.cfg.in_channels * self.cfg.out_channels * sum_h * sum_w
    }

    /// Generates the transposed Jacobian with zero-valued weights *skipped*
    /// instead of stored — the §4.2 path for pruned networks, where 97% of
    /// filter weights are zero and materializing the guaranteed pattern
    /// first would waste two orders of magnitude of memory.
    ///
    /// Equivalent to `self.transposed_jacobian(..).pruned()` (tested), but
    /// generated directly in one sweep.
    #[allow(clippy::needless_range_loop)] // iy/ix also feed the ky/kx arithmetic
    pub fn transposed_jacobian_pruned(&self) -> Csr<S> {
        let (ci, co) = (self.cfg.in_channels, self.cfg.out_channels);
        let (hi, wi) = self.cfg.input_hw;
        let (ho, wo) = self.cfg.output_hw();
        let (kh, kw) = self.cfg.kernel;
        let (sh, sw) = self.cfg.stride;
        let (ph, pw) = self.cfg.padding;
        let w = self.weight.as_slice();

        let cnt_y: Vec<(usize, usize)> = (0..hi)
            .map(|iy| receptive_range(iy, ph, kh, sh, ho))
            .collect();
        let cnt_x: Vec<(usize, usize)> = (0..wi)
            .map(|ix| receptive_range(ix, pw, kw, sw, wo))
            .collect();

        let rows = ci * hi * wi;
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices: Vec<u32> = Vec::new();
        let mut data: Vec<S> = Vec::new();
        indptr.push(0);
        for ic in 0..ci {
            for iy in 0..hi {
                let (oy_lo, oy_hi) = cnt_y[iy];
                for ix in 0..wi {
                    let (ox_lo, ox_hi) = cnt_x[ix];
                    for c in 0..co {
                        let mut oy = oy_lo;
                        while oy <= oy_hi && oy_lo <= oy_hi {
                            let ky = iy + ph - oy * sh;
                            let mut ox = ox_lo;
                            while ox <= ox_hi && ox_lo <= ox_hi {
                                let kx = ix + pw - ox * sw;
                                let wv = w[((c * ci + ic) * kh + ky) * kw + kx];
                                if wv != S::ZERO {
                                    indices.push(((c * ho + oy) * wo + ox) as u32);
                                    data.push(wv);
                                }
                                ox += 1;
                            }
                            oy += 1;
                        }
                    }
                    indptr.push(indices.len());
                }
            }
        }
        Csr::from_parts_unchecked(rows, co * ho * wo, indptr, indices, data)
    }

    /// The paper's Table 1 closed-form sparsity *approximation*
    /// `1 − h_f·w_f / (h_i·w_i)` (exact value comes from
    /// [`Operator::guaranteed_sparsity`]).
    pub fn paper_sparsity_estimate(&self) -> f64 {
        let (hi, wi) = self.cfg.input_hw;
        let (kh, kw) = self.cfg.kernel;
        1.0 - (kh * kw) as f64 / (hi * wi) as f64
    }
}

impl<S: Scalar> Operator<S> for Conv2d<S> {
    fn name(&self) -> &str {
        "conv2d"
    }

    fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    fn output_shape(&self) -> &[usize] {
        &self.output_shape
    }

    fn forward(&self, input: &Tensor<S>) -> Tensor<S> {
        check_input_shape("conv2d", &self.input_shape, input);
        let (ci, co) = (self.cfg.in_channels, self.cfg.out_channels);
        let (hi, wi) = self.cfg.input_hw;
        let (ho, wo) = self.cfg.output_hw();
        let (kh, kw) = self.cfg.kernel;
        let (sh, sw) = self.cfg.stride;
        let (ph, pw) = self.cfg.padding;

        let mut out = Tensor::zeros(vec![co, ho, wo]);
        let x = input.as_slice();
        let w = self.weight.as_slice();
        let o = out.as_mut_slice();
        for c in 0..co {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = self.bias[c];
                    for ic in 0..ci {
                        for ky in 0..kh {
                            let iy = (oy * sh + ky) as i64 - ph as i64;
                            if iy < 0 || iy >= hi as i64 {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * sw + kx) as i64 - pw as i64;
                                if ix < 0 || ix >= wi as i64 {
                                    continue;
                                }
                                let wv = w[((c * ci + ic) * kh + ky) * kw + kx];
                                let xv = x[(ic * hi + iy as usize) * wi + ix as usize];
                                acc += wv * xv;
                            }
                        }
                    }
                    o[(c * ho + oy) * wo + ox] = acc;
                }
            }
        }
        out
    }

    fn vjp(&self, input: &Tensor<S>, _output: &Tensor<S>, grad_output: &Vector<S>) -> Vector<S> {
        check_input_shape("conv2d", &self.input_shape, input);
        let (ci, co) = (self.cfg.in_channels, self.cfg.out_channels);
        let (hi, wi) = self.cfg.input_hw;
        let (ho, wo) = self.cfg.output_hw();
        let (kh, kw) = self.cfg.kernel;
        let (sh, sw) = self.cfg.stride;
        let (ph, pw) = self.cfg.padding;

        let mut gx = Vector::zeros(ci * hi * wi);
        let g = grad_output.as_slice();
        let w = self.weight.as_slice();
        let gxs = gx.as_mut_slice();
        for c in 0..co {
            for oy in 0..ho {
                for ox in 0..wo {
                    let gv = g[(c * ho + oy) * wo + ox];
                    if gv == S::ZERO {
                        continue;
                    }
                    for ic in 0..ci {
                        for ky in 0..kh {
                            let iy = (oy * sh + ky) as i64 - ph as i64;
                            if iy < 0 || iy >= hi as i64 {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * sw + kx) as i64 - pw as i64;
                                if ix < 0 || ix >= wi as i64 {
                                    continue;
                                }
                                let wv = w[((c * ci + ic) * kh + ky) * kw + kx];
                                gxs[(ic * hi + iy as usize) * wi + ix as usize] += wv * gv;
                            }
                        }
                    }
                }
            }
        }
        gx
    }

    #[allow(clippy::needless_range_loop)] // iy/ix also feed the ky/kx arithmetic
    fn transposed_jacobian(&self, input: &Tensor<S>, _output: &Tensor<S>) -> Csr<S> {
        check_input_shape("conv2d", &self.input_shape, input);
        let (ci, co) = (self.cfg.in_channels, self.cfg.out_channels);
        let (hi, wi) = self.cfg.input_hw;
        let (ho, wo) = self.cfg.output_hw();
        let (kh, kw) = self.cfg.kernel;
        let (sh, sw) = self.cfg.stride;
        let (ph, pw) = self.cfg.padding;
        let w = self.weight.as_slice();

        // Pass 1 — analytic indptr (the generalization of Algorithm 2):
        // row (ic, iy, ix) has co · cnt(iy) · cnt(ix) entries.
        let rows = ci * hi * wi;
        let cnt_y: Vec<(usize, usize)> = (0..hi)
            .map(|iy| receptive_range(iy, ph, kh, sh, ho))
            .collect();
        let cnt_x: Vec<(usize, usize)> = (0..wi)
            .map(|ix| receptive_range(ix, pw, kw, sw, wo))
            .collect();
        let span = |(lo, hi_): (usize, usize)| hi_.saturating_sub(lo) + usize::from(lo <= hi_);

        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.push(0usize);
        let mut nnz = 0usize;
        for _ic in 0..ci {
            for iy in 0..hi {
                let ny = span(cnt_y[iy]);
                for ix in 0..wi {
                    nnz += co * ny * span(cnt_x[ix]);
                    indptr.push(nnz);
                }
            }
        }

        // Pass 2 — indices and data (Algorithms 3 and 4): emit in ascending
        // column order (co-major, then oy, then ox — all loops ascending).
        let mut indices = Vec::with_capacity(nnz);
        let mut data = Vec::with_capacity(nnz);
        for ic in 0..ci {
            for iy in 0..hi {
                let (oy_lo, oy_hi) = cnt_y[iy];
                for ix in 0..wi {
                    let (ox_lo, ox_hi) = cnt_x[ix];
                    for c in 0..co {
                        let mut oy = oy_lo;
                        while oy <= oy_hi && oy_lo <= oy_hi {
                            let ky = iy + ph - oy * sh;
                            let mut ox = ox_lo;
                            while ox <= ox_hi && ox_lo <= ox_hi {
                                let kx = ix + pw - ox * sw;
                                indices.push(((c * ho + oy) * wo + ox) as u32);
                                data.push(w[((c * ci + ic) * kh + ky) * kw + kx]);
                                ox += 1;
                            }
                            oy += 1;
                        }
                    }
                }
            }
        }
        Csr::from_parts_unchecked(rows, co * ho * wo, indptr, indices, data)
    }

    fn guaranteed_sparsity(&self) -> f64 {
        let total = (self.input_len() as f64) * (self.output_len() as f64);
        if total == 0.0 {
            return 0.0;
        }
        1.0 - self.jacobian_nnz() as f64 / total
    }

    fn param_len(&self) -> usize {
        self.weight.numel() + self.bias.len()
    }

    fn prunable_len(&self) -> usize {
        self.weight.numel()
    }

    fn params(&self) -> Vec<S> {
        let mut p = self.weight.as_slice().to_vec();
        p.extend_from_slice(self.bias.as_slice());
        p
    }

    fn set_params(&mut self, params: &[S]) {
        let wlen = self.weight.numel();
        assert_eq!(
            params.len(),
            wlen + self.bias.len(),
            "conv2d: wrong parameter count"
        );
        self.weight.as_mut_slice().copy_from_slice(&params[..wlen]);
        self.bias.as_mut_slice().copy_from_slice(&params[wlen..]);
    }

    fn param_grad(
        &self,
        input: &Tensor<S>,
        _output: &Tensor<S>,
        grad_output: &Vector<S>,
    ) -> Vec<S> {
        let (ci, co) = (self.cfg.in_channels, self.cfg.out_channels);
        let (hi, wi) = self.cfg.input_hw;
        let (ho, wo) = self.cfg.output_hw();
        let (kh, kw) = self.cfg.kernel;
        let (sh, sw) = self.cfg.stride;
        let (ph, pw) = self.cfg.padding;

        let mut gw = vec![S::ZERO; co * ci * kh * kw];
        let mut gb = vec![S::ZERO; co];
        let x = input.as_slice();
        let g = grad_output.as_slice();
        for c in 0..co {
            for oy in 0..ho {
                for ox in 0..wo {
                    let gv = g[(c * ho + oy) * wo + ox];
                    if gv == S::ZERO {
                        continue;
                    }
                    gb[c] += gv;
                    for ic in 0..ci {
                        for ky in 0..kh {
                            let iy = (oy * sh + ky) as i64 - ph as i64;
                            if iy < 0 || iy >= hi as i64 {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * sw + kx) as i64 - pw as i64;
                                if ix < 0 || ix >= wi as i64 {
                                    continue;
                                }
                                gw[((c * ci + ic) * kh + ky) * kw + kx] +=
                                    gv * x[(ic * hi + iy as usize) * wi + ix as usize];
                            }
                        }
                    }
                }
            }
        }
        gw.extend_from_slice(&gb);
        gw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobian::{
        check_operator_consistency, numerical_param_gradient, numerical_transposed_jacobian,
        transposed_jacobian_via_vjp,
    };
    use bppsa_tensor::init::seeded_rng;

    fn small_conv(cfg: Conv2dConfig, seed: u64) -> Conv2d<f64> {
        Conv2d::new(cfg, &mut seeded_rng(seed))
    }

    fn random_input(conv: &Conv2d<f64>, seed: u64) -> Tensor<f64> {
        init::uniform_tensor(&mut seeded_rng(seed), conv.input_shape().to_vec(), 1.0)
    }

    #[test]
    fn output_shape_formulas() {
        let cfg = Conv2dConfig {
            in_channels: 3,
            out_channels: 8,
            kernel: (3, 3),
            stride: (2, 2),
            padding: (1, 1),
            input_hw: (9, 9),
        };
        assert_eq!(cfg.output_hw(), (5, 5));
        let vgg = Conv2dConfig::vgg_style(3, 64, (32, 32));
        assert_eq!(vgg.output_hw(), (32, 32));
    }

    #[test]
    fn forward_known_values_identity_kernel() {
        // 1x1 kernel with weight 1: output == input.
        let cfg = Conv2dConfig {
            in_channels: 1,
            out_channels: 1,
            kernel: (1, 1),
            stride: (1, 1),
            padding: (0, 0),
            input_hw: (3, 3),
        };
        let conv = Conv2d::from_parts(
            cfg,
            Tensor::from_vec(vec![1, 1, 1, 1], vec![1.0f64]),
            Vector::zeros(1),
        );
        let x = Tensor::from_fn(vec![1, 3, 3], |i| i as f64);
        assert_eq!(conv.forward(&x).as_slice(), x.as_slice());
    }

    #[test]
    fn forward_sum_kernel_counts_neighbors() {
        // 3x3 all-ones kernel, pad 1: each output = sum of 3x3 neighborhood.
        let cfg = Conv2dConfig::vgg_style(1, 1, (3, 3));
        let conv = Conv2d::from_parts(
            cfg,
            Tensor::from_vec(vec![1, 1, 3, 3], vec![1.0f64; 9]),
            Vector::zeros(1),
        );
        let x = Tensor::from_vec(vec![1, 3, 3], vec![1.0f64; 9]);
        let y = conv.forward(&x);
        // Center sees 9 ones, edges 6, corners 4.
        assert_eq!(y.at(&[0, 1, 1]), 9.0);
        assert_eq!(y.at(&[0, 0, 1]), 6.0);
        assert_eq!(y.at(&[0, 0, 0]), 4.0);
    }

    #[test]
    fn jacobian_matches_vjp_columns_various_geometries() {
        let geometries = [
            Conv2dConfig::vgg_style(2, 3, (5, 4)),
            Conv2dConfig {
                in_channels: 1,
                out_channels: 2,
                kernel: (2, 2),
                stride: (2, 2),
                padding: (0, 0),
                input_hw: (4, 4),
            },
            Conv2dConfig {
                in_channels: 2,
                out_channels: 2,
                kernel: (3, 2),
                stride: (2, 1),
                padding: (1, 0),
                input_hw: (5, 5),
            },
            Conv2dConfig {
                in_channels: 1,
                out_channels: 1,
                kernel: (5, 5),
                stride: (1, 1),
                padding: (2, 2),
                input_hw: (6, 6),
            },
        ];
        for (i, cfg) in geometries.into_iter().enumerate() {
            let conv = small_conv(cfg, 100 + i as u64);
            let x = random_input(&conv, 200 + i as u64);
            let y = conv.forward(&x);
            let analytic = conv.transposed_jacobian(&x, &y);
            assert_eq!(analytic.validate(), Ok(()), "geometry {i}");
            let oracle = transposed_jacobian_via_vjp(&conv, &x, &y);
            let diff = analytic.to_dense().max_abs_diff(&oracle);
            assert!(diff < 1e-12, "geometry {i}: diff {diff}");
        }
    }

    #[test]
    fn jacobian_matches_finite_differences() {
        let conv = small_conv(Conv2dConfig::vgg_style(1, 2, (4, 4)), 7);
        let x = random_input(&conv, 8);
        let numeric = numerical_transposed_jacobian(&conv, &x, 1e-6);
        let analytic = conv.transposed_jacobian(&x, &conv.forward(&x)).to_dense();
        assert!(
            analytic.approx_eq(&numeric, 1e-6),
            "diff {}",
            analytic.max_abs_diff(&numeric)
        );
    }

    #[test]
    fn consistency_full_check() {
        let conv = small_conv(Conv2dConfig::vgg_style(2, 2, (4, 5)), 3);
        let x = random_input(&conv, 4);
        check_operator_consistency(&conv, &x, 1e-12);
    }

    #[test]
    fn nnz_closed_form_matches_generated() {
        for cfg in [
            Conv2dConfig::vgg_style(2, 3, (6, 5)),
            Conv2dConfig {
                in_channels: 1,
                out_channels: 2,
                kernel: (2, 3),
                stride: (2, 2),
                padding: (0, 1),
                input_hw: (5, 6),
            },
        ] {
            let conv = small_conv(cfg, 11);
            let x = random_input(&conv, 12);
            let j = conv.transposed_jacobian(&x, &conv.forward(&x));
            assert_eq!(conv.jacobian_nnz(), j.nnz());
        }
    }

    #[test]
    fn table1_first_vgg_conv_sparsity() {
        // Table 1 example: first VGG-11 conv on 32×32 images → 0.99157.
        let conv: Conv2d<f32> =
            Conv2d::new(Conv2dConfig::vgg_style(3, 64, (32, 32)), &mut seeded_rng(0));
        let s = conv.guaranteed_sparsity();
        assert!(
            (s - 0.99157).abs() < 5e-5,
            "sparsity {s} does not match Table 1's 0.99157"
        );
        // The closed-form estimate 1 − 9/1024 is close but not exact.
        assert!((conv.paper_sparsity_estimate() - (1.0 - 9.0 / 1024.0)).abs() < 1e-12);
    }

    #[test]
    fn jacobian_values_depend_only_on_weights() {
        // §4.2: values come from Algorithm 4 = filter weights only.
        let conv = small_conv(Conv2dConfig::vgg_style(1, 2, (4, 4)), 21);
        let x1 = random_input(&conv, 22);
        let x2 = random_input(&conv, 23);
        let j1 = conv.transposed_jacobian(&x1, &conv.forward(&x1));
        let j2 = conv.transposed_jacobian(&x2, &conv.forward(&x2));
        assert_eq!(j1, j2);
    }

    #[test]
    fn pruned_weights_shrink_jacobian() {
        let mut conv = small_conv(Conv2dConfig::vgg_style(2, 2, (5, 5)), 31);
        let x = random_input(&conv, 32);
        let before = conv.transposed_jacobian(&x, &conv.forward(&x));
        // Zero half the filter weights.
        {
            let w = conv.weight_mut().as_mut_slice();
            for v in w.iter_mut().step_by(2) {
                *v = 0.0;
            }
        }
        let after = conv.transposed_jacobian(&x, &conv.forward(&x));
        // Same guaranteed pattern, but pruning drops explicit zeros.
        assert!(after.same_pattern(&before));
        assert!(after.pruned().nnz() < before.pruned().nnz());
    }

    #[test]
    fn direct_pruned_generation_matches_prune_after() {
        let mut conv = small_conv(Conv2dConfig::vgg_style(2, 3, (6, 5)), 51);
        {
            let w = conv.weight_mut().as_mut_slice();
            for v in w.iter_mut().step_by(3) {
                *v = 0.0;
            }
        }
        let x = random_input(&conv, 52);
        let via_pattern = conv.transposed_jacobian(&x, &conv.forward(&x)).pruned();
        let direct = conv.transposed_jacobian_pruned();
        assert_eq!(direct.validate(), Ok(()));
        assert_eq!(direct, via_pattern);
    }

    #[test]
    fn param_grad_matches_finite_differences() {
        let conv = small_conv(Conv2dConfig::vgg_style(1, 2, (3, 3)), 41);
        let x = random_input(&conv, 42);
        let g = Vector::from_fn(Operator::<f64>::output_len(&conv), |i| {
            ((i % 5) as f64) * 0.3 - 0.6
        });
        let analytic = conv.param_grad(&x, &conv.forward(&x), &g);
        let numeric = numerical_param_gradient(&conv, &x, &g, 1e-6);
        for (k, (a, n)) in analytic.iter().zip(&numeric).enumerate() {
            assert!((a - n).abs() < 1e-5, "param {k}: {a} vs {n}");
        }
    }

    #[test]
    fn csr_memory_is_far_below_dense() {
        // §3.3's 768 MB → 6.5 MB argument, at reduced scale.
        let conv: Conv2d<f32> =
            Conv2d::new(Conv2dConfig::vgg_style(3, 16, (16, 16)), &mut seeded_rng(5));
        let x = init::uniform_tensor(&mut seeded_rng(6), vec![3, 16, 16], 1.0);
        let j = conv.transposed_jacobian(&x, &conv.forward(&x));
        let dense_bytes = j.rows() * j.cols() * std::mem::size_of::<f32>();
        // At 16×16 the CSR layout is ~15× smaller; the gap widens with
        // resolution (the paper's 32×32 example is ~118×).
        assert!(j.memory_bytes() * 10 < dense_bytes);
    }
}
