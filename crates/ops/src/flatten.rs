//! The flatten operator (e.g. between VGG/LeNet feature extractors and
//! their classifier heads). With row-major storage this is a data no-op, so
//! its transposed Jacobian is the identity matrix — the cheapest possible
//! scan element.

use crate::operator::{check_input_shape, Operator};
use bppsa_sparse::Csr;
use bppsa_tensor::{Scalar, Tensor, Vector};

/// Reshapes `(d₀, d₁, …)` tensors into 1-D vectors of the same length.
///
/// # Examples
///
/// ```
/// use bppsa_ops::{Flatten, Operator};
/// use bppsa_tensor::Tensor;
///
/// let f = Flatten::new(vec![2, 3]);
/// let y = f.forward(&Tensor::<f32>::zeros(vec![2, 3]));
/// assert_eq!(y.shape(), &[6]);
/// ```
#[derive(Debug, Clone)]
pub struct Flatten {
    input_shape: Vec<usize>,
    output_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten for inputs of the given shape.
    pub fn new(input_shape: impl Into<Vec<usize>>) -> Self {
        let input_shape = input_shape.into();
        let len: usize = input_shape.iter().product();
        Self {
            input_shape,
            output_shape: vec![len],
        }
    }
}

impl<S: Scalar> Operator<S> for Flatten {
    fn name(&self) -> &str {
        "flatten"
    }

    fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    fn output_shape(&self) -> &[usize] {
        &self.output_shape
    }

    fn forward(&self, input: &Tensor<S>) -> Tensor<S> {
        check_input_shape("flatten", &self.input_shape, input);
        input.reshaped(self.output_shape.clone())
    }

    fn vjp(&self, _input: &Tensor<S>, _output: &Tensor<S>, grad_output: &Vector<S>) -> Vector<S> {
        grad_output.clone()
    }

    fn transposed_jacobian(&self, _input: &Tensor<S>, _output: &Tensor<S>) -> Csr<S> {
        Csr::identity(self.output_shape[0])
    }

    fn guaranteed_sparsity(&self) -> f64 {
        let n = self.output_shape[0];
        if n == 0 {
            0.0
        } else {
            1.0 - 1.0 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobian::check_operator_consistency;

    #[test]
    fn forward_is_reshape_only() {
        let f = Flatten::new(vec![2, 2, 2]);
        let x = Tensor::from_fn(vec![2, 2, 2], |i| i as f64);
        let y = f.forward(&x);
        assert_eq!(y.shape(), &[8]);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn jacobian_is_identity() {
        let f = Flatten::new(vec![3, 2]);
        let x = Tensor::zeros(vec![3, 2]);
        let y = f.forward(&x);
        let j: Csr<f64> = f.transposed_jacobian(&x, &y);
        assert_eq!(j, Csr::identity(6));
    }

    #[test]
    fn consistency() {
        let f = Flatten::new(vec![2, 3]);
        let x = Tensor::from_fn(vec![2, 3], |i| (i as f64) * 0.5 - 1.0);
        check_operator_consistency(&f, &x, 0.0);
    }
}
