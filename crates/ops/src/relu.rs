//! The ReLU operator and its diagonal transposed Jacobian.
//!
//! Table 1: the ReLU Jacobian's guaranteed zeros are everything off the
//! diagonal — sparsity `1 − 1/(c·h·w)`. On-diagonal zeros (negative inputs)
//! are input-dependent "possible zeros" and stay in the CSR pattern
//! explicitly, keeping the pattern deterministic (§3.3).

use crate::operator::{check_input_shape, Operator};
use bppsa_sparse::Csr;
use bppsa_tensor::{Scalar, Tensor, Vector};

/// Elementwise rectified linear unit `y = max(x, 0)` over any tensor shape.
///
/// # Examples
///
/// ```
/// use bppsa_ops::{Operator, Relu};
/// use bppsa_tensor::Tensor;
///
/// let relu = Relu::new(vec![4]);
/// let y = relu.forward(&Tensor::from_vec(vec![4], vec![-1.0_f32, 2.0, -3.0, 4.0]));
/// assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Relu {
    shape: Vec<usize>,
}

impl Relu {
    /// Creates a ReLU over tensors of the given shape.
    pub fn new(shape: impl Into<Vec<usize>>) -> Self {
        Self {
            shape: shape.into(),
        }
    }
}

impl<S: Scalar> Operator<S> for Relu {
    fn name(&self) -> &str {
        "relu"
    }

    fn input_shape(&self) -> &[usize] {
        &self.shape
    }

    fn output_shape(&self) -> &[usize] {
        &self.shape
    }

    fn forward(&self, input: &Tensor<S>) -> Tensor<S> {
        check_input_shape("relu", &self.shape, input);
        input.map(|v| v.maximum(S::ZERO))
    }

    fn vjp(&self, input: &Tensor<S>, _output: &Tensor<S>, grad_output: &Vector<S>) -> Vector<S> {
        check_input_shape("relu", &self.shape, input);
        let xs = input.as_slice();
        Vector::from_fn(grad_output.len(), |i| {
            if xs[i] > S::ZERO {
                grad_output[i]
            } else {
                S::ZERO
            }
        })
    }

    fn transposed_jacobian(&self, input: &Tensor<S>, _output: &Tensor<S>) -> Csr<S> {
        check_input_shape("relu", &self.shape, input);
        let diag: Vec<S> = input
            .as_slice()
            .iter()
            .map(|&v| if v > S::ZERO { S::ONE } else { S::ZERO })
            .collect();
        Csr::from_diagonal(&diag)
    }

    fn guaranteed_sparsity(&self) -> f64 {
        let n: usize = self.shape.iter().product();
        if n == 0 {
            0.0
        } else {
            1.0 - 1.0 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobian::{check_operator_consistency, transposed_jacobian_via_vjp};

    fn sample_input() -> Tensor<f64> {
        Tensor::from_vec(vec![2, 3], vec![1.0, -2.0, 0.0, 3.5, -0.1, 2.0])
    }

    #[test]
    fn forward_clamps_negatives_and_zero_stays() {
        let relu = Relu::new(vec![2, 3]);
        let y = relu.forward(&sample_input());
        assert_eq!(y.as_slice(), &[1.0, 0.0, 0.0, 3.5, 0.0, 2.0]);
    }

    #[test]
    fn jacobian_is_diagonal_indicator() {
        let relu = Relu::new(vec![2, 3]);
        let x = sample_input();
        let y = relu.forward(&x);
        let j = relu.transposed_jacobian(&x, &y);
        assert_eq!(j.shape(), (6, 6));
        // Pattern is the full diagonal (6 stored entries), values are 0/1.
        assert_eq!(j.nnz(), 6);
        assert_eq!(j.get(0, 0), 1.0);
        assert_eq!(j.get(1, 1), 0.0); // negative input: possible zero, stored
        assert_eq!(j.get(2, 2), 0.0); // zero input: subgradient 0
    }

    #[test]
    fn vjp_matches_jacobian_and_autograd_column_extraction() {
        let relu = Relu::new(vec![2, 3]);
        let x = sample_input();
        let y = relu.forward(&x);
        let jt = relu.transposed_jacobian(&x, &y);
        let jt_cols = transposed_jacobian_via_vjp(&relu, &x, &y);
        assert!(jt.to_dense().approx_eq(&jt_cols, 1e-12));
    }

    #[test]
    fn operator_consistency_holds() {
        let relu = Relu::new(vec![5]);
        let x = Tensor::from_vec(vec![5], vec![0.3, -0.7, 1.2, -0.01, 0.5]);
        check_operator_consistency(&relu, &x, 1e-9);
    }

    #[test]
    fn guaranteed_sparsity_formula_matches_table1() {
        // VGG-11 first ReLU on 32x32: c=64, h=w=32 → 1 − 1/(64·32·32) ≈ 0.99998.
        let relu = Relu::new(vec![64, 32, 32]);
        let s = Operator::<f32>::guaranteed_sparsity(&relu);
        assert!((s - (1.0 - 1.0 / 65536.0)).abs() < 1e-12);
        assert!(s > 0.99998);
    }

    #[test]
    fn pattern_is_input_independent() {
        let relu = Relu::new(vec![4]);
        let x1 = Tensor::from_vec(vec![4], vec![1.0, -1.0, 2.0, -2.0]);
        let x2 = Tensor::from_vec(vec![4], vec![-9.0, 3.0, 0.0, 7.0]);
        let j1 = relu.transposed_jacobian(&x1, &relu.forward(&x1));
        let j2 = relu.transposed_jacobian(&x2, &relu.forward(&x2));
        assert!(
            j1.same_pattern(&j2),
            "deterministic pattern required (§3.3)"
        );
    }
}
