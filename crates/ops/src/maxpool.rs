//! The 2-D max-pooling operator.
//!
//! Its transposed Jacobian is a *selection* matrix: within each pooling
//! window, the argmax input gets 1 and everything else 0. The guaranteed-
//! nonzero pattern — every (window member, output) pair of the same channel —
//! is deterministic (Table 1: sparsity `1 − h_f·w_f / (c_i·h_i·w_i)`), while
//! which member is the argmax is an input-dependent "possible zero" kept
//! explicitly (§3.3).

use crate::geometry::{receptive_range, span};
use crate::operator::{check_input_shape, Operator};
use bppsa_sparse::Csr;
use bppsa_tensor::{Scalar, Tensor, Vector};

/// Max pooling over `(c, h, w)` tensors with no padding.
///
/// Ties are broken toward the first element in row-major window order —
/// deterministically, so `vjp` and `transposed_jacobian` always agree.
///
/// # Examples
///
/// ```
/// use bppsa_ops::{MaxPool2d, Operator};
/// use bppsa_tensor::Tensor;
///
/// let pool = MaxPool2d::new(1, (2, 2), (2, 2), (4, 4));
/// let x = Tensor::from_fn(vec![1, 4, 4], |i| i as f32);
/// let y = pool.forward(&x);
/// assert_eq!(y.shape(), &[1, 2, 2]);
/// assert_eq!(y.at(&[0, 1, 1]), 15.0);
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    channels: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    input_hw: (usize, usize),
    input_shape: Vec<usize>,
    output_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the input.
    pub fn new(
        channels: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        input_hw: (usize, usize),
    ) -> Self {
        let (hi, wi) = input_hw;
        let (kh, kw) = kernel;
        assert!(
            kh <= hi && kw <= wi,
            "maxpool: kernel {kernel:?} larger than input {input_hw:?}"
        );
        let ho = (hi - kh) / stride.0 + 1;
        let wo = (wi - kw) / stride.1 + 1;
        Self {
            channels,
            kernel,
            stride,
            input_hw,
            input_shape: vec![channels, hi, wi],
            output_shape: vec![channels, ho, wo],
        }
    }

    /// Output spatial size `(h_o, w_o)`.
    pub fn output_hw(&self) -> (usize, usize) {
        (self.output_shape[1], self.output_shape[2])
    }

    /// Row-major argmax position `(iy, ix)` of the window of output
    /// `(c, oy, ox)` — first occurrence wins ties.
    fn argmax<S: Scalar>(&self, x: &Tensor<S>, c: usize, oy: usize, ox: usize) -> (usize, usize) {
        let (kh, kw) = self.kernel;
        let (sh, sw) = self.stride;
        let mut best = (oy * sh, ox * sw);
        let mut best_v = x.at(&[c, best.0, best.1]);
        for ky in 0..kh {
            for kx in 0..kw {
                let (iy, ix) = (oy * sh + ky, ox * sw + kx);
                let v = x.at(&[c, iy, ix]);
                if v > best_v {
                    best_v = v;
                    best = (iy, ix);
                }
            }
        }
        best
    }
}

impl<S: Scalar> Operator<S> for MaxPool2d {
    fn name(&self) -> &str {
        "maxpool2d"
    }

    fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    fn output_shape(&self) -> &[usize] {
        &self.output_shape
    }

    fn forward(&self, input: &Tensor<S>) -> Tensor<S> {
        check_input_shape("maxpool2d", &self.input_shape, input);
        let (ho, wo) = self.output_hw();
        let (kh, kw) = self.kernel;
        let (sh, sw) = self.stride;
        let mut out = Tensor::zeros(self.output_shape.clone());
        for c in 0..self.channels {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut m = S::NEG_INFINITY;
                    for ky in 0..kh {
                        for kx in 0..kw {
                            m = m.maximum(input.at(&[c, oy * sh + ky, ox * sw + kx]));
                        }
                    }
                    *out.at_mut(&[c, oy, ox]) = m;
                }
            }
        }
        out
    }

    fn vjp(&self, input: &Tensor<S>, _output: &Tensor<S>, grad_output: &Vector<S>) -> Vector<S> {
        check_input_shape("maxpool2d", &self.input_shape, input);
        let (ho, wo) = self.output_hw();
        let (hi, wi) = self.input_hw;
        let mut gx = Vector::zeros(self.channels * hi * wi);
        for c in 0..self.channels {
            for oy in 0..ho {
                for ox in 0..wo {
                    let g = grad_output[(c * ho + oy) * wo + ox];
                    let (iy, ix) = self.argmax(input, c, oy, ox);
                    gx[(c * hi + iy) * wi + ix] += g;
                }
            }
        }
        gx
    }

    fn transposed_jacobian(&self, input: &Tensor<S>, _output: &Tensor<S>) -> Csr<S> {
        check_input_shape("maxpool2d", &self.input_shape, input);
        let (hi, wi) = self.input_hw;
        let (ho, wo) = self.output_hw();
        let (kh, kw) = self.kernel;
        let (sh, sw) = self.stride;

        // Precompute argmaxes once per output.
        let mut argmaxes = vec![(0usize, 0usize); self.channels * ho * wo];
        for c in 0..self.channels {
            for oy in 0..ho {
                for ox in 0..wo {
                    argmaxes[(c * ho + oy) * wo + ox] = self.argmax(input, c, oy, ox);
                }
            }
        }

        let rows = self.channels * hi * wi;
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices: Vec<u32> = Vec::new();
        let mut data: Vec<S> = Vec::new();
        indptr.push(0);
        for c in 0..self.channels {
            for iy in 0..hi {
                let ry = receptive_range(iy, 0, kh, sh, ho);
                for ix in 0..wi {
                    let rx = receptive_range(ix, 0, kw, sw, wo);
                    if span(ry) > 0 && span(rx) > 0 {
                        for oy in ry.0..=ry.1 {
                            for ox in rx.0..=rx.1 {
                                let col = (c * ho + oy) * wo + ox;
                                indices.push(col as u32);
                                let v = if argmaxes[col] == (iy, ix) {
                                    S::ONE
                                } else {
                                    S::ZERO
                                };
                                data.push(v);
                            }
                        }
                    }
                    indptr.push(indices.len());
                }
            }
        }
        Csr::from_parts_unchecked(rows, self.channels * ho * wo, indptr, indices, data)
    }

    fn guaranteed_sparsity(&self) -> f64 {
        // Exact: nnz = c·h_o·w_o·k_h·k_w over (c·h_i·w_i)·(c·h_o·w_o).
        let (kh, kw) = self.kernel;
        let (hi, wi) = self.input_hw;
        let denom = (self.channels * hi * wi) as f64;
        if denom == 0.0 {
            0.0
        } else {
            1.0 - (kh * kw) as f64 / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobian::{check_operator_consistency, transposed_jacobian_via_vjp};
    use bppsa_tensor::init::{seeded_rng, uniform_tensor};

    #[test]
    fn forward_picks_window_max() {
        let pool = MaxPool2d::new(1, (2, 2), (2, 2), (4, 4));
        let x = Tensor::from_vec(
            vec![1, 4, 4],
            vec![
                1.0f64, 2.0, 0.0, 0.0, //
                3.0, 4.0, 0.0, 5.0, //
                -1.0, -2.0, -3.0, -4.0, //
                -5.0, -6.0, -7.0, -8.0,
            ],
        );
        let y = pool.forward(&x);
        assert_eq!(y.as_slice(), &[4.0, 5.0, -1.0, -3.0]);
    }

    #[test]
    fn vjp_routes_gradient_to_argmax() {
        let pool = MaxPool2d::new(1, (2, 2), (2, 2), (2, 2));
        let x = Tensor::from_vec(vec![1, 2, 2], vec![1.0f64, 9.0, 3.0, 4.0]);
        let y = pool.forward(&x);
        let g = pool.vjp(&x, &y, &Vector::from_vec(vec![2.5]));
        assert_eq!(g.as_slice(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn ties_break_to_first_in_row_major_order() {
        let pool = MaxPool2d::new(1, (2, 2), (2, 2), (2, 2));
        let x = Tensor::from_vec(vec![1, 2, 2], vec![7.0f64, 7.0, 7.0, 7.0]);
        let y = pool.forward(&x);
        let g = pool.vjp(&x, &y, &Vector::from_vec(vec![1.0]));
        assert_eq!(g.as_slice(), &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn jacobian_matches_vjp_columns() {
        let pool = MaxPool2d::new(2, (2, 2), (2, 2), (4, 6));
        let x = uniform_tensor(&mut seeded_rng(1), vec![2, 4, 6], 1.0);
        let y = pool.forward(&x);
        let analytic = pool.transposed_jacobian(&x, &y);
        assert_eq!(analytic.validate(), Ok(()));
        let oracle = transposed_jacobian_via_vjp(&pool, &x, &y);
        assert!(analytic.to_dense().approx_eq(&oracle, 0.0));
    }

    #[test]
    fn overlapping_windows_supported() {
        // 3x3 kernel stride 1: inputs participate in several windows.
        let pool = MaxPool2d::new(1, (3, 3), (1, 1), (5, 5));
        let x: Tensor<f64> = uniform_tensor(&mut seeded_rng(2), vec![1, 5, 5], 1.0);
        check_operator_consistency(&pool, &x, 0.0);
    }

    #[test]
    fn consistency_checks() {
        let pool = MaxPool2d::new(3, (2, 2), (2, 2), (6, 6));
        let x: Tensor<f64> = uniform_tensor(&mut seeded_rng(3), vec![3, 6, 6], 1.0);
        check_operator_consistency(&pool, &x, 0.0);
    }

    #[test]
    fn table1_first_vgg_maxpool_sparsity() {
        // Table 1 example: max-pool after the first VGG conv block:
        // 64×32×32 input, 2×2 kernel → 1 − 4/65536 ≈ 0.99994.
        let pool = MaxPool2d::new(64, (2, 2), (2, 2), (32, 32));
        let s = Operator::<f32>::guaranteed_sparsity(&pool);
        assert!((s - (1.0 - 4.0 / 65536.0)).abs() < 1e-9);
        assert!(s > 0.99993 && s < 0.99995);
    }

    #[test]
    fn pattern_is_input_independent() {
        let pool = MaxPool2d::new(1, (2, 2), (2, 2), (4, 4));
        let x1 = uniform_tensor(&mut seeded_rng(4), vec![1, 4, 4], 1.0);
        let x2 = uniform_tensor(&mut seeded_rng(5), vec![1, 4, 4], 1.0);
        let j1: Csr<f64> = pool.transposed_jacobian(&x1, &pool.forward(&x1));
        let j2: Csr<f64> = pool.transposed_jacobian(&x2, &pool.forward(&x2));
        assert!(j1.same_pattern(&j2));
        // But values (argmax selections) may differ.
        assert_eq!(j1.nnz(), 16);
    }

    #[test]
    fn uncovered_inputs_have_empty_rows() {
        // 5-wide input, 2x2 stride-2 pool: last row/col never pooled.
        let pool = MaxPool2d::new(1, (2, 2), (2, 2), (5, 5));
        let x = uniform_tensor(&mut seeded_rng(6), vec![1, 5, 5], 1.0);
        let j: Csr<f64> = pool.transposed_jacobian(&x, &pool.forward(&x));
        assert_eq!(j.validate(), Ok(()));
        // Input (4,4) flat index 24 participates in no window.
        assert_eq!(j.row_nnz(24), 0);
    }
}
