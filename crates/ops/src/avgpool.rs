//! The 2-D average-pooling operator (LeNet-5's original subsampling layer).
//!
//! Unlike max-pooling, every entry of its transposed Jacobian's guaranteed
//! pattern is a guaranteed *constant* `1/(k_h·k_w)` — no input-dependent
//! zeros at all, the friendliest case for the symbolic SpGEMM split.

use crate::geometry::{receptive_range, span};
use crate::operator::{check_input_shape, Operator};
use bppsa_sparse::Csr;
use bppsa_tensor::{Scalar, Tensor, Vector};

/// Average pooling over `(c, h, w)` tensors with no padding.
///
/// # Examples
///
/// ```
/// use bppsa_ops::{AvgPool2d, Operator};
/// use bppsa_tensor::Tensor;
///
/// let pool = AvgPool2d::new(1, (2, 2), (2, 2), (2, 2));
/// let y = pool.forward(&Tensor::from_vec(vec![1, 2, 2], vec![1.0_f32, 2.0, 3.0, 6.0]));
/// assert_eq!(y.as_slice(), &[3.0]);
/// ```
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    channels: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    input_hw: (usize, usize),
    input_shape: Vec<usize>,
    output_shape: Vec<usize>,
}

impl AvgPool2d {
    /// Creates an average-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the input.
    pub fn new(
        channels: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        input_hw: (usize, usize),
    ) -> Self {
        let (hi, wi) = input_hw;
        let (kh, kw) = kernel;
        assert!(
            kh <= hi && kw <= wi,
            "avgpool: kernel {kernel:?} larger than input {input_hw:?}"
        );
        let ho = (hi - kh) / stride.0 + 1;
        let wo = (wi - kw) / stride.1 + 1;
        Self {
            channels,
            kernel,
            stride,
            input_hw,
            input_shape: vec![channels, hi, wi],
            output_shape: vec![channels, ho, wo],
        }
    }

    fn inv_window<S: Scalar>(&self) -> S {
        S::ONE / S::from_usize(self.kernel.0 * self.kernel.1)
    }
}

impl<S: Scalar> Operator<S> for AvgPool2d {
    fn name(&self) -> &str {
        "avgpool2d"
    }

    fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    fn output_shape(&self) -> &[usize] {
        &self.output_shape
    }

    fn forward(&self, input: &Tensor<S>) -> Tensor<S> {
        check_input_shape("avgpool2d", &self.input_shape, input);
        let (ho, wo) = (self.output_shape[1], self.output_shape[2]);
        let (kh, kw) = self.kernel;
        let (sh, sw) = self.stride;
        let inv = self.inv_window::<S>();
        let mut out = Tensor::zeros(self.output_shape.clone());
        for c in 0..self.channels {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = S::ZERO;
                    for ky in 0..kh {
                        for kx in 0..kw {
                            acc += input.at(&[c, oy * sh + ky, ox * sw + kx]);
                        }
                    }
                    *out.at_mut(&[c, oy, ox]) = acc * inv;
                }
            }
        }
        out
    }

    fn vjp(&self, input: &Tensor<S>, _output: &Tensor<S>, grad_output: &Vector<S>) -> Vector<S> {
        check_input_shape("avgpool2d", &self.input_shape, input);
        let (ho, wo) = (self.output_shape[1], self.output_shape[2]);
        let (hi, wi) = self.input_hw;
        let (kh, kw) = self.kernel;
        let (sh, sw) = self.stride;
        let inv = self.inv_window::<S>();
        let mut gx = Vector::zeros(self.channels * hi * wi);
        for c in 0..self.channels {
            for oy in 0..ho {
                for ox in 0..wo {
                    let g = grad_output[(c * ho + oy) * wo + ox] * inv;
                    for ky in 0..kh {
                        for kx in 0..kw {
                            gx[(c * hi + oy * sh + ky) * wi + ox * sw + kx] += g;
                        }
                    }
                }
            }
        }
        gx
    }

    fn transposed_jacobian(&self, input: &Tensor<S>, _output: &Tensor<S>) -> Csr<S> {
        check_input_shape("avgpool2d", &self.input_shape, input);
        let (hi, wi) = self.input_hw;
        let (ho, wo) = (self.output_shape[1], self.output_shape[2]);
        let (kh, kw) = self.kernel;
        let (sh, sw) = self.stride;
        let inv = self.inv_window::<S>();

        let rows = self.channels * hi * wi;
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices: Vec<u32> = Vec::new();
        let mut data: Vec<S> = Vec::new();
        indptr.push(0);
        for c in 0..self.channels {
            for iy in 0..hi {
                let ry = receptive_range(iy, 0, kh, sh, ho);
                for ix in 0..wi {
                    let rx = receptive_range(ix, 0, kw, sw, wo);
                    if span(ry) > 0 && span(rx) > 0 {
                        for oy in ry.0..=ry.1 {
                            for ox in rx.0..=rx.1 {
                                indices.push(((c * ho + oy) * wo + ox) as u32);
                                data.push(inv);
                            }
                        }
                    }
                    indptr.push(indices.len());
                }
            }
        }
        Csr::from_parts_unchecked(rows, self.channels * ho * wo, indptr, indices, data)
    }

    fn guaranteed_sparsity(&self) -> f64 {
        let (kh, kw) = self.kernel;
        let (hi, wi) = self.input_hw;
        let denom = (self.channels * hi * wi) as f64;
        if denom == 0.0 {
            0.0
        } else {
            1.0 - (kh * kw) as f64 / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobian::{check_operator_consistency, numerical_transposed_jacobian};
    use bppsa_tensor::init::{seeded_rng, uniform_tensor};

    #[test]
    fn forward_averages_window() {
        let pool = AvgPool2d::new(1, (2, 2), (2, 2), (4, 4));
        let x = Tensor::from_fn(vec![1, 4, 4], |i| i as f64);
        let y = pool.forward(&x);
        // Window [0,1,4,5] → 2.5.
        assert_eq!(y.at(&[0, 0, 0]), 2.5);
    }

    #[test]
    fn jacobian_matches_finite_differences() {
        let pool = AvgPool2d::new(2, (2, 2), (2, 2), (4, 4));
        let x = uniform_tensor(&mut seeded_rng(1), vec![2, 4, 4], 1.0);
        let analytic = Operator::<f64>::transposed_jacobian(&pool, &x, &pool.forward(&x));
        let numeric = numerical_transposed_jacobian(&pool, &x, 1e-6);
        assert!(analytic.to_dense().approx_eq(&numeric, 1e-8));
    }

    #[test]
    fn consistency_overlapping() {
        let pool = AvgPool2d::new(1, (3, 3), (1, 1), (5, 4));
        let x: Tensor<f64> = uniform_tensor(&mut seeded_rng(2), vec![1, 5, 4], 1.0);
        check_operator_consistency(&pool, &x, 1e-12);
    }

    #[test]
    fn jacobian_values_are_constant() {
        let pool = AvgPool2d::new(1, (2, 2), (2, 2), (4, 4));
        let x = uniform_tensor(&mut seeded_rng(3), vec![1, 4, 4], 1.0);
        let j: Csr<f64> = pool.transposed_jacobian(&x, &pool.forward(&x));
        assert!(j.data().iter().all(|&v| v == 0.25));
    }

    #[test]
    fn sparsity_matches_maxpool_formula() {
        let pool = AvgPool2d::new(16, (2, 2), (2, 2), (8, 8));
        let s = Operator::<f32>::guaranteed_sparsity(&pool);
        assert!((s - (1.0 - 4.0 / 1024.0)).abs() < 1e-12);
    }
}
