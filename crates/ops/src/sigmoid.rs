//! The logistic-sigmoid operator (the activation of LeCun-era networks; the
//! original LeNet-5 used squashing nonlinearities rather than ReLU). Its
//! transposed Jacobian is the dense diagonal `diag(y·(1 − y))`.

use crate::operator::{check_input_shape, Operator};
use bppsa_sparse::Csr;
use bppsa_tensor::{Scalar, Tensor, Vector};

/// Elementwise logistic sigmoid `y = 1 / (1 + e^{−x})`.
///
/// # Examples
///
/// ```
/// use bppsa_ops::{Operator, Sigmoid};
/// use bppsa_tensor::Tensor;
///
/// let s = Sigmoid::new(vec![2]);
/// let y = s.forward(&Tensor::from_vec(vec![2], vec![0.0_f64, 100.0]));
/// assert!((y.at(&[0]) - 0.5).abs() < 1e-12);
/// assert!((y.at(&[1]) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Sigmoid {
    shape: Vec<usize>,
}

impl Sigmoid {
    /// Creates a sigmoid over tensors of the given shape.
    pub fn new(shape: impl Into<Vec<usize>>) -> Self {
        Self {
            shape: shape.into(),
        }
    }
}

fn sigmoid<S: Scalar>(x: S) -> S {
    // Numerically-stable split on the sign.
    if x >= S::ZERO {
        S::ONE / (S::ONE + (-x).exp())
    } else {
        let e = x.exp();
        e / (S::ONE + e)
    }
}

impl<S: Scalar> Operator<S> for Sigmoid {
    fn name(&self) -> &str {
        "sigmoid"
    }

    fn input_shape(&self) -> &[usize] {
        &self.shape
    }

    fn output_shape(&self) -> &[usize] {
        &self.shape
    }

    fn forward(&self, input: &Tensor<S>) -> Tensor<S> {
        check_input_shape("sigmoid", &self.shape, input);
        input.map(sigmoid)
    }

    fn vjp(&self, _input: &Tensor<S>, output: &Tensor<S>, grad_output: &Vector<S>) -> Vector<S> {
        let ys = output.as_slice();
        Vector::from_fn(grad_output.len(), |i| {
            ys[i] * (S::ONE - ys[i]) * grad_output[i]
        })
    }

    fn transposed_jacobian(&self, _input: &Tensor<S>, output: &Tensor<S>) -> Csr<S> {
        let diag: Vec<S> = output
            .as_slice()
            .iter()
            .map(|&y| y * (S::ONE - y))
            .collect();
        Csr::from_diagonal(&diag)
    }

    fn guaranteed_sparsity(&self) -> f64 {
        let n: usize = self.shape.iter().product();
        if n == 0 {
            0.0
        } else {
            1.0 - 1.0 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobian::{check_operator_consistency, numerical_transposed_jacobian};

    #[test]
    fn forward_is_bounded_and_monotone() {
        let s = Sigmoid::new(vec![5]);
        let x = Tensor::from_vec(vec![5], vec![-10.0f64, -1.0, 0.0, 1.0, 10.0]);
        let y = s.forward(&x);
        let ys = y.as_slice();
        assert!(ys.windows(2).all(|w| w[0] < w[1]));
        assert!(ys.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!((ys[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stable_at_extreme_inputs() {
        let s = Sigmoid::new(vec![2]);
        let x = Tensor::from_vec(vec![2], vec![-700.0f64, 700.0]);
        let y = s.forward(&x);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        assert!(y.at(&[0]) >= 0.0 && y.at(&[1]) <= 1.0);
    }

    #[test]
    fn jacobian_matches_finite_differences() {
        let s = Sigmoid::new(vec![4]);
        let x = Tensor::from_vec(vec![4], vec![0.2, -0.9, 1.7, 0.0]);
        let y = s.forward(&x);
        let analytic = s.transposed_jacobian(&x, &y).to_dense();
        let numeric = numerical_transposed_jacobian(&s, &x, 1e-6);
        assert!(analytic.approx_eq(&numeric, 1e-6));
    }

    #[test]
    fn consistency() {
        let s = Sigmoid::new(vec![2, 3]);
        let x = Tensor::from_fn(vec![2, 3], |i| (i as f64) * 0.4 - 1.0);
        check_operator_consistency(&s, &x, 1e-12);
    }

    #[test]
    fn derivative_peaks_at_quarter() {
        let s = Sigmoid::new(vec![1]);
        let x = Tensor::from_vec(vec![1], vec![0.0f64]);
        let y = s.forward(&x);
        let j = s.transposed_jacobian(&x, &y);
        assert!((j.get(0, 0) - 0.25).abs() < 1e-12);
    }
}
