//! Jacobian extraction baselines and verification oracles.
//!
//! [`transposed_jacobian_via_vjp`] is the paper's Table 1 baseline:
//! "generating the transposed Jacobian through PyTorch's Autograd one column
//! at a time" — one VJP with a one-hot seed per output element. It is both
//! the performance baseline for the analytic generators (8.3×10³–1.2×10⁶×
//! slower in the paper) and a correctness oracle for them.
//!
//! [`numerical_transposed_jacobian`] is an independent central-difference
//! oracle that validates the forward/backward pair itself.

use crate::Operator;
use bppsa_tensor::{Matrix, Scalar, Tensor, Vector};

/// Extracts the transposed Jacobian `(∂y/∂x)ᵀ` densely, one column per
/// output element, via repeated VJPs with one-hot seeds.
///
/// Column `o` of `(∂y/∂x)ᵀ` equals `(∂y/∂x)ᵀ · e_o`, i.e. one `vjp` call.
/// Complexity: `output_len` backward passes — the cost the paper's analytic
/// generators eliminate.
pub fn transposed_jacobian_via_vjp<S: Scalar>(
    op: &dyn Operator<S>,
    input: &Tensor<S>,
    output: &Tensor<S>,
) -> Matrix<S> {
    let (rows, cols) = (op.input_len(), op.output_len());
    let mut jt = Matrix::zeros(rows, cols);
    for o in 0..cols {
        let seed = Vector::one_hot(cols, o);
        let col = op.vjp(input, output, &seed);
        for i in 0..rows {
            jt.set(i, o, col[i]);
        }
    }
    jt
}

/// Extracts `(∂y/∂x)ᵀ` by central finite differences on `forward`.
///
/// Independent of `vjp`, so it can falsify a consistent-but-wrong
/// forward/backward pair. `eps` is the probe step (≈1e-6 for `f64`).
///
/// Note: only meaningful where `forward` is differentiable; at kinks (ReLU
/// at 0, pooling ties) the central difference straddles the kink.
pub fn numerical_transposed_jacobian<S: Scalar>(
    op: &dyn Operator<S>,
    input: &Tensor<S>,
    eps: f64,
) -> Matrix<S> {
    let (rows, cols) = (op.input_len(), op.output_len());
    let mut jt = Matrix::zeros(rows, cols);
    let half = S::from_f64(eps);
    let two = S::from_f64(2.0 * eps);
    for i in 0..rows {
        let mut plus = input.clone();
        plus.as_mut_slice()[i] += half;
        let mut minus = input.clone();
        minus.as_mut_slice()[i] -= half;
        let y_plus = op.forward(&plus);
        let y_minus = op.forward(&minus);
        for o in 0..cols {
            jt.set(i, o, (y_plus.as_slice()[o] - y_minus.as_slice()[o]) / two);
        }
    }
    jt
}

/// Extracts the parameter gradient by central finite differences on the
/// scalar objective `⟨grad_output, f(x; θ)⟩`, whose exact gradient w.r.t. θ
/// is `(∂y/∂θ)ᵀ · grad_output` — precisely what [`Operator::param_grad`]
/// computes.
pub fn numerical_param_gradient<S: Scalar>(
    op: &(impl Operator<S> + Clone),
    input: &Tensor<S>,
    grad_output: &Vector<S>,
    eps: f64,
) -> Vec<S> {
    let theta = op.params();
    let mut grad = Vec::with_capacity(theta.len());
    let objective = |op: &dyn Operator<S>| -> S {
        let y = op.forward(input);
        y.as_slice()
            .iter()
            .zip(grad_output.as_slice())
            .map(|(&a, &b)| a * b)
            .sum()
    };
    for p in 0..theta.len() {
        let mut plus = op.clone();
        let mut tp = theta.clone();
        tp[p] += S::from_f64(eps);
        plus.set_params(&tp);

        let mut minus = op.clone();
        let mut tm = theta.clone();
        tm[p] -= S::from_f64(eps);
        minus.set_params(&tm);

        grad.push((objective(&plus) - objective(&minus)) / S::from_f64(2.0 * eps));
    }
    grad
}

/// Asserts the three backward paths of an operator agree at `input`:
/// `vjp`, the analytic CSR transposed Jacobian, and the VJP-column
/// extraction, all within `tol` (in `S`'s precision).
///
/// # Panics
///
/// Panics with a diagnostic message if any pair disagrees beyond `tol`.
pub fn check_operator_consistency<S: Scalar>(op: &dyn Operator<S>, input: &Tensor<S>, tol: f64) {
    let output = op.forward(input);
    let tol = S::from_f64(tol);

    let jt_analytic = op.transposed_jacobian(input, &output);
    assert_eq!(
        jt_analytic.shape(),
        (op.input_len(), op.output_len()),
        "{}: transposed Jacobian has wrong shape",
        op.name()
    );
    assert_eq!(
        jt_analytic.validate(),
        Ok(()),
        "{}: transposed Jacobian CSR invalid",
        op.name()
    );

    let jt_columns = transposed_jacobian_via_vjp(op, input, &output);
    let diff = jt_analytic.to_dense().max_abs_diff(&jt_columns);
    assert!(
        diff <= tol,
        "{}: analytic vs VJP-column Jacobian differ by {diff}",
        op.name()
    );

    // Spot-check vjp against an explicit J^T·g product with a dense seed.
    let g = Vector::from_fn(op.output_len(), |i| {
        S::from_f64(((i % 7) as f64) * 0.25 - 0.5)
    });
    let via_vjp = op.vjp(input, &output, &g);
    let via_jac = jt_analytic.spmv(&g);
    let diff = via_vjp.max_abs_diff(&via_jac);
    assert!(diff <= tol, "{}: vjp vs J^T·g differ by {diff}", op.name());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Relu;

    #[test]
    fn via_vjp_shape_is_input_by_output() {
        let relu = Relu::new(vec![3]);
        let x = Tensor::from_vec(vec![3], vec![1.0f64, -1.0, 2.0]);
        let y = Operator::<f64>::forward(&relu, &x);
        let jt = transposed_jacobian_via_vjp(&relu, &x, &y);
        assert_eq!(jt.shape(), (3, 3));
        assert_eq!(jt.get(0, 0), 1.0);
        assert_eq!(jt.get(1, 1), 0.0);
    }

    #[test]
    fn numerical_jacobian_of_relu_away_from_kink() {
        let relu = Relu::new(vec![2]);
        let x = Tensor::from_vec(vec![2], vec![0.5f64, -0.5]);
        let numeric = numerical_transposed_jacobian(&relu, &x, 1e-6);
        assert!((numeric.get(0, 0) - 1.0).abs() < 1e-9);
        assert!(numeric.get(1, 1).abs() < 1e-9);
    }
}
