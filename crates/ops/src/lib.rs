//! # bppsa-ops — NN operators with analytic sparse transposed Jacobians
//!
//! The operator library of the BPPSA reproduction: forward passes, classic
//! VJP backward passes (the PyTorch-Autograd/cuDNN baseline), and — the
//! paper's §3.4 contribution — **analytic generation of each operator's
//! transposed Jacobian directly in CSR form**, generalizing Algorithms 2–4
//! beyond the 3×3/padding-1 convolution they present.
//!
//! The paper frames this as what a BPPSA-native framework would need:
//! "an equivalent of the cuDNN library which possesses a *sparse transposed
//! Jacobian operator* in place of a backward operator for each forward
//! operator". The [`Operator`] trait is that interface.
//!
//! Operators provided: [`Conv2d`], [`Linear`], [`Relu`], [`Tanh`],
//! [`MaxPool2d`], [`AvgPool2d`], [`Flatten`]; losses: [`SoftmaxCrossEntropy`]
//! and [`MseLoss`]; plus the Table 1 baseline and oracles in [`jacobian`].
//!
//! ## Example: Table 1 in four lines
//!
//! ```
//! use bppsa_ops::{Conv2d, Conv2dConfig, Operator};
//! use bppsa_tensor::init::seeded_rng;
//!
//! let conv = Conv2d::<f32>::new(Conv2dConfig::vgg_style(3, 64, (32, 32)), &mut seeded_rng(0));
//! // The first VGG-11 convolution's Jacobian is 99.157% guaranteed zeros.
//! assert!((conv.guaranteed_sparsity() - 0.99157).abs() < 5e-5);
//! ```

#![warn(missing_docs)]

mod avgpool;
mod conv2d;
mod flatten;
mod geometry;
mod linear;
mod loss;
mod maxpool;
mod operator;
mod relu;
mod sigmoid;
mod tanh;

pub mod jacobian;

pub use avgpool::AvgPool2d;
pub use conv2d::{Conv2d, Conv2dConfig};
pub use flatten::Flatten;
pub use linear::Linear;
pub use loss::{MseLoss, SoftmaxCrossEntropy};
pub use maxpool::MaxPool2d;
pub use operator::Operator;
pub use relu::Relu;
pub use sigmoid::Sigmoid;
pub use tanh::Tanh;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_trait_objects_compose() {
        let ops: Vec<Box<dyn Operator<f32>>> = vec![
            Box::new(Relu::new(vec![4])),
            Box::new(Tanh::new(vec![4])),
            Box::new(Flatten::new(vec![4])),
        ];
        for op in &ops {
            assert_eq!(op.input_len(), 4);
            assert_eq!(op.output_len(), 4);
        }
    }
}
