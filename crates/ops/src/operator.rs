//! The [`Operator`] abstraction: a differentiable layer `f_i` from the
//! paper's Equation 1, with three backward-facing capabilities:
//!
//! 1. `vjp` — the classic BP backward (what cuDNN's backward kernels and
//!    PyTorch Autograd compute): `∇x = (∂y/∂x)^T ∇y` without materializing
//!    the Jacobian. This is the baseline.
//! 2. `transposed_jacobian` — the analytic sparse transposed Jacobian in CSR
//!    (§3.4): what BPPSA feeds to the scan. The paper calls the collection of
//!    these routines "an equivalent of the cuDNN library [with] a sparse
//!    transposed Jacobian operator in place of a backward operator".
//! 3. `param_grad` — `∇θ = (∂y/∂θ)^T ∇y` (Equation 2), computed after the
//!    scan delivers all `∇x_i` (no sequential dependency).

use bppsa_sparse::Csr;
use bppsa_tensor::{Scalar, Tensor, Vector};

/// A differentiable operator (layer) `y = f(x; θ)`.
///
/// Implementors must keep `forward`, `vjp`, and `transposed_jacobian`
/// consistent: for every input, `vjp(x, y, g) == transposed_jacobian(x, y) · g`
/// up to floating-point rounding. The test suite enforces this with both
/// hand-written and property-based checks, plus finite-difference oracles.
pub trait Operator<S: Scalar>: Send + Sync {
    /// Human-readable operator name (e.g. `"conv2d"`).
    fn name(&self) -> &str;

    /// Shape of the expected input tensor.
    fn input_shape(&self) -> &[usize];

    /// Shape of the produced output tensor.
    fn output_shape(&self) -> &[usize];

    /// Flattened input length.
    fn input_len(&self) -> usize {
        self.input_shape().iter().product()
    }

    /// Flattened output length.
    fn output_len(&self) -> usize {
        self.output_shape().iter().product()
    }

    /// Computes `y = f(x; θ)`.
    ///
    /// # Panics
    ///
    /// Panics if `input.shape() != self.input_shape()`.
    fn forward(&self, input: &Tensor<S>) -> Tensor<S>;

    /// Vector–Jacobian product `(∂y/∂x)^T · grad_output` — classic BP.
    ///
    /// `output` must be the tensor produced by `forward(input)`; operators
    /// whose Jacobian depends only on the input (or only on parameters) may
    /// ignore it.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with the operator.
    fn vjp(&self, input: &Tensor<S>, output: &Tensor<S>, grad_output: &Vector<S>) -> Vector<S>;

    /// The transposed Jacobian `(∂y/∂x)^T` as an `input_len × output_len`
    /// CSR matrix whose pattern is the operator's *guaranteed-nonzero*
    /// pattern (deterministic, input-independent; §3.3). Input-dependent
    /// ("possible") zeros are stored explicitly so the pattern never changes
    /// between iterations.
    fn transposed_jacobian(&self, input: &Tensor<S>, output: &Tensor<S>) -> Csr<S>;

    /// Fraction of guaranteed zeros in the Jacobian (Table 1), computed
    /// exactly from the pattern size.
    fn guaranteed_sparsity(&self) -> f64;

    /// Number of trainable parameters (0 for stateless operators).
    fn param_len(&self) -> usize {
        0
    }

    /// Number of *leading* parameters that are weights eligible for
    /// magnitude pruning (§4.2 prunes "weights in all convolution and linear
    /// operators" but not biases). Defaults to 0 (nothing prunable).
    fn prunable_len(&self) -> usize {
        0
    }

    /// Flattened copy of the parameters.
    fn params(&self) -> Vec<S> {
        Vec::new()
    }

    /// Overwrites the parameters from a flattened slice.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.param_len()`.
    fn set_params(&mut self, params: &[S]) {
        assert!(
            params.is_empty(),
            "operator {} has no parameters",
            self.name()
        );
    }

    /// Parameter gradient `∇θ = (∂y/∂θ)^T · grad_output` (Equation 2),
    /// flattened in the same order as [`Operator::params`].
    fn param_grad(
        &self,
        _input: &Tensor<S>,
        _output: &Tensor<S>,
        _grad_output: &Vector<S>,
    ) -> Vec<S> {
        Vec::new()
    }
}

/// Asserts the input tensor shape matches, with a readable panic message.
pub(crate) fn check_input_shape<S: Scalar>(op_name: &str, expected: &[usize], input: &Tensor<S>) {
    assert_eq!(
        input.shape(),
        expected,
        "{op_name}: input shape {:?} does not match expected {expected:?}",
        input.shape()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use bppsa_tensor::Matrix;

    /// A minimal operator (y = 2x) exercising the trait's defaults.
    struct Double {
        shape: Vec<usize>,
    }

    impl Operator<f64> for Double {
        fn name(&self) -> &str {
            "double"
        }
        fn input_shape(&self) -> &[usize] {
            &self.shape
        }
        fn output_shape(&self) -> &[usize] {
            &self.shape
        }
        fn forward(&self, input: &Tensor<f64>) -> Tensor<f64> {
            input.map(|v| 2.0 * v)
        }
        fn vjp(&self, _x: &Tensor<f64>, _y: &Tensor<f64>, g: &Vector<f64>) -> Vector<f64> {
            g.scaled(2.0)
        }
        fn transposed_jacobian(&self, _x: &Tensor<f64>, _y: &Tensor<f64>) -> Csr<f64> {
            Csr::from_dense(&Matrix::identity(self.input_len()).scaled(2.0))
        }
        fn guaranteed_sparsity(&self) -> f64 {
            let n = self.input_len() as f64;
            1.0 - 1.0 / n
        }
    }

    #[test]
    fn defaults_report_no_params() {
        let op = Double { shape: vec![2, 2] };
        assert_eq!(op.param_len(), 0);
        assert!(op.params().is_empty());
        assert!(op
            .param_grad(
                &Tensor::zeros(vec![2, 2]),
                &Tensor::zeros(vec![2, 2]),
                &Vector::zeros(4)
            )
            .is_empty());
    }

    #[test]
    fn vjp_matches_jacobian_product() {
        let op = Double { shape: vec![3] };
        let x = Tensor::from_vec(vec![3], vec![1.0, -2.0, 0.5]);
        let y = op.forward(&x);
        let g = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let via_vjp = op.vjp(&x, &y, &g);
        let via_jac = op.transposed_jacobian(&x, &y).spmv(&g);
        assert!(via_vjp.approx_eq(&via_jac, 1e-12));
    }

    #[test]
    #[should_panic(expected = "no parameters")]
    fn set_params_on_stateless_panics() {
        let mut op = Double { shape: vec![2] };
        op.set_params(&[1.0]);
    }

    #[test]
    fn operators_are_object_safe() {
        let op: Box<dyn Operator<f64>> = Box::new(Double { shape: vec![2] });
        assert_eq!(op.name(), "double");
        assert_eq!(op.input_len(), 2);
    }
}
