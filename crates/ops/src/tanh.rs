//! The tanh operator — the activation of the paper's vanilla RNN
//! (Equation 9). Its transposed Jacobian is the dense diagonal
//! `diag(1 − y²)`.

use crate::operator::{check_input_shape, Operator};
use bppsa_sparse::Csr;
use bppsa_tensor::{Scalar, Tensor, Vector};

/// Elementwise hyperbolic tangent `y = tanh(x)`.
///
/// # Examples
///
/// ```
/// use bppsa_ops::{Operator, Tanh};
/// use bppsa_tensor::Tensor;
///
/// let tanh = Tanh::new(vec![2]);
/// let y = tanh.forward(&Tensor::from_vec(vec![2], vec![0.0_f64, 100.0]));
/// assert!((y.at(&[0]) - 0.0).abs() < 1e-12);
/// assert!((y.at(&[1]) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Tanh {
    shape: Vec<usize>,
}

impl Tanh {
    /// Creates a tanh over tensors of the given shape.
    pub fn new(shape: impl Into<Vec<usize>>) -> Self {
        Self {
            shape: shape.into(),
        }
    }
}

impl<S: Scalar> Operator<S> for Tanh {
    fn name(&self) -> &str {
        "tanh"
    }

    fn input_shape(&self) -> &[usize] {
        &self.shape
    }

    fn output_shape(&self) -> &[usize] {
        &self.shape
    }

    fn forward(&self, input: &Tensor<S>) -> Tensor<S> {
        check_input_shape("tanh", &self.shape, input);
        input.map(|v| v.tanh())
    }

    fn vjp(&self, _input: &Tensor<S>, output: &Tensor<S>, grad_output: &Vector<S>) -> Vector<S> {
        let ys = output.as_slice();
        Vector::from_fn(grad_output.len(), |i| {
            (S::ONE - ys[i] * ys[i]) * grad_output[i]
        })
    }

    fn transposed_jacobian(&self, _input: &Tensor<S>, output: &Tensor<S>) -> Csr<S> {
        let diag: Vec<S> = output.as_slice().iter().map(|&y| S::ONE - y * y).collect();
        Csr::from_diagonal(&diag)
    }

    fn guaranteed_sparsity(&self) -> f64 {
        let n: usize = self.shape.iter().product();
        if n == 0 {
            0.0
        } else {
            1.0 - 1.0 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobian::{check_operator_consistency, numerical_transposed_jacobian};

    #[test]
    fn jacobian_matches_finite_differences() {
        let tanh = Tanh::new(vec![4]);
        let x = Tensor::from_vec(vec![4], vec![0.1, -0.7, 1.3, 0.0]);
        let y = tanh.forward(&x);
        let analytic = tanh.transposed_jacobian(&x, &y).to_dense();
        let numeric = numerical_transposed_jacobian(&tanh, &x, 1e-6);
        assert!(
            analytic.approx_eq(&numeric, 1e-6),
            "diff {}",
            analytic.max_abs_diff(&numeric)
        );
    }

    #[test]
    fn consistency_vjp_vs_jacobian() {
        let tanh = Tanh::new(vec![3]);
        let x = Tensor::from_vec(vec![3], vec![0.5, -1.5, 2.0]);
        check_operator_consistency(&tanh, &x, 1e-10);
    }

    #[test]
    fn saturation_kills_gradient() {
        let tanh = Tanh::new(vec![1]);
        let x = Tensor::from_vec(vec![1], vec![50.0f64]);
        let y = tanh.forward(&x);
        let j = tanh.transposed_jacobian(&x, &y);
        assert!(j.get(0, 0).abs() < 1e-12);
    }

    #[test]
    fn rnn_hidden_jacobian_diagonal_shape() {
        // h dimension 20 as in the paper's RNN: diag(1 - h²) is 20x20 with 20 nnz.
        let tanh = Tanh::new(vec![20]);
        let x = Tensor::from_fn(vec![20], |i| (i as f64) / 20.0 - 0.5);
        let y = tanh.forward(&x);
        let j = tanh.transposed_jacobian(&x, &y);
        assert_eq!(j.shape(), (20, 20));
        assert_eq!(j.nnz(), 20);
        assert!((Operator::<f64>::guaranteed_sparsity(&tanh) - 0.95).abs() < 1e-12);
    }
}
