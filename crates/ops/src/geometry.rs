//! Shared 1-D receptive-field geometry for convolution and pooling.

/// `⌈a / b⌉` for signed `a`, positive `b`.
pub(crate) fn ceil_div(a: i64, b: i64) -> i64 {
    (a + b - 1).div_euclid(b)
}

/// Inclusive output-coordinate range `[o_min, o_max]` whose windows contain
/// input coordinate `i` (1-D): all `o` with `0 ≤ i + p − o·s < k` and
/// `0 ≤ o < out`. Returns `(1, 0)` (an empty range) when no output is hit.
pub(crate) fn receptive_range(
    i: usize,
    p: usize,
    k: usize,
    s: usize,
    out: usize,
) -> (usize, usize) {
    let ip = i as i64 + p as i64;
    let o_min = ceil_div(ip - k as i64 + 1, s as i64).max(0);
    let o_max = (ip.div_euclid(s as i64)).min(out as i64 - 1);
    if o_min > o_max {
        (1, 0)
    } else {
        (o_min as usize, o_max as usize)
    }
}

/// Number of outputs in a (possibly empty) inclusive range.
pub(crate) fn span((lo, hi): (usize, usize)) -> usize {
    if lo > hi {
        0
    } else {
        hi - lo + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_div_handles_negatives() {
        assert_eq!(ceil_div(-2, 3), 0);
        assert_eq!(ceil_div(-3, 3), -1);
        assert_eq!(ceil_div(0, 3), 0);
        assert_eq!(ceil_div(4, 3), 2);
        assert_eq!(ceil_div(3, 3), 1);
    }

    #[test]
    fn receptive_range_3x3_stride1_pad1() {
        // Interior pixel of a 3-tap stride-1 pad-1 conv sees 3 outputs.
        let out = 5; // hi=5 → ho=5
        assert_eq!(receptive_range(2, 1, 3, 1, out), (1, 3));
        // Border pixels see 2.
        assert_eq!(receptive_range(0, 1, 3, 1, out), (0, 1));
        assert_eq!(receptive_range(4, 1, 3, 1, out), (3, 4));
    }

    #[test]
    fn receptive_range_pool_2x2_stride2() {
        // Non-overlapping 2-pooling: each input hits exactly one output.
        let out = 2; // hi=4
        for i in 0..4 {
            let r = receptive_range(i, 0, 2, 2, out);
            assert_eq!(span(r), 1);
            assert_eq!(r.0, i / 2);
        }
    }

    #[test]
    fn uncovered_input_has_empty_range() {
        // hi=5, k=2, s=2, no padding → ho=2; input 4 is never pooled.
        let r = receptive_range(4, 0, 2, 2, 2);
        assert_eq!(span(r), 0);
    }

    #[test]
    fn span_of_empty_marker_is_zero() {
        assert_eq!(span((1, 0)), 0);
    }
}
