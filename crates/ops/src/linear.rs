//! The fully-connected (linear/dense) operator `y = W·x + b`.
//!
//! Its transposed Jacobian w.r.t. the input is simply `Wᵀ` — dense in
//! general, but pruning (§4.2) introduces explicit zeros that
//! [`bppsa_sparse::Csr::pruned`] can drop, which is how the pruned-VGG
//! experiment benefits.

use crate::operator::{check_input_shape, Operator};
use bppsa_sparse::Csr;
use bppsa_tensor::{init, Matrix, Scalar, Tensor, Vector};
use rand::rngs::StdRng;

/// A dense affine layer `y = W·x + b` with `W ∈ R^{out×in}`.
///
/// # Examples
///
/// ```
/// use bppsa_ops::{Linear, Operator};
/// use bppsa_tensor::{Matrix, Tensor, Vector};
///
/// let layer = Linear::from_parts(
///     Matrix::from_rows(&[&[1.0_f64, 2.0], &[3.0, 4.0]]),
///     Vector::from_vec(vec![0.5, -0.5]),
/// );
/// let y = layer.forward(&Tensor::from_vec(vec![2], vec![1.0, 1.0]));
/// assert_eq!(y.as_slice(), &[3.5, 6.5]);
/// ```
#[derive(Debug, Clone)]
pub struct Linear<S> {
    weight: Matrix<S>,
    bias: Vector<S>,
    input_shape: Vec<usize>,
    output_shape: Vec<usize>,
}

impl<S: Scalar> Linear<S> {
    /// Creates a layer with Kaiming-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        Self::from_parts(
            init::kaiming_matrix(rng, out_features, in_features),
            Vector::zeros(out_features),
        )
    }

    /// Creates a layer from an explicit weight matrix and bias vector.
    ///
    /// # Panics
    ///
    /// Panics if `weight.rows() != bias.len()`.
    pub fn from_parts(weight: Matrix<S>, bias: Vector<S>) -> Self {
        assert_eq!(
            weight.rows(),
            bias.len(),
            "linear: weight rows {} do not match bias length {}",
            weight.rows(),
            bias.len()
        );
        let (out_features, in_features) = weight.shape();
        Self {
            weight,
            bias,
            input_shape: vec![in_features],
            output_shape: vec![out_features],
        }
    }

    /// The weight matrix.
    pub fn weight(&self) -> &Matrix<S> {
        &self.weight
    }

    /// Mutable weight matrix (used by pruning).
    pub fn weight_mut(&mut self) -> &mut Matrix<S> {
        &mut self.weight
    }

    /// The bias vector.
    pub fn bias(&self) -> &Vector<S> {
        &self.bias
    }
}

impl<S: Scalar> Operator<S> for Linear<S> {
    fn name(&self) -> &str {
        "linear"
    }

    fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    fn output_shape(&self) -> &[usize] {
        &self.output_shape
    }

    fn forward(&self, input: &Tensor<S>) -> Tensor<S> {
        check_input_shape("linear", &self.input_shape, input);
        let x = input.to_vector();
        let y = self.weight.matvec(&x).add(&self.bias);
        Tensor::from_vector(&y)
    }

    fn vjp(&self, _input: &Tensor<S>, _output: &Tensor<S>, grad_output: &Vector<S>) -> Vector<S> {
        self.weight.matvec_transposed(grad_output)
    }

    fn transposed_jacobian(&self, _input: &Tensor<S>, _output: &Tensor<S>) -> Csr<S> {
        // Wᵀ with the *full* dense pattern kept: every position is a
        // guaranteed nonzero (any weight may be nonzero); prune explicitly
        // when weights are known to be masked.
        Csr::from_dense_pattern(&self.weight.transposed())
    }

    fn guaranteed_sparsity(&self) -> f64 {
        0.0
    }

    fn param_len(&self) -> usize {
        self.weight.numel() + self.bias.len()
    }

    fn prunable_len(&self) -> usize {
        self.weight.numel()
    }

    fn params(&self) -> Vec<S> {
        let mut p = self.weight.as_slice().to_vec();
        p.extend_from_slice(self.bias.as_slice());
        p
    }

    fn set_params(&mut self, params: &[S]) {
        let wlen = self.weight.numel();
        assert_eq!(
            params.len(),
            wlen + self.bias.len(),
            "linear: wrong parameter count"
        );
        self.weight.as_mut_slice().copy_from_slice(&params[..wlen]);
        self.bias.as_mut_slice().copy_from_slice(&params[wlen..]);
    }

    fn param_grad(
        &self,
        input: &Tensor<S>,
        _output: &Tensor<S>,
        grad_output: &Vector<S>,
    ) -> Vec<S> {
        // ∇W = g ⊗ x, ∇b = g (Equation 2 for the affine map).
        let x = input.to_vector();
        let gw = grad_output.outer(&x);
        let mut grads = gw.into_vec();
        grads.extend_from_slice(grad_output.as_slice());
        grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobian::{
        check_operator_consistency, numerical_param_gradient, numerical_transposed_jacobian,
    };
    use bppsa_tensor::init::seeded_rng;

    fn layer() -> Linear<f64> {
        Linear::from_parts(
            Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 1.0]]),
            Vector::from_vec(vec![0.1, -0.2]),
        )
    }

    #[test]
    fn forward_matches_manual() {
        let y = layer().forward(&Tensor::from_vec(vec![3], vec![1.0, 1.0, 2.0]));
        assert!((y.at(&[0]) - 0.1).abs() < 1e-12);
        assert!((y.at(&[1]) - 4.8).abs() < 1e-12);
    }

    #[test]
    fn transposed_jacobian_is_weight_transpose() {
        let l = layer();
        let x = Tensor::zeros(vec![3]);
        let y = l.forward(&x);
        let j = l.transposed_jacobian(&x, &y);
        assert!(j.to_dense().approx_eq(&l.weight().transposed(), 0.0));
        // Full pattern kept, including the structural position of the 0.0.
        assert_eq!(j.nnz(), 6);
    }

    #[test]
    fn jacobian_matches_finite_differences() {
        let l = layer();
        let x = Tensor::from_vec(vec![3], vec![0.3, -0.6, 0.9]);
        let y = l.forward(&x);
        let analytic = l.transposed_jacobian(&x, &y).to_dense();
        let numeric = numerical_transposed_jacobian(&l, &x, 1e-6);
        assert!(analytic.approx_eq(&numeric, 1e-6));
    }

    #[test]
    fn consistency_vjp_vs_jacobian() {
        let l = layer();
        let x = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]);
        check_operator_consistency(&l, &x, 1e-12);
    }

    #[test]
    fn param_roundtrip() {
        let mut rng = seeded_rng(1);
        let mut l = Linear::<f32>::new(4, 3, &mut rng);
        let p = Operator::<f32>::params(&l);
        assert_eq!(p.len(), Operator::<f32>::param_len(&l));
        let doubled: Vec<f32> = p.iter().map(|v| v * 2.0).collect();
        l.set_params(&doubled);
        assert_eq!(Operator::<f32>::params(&l), doubled);
    }

    #[test]
    fn param_grad_matches_finite_differences() {
        let l = layer();
        let x = Tensor::from_vec(vec![3], vec![0.5, -1.0, 2.0]);
        let g = Vector::from_vec(vec![1.0, -0.5]);
        let analytic = l.param_grad(&x, &l.forward(&x), &g);
        let numeric = numerical_param_gradient(&l, &x, &g, 1e-6);
        for (a, n) in analytic.iter().zip(&numeric) {
            assert!((a - n).abs() < 1e-5, "param grad mismatch: {a} vs {n}");
        }
    }

    #[test]
    #[should_panic(expected = "weight rows")]
    fn mismatched_bias_panics() {
        let _ = Linear::from_parts(Matrix::<f64>::zeros(2, 2), Vector::zeros(3));
    }
}
