//! Loss functions: the objective `l(·)` of the paper's problem formulation.
//!
//! The losses produce both the scalar loss and the gradient `∇x_n l` — the
//! yellow vector that seeds the scan's input array (Equation 5).

use bppsa_tensor::{Scalar, Vector};

/// Numerically-stable log-sum-exp of a slice.
fn log_sum_exp<S: Scalar>(xs: &[S]) -> S {
    let m = xs.iter().fold(S::NEG_INFINITY, |a, &b| a.maximum(b));
    if !m.is_finite() {
        return m;
    }
    let sum: S = xs.iter().map(|&x| (x - m).exp()).sum();
    m + sum.ln()
}

/// Softmax cross-entropy loss against an integer class label.
///
/// `loss = −log softmax(logits)[target]`, with the classic gradient
/// `softmax(logits) − one_hot(target)`.
///
/// # Examples
///
/// ```
/// use bppsa_ops::SoftmaxCrossEntropy;
/// use bppsa_tensor::Vector;
///
/// let logits = Vector::from_vec(vec![2.0_f64, 0.0, -1.0]);
/// let (loss, grad) = SoftmaxCrossEntropy::loss_and_grad(&logits, 0);
/// assert!(loss > 0.0);
/// assert!(grad[0] < 0.0); // pushes the correct logit up
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Computes the softmax probabilities of `logits`.
    pub fn softmax<S: Scalar>(logits: &Vector<S>) -> Vector<S> {
        let lse = log_sum_exp(logits.as_slice());
        logits.map(|x| (x - lse).exp())
    }

    /// Computes `(loss, ∇logits)` for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `target >= logits.len()`.
    pub fn loss_and_grad<S: Scalar>(logits: &Vector<S>, target: usize) -> (S, Vector<S>) {
        assert!(
            target < logits.len(),
            "target {target} out of range for {} logits",
            logits.len()
        );
        let lse = log_sum_exp(logits.as_slice());
        let loss = lse - logits[target];
        let mut grad = logits.map(|x| (x - lse).exp());
        grad[target] -= S::ONE;
        (loss, grad)
    }

    /// Mean loss and per-sample gradients over a mini-batch, averaging the
    /// gradient by `1/B` as PyTorch's `reduction="mean"` does.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or lengths are inconsistent.
    pub fn batch_loss_and_grads<S: Scalar>(
        logits: &[Vector<S>],
        targets: &[usize],
    ) -> (S, Vec<Vector<S>>) {
        assert!(!logits.is_empty(), "empty batch");
        assert_eq!(logits.len(), targets.len(), "batch size mismatch");
        let inv_b = S::ONE / S::from_usize(logits.len());
        let mut total = S::ZERO;
        let mut grads = Vec::with_capacity(logits.len());
        for (l, &t) in logits.iter().zip(targets) {
            let (loss, grad) = Self::loss_and_grad(l, t);
            total += loss;
            grads.push(grad.scaled(inv_b));
        }
        (total * inv_b, grads)
    }
}

/// Mean-squared-error loss `½‖y − target‖²` (gradient `y − target`), used by
/// small gradient-checking tests where a quadratic objective is convenient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MseLoss;

impl MseLoss {
    /// Computes `(loss, ∇y)` for one sample.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn loss_and_grad<S: Scalar>(y: &Vector<S>, target: &Vector<S>) -> (S, Vector<S>) {
        assert_eq!(y.len(), target.len(), "mse: length mismatch");
        let diff = y.sub(target);
        let loss = diff.dot(&diff) * S::from_f64(0.5);
        (loss, diff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = SoftmaxCrossEntropy::softmax(&Vector::from_vec(vec![1.0f64, 2.0, 3.0]));
        assert!((p.sum() - 1.0).abs() < 1e-12);
        assert!(p.as_slice().iter().all(|&x| x > 0.0));
    }

    #[test]
    fn loss_is_nll_of_target() {
        let logits = Vector::from_vec(vec![0.0f64, 0.0]);
        let (loss, _) = SoftmaxCrossEntropy::loss_and_grad(&logits, 1);
        assert!((loss - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn gradient_sums_to_zero() {
        let logits = Vector::from_vec(vec![1.0f64, -2.0, 0.5, 3.0]);
        let (_, grad) = SoftmaxCrossEntropy::loss_and_grad(&logits, 2);
        assert!(grad.sum().abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Vector::from_vec(vec![0.3f64, -1.1, 0.7]);
        let target = 1;
        let (_, grad) = SoftmaxCrossEntropy::loss_and_grad(&logits, target);
        let eps = 1e-6;
        for i in 0..3 {
            let mut plus = logits.clone();
            plus[i] += eps;
            let mut minus = logits.clone();
            minus[i] -= eps;
            let (lp, _) = SoftmaxCrossEntropy::loss_and_grad(&plus, target);
            let (lm, _) = SoftmaxCrossEntropy::loss_and_grad(&minus, target);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((grad[i] - numeric).abs() < 1e-8, "dim {i}");
        }
    }

    #[test]
    fn stable_under_large_logits() {
        let logits = Vector::from_vec(vec![1000.0f64, 0.0]);
        let (loss, grad) = SoftmaxCrossEntropy::loss_and_grad(&logits, 0);
        assert!(loss.abs() < 1e-9);
        assert!(grad.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn batch_averages() {
        let logits = vec![
            Vector::from_vec(vec![1.0f64, 0.0]),
            Vector::from_vec(vec![0.0f64, 1.0]),
        ];
        let (mean_loss, grads) = SoftmaxCrossEntropy::batch_loss_and_grads(&logits, &[0, 1]);
        let (l0, g0) = SoftmaxCrossEntropy::loss_and_grad(&logits[0], 0);
        let (l1, _) = SoftmaxCrossEntropy::loss_and_grad(&logits[1], 1);
        assert!((mean_loss - 0.5 * (l0 + l1)).abs() < 1e-12);
        assert!(grads[0].approx_eq(&g0.scaled(0.5), 1e-12));
    }

    #[test]
    fn mse_gradient_is_residual() {
        let y = Vector::from_vec(vec![2.0f64, -1.0]);
        let t = Vector::from_vec(vec![1.0f64, 1.0]);
        let (loss, grad) = MseLoss::loss_and_grad(&y, &t);
        assert!((loss - 2.5).abs() < 1e-12);
        assert_eq!(grad.as_slice(), &[1.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        let _ = SoftmaxCrossEntropy::loss_and_grad(&Vector::from_vec(vec![1.0f64]), 3);
    }
}
