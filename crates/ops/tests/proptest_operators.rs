//! Property-based operator tests: for *random geometries and inputs*, every
//! operator's three backward paths (VJP, analytic CSR transposed Jacobian,
//! VJP-column extraction) must agree, and conv geometry must be internally
//! consistent.

use bppsa_ops::{
    jacobian::transposed_jacobian_via_vjp, AvgPool2d, Conv2d, Conv2dConfig, MaxPool2d, Operator,
    Relu, Sigmoid, Tanh,
};
use bppsa_tensor::init::{seeded_rng, uniform_tensor};
use bppsa_tensor::Vector;
use proptest::prelude::*;

fn arb_conv_config() -> impl Strategy<Value = Conv2dConfig> {
    (
        1usize..3, // in_channels
        1usize..4, // out_channels
        1usize..4, // kh
        1usize..4, // kw
        1usize..3, // sh
        1usize..3, // sw
        0usize..2, // ph
        0usize..2, // pw
        3usize..7, // hi
        3usize..7, // wi
    )
        .prop_filter_map(
            "kernel must fit padded input",
            |(ci, co, kh, kw, sh, sw, ph, pw, hi, wi)| {
                if hi + 2 * ph >= kh && wi + 2 * pw >= kw {
                    Some(Conv2dConfig {
                        in_channels: ci,
                        out_channels: co,
                        kernel: (kh, kw),
                        stride: (sh, sw),
                        padding: (ph, pw),
                        input_hw: (hi, wi),
                    })
                } else {
                    None
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn conv_jacobian_matches_vjp_columns(cfg in arb_conv_config(), seed in any::<u64>()) {
        let mut rng = seeded_rng(seed);
        let conv = Conv2d::<f64>::new(cfg, &mut rng);
        let x = uniform_tensor(&mut rng, conv.input_shape().to_vec(), 1.0);
        let y = conv.forward(&x);
        let analytic = conv.transposed_jacobian(&x, &y);
        prop_assert_eq!(analytic.validate(), Ok(()));
        prop_assert_eq!(analytic.nnz(), conv.jacobian_nnz());
        let oracle = transposed_jacobian_via_vjp(&conv, &x, &y);
        let diff = analytic.to_dense().max_abs_diff(&oracle);
        prop_assert!(diff < 1e-12, "cfg {cfg:?}: diff {diff}");
    }

    #[test]
    fn conv_pruned_generation_matches(cfg in arb_conv_config(), seed in any::<u64>()) {
        let mut rng = seeded_rng(seed);
        let mut conv = Conv2d::<f64>::new(cfg, &mut rng);
        // Zero a third of the weights.
        {
            let w = conv.weight_mut().as_mut_slice();
            for v in w.iter_mut().step_by(3) {
                *v = 0.0;
            }
        }
        let x = uniform_tensor(&mut rng, conv.input_shape().to_vec(), 1.0);
        let y = conv.forward(&x);
        let direct = conv.transposed_jacobian_pruned();
        let via_full = conv.transposed_jacobian(&x, &y).pruned();
        prop_assert_eq!(direct, via_full);
    }

    #[test]
    fn pool_jacobians_match_vjp_columns(
        (c, hw, k, s) in (1usize..3, 4usize..8, 2usize..4, 1usize..3),
        seed in any::<u64>(),
    ) {
        prop_assume!(k <= hw);
        let mut rng = seeded_rng(seed);
        let x = uniform_tensor::<f64>(&mut rng, vec![c, hw, hw], 1.0);

        let maxp = MaxPool2d::new(c, (k, k), (s, s), (hw, hw));
        let y = Operator::<f64>::forward(&maxp, &x);
        let analytic = maxp.transposed_jacobian(&x, &y);
        prop_assert_eq!(analytic.validate(), Ok(()));
        let oracle = transposed_jacobian_via_vjp(&maxp, &x, &y);
        prop_assert!(analytic.to_dense().approx_eq(&oracle, 0.0));

        let avgp = AvgPool2d::new(c, (k, k), (s, s), (hw, hw));
        let y = Operator::<f64>::forward(&avgp, &x);
        let analytic = avgp.transposed_jacobian(&x, &y);
        let oracle = transposed_jacobian_via_vjp(&avgp, &x, &y);
        prop_assert!(analytic.to_dense().approx_eq(&oracle, 1e-12));
    }

    #[test]
    fn elementwise_ops_consistent(len in 1usize..20, seed in any::<u64>()) {
        let mut rng = seeded_rng(seed);
        let x = uniform_tensor::<f64>(&mut rng, vec![len], 2.0);
        let g = Vector::from_fn(len, |i| ((i % 5) as f64) * 0.5 - 1.0);
        for op in [
            Box::new(Relu::new(vec![len])) as Box<dyn Operator<f64>>,
            Box::new(Tanh::new(vec![len])),
            Box::new(Sigmoid::new(vec![len])),
        ] {
            let y = op.forward(&x);
            let via_vjp = op.vjp(&x, &y, &g);
            let via_jac = op.transposed_jacobian(&x, &y).spmv(&g);
            prop_assert!(via_vjp.approx_eq(&via_jac, 1e-12), "{}", op.name());
        }
    }

    #[test]
    fn conv_sparsity_bounds(cfg in arb_conv_config(), seed in any::<u64>()) {
        let conv = Conv2d::<f32>::new(cfg, &mut seeded_rng(seed));
        let s = conv.guaranteed_sparsity();
        prop_assert!((0.0..=1.0).contains(&s), "sparsity {s}");
        // nnz never exceeds the all-windows upper bound co·ho·wo·ci·kh·kw.
        let (ho, wo) = cfg.output_hw();
        let bound = cfg.out_channels * ho * wo * cfg.in_channels * cfg.kernel.0 * cfg.kernel.1;
        prop_assert!(conv.jacobian_nnz() <= bound);
    }
}
