//! # bppsa-pipeline — pipeline-parallelism baselines
//!
//! Analytic models of the two prior-work systems the BPPSA paper positions
//! itself against in §2.2:
//!
//! * [`GpipeConfig`] — synchronous pipelining (GPipe): no staleness, but a
//!   fill/drain bubble growing linearly with the pipeline length and
//!   `Θ(L/K + K)` per-device activation memory (Figure 3's dashed box).
//! * [`PipedreamConfig`] — asynchronous pipelining (PipeDream): full
//!   steady-state utilization, but gradient staleness growing with the
//!   device count and weight-version stashing multiplying memory.
//!
//! Together with `bppsa_pram::memory`, these reproduce the paper's
//! space-complexity comparison (the `space_complexity` harness binary) and
//! back the §2.2 claims with checkable numbers — including a miniature
//! demonstration that momentum amplifies staleness error
//! ([`momentum_staleness_gap`]).
//!
//! ```
//! use bppsa_pipeline::GpipeConfig;
//!
//! let report = GpipeConfig { layers: 64, devices: 8, micro_batches: 8, activation_bytes: 4096 }
//!     .analyze();
//! // K−1 / (M+K−1) = 7/15 of device time is bubble.
//! assert!((report.bubble_fraction - 7.0 / 15.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

mod gpipe;
mod pipedream;

pub use gpipe::{GpipeConfig, GpipeReport};
pub use pipedream::{momentum_staleness_gap, PipedreamConfig, PipedreamReport};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GpipeConfig>();
        assert_send_sync::<PipedreamConfig>();
    }
}
