//! PipeDream-style asynchronous pipeline parallelism (Narayanan et al.
//! 2019), per the paper's §2.2 critique.
//!
//! Async pipelining removes the fill/drain bubble by overlapping
//! mini-batches, at the price of *staleness*: a device computes gradients
//! against weights that have since been updated. The paper's point is that
//! "such an argument would be invalid when combined with other techniques
//! commonly used in first-order optimizers (e.g. momentum in Adam)", and
//! that weight stashing multiplies memory by the number of in-flight
//! versions.

use std::fmt;

/// Configuration of an asynchronous (PipeDream-style) pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipedreamConfig {
    /// Total network layers `L`.
    pub layers: usize,
    /// Pipeline devices `K`.
    pub devices: usize,
    /// Bytes of one stage's weights.
    pub stage_weight_bytes: usize,
    /// Bytes of one boundary activation.
    pub activation_bytes: usize,
}

/// Analytic results for steady-state PipeDream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipedreamReport {
    /// Steady-state utilization (no bubble once the pipeline is warm).
    pub utilization: f64,
    /// Maximum gradient staleness in update steps: how many optimizer steps
    /// elapse between a stage's forward pass and the corresponding update.
    pub max_staleness: usize,
    /// Number of weight versions stage 0 must stash.
    pub weight_versions: usize,
    /// Per-device memory: stashed weights + in-flight activations.
    pub per_device_bytes: usize,
}

impl PipedreamConfig {
    /// Analyzes the steady-state behaviour (1F1B schedule).
    ///
    /// # Panics
    ///
    /// Panics if counts are zero or `devices > layers`.
    pub fn analyze(&self) -> PipedreamReport {
        assert!(
            self.layers > 0 && self.devices > 0,
            "pipedream: counts must be positive"
        );
        assert!(
            self.devices <= self.layers,
            "pipedream: more devices ({}) than layers ({})",
            self.devices,
            self.layers
        );
        let k = self.devices;
        // 1F1B steady state keeps every device busy.
        let utilization = 1.0;
        // Stage s sees staleness K − s; stage 0 is worst with K − 1
        // in-flight mini-batches between its forward and its update.
        let max_staleness = k - 1;
        let weight_versions = k;
        let per_device = self.stage_weight_bytes * weight_versions
            + self.activation_bytes * k
            + self.layers.div_ceil(k) * self.activation_bytes;
        PipedreamReport {
            utilization,
            max_staleness,
            weight_versions,
            per_device_bytes: per_device,
        }
    }
}

impl fmt::Display for PipedreamConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PipeDream(L={}, K={})", self.layers, self.devices)
    }
}

/// Models the gradient error introduced by staleness on a quadratic
/// objective with momentum — a miniature of the paper's momentum argument.
///
/// Runs plain momentum-SGD on `f(x) = ½λx²` for `steps` iterations, once
/// with fresh gradients and once with gradients delayed by `staleness`
/// steps, and returns the two final distances from the optimum `|x|`.
pub fn momentum_staleness_gap(
    lambda: f64,
    lr: f64,
    momentum: f64,
    staleness: usize,
    steps: usize,
) -> (f64, f64) {
    let grad = |x: f64| lambda * x;
    // Fresh.
    let (mut x, mut v) = (1.0f64, 0.0f64);
    for _ in 0..steps {
        v = momentum * v + grad(x);
        x -= lr * v;
    }
    let fresh = x.abs();
    // Stale: gradient computed on the value from `staleness` steps ago.
    let (mut x, mut v) = (1.0f64, 0.0f64);
    let mut history = std::collections::VecDeque::from(vec![1.0f64; staleness + 1]);
    for _ in 0..steps {
        let stale_x = history.pop_front().expect("nonempty");
        v = momentum * v + grad(stale_x);
        x -= lr * v;
        history.push_back(x);
    }
    (fresh, x.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(layers: usize, devices: usize) -> PipedreamConfig {
        PipedreamConfig {
            layers,
            devices,
            stage_weight_bytes: 1 << 16,
            activation_bytes: 1 << 10,
        }
    }

    #[test]
    fn steady_state_has_full_utilization() {
        assert_eq!(cfg(32, 4).analyze().utilization, 1.0);
    }

    #[test]
    fn staleness_grows_with_devices() {
        assert_eq!(cfg(32, 2).analyze().max_staleness, 1);
        assert_eq!(cfg(32, 8).analyze().max_staleness, 7);
        assert!(cfg(32, 8).analyze().weight_versions > cfg(32, 2).analyze().weight_versions);
    }

    #[test]
    fn memory_grows_with_devices() {
        let m: Vec<usize> = [2usize, 4, 8, 16]
            .iter()
            .map(|&k| cfg(64, k).analyze().per_device_bytes)
            .collect();
        assert!(m.windows(2).all(|w| w[1] > w[0]), "{m:?}");
    }

    #[test]
    fn momentum_amplifies_staleness_error() {
        // With momentum, stale gradients overshoot: the stale trajectory
        // ends farther from the optimum than the fresh one — the paper's
        // argument against PipeDream's "staleness is harmless" claim.
        let (fresh, stale) = momentum_staleness_gap(1.0, 0.1, 0.9, 4, 200);
        assert!(
            stale > fresh,
            "stale {stale} should trail fresh {fresh} with momentum"
        );
        // Without momentum and a mild learning rate, staleness hurts less.
        let (fresh0, stale0) = momentum_staleness_gap(1.0, 0.1, 0.0, 4, 200);
        let with_m = stale / fresh.max(1e-300);
        let without_m = stale0 / fresh0.max(1e-300);
        assert!(with_m > without_m);
    }

    #[test]
    #[should_panic(expected = "more devices")]
    fn too_many_devices_rejected() {
        let _ = cfg(2, 4).analyze();
    }
}
