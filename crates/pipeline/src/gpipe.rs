//! GPipe-style synchronous pipeline parallelism (Huang et al. 2018), as
//! described in the paper's §2.2 and Figure 3.
//!
//! The model partitions `L` layers over `K` devices and pushes `M`
//! micro-batches through. Synchronous updates flush the pipeline every
//! mini-batch, so each device idles during fill and drain — the "bubble".
//! To keep the pipeline full, `M` must be at least `K`, and each device must
//! hold boundary activations for all in-flight micro-batches: the memory
//! term that caps scalability (Θ(L/K + K) per device, §2.2).

use std::fmt;

/// Configuration of a synchronous (GPipe-style) pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpipeConfig {
    /// Total network layers `L`.
    pub layers: usize,
    /// Pipeline devices (stages) `K`.
    pub devices: usize,
    /// Micro-batches per mini-batch `M`.
    pub micro_batches: usize,
    /// Bytes of one sample's boundary activation (`M_x`).
    pub activation_bytes: usize,
}

/// Analytic results for one GPipe mini-batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpipeReport {
    /// Total pipeline time slots for forward + backward.
    pub total_slots: usize,
    /// Slots actually performing useful work, summed over devices.
    pub busy_device_slots: usize,
    /// Fraction of device-slots wasted in the fill/drain bubble.
    pub bubble_fraction: f64,
    /// Average device utilization (`1 − bubble_fraction`).
    pub utilization: f64,
    /// Per-device activation memory in bytes (`Θ(L/K + K)·M_x`).
    pub per_device_activation_bytes: usize,
}

impl GpipeConfig {
    /// Validates and analyzes the pipeline schedule.
    ///
    /// The timeline (Figure 3): forward takes `M + K − 1` slots, backward
    /// (symmetric) another `M + K − 1`; useful work is `2·M·K` device-slots
    /// out of `2·K·(M + K − 1)` available.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or `devices > layers`.
    pub fn analyze(&self) -> GpipeReport {
        assert!(
            self.layers > 0 && self.devices > 0 && self.micro_batches > 0,
            "gpipe: counts must be positive"
        );
        assert!(
            self.devices <= self.layers,
            "gpipe: more devices ({}) than layers ({})",
            self.devices,
            self.layers
        );
        let (k, m) = (self.devices, self.micro_batches);
        let span = m + k - 1;
        let total_slots = 2 * span;
        let busy = 2 * m * k;
        let available = 2 * k * span;
        let bubble = 1.0 - busy as f64 / available as f64;
        // Re-materialization: Θ(L/K) recompute slots per sample, plus one
        // boundary activation per in-flight micro-batch (≥ K to fill).
        let in_flight = m.min(span);
        let per_device = (self.layers.div_ceil(k) + in_flight) * self.activation_bytes;
        GpipeReport {
            total_slots,
            busy_device_slots: busy,
            bubble_fraction: bubble,
            utilization: 1.0 - bubble,
            per_device_activation_bytes: per_device,
        }
    }

    /// The classic bubble-fraction formula `(K − 1)/(M + K − 1)`.
    pub fn bubble_formula(&self) -> f64 {
        let (k, m) = (self.devices as f64, self.micro_batches as f64);
        (k - 1.0) / (m + k - 1.0)
    }
}

impl fmt::Display for GpipeConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GPipe(L={}, K={}, M={})",
            self.layers, self.devices, self.micro_batches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(layers: usize, devices: usize, micro: usize) -> GpipeConfig {
        GpipeConfig {
            layers,
            devices,
            micro_batches: micro,
            activation_bytes: 1024,
        }
    }

    #[test]
    fn bubble_matches_formula() {
        for (k, m) in [(2usize, 2usize), (4, 4), (8, 4), (4, 16)] {
            let c = cfg(64, k, m);
            let r = c.analyze();
            assert!(
                (r.bubble_fraction - c.bubble_formula()).abs() < 1e-12,
                "K={k} M={m}"
            );
        }
    }

    #[test]
    fn single_device_has_no_bubble() {
        let r = cfg(8, 1, 4).analyze();
        assert_eq!(r.bubble_fraction, 0.0);
        assert_eq!(r.utilization, 1.0);
    }

    #[test]
    fn utilization_decays_with_devices_at_fixed_micro_batches() {
        // The paper: "the bubble of idleness increases linearly with the
        // length of the pipeline".
        let m = 4;
        let u: Vec<f64> = [2usize, 4, 8, 16]
            .iter()
            .map(|&k| cfg(64, k, m).analyze().utilization)
            .collect();
        assert!(u.windows(2).all(|w| w[1] < w[0]), "{u:?}");
    }

    #[test]
    fn more_micro_batches_amortize_the_bubble_but_cost_memory() {
        let small = cfg(64, 8, 8).analyze();
        let big = cfg(64, 8, 64).analyze();
        assert!(big.utilization > small.utilization);
        assert!(big.per_device_activation_bytes > small.per_device_activation_bytes);
    }

    #[test]
    fn memory_grows_linearly_with_devices_when_filled() {
        // M = K (pipeline exactly filled, the paper's Figure 3 setting):
        // per-device memory is Θ(L/K + K).
        let at = |k: usize| cfg(256, k, k).analyze().per_device_activation_bytes;
        assert!(at(16) < at(64));
        assert!(at(64) < at(128));
    }

    #[test]
    #[should_panic(expected = "more devices")]
    fn too_many_devices_rejected() {
        let _ = cfg(4, 8, 8).analyze();
    }
}
