//! Compressed Sparse Row matrices.
//!
//! CSR is the format the paper stores transposed Jacobians in (§3.3): the
//! first VGG-11 convolution's Jacobian shrinks from 768 MB dense to 6.5 MB in
//! CSR. Column indices are `u32` (the paper's matrices have at most ~10⁵
//! columns), halving index memory relative to `usize`.
//!
//! Structure and values are stored separately: a [`Csr`] holds its
//! [`SparsityPattern`] behind an [`Arc`] plus a flat value array. Because the
//! paper's Jacobian patterns are deterministic (§3.3), the same pattern is
//! shared — by refcount bump, never by deep copy — across every iteration's
//! Jacobian, every [`SymbolicProduct`](crate::SymbolicProduct) plan, and
//! every workspace buffer derived from it.

use crate::{CsrError, SparsityPattern};
use bppsa_tensor::{Matrix, Scalar, Vector};
use std::fmt;
use std::sync::Arc;

/// A sparse matrix in Compressed Sparse Row format.
///
/// Invariants (checked by [`Csr::validate`], maintained by all constructors):
/// `indptr.len() == rows + 1`, `indptr` is non-decreasing and starts at 0,
/// `indices.len() == data.len() == indptr[rows]`, column indices are in range
/// and strictly increasing within each row.
///
/// The pattern is [`Arc`]-shared: [`Csr::pattern`] and value-preserving
/// transforms ([`Csr::scaled`], [`Csr::map_values`], [`Csr::clone`]) never
/// copy the index arrays.
///
/// # Examples
///
/// ```
/// use bppsa_sparse::Csr;
/// use bppsa_tensor::{Matrix, Vector};
///
/// let dense = Matrix::from_rows(&[&[1.0_f32, 0.0], &[0.0, 2.0]]);
/// let sparse = Csr::from_dense(&dense);
/// assert_eq!(sparse.nnz(), 2);
/// let y = sparse.spmv(&Vector::from_vec(vec![3.0, 4.0]));
/// assert_eq!(y.as_slice(), &[3.0, 8.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<S> {
    pattern: Arc<SparsityPattern>,
    data: Vec<S>,
}

impl<S: Scalar> Csr<S> {
    /// Creates an empty (all-zero) matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            pattern: Arc::new(SparsityPattern::new(
                rows,
                cols,
                vec![0; rows + 1],
                Vec::new(),
            )),
            data: Vec::new(),
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self {
            pattern: Arc::new(SparsityPattern::new(
                n,
                n,
                (0..=n).collect(),
                (0..n as u32).collect(),
            )),
            data: vec![S::ONE; n],
        }
    }

    /// Creates an `n × n` diagonal matrix from `diag`, storing explicit zeros.
    ///
    /// The ReLU transposed Jacobian of the paper is exactly this shape: its
    /// *guaranteed-zero* pattern is the off-diagonal, while on-diagonal zeros
    /// are input-dependent "possible zeros" that CSR keeps explicitly so the
    /// sparsity pattern stays deterministic (§3.3).
    pub fn from_diagonal(diag: &[S]) -> Self {
        let n = diag.len();
        Self {
            pattern: Arc::new(SparsityPattern::new(
                n,
                n,
                (0..=n).collect(),
                (0..n as u32).collect(),
            )),
            data: diag.to_vec(),
        }
    }

    /// Creates an all-structural-zeros matrix sharing `pattern` (the buffer
    /// shape workspace slots are pre-allocated in: the pattern is a refcount
    /// bump, only the value array is owned).
    pub fn from_pattern(pattern: Arc<SparsityPattern>) -> Self {
        let nnz = pattern.nnz();
        Self {
            pattern,
            data: vec![S::ZERO; nnz],
        }
    }

    /// Builds a CSR matrix from an existing (trusted) pattern and values.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != pattern.nnz()`.
    pub fn from_pattern_and_values(pattern: Arc<SparsityPattern>, data: Vec<S>) -> Self {
        assert_eq!(
            data.len(),
            pattern.nnz(),
            "from_pattern_and_values: value count does not match pattern nnz"
        );
        Self { pattern, data }
    }

    /// Raw constructor without any validation (used by tests that need to
    /// build *invalid* matrices, and internally after validation).
    pub(crate) fn from_raw_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        data: Vec<S>,
    ) -> Self {
        Self {
            pattern: Arc::new(SparsityPattern::new_unvalidated(
                rows, cols, indptr, indices,
            )),
            data,
        }
    }

    /// Builds a CSR matrix from raw parts, validating all invariants.
    ///
    /// # Errors
    ///
    /// Returns a [`CsrError`] describing the first violated invariant.
    pub fn try_from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        data: Vec<S>,
    ) -> Result<Self, CsrError> {
        let m = Self::from_raw_parts(rows, cols, indptr, indices, data);
        m.validate()?;
        Ok(m)
    }

    /// Builds a CSR matrix from raw parts without validation.
    ///
    /// This is the fast path used by the analytic Jacobian generators, which
    /// construct rows in sorted order by design. Invariants are still checked
    /// in debug builds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the invariants do not hold.
    pub fn from_parts_unchecked(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        data: Vec<S>,
    ) -> Self {
        let m = Self::from_raw_parts(rows, cols, indptr, indices, data);
        debug_assert_eq!(m.validate(), Ok(()));
        m
    }

    /// Converts a dense matrix keeping **every** position as a structural
    /// entry (zeros stored explicitly). Used when the whole dense block is a
    /// guaranteed-nonzero region — e.g. `Wᵀ` of a linear layer — so the
    /// pattern stays deterministic under value changes.
    pub fn from_dense_pattern(dense: &Matrix<S>) -> Self {
        let (rows, cols) = dense.shape();
        let indptr = (0..=rows).map(|i| i * cols).collect();
        let indices = (0..rows).flat_map(|_| 0..cols as u32).collect();
        Self::from_raw_parts(rows, cols, indptr, indices, dense.as_slice().to_vec())
    }

    /// Converts a dense matrix, keeping exactly the non-zero entries.
    pub fn from_dense(dense: &Matrix<S>) -> Self {
        let (rows, cols) = dense.shape();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        for i in 0..rows {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if v != S::ZERO {
                    indices.push(j as u32);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Self::from_raw_parts(rows, cols, indptr, indices, data)
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> Matrix<S> {
        let mut m = Matrix::zeros(self.rows(), self.cols());
        for i in 0..self.rows() {
            for (&j, &v) in self.row_indices(i).iter().zip(self.row_data(i)) {
                m.set(i, j as usize, v);
            }
        }
        m
    }

    /// Checks all structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a [`CsrError`] describing the first violated invariant.
    pub fn validate(&self) -> Result<(), CsrError> {
        let (rows, cols) = self.pattern.shape();
        let indptr = self.pattern.indptr();
        let indices = self.pattern.indices();
        if indptr.len() != rows + 1 {
            return Err(CsrError::IndptrLength {
                expected: rows + 1,
                actual: indptr.len(),
            });
        }
        if indptr[0] != 0 {
            return Err(CsrError::IndptrStart);
        }
        for i in 0..rows {
            if indptr[i + 1] < indptr[i] {
                return Err(CsrError::IndptrMonotonicity { row: i });
            }
        }
        if indptr[rows] != indices.len() {
            return Err(CsrError::IndptrEnd {
                expected: indptr[rows],
                actual: indices.len(),
            });
        }
        if indices.len() != self.data.len() {
            return Err(CsrError::DataLength {
                indices: indices.len(),
                data: self.data.len(),
            });
        }
        for i in 0..rows {
            let row = &indices[indptr[i]..indptr[i + 1]];
            for (k, &j) in row.iter().enumerate() {
                if j as usize >= cols {
                    return Err(CsrError::ColumnOutOfRange {
                        row: i,
                        col: j as usize,
                        cols,
                    });
                }
                if k > 0 && row[k - 1] >= j {
                    return Err(CsrError::UnsortedRow { row: i });
                }
            }
        }
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.pattern.rows()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.pattern.cols()
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        self.pattern.shape()
    }

    /// Number of stored entries (including explicit zeros).
    pub fn nnz(&self) -> usize {
        self.pattern.nnz()
    }

    /// Fraction of *unstored* entries over all entries — the "sparsity of
    /// guaranteed zeros" from Table 1 when the pattern stores exactly the
    /// guaranteed-nonzero positions.
    pub fn sparsity(&self) -> f64 {
        self.pattern.sparsity()
    }

    /// The `indptr` array (length `rows + 1`).
    pub fn indptr(&self) -> &[usize] {
        self.pattern.indptr()
    }

    /// The concatenated column-index array.
    pub fn indices(&self) -> &[u32] {
        self.pattern.indices()
    }

    /// The concatenated value array.
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// Mutable view of the value array (pattern-preserving updates only).
    pub fn data_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Copies the values of `other` into `self` without touching patterns.
    ///
    /// The allocation-free way to refresh a workspace buffer with a new
    /// iteration's Jacobian values.
    ///
    /// # Panics
    ///
    /// Panics if the two matrices do not share the same pattern.
    pub fn copy_values_from(&mut self, other: &Self) {
        assert!(
            self.same_pattern(other),
            "copy_values_from: pattern mismatch"
        );
        self.data.copy_from_slice(&other.data);
    }

    /// Replaces this buffer's pattern (refcount bump) and resizes the value
    /// array to match, zero-filled. Performs no heap allocation once the
    /// value array's capacity has grown to its steady-state maximum.
    pub fn reset_to_pattern(&mut self, pattern: &Arc<SparsityPattern>) {
        self.pattern = Arc::clone(pattern);
        self.data.clear();
        self.data.resize(pattern.nnz(), S::ZERO);
    }

    /// Column indices of row `i`.
    #[inline]
    pub fn row_indices(&self, i: usize) -> &[u32] {
        self.pattern.row_indices(i)
    }

    /// Values of row `i`.
    #[inline]
    pub fn row_data(&self, i: usize) -> &[S] {
        let indptr = self.pattern.indptr();
        &self.data[indptr[i]..indptr[i + 1]]
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.pattern.row_nnz(i)
    }

    /// Value at `(i, j)`, or zero if the entry is not stored.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    pub fn get(&self, i: usize, j: usize) -> S {
        assert!(
            i < self.rows() && j < self.cols(),
            "get({i},{j}) out of bounds"
        );
        let row = self.row_indices(i);
        match row.binary_search(&(j as u32)) {
            Ok(k) => self.row_data(i)[k],
            Err(_) => S::ZERO,
        }
    }

    /// The sparsity pattern, shared by refcount bump (never deep-copied).
    pub fn pattern(&self) -> Arc<SparsityPattern> {
        Arc::clone(&self.pattern)
    }

    /// Borrow of the shared pattern handle (no refcount traffic; useful for
    /// `Arc::ptr_eq` fast paths).
    pub fn pattern_ref(&self) -> &Arc<SparsityPattern> {
        &self.pattern
    }

    /// Whether `self` and `other` share the exact same pattern. Pointer
    /// equality of the shared pattern short-circuits the structural compare.
    pub fn same_pattern(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.pattern, &other.pattern) || self.pattern == other.pattern
    }

    /// Sparse matrix–vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn spmv(&self, x: &Vector<S>) -> Vector<S> {
        assert_eq!(
            x.len(),
            self.cols(),
            "spmv: vector length {} does not match cols {}",
            x.len(),
            self.cols()
        );
        // Delegates to `spmv_into` rather than an iterator `sum()`: float
        // `Sum` folds from `-0.0` (preserving negative-zero sums), while
        // the explicit `+0.0` accumulator canonicalizes a `-0.0` product to
        // `+0.0`. All numeric kernels must agree on that sign bit for
        // planned and unplanned executions to stay bit-identical.
        let mut out = Vector::zeros(self.rows());
        self.spmv_into(x, &mut out);
        out
    }

    /// Sparse matrix–vector product into a caller-owned output vector
    /// (allocation-free; the workspace executor's SpMV kernel).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn spmv_into(&self, x: &Vector<S>, out: &mut Vector<S>) {
        assert_eq!(
            x.len(),
            self.cols(),
            "spmv_into: vector length {} does not match cols {}",
            x.len(),
            self.cols()
        );
        assert_eq!(
            out.len(),
            self.rows(),
            "spmv_into: output length {} does not match rows {}",
            out.len(),
            self.rows()
        );
        let xs = x.as_slice();
        let indptr = self.pattern.indptr();
        let indices = self.pattern.indices();
        for (i, o) in out.as_mut_slice().iter_mut().enumerate() {
            let mut acc = S::ZERO;
            for k in indptr[i]..indptr[i + 1] {
                acc += self.data[k] * xs[indices[k] as usize];
            }
            *o = acc;
        }
    }

    /// Returns the transpose as a new CSR matrix (two-pass counting sort,
    /// producing sorted rows).
    pub fn transposed(&self) -> Self {
        let rows = self.rows();
        let cols = self.cols();
        let mut counts = vec![0usize; cols + 1];
        for &j in self.indices() {
            counts[j as usize + 1] += 1;
        }
        for j in 0..cols {
            counts[j + 1] += counts[j];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut data = vec![S::ZERO; self.nnz()];
        let mut next = counts;
        for i in 0..rows {
            for (&j, &v) in self.row_indices(i).iter().zip(self.row_data(i)) {
                let dst = next[j as usize];
                indices[dst] = i as u32;
                data[dst] = v;
                next[j as usize] += 1;
            }
        }
        Self::from_raw_parts(cols, rows, indptr, indices, data)
    }

    /// Returns `self` with every stored value scaled by `alpha` (pattern
    /// unchanged — and *shared*, even if `alpha == 0`).
    pub fn scaled(&self, alpha: S) -> Self {
        let mut out = self.clone();
        for v in &mut out.data {
            *v *= alpha;
        }
        out
    }

    /// Applies `f` to every stored value, keeping (and sharing) the pattern.
    pub fn map_values(&self, mut f: impl FnMut(S) -> S) -> Self {
        let mut out = self.clone();
        for v in &mut out.data {
            *v = f(*v);
        }
        out
    }

    /// Drops stored entries with value exactly zero, shrinking the pattern.
    pub fn pruned(&self) -> Self {
        let rows = self.rows();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        for i in 0..rows {
            for (&j, &v) in self.row_indices(i).iter().zip(self.row_data(i)) {
                if v != S::ZERO {
                    indices.push(j);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Self::from_raw_parts(rows, self.cols(), indptr, indices, data)
    }

    /// Builds the block-diagonal matrix `diag(blocks…)`.
    ///
    /// This is how a mini-batch enters a *single* scan: the per-sample
    /// transposed Jacobians of one timestep become one block-diagonal
    /// element, so `B` independent scans fuse into one chain whose levels
    /// expose `B×` the parallelism (the batching the paper's CUDA kernels
    /// perform across thread blocks).
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty.
    pub fn block_diag(blocks: &[&Csr<S>]) -> Self {
        assert!(!blocks.is_empty(), "block_diag: no blocks");
        let rows: usize = blocks.iter().map(|b| b.rows()).sum();
        let cols: usize = blocks.iter().map(|b| b.cols()).sum();
        let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut data = Vec::with_capacity(nnz);
        indptr.push(0usize);
        let mut col_off = 0u32;
        for b in blocks {
            for i in 0..b.rows() {
                for (&j, &v) in b.row_indices(i).iter().zip(b.row_data(i)) {
                    indices.push(j + col_off);
                    data.push(v);
                }
                indptr.push(indices.len());
            }
            col_off += b.cols() as u32;
        }
        Self::from_parts_unchecked(rows, cols, indptr, indices, data)
    }

    /// Memory footprint in bytes of the three CSR arrays (the paper's
    /// 768 MB → 6.5 MB comparison for the first VGG-11 convolution).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self.indptr())
            + std::mem::size_of_val(self.indices())
            + self.data.len() * std::mem::size_of::<S>()
    }

    /// Largest absolute difference to a dense reference.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff_dense(&self, dense: &Matrix<S>) -> S {
        assert_eq!(self.shape(), dense.shape(), "max_abs_diff: shape mismatch");
        self.to_dense().max_abs_diff(dense)
    }
}

impl<S: Scalar> fmt::Display for Csr<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Csr[{}x{}, nnz={} ({:.4}% dense)]",
            self.rows(),
            self.cols(),
            self.nnz(),
            100.0 * (1.0 - self.sparsity())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f64> {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        Csr::try_from_parts(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_dense() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d.get(0, 2), 2.0);
        assert_eq!(d.get(1, 1), 0.0);
        let back = Csr::from_dense(&d);
        assert_eq!(back, m);
    }

    #[test]
    fn get_returns_stored_and_zero() {
        let m = sample();
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let x = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let y = m.spmv(&x);
        let yd = m.to_dense().matvec(&x);
        assert!(y.approx_eq(&yd, 1e-12));
        assert_eq!(y.as_slice(), &[7.0, 0.0, 11.0]);
    }

    #[test]
    fn spmv_into_matches_spmv() {
        let m = sample();
        let x = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let mut out = Vector::zeros(3);
        m.spmv_into(&x, &mut out);
        assert_eq!(out, m.spmv(&x));
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = sample();
        let t = m.transposed();
        assert_eq!(t.validate(), Ok(()));
        assert!(t.to_dense().approx_eq(&m.to_dense().transposed(), 0.0));
        // Transposing twice returns the original.
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn identity_spmv_is_identity() {
        let i = Csr::<f32>::identity(5);
        let x = Vector::from_fn(5, |k| k as f32);
        assert_eq!(i.spmv(&x), x);
        assert_eq!(i.nnz(), 5);
    }

    #[test]
    fn from_diagonal_keeps_explicit_zeros() {
        let d = Csr::from_diagonal(&[1.0f32, 0.0, 3.0]);
        // Explicit zero stays in the pattern: deterministic sparsity (§3.3).
        assert_eq!(d.nnz(), 3);
        assert_eq!(d.get(1, 1), 0.0);
        let p = d.pruned();
        assert_eq!(p.nnz(), 2);
    }

    #[test]
    fn validate_catches_bad_indptr() {
        let bad = Csr::<f32>::from_raw_parts(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 1.0]);
        assert!(matches!(bad.validate(), Err(CsrError::IndptrLength { .. })));
    }

    #[test]
    fn validate_catches_unsorted_row() {
        let bad = Csr::<f32>::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]);
        assert!(matches!(bad.validate(), Err(CsrError::UnsortedRow { .. })));
    }

    #[test]
    fn validate_catches_column_out_of_range() {
        let bad = Csr::<f32>::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(matches!(
            bad.validate(),
            Err(CsrError::ColumnOutOfRange { .. })
        ));
    }

    #[test]
    fn sparsity_formula() {
        let m = sample();
        assert!((m.sparsity() - (1.0 - 4.0 / 9.0)).abs() < 1e-12);
    }

    #[test]
    fn memory_bytes_counts_all_arrays() {
        let m = sample();
        let expected = 4 * 8 + 4 * 4 + 4 * 8;
        assert_eq!(m.memory_bytes(), expected);
    }

    #[test]
    fn scaled_and_map_values_keep_pattern() {
        let m = sample();
        let s = m.scaled(2.0);
        assert!(s.same_pattern(&m));
        assert_eq!(s.get(2, 0), 6.0);
        let z = m.map_values(|_| 0.0);
        assert!(z.same_pattern(&m));
        assert_eq!(z.nnz(), 4);
    }

    #[test]
    fn clone_and_transforms_share_the_pattern_allocation() {
        // The Arc-sharing contract: clones and value-only transforms bump a
        // refcount instead of copying indptr/indices.
        let m = sample();
        let c = m.clone();
        assert!(Arc::ptr_eq(m.pattern_ref(), c.pattern_ref()));
        let s = m.scaled(0.5);
        assert!(Arc::ptr_eq(m.pattern_ref(), s.pattern_ref()));
        let f = m.map_values(|v| v + 1.0);
        assert!(Arc::ptr_eq(m.pattern_ref(), f.pattern_ref()));
        assert!(Arc::ptr_eq(&m.pattern(), m.pattern_ref()));
    }

    #[test]
    fn copy_values_from_requires_same_pattern() {
        let m = sample();
        let mut dst = Csr::from_pattern(m.pattern());
        dst.copy_values_from(&m);
        assert_eq!(dst, m);
    }

    #[test]
    #[should_panic(expected = "pattern mismatch")]
    fn copy_values_from_rejects_other_pattern() {
        let m = sample();
        let mut dst = Csr::<f64>::identity(3);
        dst.copy_values_from(&m);
    }

    #[test]
    fn reset_to_pattern_rebinds_buffer() {
        let m = sample();
        let mut buf = Csr::<f64>::identity(2);
        buf.reset_to_pattern(m.pattern_ref());
        assert!(buf.same_pattern(&m));
        assert!(buf.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn display_reports_nnz() {
        assert!(format!("{}", sample()).contains("nnz=4"));
    }

    #[test]
    fn block_diag_places_blocks_on_the_diagonal() {
        let a = Csr::from_diagonal(&[1.0f64, 2.0]);
        let b = sample();
        let d = Csr::block_diag(&[&a, &b]);
        assert_eq!(d.shape(), (5, 5));
        assert_eq!(d.validate(), Ok(()));
        assert_eq!(d.nnz(), a.nnz() + b.nnz());
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(2, 2), 1.0); // b's (0,0)
        assert_eq!(d.get(4, 3), 4.0); // b's (2,1)
        assert_eq!(d.get(0, 3), 0.0); // off-block
    }

    #[test]
    fn block_diag_product_is_blockwise_product() {
        // diag(A1,A2)·diag(B1,B2) == diag(A1·B1, A2·B2): the identity that
        // makes batched scans equivalent to per-sample scans.
        let a1 = sample();
        let a2 = Csr::from_diagonal(&[2.0f64, 3.0, 4.0]);
        let b1 = Csr::from_diagonal(&[1.0f64, -1.0, 0.5]);
        let b2 = sample();
        let lhs = crate::spgemm(&Csr::block_diag(&[&a1, &a2]), &Csr::block_diag(&[&b1, &b2]));
        let rhs = Csr::block_diag(&[&crate::spgemm(&a1, &b1), &crate::spgemm(&a2, &b2)]);
        assert!(lhs.to_dense().approx_eq(&rhs.to_dense(), 1e-12));
    }

    #[test]
    #[should_panic(expected = "no blocks")]
    fn block_diag_rejects_empty() {
        let _ = Csr::<f32>::block_diag(&[]);
    }

    #[test]
    fn from_dense_pattern_stores_all_positions() {
        let d = Matrix::from_rows(&[&[1.0f64, 0.0], &[0.0, 2.0]]);
        let full = Csr::from_dense_pattern(&d);
        assert_eq!(full.validate(), Ok(()));
        assert_eq!(full.nnz(), 4);
        assert!(full.to_dense().approx_eq(&d, 0.0));
        // Value changes never change the pattern.
        let other = Csr::from_dense_pattern(&Matrix::from_rows(&[&[0.0f64, 5.0], &[6.0, 0.0]]));
        assert!(full.same_pattern(&other));
    }
}
