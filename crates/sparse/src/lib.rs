//! # bppsa-sparse — sparse linear algebra for deterministic Jacobian patterns
//!
//! CSR/COO sparse matrices, SpMV, and SpGEMM for the BPPSA reproduction.
//!
//! The paper's §3.3 observes that the Jacobians of convolution, ReLU, and
//! max-pooling are extremely sparse *and* that their guaranteed-zero
//! positions are deterministic, known before training starts. That enables an
//! optimization generic libraries (cuSPARSE) cannot apply: running SpGEMM's
//! symbolic phase once ahead of time and re-executing only the numeric phase
//! every iteration. [`SymbolicProduct`] implements exactly that split;
//! [`spgemm`] is the generic baseline it is ablated against. The numeric
//! phase itself is density-adaptive: plan time resolves a [`KernelMode`] to
//! one of three [`NumericKernel`]s (gather program, planned Gustavson, dense
//! packed-panel microkernel — see [`kernel`]).
//!
//! ## Quick example
//!
//! ```
//! use bppsa_sparse::{spgemm, Csr, SymbolicProduct};
//!
//! let a = Csr::from_diagonal(&[1.0_f32, 2.0]);
//! let b = Csr::from_diagonal(&[3.0_f32, 4.0]);
//!
//! // Generic path: symbolic + numeric every call.
//! let c = spgemm(&a, &b);
//!
//! // Paper's path: plan once, execute numerics many times.
//! let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
//! assert_eq!(plan.execute(&a, &b), c);
//! ```

#![warn(missing_docs)]

mod coo;
mod csr;
mod error;
mod pattern;
mod spgemm;

pub mod flops;
pub mod kernel;

pub use coo::Coo;
pub use csr::Csr;
pub use error::CsrError;
pub use kernel::{
    KernelMode, KernelScratch, NumericKernel, KERNEL_DENSE_MIN_COLS, KERNEL_DENSE_MIN_DENSITY,
    KERNEL_GATHER_MAX_MACS_PER_OUT,
};
pub use pattern::SparsityPattern;
pub use spgemm::{spgemm, SymbolicProduct};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Csr<f32>>();
        assert_send_sync::<Coo<f32>>();
        assert_send_sync::<SparsityPattern>();
        assert_send_sync::<SymbolicProduct>();
        assert_send_sync::<CsrError>();
        assert_send_sync::<KernelMode>();
        assert_send_sync::<NumericKernel>();
        assert_send_sync::<KernelScratch<f32>>();
    }
}
