//! Coordinate-format (triplet) builder for incremental sparse-matrix
//! construction.

use crate::Csr;
use bppsa_tensor::Scalar;

/// A coordinate-format sparse-matrix builder.
///
/// Entries may be pushed in any order; duplicates are summed when converting
/// to CSR. This is the convenient construction path when an analytic
/// generator is unavailable.
///
/// # Examples
///
/// ```
/// use bppsa_sparse::Coo;
///
/// let mut coo = Coo::<f64>::new(2, 2);
/// coo.push(0, 0, 1.0);
/// coo.push(1, 1, 2.0);
/// coo.push(0, 0, 3.0); // duplicate: summed
/// let csr = coo.to_csr();
/// assert_eq!(csr.get(0, 0), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Coo<S> {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, S)>,
}

impl<S: Scalar> Coo<S> {
    /// Creates an empty builder for a `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension exceeds `u32::MAX`.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= u32::MAX as usize && cols <= u32::MAX as usize,
            "Coo: dimensions exceed u32 index range"
        );
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of pushed triplets (before duplicate summing).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `value` at `(row, col)`. Duplicates are summed by [`Coo::to_csr`].
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn push(&mut self, row: usize, col: usize, value: S) {
        assert!(
            row < self.rows && col < self.cols,
            "Coo::push({row},{col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((row as u32, col as u32, value));
    }

    /// Converts to CSR, sorting entries and summing duplicates. Entries that
    /// sum to exactly zero are *kept* (deterministic patterns matter more
    /// than minimal storage here; call [`Csr::pruned`] to drop them).
    pub fn to_csr(&self) -> Csr<S> {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices: Vec<u32> = Vec::with_capacity(entries.len());
        let mut data: Vec<S> = Vec::with_capacity(entries.len());
        indptr.push(0);
        let mut current_row = 0usize;
        let mut last: Option<(u32, u32)> = None;
        for (r, c, v) in entries {
            if last == Some((r, c)) {
                let i = data.len() - 1;
                data[i] += v;
                continue;
            }
            while current_row < r as usize {
                indptr.push(indices.len());
                current_row += 1;
            }
            indices.push(c);
            data.push(v);
            last = Some((r, c));
        }
        while current_row < self.rows {
            indptr.push(indices.len());
            current_row += 1;
        }
        Csr::from_parts_unchecked(self.rows, self.cols, indptr, indices, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_gives_zero_matrix() {
        let coo = Coo::<f32>::new(3, 4);
        let csr = coo.to_csr();
        assert_eq!(csr.shape(), (3, 4));
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.validate(), Ok(()));
    }

    #[test]
    fn unsorted_pushes_produce_sorted_csr() {
        let mut coo = Coo::<f64>::new(2, 3);
        coo.push(1, 2, 5.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 3.0);
        coo.push(0, 0, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.validate(), Ok(()));
        assert_eq!(csr.row_indices(0), &[0, 1]);
        assert_eq!(csr.row_indices(1), &[0, 2]);
        assert_eq!(csr.get(1, 2), 5.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = Coo::<f64>::new(1, 2);
        coo.push(0, 1, 1.5);
        coo.push(0, 1, 2.5);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 1), 4.0);
    }

    #[test]
    fn zero_sum_duplicates_are_kept_until_pruned() {
        let mut coo = Coo::<f64>::new(1, 1);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, -1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.pruned().nnz(), 0);
    }

    #[test]
    fn trailing_empty_rows_have_indptr_entries() {
        let mut coo = Coo::<f32>::new(4, 2);
        coo.push(0, 0, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.indptr(), &[0, 1, 1, 1, 1]);
        assert_eq!(csr.validate(), Ok(()));
    }

    #[test]
    fn leading_empty_rows_are_handled() {
        let mut coo = Coo::<f32>::new(3, 2);
        coo.push(2, 1, 4.0);
        let csr = coo.to_csr();
        assert_eq!(csr.indptr(), &[0, 0, 0, 1]);
        assert_eq!(csr.get(2, 1), 4.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut coo = Coo::<f32>::new(1, 1);
        coo.push(1, 0, 1.0);
    }
}
