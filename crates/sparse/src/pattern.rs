//! Sparsity patterns: CSR structure without values.
//!
//! §3.3 of the paper: "the positions of guaranteed zeros in the Jacobian is
//! deterministic with the model architecture and known ahead of time", which
//! lets index merging be hoisted out of the training loop. This type is what
//! gets hoisted.

use std::fmt;

/// The structure (indptr + column indices) of a CSR matrix, without values.
///
/// # Examples
///
/// Patterns are deterministic (known before training), so they are shared
/// behind `Arc`s: `Csr::pattern()` is a refcount bump, never a deep copy.
///
/// ```
/// use bppsa_sparse::{Csr, SparsityPattern};
/// use std::sync::Arc;
///
/// let m = Csr::from_diagonal(&[1.0_f32, 2.0]);
/// let p: Arc<SparsityPattern> = m.pattern();
/// assert_eq!(p.nnz(), 2);
/// assert_eq!(p.shape(), (2, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
}

impl SparsityPattern {
    /// Creates a pattern from raw structure arrays.
    ///
    /// # Panics
    ///
    /// Panics if `indptr.len() != rows + 1` or the final `indptr` entry does
    /// not match `indices.len()`.
    pub fn new(rows: usize, cols: usize, indptr: Vec<usize>, indices: Vec<u32>) -> Self {
        assert_eq!(indptr.len(), rows + 1, "pattern: bad indptr length");
        assert_eq!(
            *indptr.last().unwrap_or(&0),
            indices.len(),
            "pattern: indptr end does not match indices length"
        );
        Self {
            rows,
            cols,
            indptr,
            indices,
        }
    }

    /// Crate-internal constructor that skips the structural asserts, for
    /// callers that validate separately (`Csr::try_from_parts`) or
    /// intentionally build invalid structures in tests.
    pub(crate) fn new_unvalidated(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
    ) -> Self {
        Self {
            rows,
            cols,
            indptr,
            indices,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of structurally non-zero positions.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Fraction of structurally-zero entries — the "sparsity of guaranteed
    /// zeros" of Table 1.
    pub fn sparsity(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / total as f64
    }

    /// The `indptr` array.
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The concatenated column-index array.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Column indices of row `i`.
    #[inline]
    pub fn row_indices(&self, i: usize) -> &[u32] {
        &self.indices[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Number of structural entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Whether position `(i, j)` is structurally non-zero.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.row_indices(i).binary_search(&(j as u32)).is_ok()
    }

    /// Whether this is the *full* square diagonal pattern: `n × n` with
    /// exactly one structural entry per row, at the diagonal position (the
    /// pattern [`Csr::from_diagonal`](crate::Csr::from_diagonal) produces,
    /// explicit zeros included). The guaranteed layout — `data()[i]` is the
    /// `(i, i)` value — is what lets the diagonal scan fast path in
    /// `bppsa-core` read a matrix's diagonal as a contiguous slice.
    ///
    /// Patterns that merely have *only* diagonal entries but are missing
    /// some (e.g. built by a zero-dropping constructor) return `false`:
    /// their products are not closed under the full-diagonal data layout.
    pub fn is_diagonal(&self) -> bool {
        self.rows == self.cols
            && self.nnz() == self.rows
            && self
                .indices
                .iter()
                .enumerate()
                .all(|(i, &j)| j as usize == i)
            && self.indptr.iter().enumerate().all(|(i, &p)| p == i)
    }
}

impl fmt::Display for SparsityPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SparsityPattern[{}x{}, nnz={}, sparsity={:.5}]",
            self.rows,
            self.cols,
            self.nnz(),
            self.sparsity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Csr;

    #[test]
    fn pattern_reflects_structure() {
        let m = Csr::try_from_parts(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0f32, 2.0, 3.0])
            .unwrap();
        let p = m.pattern();
        assert_eq!(p.shape(), (2, 3));
        assert_eq!(p.nnz(), 3);
        assert!(p.contains(0, 2));
        assert!(!p.contains(0, 1));
        assert_eq!(p.row_nnz(1), 1);
    }

    #[test]
    fn sparsity_of_empty_and_full() {
        let empty = SparsityPattern::new(2, 2, vec![0, 0, 0], vec![]);
        assert_eq!(empty.sparsity(), 1.0);
        let full = SparsityPattern::new(1, 2, vec![0, 2], vec![0, 1]);
        assert_eq!(full.sparsity(), 0.0);
    }

    #[test]
    fn zero_sized_pattern_sparsity_is_zero() {
        let p = SparsityPattern::new(0, 0, vec![0], vec![]);
        assert_eq!(p.sparsity(), 0.0);
        assert_eq!(p.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "bad indptr length")]
    fn new_rejects_bad_indptr() {
        let _ = SparsityPattern::new(2, 2, vec![0, 1], vec![0]);
    }

    #[test]
    fn is_diagonal_requires_the_full_diagonal() {
        assert!(Csr::from_diagonal(&[1.0f64, 0.0, -2.0])
            .pattern_ref()
            .is_diagonal());
        // A hole in the diagonal (as a zero-dropping constructor would
        // leave): not full-diagonal.
        let holey = SparsityPattern::new(2, 2, vec![0, 1, 1], vec![0]);
        assert!(!holey.is_diagonal());
        // Off-diagonal entry.
        let off = SparsityPattern::new(2, 2, vec![0, 1, 2], vec![1, 0]);
        assert!(!off.is_diagonal());
        // Rectangular.
        let rect = SparsityPattern::new(2, 3, vec![0, 1, 2], vec![0, 1]);
        assert!(!rect.is_diagonal());
        // Empty square (vacuously full-diagonal).
        assert!(SparsityPattern::new(0, 0, vec![0], vec![]).is_diagonal());
    }

    #[test]
    fn display_includes_sparsity() {
        let p = SparsityPattern::new(1, 2, vec![0, 1], vec![0]);
        assert!(format!("{p}").contains("sparsity=0.5"));
    }
}
