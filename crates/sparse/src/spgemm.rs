//! Sparse general matrix–matrix multiplication (SpGEMM).
//!
//! Two entry points:
//!
//! * [`spgemm`] — the *generic* path: a Gustavson-style row-by-row product
//!   that performs both the symbolic work (discovering the output pattern,
//!   sorting indices) and the numeric work on every call. This models what
//!   cuSPARSE does each time (§4.2 of the paper).
//! * [`SymbolicProduct`] — the paper's optimization: because the sparsity
//!   patterns of transposed Jacobians are deterministic (§3.3), the symbolic
//!   phase can run **once, ahead of training**, and every later call performs
//!   only the FLOPs. `spgemm_symbolic` in the bench crate ablates the two.
//!
//! The numeric phase comes in three flavors, all sharing the same gather
//! program: [`SymbolicProduct::execute`] (allocates a fresh output),
//! [`SymbolicProduct::execute_into`] (writes a caller-owned buffer —
//! allocation-free in the steady state), and
//! [`SymbolicProduct::execute_into_parallel`] (row-chunk parallel over a
//! [`WorkerPool`], chunks balanced by per-row FLOPs).

use crate::{Csr, SparsityPattern};
use bppsa_scan::{SendPtr, WorkerPool};
use bppsa_tensor::Scalar;
use std::sync::Arc;

/// Computes `C = A · B` with a Gustavson sparse accumulator, performing
/// symbolic and numeric work together (the generic baseline).
///
/// Output rows are sorted; entries that sum to exactly zero are kept so the
/// result's pattern equals the *structural* product pattern.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn spgemm<S: Scalar>(a: &Csr<S>, b: &Csr<S>) -> Csr<S> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "spgemm: inner dimensions differ ({}x{} · {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let n = b.cols();
    let mut values = vec![S::ZERO; n];
    let mut present = vec![false; n];
    let mut touched: Vec<u32> = Vec::new();

    let mut indptr = Vec::with_capacity(a.rows() + 1);
    let mut indices: Vec<u32> = Vec::new();
    let mut data: Vec<S> = Vec::new();
    indptr.push(0);

    for i in 0..a.rows() {
        touched.clear();
        for (&k, &av) in a.row_indices(i).iter().zip(a.row_data(i)) {
            let k = k as usize;
            for (&j, &bv) in b.row_indices(k).iter().zip(b.row_data(k)) {
                let ju = j as usize;
                if !present[ju] {
                    present[ju] = true;
                    touched.push(j);
                    // `0 + av·bv`, not a bare product: every other numeric
                    // kernel (spmv, the planned SymbolicProduct gather)
                    // accumulates into a zeroed buffer, which canonicalizes
                    // a `-0.0` product to `+0.0`. Matching that here keeps
                    // planned and unplanned executions bit-identical even
                    // on the sign of exact zeros.
                    values[ju] = S::ZERO + av * bv;
                } else {
                    values[ju] += av * bv;
                }
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            indices.push(j);
            data.push(values[j as usize]);
            present[j as usize] = false;
        }
        indptr.push(indices.len());
    }
    Csr::from_parts_unchecked(a.rows(), n, indptr, indices, data)
}

/// A precomputed symbolic SpGEMM plan: the output pattern of `A · B` for
/// fixed input patterns, enabling numeric-only execution.
///
/// All three patterns (both operands' and the output's) are held behind
/// [`Arc`]s, so distributing them into per-combine plans and workspace
/// buffers is refcount traffic, not copying.
///
/// # Examples
///
/// ```
/// use bppsa_sparse::{Csr, SymbolicProduct};
///
/// let a = Csr::from_diagonal(&[2.0_f64, 3.0]);
/// let b = Csr::from_diagonal(&[4.0_f64, 5.0]);
/// let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
/// let c = plan.execute(&a, &b);
/// assert_eq!(c.get(0, 0), 8.0);
/// assert_eq!(c.get(1, 1), 15.0);
///
/// // Steady-state path: numeric phase into a reusable buffer.
/// let mut out = Csr::from_pattern(plan.out_pattern().clone());
/// plan.execute_into(&a, &b, &mut out);
/// assert_eq!(out, c);
/// ```
#[derive(Debug, Clone)]
pub struct SymbolicProduct {
    a_pattern: Arc<SparsityPattern>,
    b_pattern: Arc<SparsityPattern>,
    out_pattern: Arc<SparsityPattern>,
    /// Dense-accumulator scatter positions: for each output row, for each
    /// structural (k, j) product contribution, the slot in the row's output
    /// segment. Stored flat; rows delimited by `gather_ptr`.
    gather: Vec<(u32, u32, u32)>,
    /// Per-row delimiters into `gather` (length `rows + 1`). Doubles as the
    /// prefix-FLOP table the row-parallel executor balances chunks with
    /// (each gather entry is one multiply–add).
    gather_ptr: Vec<usize>,
    flops: u64,
}

impl SymbolicProduct {
    /// Runs the symbolic phase once for the given input patterns. The
    /// pattern handles are retained (refcount bump) for operand checking.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions differ.
    pub fn plan(a: &Arc<SparsityPattern>, b: &Arc<SparsityPattern>) -> Self {
        assert_eq!(
            a.cols(),
            b.rows(),
            "SymbolicProduct::plan: inner dimensions differ"
        );
        let n = b.cols();
        let mut slot_of = vec![u32::MAX; n];
        let mut touched: Vec<u32> = Vec::new();

        let mut indptr = Vec::with_capacity(a.rows() + 1);
        let mut indices: Vec<u32> = Vec::new();
        let mut gather: Vec<(u32, u32, u32)> = Vec::new();
        let mut gather_ptr = Vec::with_capacity(a.rows() + 1);
        let mut flops = 0u64;
        indptr.push(0);
        gather_ptr.push(0);

        for i in 0..a.rows() {
            touched.clear();
            // Discover the output row's column set.
            for &k in a.row_indices(i) {
                for &j in b.row_indices(k as usize) {
                    if slot_of[j as usize] == u32::MAX {
                        slot_of[j as usize] = 0; // mark
                        touched.push(j);
                    }
                }
            }
            touched.sort_unstable();
            for (slot, &j) in touched.iter().enumerate() {
                slot_of[j as usize] = slot as u32;
                indices.push(j);
            }
            // Record the multiply-accumulate program for this row.
            for (apos, &k) in a.row_indices(i).iter().enumerate() {
                let a_off = (a.indptr()[i] + apos) as u32;
                let k = k as usize;
                for bpos in 0..b.row_nnz(k) {
                    let b_off = (b.indptr()[k] + bpos) as u32;
                    let j = b.row_indices(k)[bpos];
                    gather.push((a_off, b_off, slot_of[j as usize]));
                    flops += 2;
                }
            }
            for &j in &touched {
                slot_of[j as usize] = u32::MAX;
            }
            indptr.push(indices.len());
            gather_ptr.push(gather.len());
        }

        Self {
            a_pattern: Arc::clone(a),
            b_pattern: Arc::clone(b),
            out_pattern: Arc::new(SparsityPattern::new(a.rows(), n, indptr, indices)),
            gather,
            gather_ptr,
            flops,
        }
    }

    /// The output pattern of the product (shared handle).
    pub fn out_pattern(&self) -> &Arc<SparsityPattern> {
        &self.out_pattern
    }

    /// The planned left-operand pattern (shared handle).
    pub fn a_pattern(&self) -> &Arc<SparsityPattern> {
        &self.a_pattern
    }

    /// The planned right-operand pattern (shared handle).
    pub fn b_pattern(&self) -> &Arc<SparsityPattern> {
        &self.b_pattern
    }

    /// Total multiply–add FLOPs (counting 2 per multiply–add) a numeric
    /// execution performs.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Whether `a` and `b` carry exactly the patterns this plan was built
    /// from. Shared-`Arc` operands short-circuit to pointer comparisons.
    pub fn operands_match<S: Scalar>(&self, a: &Csr<S>, b: &Csr<S>) -> bool {
        pattern_eq(a.pattern_ref(), &self.a_pattern) && pattern_eq(b.pattern_ref(), &self.b_pattern)
    }

    /// Executes the numeric phase: computes `A · B` assuming `a` and `b`
    /// have exactly the patterns this plan was built from.
    ///
    /// # Panics
    ///
    /// Panics if the operand patterns do not match the planned patterns.
    pub fn execute<S: Scalar>(&self, a: &Csr<S>, b: &Csr<S>) -> Csr<S> {
        assert!(
            self.operands_match(a, b),
            "SymbolicProduct::execute: operand patterns do not match the plan"
        );
        self.execute_unchecked(a, b)
    }

    /// Numeric phase without the pattern equality check (debug-checked).
    /// This is the hot path measured by the `spgemm_symbolic` ablation. The
    /// returned matrix *shares* the plan's output pattern — the only heap
    /// allocation is the value array.
    pub fn execute_unchecked<S: Scalar>(&self, a: &Csr<S>, b: &Csr<S>) -> Csr<S> {
        debug_assert!(self.operands_match(a, b));
        let mut data = vec![S::ZERO; self.out_pattern.nnz()];
        self.numeric_rows(a.data(), b.data(), &mut data, 0..self.out_pattern.rows());
        Csr::from_pattern_and_values(Arc::clone(&self.out_pattern), data)
    }

    /// Numeric phase into a caller-owned output buffer. Rebinds `out` to the
    /// plan's output pattern (refcount bump) and overwrites its values:
    /// performs **zero heap allocations** once `out`'s value buffer has
    /// reached steady-state capacity.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the operand patterns do not match.
    pub fn execute_into<S: Scalar>(&self, a: &Csr<S>, b: &Csr<S>, out: &mut Csr<S>) {
        debug_assert!(self.operands_match(a, b));
        out.reset_to_pattern(&self.out_pattern);
        self.numeric_rows(
            a.data(),
            b.data(),
            out.data_mut(),
            0..self.out_pattern.rows(),
        );
    }

    /// Row-chunk-parallel numeric phase into a caller-owned buffer: output
    /// rows are split into `pool.size() + 1` chunks of approximately equal
    /// planned FLOPs (via the prefix-FLOP table) and executed on the shared
    /// worker pool. Allocation-free in the steady state, like
    /// [`SymbolicProduct::execute_into`].
    ///
    /// Worth the pool wakeup only when [`SymbolicProduct::flops`] is large;
    /// callers decide (see `PlannedScan`'s cost model in `bppsa-core`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the operand patterns do not match.
    pub fn execute_into_parallel<S: Scalar>(
        &self,
        a: &Csr<S>,
        b: &Csr<S>,
        out: &mut Csr<S>,
        pool: &WorkerPool,
    ) {
        debug_assert!(self.operands_match(a, b));
        out.reset_to_pattern(&self.out_pattern);
        let rows = self.out_pattern.rows();
        let chunks = (pool.size() + 1).min(rows.max(1));
        if chunks <= 1 {
            self.numeric_rows(a.data(), b.data(), out.data_mut(), 0..rows);
            return;
        }
        let ad = a.data();
        let bd = b.data();
        let out_data = SendPtr(out.data_mut().as_mut_ptr());
        let total = self.gather.len();
        pool.run_indexed(chunks, &|c| {
            let out_data: SendPtr<S> = out_data;
            let r0 = self.chunk_boundary_row(c, chunks, total, rows);
            let r1 = self.chunk_boundary_row(c + 1, chunks, total, rows);
            for i in r0..r1 {
                let out_base = self.out_pattern.indptr()[i];
                for &(a_off, b_off, slot) in
                    &self.gather[self.gather_ptr[i]..self.gather_ptr[i + 1]]
                {
                    // SAFETY: chunk row ranges partition 0..rows, and each
                    // row's output segment [indptr[i], indptr[i+1]) is
                    // disjoint from every other row's — no two pool tasks
                    // write the same element, and the pool's barrier orders
                    // all writes before `run_indexed` returns.
                    unsafe {
                        let dst = out_data.0.add(out_base + slot as usize);
                        *dst += ad[a_off as usize] * bd[b_off as usize];
                    }
                }
            }
        });
    }

    /// First row of chunk `c` when `0..rows` is split into `chunks` pieces
    /// of roughly `total / chunks` gather entries each.
    ///
    /// Boundaries are **strictly monotone** for `chunks <= rows`: every
    /// chunk owns at least one row, `boundary(0) == 0`, and
    /// `boundary(chunks) == rows`, so the per-chunk row ranges partition
    /// `0..rows` exactly with no empty chunks. The raw FLOP-balanced
    /// targets alone do not guarantee that — leading rows with empty gather
    /// ranges or one row dominating `total` collapse several targets onto
    /// the same row — so the raw boundaries are repaired by the strictly
    /// increasing envelope `max_k≤c (raw(k) + (c − k))`, clamped so every
    /// later chunk keeps a row too.
    fn chunk_boundary_row(&self, c: usize, chunks: usize, total: usize, rows: usize) -> usize {
        debug_assert!(chunks >= 1 && chunks <= rows);
        if c == 0 {
            return 0;
        }
        if c >= chunks {
            return rows;
        }
        // Strictly increasing lower envelope over the raw boundaries. O(c)
        // partition_points per call — chunks is pool-sized (tiny next to
        // the numeric work this is only used to split).
        let mut repaired = c; // k == 0 term: raw(0) == 0, shifted by c.
        for k in 1..=c {
            let target = k * total / chunks;
            let raw = self.gather_ptr.partition_point(|&g| g < target).min(rows);
            repaired = repaired.max(raw + (c - k));
        }
        // Leave at least one row for each of the `chunks - c` later chunks.
        repaired.min(rows - (chunks - c))
    }

    /// The shared serial gather kernel over a row range.
    fn numeric_rows<S: Scalar>(
        &self,
        ad: &[S],
        bd: &[S],
        out: &mut [S],
        rows: std::ops::Range<usize>,
    ) {
        for i in rows {
            let out_base = self.out_pattern.indptr()[i];
            for &(a_off, b_off, slot) in &self.gather[self.gather_ptr[i]..self.gather_ptr[i + 1]] {
                out[out_base + slot as usize] += ad[a_off as usize] * bd[b_off as usize];
            }
        }
    }
}

/// Content equality with an `Arc` pointer fast path.
fn pattern_eq(a: &Arc<SparsityPattern>, b: &Arc<SparsityPattern>) -> bool {
    Arc::ptr_eq(a, b) || a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use bppsa_tensor::Matrix;

    fn dense_ref(a: &Csr<f64>, b: &Csr<f64>) -> Matrix<f64> {
        a.to_dense().matmul(&b.to_dense())
    }

    fn sample_a() -> Csr<f64> {
        Csr::from_dense(&Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0]]))
    }

    fn sample_b() -> Csr<f64> {
        Csr::from_dense(&Matrix::from_rows(&[&[0.0, 1.0], &[4.0, 0.0], &[0.0, 5.0]]))
    }

    #[test]
    fn spgemm_matches_dense() {
        let c = spgemm(&sample_a(), &sample_b());
        assert_eq!(c.validate(), Ok(()));
        assert!(c
            .to_dense()
            .approx_eq(&dense_ref(&sample_a(), &sample_b()), 1e-12));
    }

    #[test]
    fn spgemm_identity_is_noop() {
        let a = sample_a();
        let i3 = Csr::identity(3);
        let i2 = Csr::identity(2);
        assert!(spgemm(&a, &i3).to_dense().approx_eq(&a.to_dense(), 0.0));
        assert!(spgemm(&i2, &a).to_dense().approx_eq(&a.to_dense(), 0.0));
    }

    #[test]
    fn spgemm_keeps_structural_zeros() {
        // [1, -1] · [1; 1] = 0 but the position is structurally non-zero.
        let a = Csr::from_dense(&Matrix::from_rows(&[&[1.0, -1.0]]));
        let b = Csr::from_dense(&Matrix::from_rows(&[&[1.0], &[1.0]]));
        let c = spgemm(&a, &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn spgemm_shape_mismatch_panics() {
        let _ = spgemm(&sample_a(), &sample_a());
    }

    #[test]
    fn symbolic_plan_matches_generic() {
        let a = sample_a();
        let b = sample_b();
        let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
        let via_plan = plan.execute(&a, &b);
        let generic = spgemm(&a, &b);
        assert_eq!(via_plan, generic);
    }

    #[test]
    fn executed_output_shares_plan_pattern() {
        let a = sample_a();
        let b = sample_b();
        let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
        let c = plan.execute(&a, &b);
        assert!(Arc::ptr_eq(c.pattern_ref(), plan.out_pattern()));
        // Operand handles were retained, so matching is pointer equality.
        assert!(Arc::ptr_eq(plan.a_pattern(), a.pattern_ref()));
        assert!(plan.operands_match(&a, &b));
    }

    #[test]
    fn execute_into_matches_execute() {
        let a = sample_a();
        let b = sample_b();
        let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
        let reference = plan.execute(&a, &b);
        // Start from a buffer with a completely different shape: the first
        // call rebinds it.
        let mut out = Csr::<f64>::identity(7);
        plan.execute_into(&a, &b, &mut out);
        assert_eq!(out, reference);
        // Steady state: same buffer again.
        plan.execute_into(&a, &b, &mut out);
        assert_eq!(out, reference);
    }

    #[test]
    fn execute_into_parallel_matches_serial() {
        let pool = bppsa_scan::WorkerPool::new(3);
        let mut rng_state = 0x1234_5678_u64;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        // A moderately large random product so chunking is non-trivial.
        let (m, k, n) = (37, 29, 31);
        let a = Csr::from_dense(&Matrix::from_fn(m, k, |_, _| {
            let v = next();
            if v > -0.2 {
                v
            } else {
                0.0
            }
        }));
        let b = Csr::from_dense(&Matrix::from_fn(k, n, |_, _| {
            let v = next();
            if v > -0.1 {
                v
            } else {
                0.0
            }
        }));
        let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
        let reference = plan.execute(&a, &b);
        let mut out = Csr::from_pattern(plan.out_pattern().clone());
        plan.execute_into_parallel(&a, &b, &mut out, &pool);
        assert_eq!(out, reference);
    }

    #[test]
    fn plan_is_reusable_across_values() {
        let a = sample_a();
        let b = sample_b();
        let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
        // Same patterns, different values.
        let a2 = a.map_values(|v| v * 10.0);
        let b2 = b.map_values(|v| v - 1.0);
        let c2 = plan.execute(&a2, &b2);
        assert!(c2.to_dense().approx_eq(&dense_ref(&a2, &b2), 1e-12));
    }

    #[test]
    fn plan_flops_counts_structural_products() {
        let a = sample_a();
        let b = sample_b();
        let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
        // Row 0 of A hits rows 0 (1 entry) and 2 (1 entry) of B → 2 products;
        // row 1 hits row 1 (1 entry) → 1 product. Total 3 MACs = 6 FLOPs.
        assert_eq!(plan.flops(), 6);
    }

    #[test]
    #[should_panic(expected = "patterns do not match")]
    fn execute_rejects_wrong_pattern() {
        let a = sample_a();
        let b = sample_b();
        let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
        let wrong = Csr::identity(3);
        let _ = plan.execute(&wrong, &b);
    }

    /// A dense matrix whose row-occupancy is deliberately skewed: a run of
    /// leading all-zero rows, one dominating dense row, and a sparse tail —
    /// the shapes that used to collapse several raw chunk boundaries onto
    /// one row.
    fn skewed_dense(
        rows: usize,
        cols: usize,
        empty_lead: usize,
        heavy_row: usize,
        tail_density: f64,
        cells: &[f64],
    ) -> Matrix<f64> {
        let mut idx = 0usize;
        Matrix::from_fn(rows, cols, |i, _| {
            let v = cells[idx % cells.len()];
            idx += 1;
            if i < empty_lead.min(rows) {
                0.0
            } else if i == heavy_row % rows {
                if v == 0.0 {
                    1.0
                } else {
                    v
                }
            } else if v.abs() < tail_density * 5.0 {
                v
            } else {
                0.0
            }
        })
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(64))]

        #[test]
        fn chunk_boundaries_partition_rows_exactly(
            (rows, k, cols, empty_lead, heavy_row, tail_density) in (
                2usize..24,
                1usize..12,
                1usize..12,
                0usize..20,
                0usize..24,
                0.0f64..1.0,
            ),
            cells in proptest::collection::vec(-5.0f64..5.0, 64),
        ) {
            let a = Csr::from_dense(&skewed_dense(
                rows, k, empty_lead, heavy_row, tail_density, &cells,
            ));
            let b = Csr::from_dense(&skewed_dense(k, cols, 0, heavy_row, 0.6, &cells));
            let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
            let total = plan.gather.len();
            for chunks in 2..=rows.min(9) {
                let boundaries: Vec<usize> = (0..=chunks)
                    .map(|c| plan.chunk_boundary_row(c, chunks, total, rows))
                    .collect();
                proptest::prop_assert_eq!(boundaries[0], 0);
                proptest::prop_assert_eq!(boundaries[chunks], rows);
                for c in 0..chunks {
                    // Strictly monotone: no empty and no duplicate chunks,
                    // so the ranges partition 0..rows exactly.
                    proptest::prop_assert!(
                        boundaries[c] < boundaries[c + 1],
                        "chunks={} boundaries={:?} (gather_ptr={:?})",
                        chunks,
                        &boundaries,
                        &plan.gather_ptr
                    );
                }
            }
            // And the row-parallel executor built on those boundaries stays
            // numerically identical to the serial gather.
            let reference = plan.execute(&a, &b);
            let pool = WorkerPool::new(3);
            let mut out = Csr::from_pattern(plan.out_pattern().clone());
            plan.execute_into_parallel(&a, &b, &mut out, &pool);
            proptest::prop_assert_eq!(out, reference);
        }
    }

    #[test]
    fn chained_products_stay_valid() {
        // Products of products (as in the scan's up-sweep) remain valid CSR.
        let a = sample_a();
        let b = sample_b();
        let c = spgemm(&a, &b); // 2x2
        let d = spgemm(&c, &c);
        assert_eq!(d.validate(), Ok(()));
        assert!(d
            .to_dense()
            .approx_eq(&c.to_dense().matmul(&c.to_dense()), 1e-12));
    }
}
