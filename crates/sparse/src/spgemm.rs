//! Sparse general matrix–matrix multiplication (SpGEMM).
//!
//! Two entry points:
//!
//! * [`spgemm`] — the *generic* path: a Gustavson-style row-by-row product
//!   that performs both the symbolic work (discovering the output pattern,
//!   sorting indices) and the numeric work on every call. This models what
//!   cuSPARSE does each time (§4.2 of the paper).
//! * [`SymbolicProduct`] — the paper's optimization: because the sparsity
//!   patterns of transposed Jacobians are deterministic (§3.3), the symbolic
//!   phase can run **once, ahead of training**, and every later call performs
//!   only the FLOPs. `spgemm_symbolic` in the bench crate ablates the two.
//!
//! The numeric phase runs one of three density-adaptive kernels (see
//! [`crate::kernel`]), resolved at plan time by [`SymbolicProduct::plan_with_mode`]:
//! the precomputed **gather** program (very sparse), a planned **Gustavson**
//! row-by-row kernel (mid density), or a **dense** packed-panel microkernel
//! (dense-ish right operands). [`SymbolicProduct::plan`] keeps the historical
//! behavior and always compiles the gather program. Steady-state entry points:
//! [`SymbolicProduct::execute_into_with`] (serial, allocation-free given a
//! prebuilt [`KernelScratch`]) and
//! [`SymbolicProduct::execute_into_parallel_with`] (row-chunk parallel over a
//! [`WorkerPool`], chunks balanced by per-row work).

use crate::kernel::{
    KernelMode, KernelScratch, NumericKernel, KERNEL_DENSE_K_BLOCK, KERNEL_DENSE_ROW_BLOCK,
};
use crate::{Csr, SparsityPattern};
use bppsa_scan::{SendPtr, WorkerPool};
use bppsa_tensor::Scalar;
use std::sync::Arc;

/// Computes `C = A · B` with a Gustavson sparse accumulator, performing
/// symbolic and numeric work together (the generic baseline).
///
/// Output rows are sorted; entries that sum to exactly zero are kept so the
/// result's pattern equals the *structural* product pattern.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn spgemm<S: Scalar>(a: &Csr<S>, b: &Csr<S>) -> Csr<S> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "spgemm: inner dimensions differ ({}x{} · {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let n = b.cols();
    let mut values = vec![S::ZERO; n];
    let mut present = vec![false; n];
    let mut touched: Vec<u32> = Vec::new();

    let mut indptr = Vec::with_capacity(a.rows() + 1);
    let mut indices: Vec<u32> = Vec::new();
    let mut data: Vec<S> = Vec::new();
    indptr.push(0);

    for i in 0..a.rows() {
        touched.clear();
        for (&k, &av) in a.row_indices(i).iter().zip(a.row_data(i)) {
            let k = k as usize;
            for (&j, &bv) in b.row_indices(k).iter().zip(b.row_data(k)) {
                let ju = j as usize;
                if !present[ju] {
                    present[ju] = true;
                    touched.push(j);
                    // `0 + av·bv`, not a bare product: every other numeric
                    // kernel (spmv, the planned SymbolicProduct kernels)
                    // accumulates into a zeroed buffer, which canonicalizes
                    // a `-0.0` product to `+0.0`. Matching that here keeps
                    // planned and unplanned executions bit-identical even
                    // on the sign of exact zeros.
                    values[ju] = S::ZERO + av * bv;
                } else {
                    values[ju] += av * bv;
                }
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            indices.push(j);
            data.push(values[j as usize]);
            present[j as usize] = false;
        }
        indptr.push(indices.len());
    }
    Csr::from_parts_unchecked(a.rows(), n, indptr, indices, data)
}

/// A precomputed symbolic SpGEMM plan: the output pattern of `A · B` for
/// fixed input patterns, enabling numeric-only execution through the
/// plan-time-resolved [`NumericKernel`].
///
/// All three patterns (both operands' and the output's) are held behind
/// [`Arc`]s, so distributing them into per-combine plans and workspace
/// buffers is refcount traffic, not copying.
///
/// # Examples
///
/// ```
/// use bppsa_sparse::{Csr, KernelMode, SymbolicProduct};
///
/// let a = Csr::from_diagonal(&[2.0_f64, 3.0]);
/// let b = Csr::from_diagonal(&[4.0_f64, 5.0]);
/// let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
/// let c = plan.execute(&a, &b);
/// assert_eq!(c.get(0, 0), 8.0);
/// assert_eq!(c.get(1, 1), 15.0);
///
/// // Steady-state path: numeric phase into a reusable buffer, through a
/// // reusable scratch (empty for the gather kernel, pre-sized otherwise).
/// let auto = SymbolicProduct::plan_with_mode(&a.pattern(), &b.pattern(), KernelMode::Auto);
/// let mut scratch = auto.scratch::<f64>(1);
/// let mut out = Csr::from_pattern(auto.out_pattern().clone());
/// auto.execute_into_with(&a, &b, &mut out, &mut scratch);
/// assert_eq!(out, c);
/// ```
#[derive(Debug, Clone)]
pub struct SymbolicProduct {
    a_pattern: Arc<SparsityPattern>,
    b_pattern: Arc<SparsityPattern>,
    out_pattern: Arc<SparsityPattern>,
    kernel: NumericKernel,
    /// Gather kernel only: for each output row, for each structural (k, j)
    /// product contribution, the operand offsets and the slot in the row's
    /// output segment. Stored flat; rows delimited by `work_ptr`. Empty for
    /// the Gustavson/Dense kernels (whose loops are driven by the operands'
    /// own CSR arrays — skipping this table is most of their win).
    gather: Vec<(u32, u32, u32)>,
    /// Per-row prefix work table (length `rows + 1`): the cumulative cost a
    /// numeric execution pays up to each row, in the resolved kernel's own
    /// currency — structural multiply–adds for Gather/Gustavson (where it
    /// doubles as the `gather` row delimiters), `a_row_nnz × cols` panel
    /// multiplies for Dense. The row-parallel executor balances chunks
    /// against it.
    work_ptr: Vec<usize>,
    flops: u64,
}

impl SymbolicProduct {
    /// Runs the symbolic phase once for the given input patterns, compiling
    /// the gather program (the historical single-kernel behavior —
    /// equivalent to [`SymbolicProduct::plan_with_mode`] with
    /// [`KernelMode::Gather`]). The pattern handles are retained (refcount
    /// bump) for operand checking.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions differ.
    pub fn plan(a: &Arc<SparsityPattern>, b: &Arc<SparsityPattern>) -> Self {
        Self::plan_with_mode(a, b, KernelMode::Gather)
    }

    /// Runs the symbolic phase once, resolving `mode` to a concrete
    /// [`NumericKernel`] from the patterns' statistics ([`KernelMode::Auto`]
    /// selects per product; the other modes force one kernel). The gather
    /// table is only materialized when the gather kernel is chosen, so
    /// dense-ish products skip its 12-bytes-per-MAC footprint entirely.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions differ.
    pub fn plan_with_mode(
        a: &Arc<SparsityPattern>,
        b: &Arc<SparsityPattern>,
        mode: KernelMode,
    ) -> Self {
        assert_eq!(
            a.cols(),
            b.rows(),
            "SymbolicProduct::plan: inner dimensions differ"
        );
        let n = b.cols();
        let mut marked = vec![false; n];
        let mut touched: Vec<u32> = Vec::new();

        // Pass 1 — symbolic discovery: the output pattern plus the per-row
        // structural-MAC prefix (needed for kernel selection and chunking
        // regardless of the kernel chosen).
        let mut indptr = Vec::with_capacity(a.rows() + 1);
        let mut indices: Vec<u32> = Vec::new();
        let mut macs_ptr = Vec::with_capacity(a.rows() + 1);
        let mut macs = 0usize;
        indptr.push(0);
        macs_ptr.push(0);

        for i in 0..a.rows() {
            touched.clear();
            for &k in a.row_indices(i) {
                let k = k as usize;
                macs += b.row_nnz(k);
                for &j in b.row_indices(k) {
                    if !marked[j as usize] {
                        marked[j as usize] = true;
                        touched.push(j);
                    }
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                indices.push(j);
                marked[j as usize] = false;
            }
            indptr.push(indices.len());
            macs_ptr.push(macs);
        }

        let out_nnz = indices.len();
        let kernel = mode.resolve(b, out_nnz, macs as u64);
        let out_pattern = Arc::new(SparsityPattern::new(a.rows(), n, indptr, indices));

        // Pass 2 — kernel-specific program/work tables.
        let (gather, work_ptr) = match kernel {
            NumericKernel::Gather => {
                let mut slot_of = vec![u32::MAX; n];
                let mut gather = Vec::with_capacity(macs);
                for i in 0..a.rows() {
                    for (slot, &j) in out_pattern.row_indices(i).iter().enumerate() {
                        slot_of[j as usize] = slot as u32;
                    }
                    for (apos, &k) in a.row_indices(i).iter().enumerate() {
                        let a_off = (a.indptr()[i] + apos) as u32;
                        let k = k as usize;
                        for bpos in 0..b.row_nnz(k) {
                            let b_off = (b.indptr()[k] + bpos) as u32;
                            let j = b.row_indices(k)[bpos];
                            gather.push((a_off, b_off, slot_of[j as usize]));
                        }
                    }
                    for &j in out_pattern.row_indices(i) {
                        slot_of[j as usize] = u32::MAX;
                    }
                }
                (gather, macs_ptr)
            }
            NumericKernel::Gustavson => (Vec::new(), macs_ptr),
            NumericKernel::Dense => {
                // Dense work per row is `a_row_nnz × cols` regardless of the
                // structural MAC count.
                let work = a.indptr().iter().map(|&p| p * n).collect();
                (Vec::new(), work)
            }
        };

        Self {
            a_pattern: Arc::clone(a),
            b_pattern: Arc::clone(b),
            out_pattern,
            kernel,
            gather,
            work_ptr,
            flops: 2 * macs as u64,
        }
    }

    /// The output pattern of the product (shared handle).
    pub fn out_pattern(&self) -> &Arc<SparsityPattern> {
        &self.out_pattern
    }

    /// The planned left-operand pattern (shared handle).
    pub fn a_pattern(&self) -> &Arc<SparsityPattern> {
        &self.a_pattern
    }

    /// The planned right-operand pattern (shared handle).
    pub fn b_pattern(&self) -> &Arc<SparsityPattern> {
        &self.b_pattern
    }

    /// The numeric kernel this plan resolved to.
    pub fn kernel(&self) -> NumericKernel {
        self.kernel
    }

    /// *Structural* multiply–add FLOPs of the product (counting 2 per
    /// multiply–add) — a kernel-independent measure of the mathematical
    /// work. The FLOPs an execution actually performs are
    /// [`SymbolicProduct::execute_flops`].
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// FLOPs a numeric execution actually performs under the resolved
    /// kernel: the structural count for Gather/Gustavson, and
    /// `2 · a.nnz() · cols` for the dense panel kernel (which multiplies
    /// structural zeros in exchange for contiguous vectorizable loops).
    /// This is the number executors should price pool fan-out against.
    pub fn execute_flops(&self) -> u64 {
        match self.kernel {
            NumericKernel::Dense => 2 * self.a_pattern.nnz() as u64 * self.b_pattern.cols() as u64,
            _ => self.flops,
        }
    }

    /// Builds the reusable numeric scratch this plan's kernel needs, with
    /// `lanes` accumulator lanes (one per concurrent row chunk; serial
    /// callers pass 1). The gather kernel needs none and gets an empty
    /// scratch. Building the scratch once and reusing it via
    /// [`SymbolicProduct::execute_into_with`] keeps the steady state
    /// allocation-free; the scratch must only be used with the plan that
    /// built it.
    pub fn scratch<S: Scalar>(&self, lanes: usize) -> KernelScratch<S> {
        let lanes = lanes.max(1);
        match self.kernel {
            NumericKernel::Gather => KernelScratch::empty(),
            NumericKernel::Gustavson => {
                KernelScratch::with_dims(lanes, 1, self.out_pattern.cols(), 0)
            }
            NumericKernel::Dense => KernelScratch::with_dims(
                lanes,
                self.dense_block_rows(),
                self.out_pattern.cols(),
                self.b_pattern.rows() * self.b_pattern.cols(),
            ),
        }
    }

    /// Accumulator rows per scratch lane for the dense kernel: one cache
    /// block of [`KERNEL_DENSE_ROW_BLOCK`] output rows (fewer when the
    /// product has fewer rows).
    fn dense_block_rows(&self) -> usize {
        KERNEL_DENSE_ROW_BLOCK.min(self.out_pattern.rows().max(1))
    }

    /// Heap bytes [`SymbolicProduct::scratch`] would allocate for `lanes`
    /// accumulator lanes (workspace-accounting hook).
    pub fn scratch_bytes<S: Scalar>(&self, lanes: usize) -> usize {
        let lanes = lanes.max(1);
        let elems = match self.kernel {
            NumericKernel::Gather => 0,
            NumericKernel::Gustavson => lanes * self.out_pattern.cols(),
            NumericKernel::Dense => {
                lanes * self.dense_block_rows() * self.out_pattern.cols()
                    + self.b_pattern.rows() * self.b_pattern.cols()
            }
        };
        elems * std::mem::size_of::<S>()
    }

    /// Whether `a` and `b` carry exactly the patterns this plan was built
    /// from. Shared-`Arc` operands short-circuit to pointer comparisons.
    pub fn operands_match<S: Scalar>(&self, a: &Csr<S>, b: &Csr<S>) -> bool {
        pattern_eq(a.pattern_ref(), &self.a_pattern) && pattern_eq(b.pattern_ref(), &self.b_pattern)
    }

    /// Executes the numeric phase: computes `A · B` assuming `a` and `b`
    /// have exactly the patterns this plan was built from.
    ///
    /// # Panics
    ///
    /// Panics if the operand patterns do not match the planned patterns.
    pub fn execute<S: Scalar>(&self, a: &Csr<S>, b: &Csr<S>) -> Csr<S> {
        assert!(
            self.operands_match(a, b),
            "SymbolicProduct::execute: operand patterns do not match the plan"
        );
        self.execute_unchecked(a, b)
    }

    /// Numeric phase without the pattern equality check (debug-checked).
    /// This is the hot path measured by the `spgemm_symbolic` ablation. The
    /// returned matrix *shares* the plan's output pattern — for the gather
    /// kernel the only heap allocation is the value array (the other
    /// kernels also build a throwaway scratch; steady-state callers should
    /// hold one via [`SymbolicProduct::scratch`]).
    pub fn execute_unchecked<S: Scalar>(&self, a: &Csr<S>, b: &Csr<S>) -> Csr<S> {
        debug_assert!(self.operands_match(a, b));
        let mut out = Csr::from_pattern(Arc::clone(&self.out_pattern));
        match self.kernel {
            NumericKernel::Gather => {
                self.numeric_rows(
                    a.data(),
                    b.data(),
                    out.data_mut(),
                    0..self.out_pattern.rows(),
                );
            }
            _ => {
                let mut scratch = self.scratch::<S>(1);
                self.execute_into_with(a, b, &mut out, &mut scratch);
            }
        }
        out
    }

    /// Numeric phase into a caller-owned output buffer. Rebinds `out` to the
    /// plan's output pattern (refcount bump) and overwrites its values. For
    /// the gather kernel this performs **zero heap allocations** once `out`
    /// has reached steady-state capacity; the Gustavson/Dense kernels build
    /// a throwaway scratch here — allocation-free steady state for them goes
    /// through [`SymbolicProduct::execute_into_with`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the operand patterns do not match.
    pub fn execute_into<S: Scalar>(&self, a: &Csr<S>, b: &Csr<S>, out: &mut Csr<S>) {
        match self.kernel {
            NumericKernel::Gather => {
                debug_assert!(self.operands_match(a, b));
                out.reset_to_pattern(&self.out_pattern);
                self.numeric_rows(
                    a.data(),
                    b.data(),
                    out.data_mut(),
                    0..self.out_pattern.rows(),
                );
            }
            _ => {
                let mut scratch = self.scratch::<S>(1);
                self.execute_into_with(a, b, out, &mut scratch);
            }
        }
    }

    /// Numeric phase into a caller-owned output buffer through a caller-held
    /// [`KernelScratch`] (built by [`SymbolicProduct::scratch`] from this
    /// plan): **zero heap allocations** in the steady state for every
    /// kernel. Serial; the row-parallel variant is
    /// [`SymbolicProduct::execute_into_parallel_with`].
    ///
    /// # Panics
    ///
    /// Panics if the scratch does not match this plan's kernel dimensions,
    /// and in debug builds if the operand patterns do not match.
    pub fn execute_into_with<S: Scalar>(
        &self,
        a: &Csr<S>,
        b: &Csr<S>,
        out: &mut Csr<S>,
        scratch: &mut KernelScratch<S>,
    ) {
        debug_assert!(self.operands_match(a, b));
        self.check_scratch(scratch);
        out.reset_to_pattern(&self.out_pattern);
        let rows = self.out_pattern.rows();
        match self.kernel {
            NumericKernel::Gather => {
                self.numeric_rows(a.data(), b.data(), out.data_mut(), 0..rows);
            }
            NumericKernel::Gustavson => {
                let cols = self.out_pattern.cols();
                let out_ptr = SendPtr(out.data_mut().as_mut_ptr());
                // SAFETY: `out` and lane 0 of `scratch` are exclusively
                // borrowed; no concurrency.
                unsafe { self.gustavson_rows(a, b, out_ptr, &mut scratch.acc[..cols], 0..rows) };
            }
            NumericKernel::Dense => {
                let lane = scratch.acc_rows * self.out_pattern.cols();
                self.pack_panel(b, &mut scratch.panel);
                let out_ptr = SendPtr(out.data_mut().as_mut_ptr());
                // SAFETY: as above; the panel is only read after packing.
                unsafe {
                    self.dense_rows(
                        a,
                        &scratch.panel,
                        out_ptr,
                        &mut scratch.acc[..lane],
                        0..rows,
                    )
                };
            }
        }
    }

    /// Row-chunk-parallel numeric phase into a caller-owned buffer: output
    /// rows are split into `pool.size() + 1` chunks of approximately equal
    /// planned work (via the per-row prefix work table) and executed on the
    /// shared worker pool; each chunk accumulates through its own scratch
    /// lane, so the chunk count is additionally capped by
    /// [`KernelScratch::lanes`]. Allocation-free in the steady state, like
    /// [`SymbolicProduct::execute_into_with`].
    ///
    /// Worth the pool wakeup only when [`SymbolicProduct::execute_flops`] is
    /// large; callers decide (see `PlannedScan`'s cost model in `bppsa-core`).
    ///
    /// # Panics
    ///
    /// Panics if the scratch does not match this plan's kernel dimensions,
    /// and in debug builds if the operand patterns do not match.
    pub fn execute_into_parallel_with<S: Scalar>(
        &self,
        a: &Csr<S>,
        b: &Csr<S>,
        out: &mut Csr<S>,
        pool: &WorkerPool,
        scratch: &mut KernelScratch<S>,
    ) {
        debug_assert!(self.operands_match(a, b));
        self.check_scratch(scratch);
        out.reset_to_pattern(&self.out_pattern);
        let rows = self.out_pattern.rows();
        if matches!(self.kernel, NumericKernel::Gather) {
            self.parallel_gather(a, b, out, pool);
            return;
        }
        let cols = self.out_pattern.cols();
        if matches!(self.kernel, NumericKernel::Dense) {
            self.pack_panel(b, &mut scratch.panel);
        }
        let chunks = (pool.size() + 1).min(rows.max(1)).min(scratch.lanes);
        let lane = scratch.acc_rows * cols;
        if chunks <= 1 {
            let out_ptr = SendPtr(out.data_mut().as_mut_ptr());
            // SAFETY: exclusive borrows, no concurrency.
            unsafe {
                match self.kernel {
                    NumericKernel::Gustavson => {
                        self.gustavson_rows(a, b, out_ptr, &mut scratch.acc[..lane], 0..rows)
                    }
                    NumericKernel::Dense => self.dense_rows(
                        a,
                        &scratch.panel,
                        out_ptr,
                        &mut scratch.acc[..lane],
                        0..rows,
                    ),
                    NumericKernel::Gather => unreachable!(),
                }
            }
            return;
        }
        let total = self.work_total();
        let out_ptr = SendPtr(out.data_mut().as_mut_ptr());
        let acc_ptr = SendPtr(scratch.acc.as_mut_ptr());
        let panel: &[S] = &scratch.panel;
        pool.run_indexed(chunks, &|c| {
            let out_ptr: SendPtr<S> = out_ptr;
            let acc_ptr: SendPtr<S> = acc_ptr;
            let r0 = self.chunk_boundary_row(c, chunks, total, rows);
            let r1 = self.chunk_boundary_row(c + 1, chunks, total, rows);
            // SAFETY: `chunks <= scratch.lanes`, so lane `c` is an
            // `acc_rows × cols` accumulator block no other task touches;
            // chunk row ranges partition `0..rows`, and each row's output
            // segment is disjoint from every other row's — no two pool
            // tasks write the same element; the panel is read-only during
            // the fan-out; the pool's barrier orders all writes before
            // `run_indexed` returns.
            let acc = unsafe { std::slice::from_raw_parts_mut(acc_ptr.0.add(c * lane), lane) };
            unsafe {
                match self.kernel {
                    NumericKernel::Gustavson => self.gustavson_rows(a, b, out_ptr, acc, r0..r1),
                    NumericKernel::Dense => self.dense_rows(a, panel, out_ptr, acc, r0..r1),
                    NumericKernel::Gather => unreachable!(),
                }
            }
        });
    }

    /// Row-chunk-parallel numeric phase without a caller-held scratch: the
    /// gather kernel runs as before (it needs none); the other kernels build
    /// a throwaway scratch — steady-state callers should hold one and use
    /// [`SymbolicProduct::execute_into_parallel_with`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the operand patterns do not match.
    pub fn execute_into_parallel<S: Scalar>(
        &self,
        a: &Csr<S>,
        b: &Csr<S>,
        out: &mut Csr<S>,
        pool: &WorkerPool,
    ) {
        if matches!(self.kernel, NumericKernel::Gather) {
            debug_assert!(self.operands_match(a, b));
            out.reset_to_pattern(&self.out_pattern);
            self.parallel_gather(a, b, out, pool);
        } else {
            let mut scratch = self.scratch::<S>(pool.size() + 1);
            self.execute_into_parallel_with(a, b, out, pool, &mut scratch);
        }
    }

    /// The gather kernel's row-chunk fan-out (operands already checked,
    /// `out` already rebound to the plan's pattern).
    fn parallel_gather<S: Scalar>(
        &self,
        a: &Csr<S>,
        b: &Csr<S>,
        out: &mut Csr<S>,
        pool: &WorkerPool,
    ) {
        let rows = self.out_pattern.rows();
        let chunks = (pool.size() + 1).min(rows.max(1));
        if chunks <= 1 {
            self.numeric_rows(a.data(), b.data(), out.data_mut(), 0..rows);
            return;
        }
        let ad = a.data();
        let bd = b.data();
        let out_data = SendPtr(out.data_mut().as_mut_ptr());
        let total = self.work_total();
        pool.run_indexed(chunks, &|c| {
            let out_data: SendPtr<S> = out_data;
            let r0 = self.chunk_boundary_row(c, chunks, total, rows);
            let r1 = self.chunk_boundary_row(c + 1, chunks, total, rows);
            for i in r0..r1 {
                let out_base = self.out_pattern.indptr()[i];
                for &(a_off, b_off, slot) in &self.gather[self.work_ptr[i]..self.work_ptr[i + 1]] {
                    // SAFETY: chunk row ranges partition 0..rows, and each
                    // row's output segment [indptr[i], indptr[i+1]) is
                    // disjoint from every other row's — no two pool tasks
                    // write the same element, and the pool's barrier orders
                    // all writes before `run_indexed` returns.
                    unsafe {
                        let dst = out_data.0.add(out_base + slot as usize);
                        *dst += ad[a_off as usize] * bd[b_off as usize];
                    }
                }
            }
        });
    }

    /// Total planned per-row work (the last prefix entry) — what
    /// [`SymbolicProduct::chunk_boundary_row`] balances against.
    fn work_total(&self) -> usize {
        self.work_ptr.last().copied().unwrap_or(0)
    }

    /// Validates a caller-held scratch against this plan's kernel.
    fn check_scratch<S: Scalar>(&self, scratch: &KernelScratch<S>) {
        match self.kernel {
            NumericKernel::Gather => {}
            NumericKernel::Gustavson | NumericKernel::Dense => {
                let want_rows = match self.kernel {
                    NumericKernel::Dense => self.dense_block_rows(),
                    _ => 1,
                };
                assert!(
                    scratch.lanes >= 1
                        && scratch.acc_rows == want_rows
                        && scratch.acc_cols == self.out_pattern.cols(),
                    "SymbolicProduct: scratch does not match this plan \
                     (build it with SymbolicProduct::scratch)"
                );
                if matches!(self.kernel, NumericKernel::Dense) {
                    assert_eq!(
                        scratch.panel.len(),
                        self.b_pattern.rows() * self.b_pattern.cols(),
                        "SymbolicProduct: scratch panel does not match this plan \
                         (build it with SymbolicProduct::scratch)"
                    );
                }
            }
        }
    }

    /// First row of chunk `c` when `0..rows` is split into `chunks` pieces
    /// of roughly `total / chunks` planned work units each.
    ///
    /// Boundaries are **strictly monotone** for `chunks <= rows`: every
    /// chunk owns at least one row, `boundary(0) == 0`, and
    /// `boundary(chunks) == rows`, so the per-chunk row ranges partition
    /// `0..rows` exactly with no empty chunks. The raw work-balanced
    /// targets alone do not guarantee that — leading rows with zero planned
    /// work or one row dominating `total` collapse several targets onto
    /// the same row — so the raw boundaries are repaired by the strictly
    /// increasing envelope `max_k≤c (raw(k) + (c − k))`, clamped so every
    /// later chunk keeps a row too.
    fn chunk_boundary_row(&self, c: usize, chunks: usize, total: usize, rows: usize) -> usize {
        debug_assert!(chunks >= 1 && chunks <= rows);
        if c == 0 {
            return 0;
        }
        if c >= chunks {
            return rows;
        }
        // Strictly increasing lower envelope over the raw boundaries. O(c)
        // partition_points per call — chunks is pool-sized (tiny next to
        // the numeric work this is only used to split).
        let mut repaired = c; // k == 0 term: raw(0) == 0, shifted by c.
        for k in 1..=c {
            let target = k * total / chunks;
            let raw = self.work_ptr.partition_point(|&g| g < target).min(rows);
            repaired = repaired.max(raw + (c - k));
        }
        // Leave at least one row for each of the `chunks - c` later chunks.
        repaired.min(rows - (chunks - c))
    }

    /// The serial gather kernel over a row range.
    fn numeric_rows<S: Scalar>(
        &self,
        ad: &[S],
        bd: &[S],
        out: &mut [S],
        rows: std::ops::Range<usize>,
    ) {
        for i in rows {
            let out_base = self.out_pattern.indptr()[i];
            for &(a_off, b_off, slot) in &self.gather[self.work_ptr[i]..self.work_ptr[i + 1]] {
                out[out_base + slot as usize] += ad[a_off as usize] * bd[b_off as usize];
            }
        }
    }

    /// The planned Gustavson kernel over a row range: accumulate each output
    /// row's structural products into the dense accumulator lane (driven by
    /// the operands' own CSR arrays — no gather table), then scatter the
    /// known output columns out and re-zero exactly what was touched.
    ///
    /// Bit-for-bit with [`spgemm`]: the terms of each output element are
    /// accumulated in the identical (a-row-major, then b-row) order, and the
    /// first touch lands on a `+0.0` accumulator entry — the same
    /// `0 + av·bv` signed-zero canonicalization.
    ///
    /// # Safety
    ///
    /// `out` must point to the output value array (rebound to the plan's
    /// pattern); concurrent calls must receive disjoint `rows` ranges and
    /// exclusive `acc` lanes. `acc` must be `cols` wide and **all-zero** on
    /// entry; it is all-zero again on return.
    unsafe fn gustavson_rows<S: Scalar>(
        &self,
        a: &Csr<S>,
        b: &Csr<S>,
        out: SendPtr<S>,
        acc: &mut [S],
        rows: std::ops::Range<usize>,
    ) {
        for i in rows {
            for (&k, &av) in a.row_indices(i).iter().zip(a.row_data(i)) {
                let k = k as usize;
                for (&j, &bv) in b.row_indices(k).iter().zip(b.row_data(k)) {
                    acc[j as usize] += av * bv;
                }
            }
            let out_base = self.out_pattern.indptr()[i];
            for (slot, &j) in self.out_pattern.row_indices(i).iter().enumerate() {
                let j = j as usize;
                // SAFETY: each row's output segment is disjoint from every
                // other row's (caller guarantees disjoint row ranges).
                unsafe { *out.0.add(out_base + slot) = acc[j] };
                // The touched set of row `i` is exactly its structural
                // output columns, so this restores the all-zero invariant.
                acc[j] = S::ZERO;
            }
        }
    }

    /// The dense panel microkernel over a row range: each output row is
    /// `Σ_k a[i,k] · panel[k, ·]` — one contiguous SIMD `axpy`
    /// ([`Scalar::slice_axpy`]) per stored entry of `a`'s row — then the
    /// known output columns are gathered out of the accumulator.
    ///
    /// The loop nest is cache-blocked: [`KERNEL_DENSE_ROW_BLOCK`] output
    /// rows at a time (one accumulator row each, resident across the whole
    /// sweep), consuming the panel [`KERNEL_DENSE_K_BLOCK`] rows at a time
    /// so each panel k-block is read from memory once per row block and
    /// served from cache to every accumulator row that needs it. Without
    /// the blocking, each output row re-streams its panel rows from DRAM
    /// and the kernel is bandwidth-bound at any interesting size. Per-row
    /// entry order is unchanged — `a`'s column indices are sorted, so
    /// walking them k-block by k-block visits them in exactly the original
    /// ascending-`k` order.
    ///
    /// Bit-for-bit with [`spgemm`] for **finite** operands: the structural
    /// terms of each output element arrive in the identical order; the extra
    /// structural-zero terms contribute exact `±0.0`s, which round-to-
    /// nearest addition absorbs without perturbing the sum, and the leading
    /// `S::ZERO +` ([`Scalar::slice_scale_canonical`] on the row's first
    /// entry) canonicalizes any `-0.0` first product to `+0.0` exactly as
    /// the generic path does. (Non-finite operands can differ: a structural
    /// zero times `inf` is `NaN` here but absent there.)
    ///
    /// # Safety
    ///
    /// As [`SymbolicProduct::gustavson_rows`], except `acc` is a full
    /// `dense_block_rows() × cols` lane block which need not be zeroed
    /// (every non-empty row fully overwrites its accumulator row before
    /// reading it) and is left dirty.
    unsafe fn dense_rows<S: Scalar>(
        &self,
        a: &Csr<S>,
        panel: &[S],
        out: SendPtr<S>,
        acc: &mut [S],
        rows: std::ops::Range<usize>,
    ) {
        let cols = self.out_pattern.cols();
        let block = self.dense_block_rows();
        debug_assert!(acc.len() >= block * cols);
        let indptr = a.indptr();
        let aidx = a.indices();
        let adata = a.data();
        let k_rows = self.b_pattern.rows();
        let mut i0 = rows.start;
        while i0 < rows.end {
            let i1 = (i0 + block).min(rows.end);
            // Per-row cursor into `a`'s entry arrays (stack-allocated: the
            // steady state performs no heap allocation).
            let mut cur = [0usize; KERNEL_DENSE_ROW_BLOCK];
            for (j, c) in cur[..i1 - i0].iter_mut().enumerate() {
                *c = indptr[i0 + j];
            }
            // Sweep the panel one k-block at a time: every row of this row
            // block consumes its entries falling inside the k-block while
            // the block's panel rows are cache-hot.
            let mut k0 = 0usize;
            while k0 < k_rows {
                let k1 = (k0 + KERNEL_DENSE_K_BLOCK).min(k_rows) as u32;
                for (j, c) in cur[..i1 - i0].iter_mut().enumerate() {
                    let i = i0 + j;
                    let row_start = indptr[i];
                    let row_end = indptr[i + 1];
                    let acc_row = &mut acc[j * cols..j * cols + cols];
                    if *c == row_start && *c < row_end && aidx[*c] < k1 {
                        // First stored entry initializes the accumulator
                        // row (with the same `0 + av·bv` canonicalization
                        // as the generic path)…
                        let kc = aidx[*c] as usize * cols;
                        S::slice_scale_canonical(acc_row, adata[*c], &panel[kc..kc + cols]);
                        *c += 1;
                    }
                    // …the rest accumulate, four panel rows per pass where
                    // possible: `slice_axpy4` keeps the exact stacked-axpy
                    // association while quartering accumulator load/store
                    // traffic (the port-bound resource of the axpy loop).
                    // Sorted column indices make `aidx[*c + 3] < k1` imply
                    // the whole quad lies in this k-block; stragglers fall
                    // through to the pair and single tails.
                    while *c + 3 < row_end && aidx[*c + 3] < k1 {
                        let kc1 = aidx[*c] as usize * cols;
                        let kc2 = aidx[*c + 1] as usize * cols;
                        let kc3 = aidx[*c + 2] as usize * cols;
                        let kc4 = aidx[*c + 3] as usize * cols;
                        S::slice_axpy4(
                            acc_row,
                            adata[*c],
                            &panel[kc1..kc1 + cols],
                            adata[*c + 1],
                            &panel[kc2..kc2 + cols],
                            adata[*c + 2],
                            &panel[kc3..kc3 + cols],
                            adata[*c + 3],
                            &panel[kc4..kc4 + cols],
                        );
                        *c += 4;
                    }
                    while *c + 1 < row_end && aidx[*c + 1] < k1 {
                        let kc1 = aidx[*c] as usize * cols;
                        let kc2 = aidx[*c + 1] as usize * cols;
                        S::slice_axpy2(
                            acc_row,
                            adata[*c],
                            &panel[kc1..kc1 + cols],
                            adata[*c + 1],
                            &panel[kc2..kc2 + cols],
                        );
                        *c += 2;
                    }
                    if *c < row_end && aidx[*c] < k1 {
                        let kc = aidx[*c] as usize * cols;
                        S::slice_axpy(acc_row, adata[*c], &panel[kc..kc + cols]);
                        *c += 1;
                    }
                }
                k0 = k1 as usize;
            }
            for (j, i) in (i0..i1).enumerate() {
                if indptr[i] == indptr[i + 1] {
                    // No structural products ⇒ the output row is empty too
                    // (and its accumulator row was never initialized).
                    continue;
                }
                let acc_row = &acc[j * cols..j * cols + cols];
                let out_base = self.out_pattern.indptr()[i];
                for (slot, &jj) in self.out_pattern.row_indices(i).iter().enumerate() {
                    // SAFETY: disjoint output segments per row, as in
                    // `gustavson_rows`.
                    unsafe { *out.0.add(out_base + slot) = acc_row[jj as usize] };
                }
            }
            i0 = i1;
        }
    }

    /// Scatters `b`'s values into the packed row-major panel. Positions
    /// outside `b`'s pattern were zeroed at scratch construction and are
    /// never written again (the pattern is fixed), so a pack refreshes
    /// exactly the structural entries.
    fn pack_panel<S: Scalar>(&self, b: &Csr<S>, panel: &mut [S]) {
        let cols = self.b_pattern.cols();
        for k in 0..self.b_pattern.rows() {
            let row = &mut panel[k * cols..(k + 1) * cols];
            for (&j, &bv) in b.row_indices(k).iter().zip(b.row_data(k)) {
                row[j as usize] = bv;
            }
        }
    }
}

/// Content equality with an `Arc` pointer fast path.
fn pattern_eq(a: &Arc<SparsityPattern>, b: &Arc<SparsityPattern>) -> bool {
    Arc::ptr_eq(a, b) || a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use bppsa_tensor::Matrix;

    fn dense_ref(a: &Csr<f64>, b: &Csr<f64>) -> Matrix<f64> {
        a.to_dense().matmul(&b.to_dense())
    }

    fn sample_a() -> Csr<f64> {
        Csr::from_dense(&Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0]]))
    }

    fn sample_b() -> Csr<f64> {
        Csr::from_dense(&Matrix::from_rows(&[&[0.0, 1.0], &[4.0, 0.0], &[0.0, 5.0]]))
    }

    #[test]
    fn spgemm_matches_dense() {
        let c = spgemm(&sample_a(), &sample_b());
        assert_eq!(c.validate(), Ok(()));
        assert!(c
            .to_dense()
            .approx_eq(&dense_ref(&sample_a(), &sample_b()), 1e-12));
    }

    #[test]
    fn spgemm_identity_is_noop() {
        let a = sample_a();
        let i3 = Csr::identity(3);
        let i2 = Csr::identity(2);
        assert!(spgemm(&a, &i3).to_dense().approx_eq(&a.to_dense(), 0.0));
        assert!(spgemm(&i2, &a).to_dense().approx_eq(&a.to_dense(), 0.0));
    }

    #[test]
    fn spgemm_keeps_structural_zeros() {
        // [1, -1] · [1; 1] = 0 but the position is structurally non-zero.
        let a = Csr::from_dense(&Matrix::from_rows(&[&[1.0, -1.0]]));
        let b = Csr::from_dense(&Matrix::from_rows(&[&[1.0], &[1.0]]));
        let c = spgemm(&a, &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn spgemm_shape_mismatch_panics() {
        let _ = spgemm(&sample_a(), &sample_a());
    }

    #[test]
    fn symbolic_plan_matches_generic() {
        let a = sample_a();
        let b = sample_b();
        let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
        assert_eq!(plan.kernel(), NumericKernel::Gather);
        let via_plan = plan.execute(&a, &b);
        let generic = spgemm(&a, &b);
        assert_eq!(via_plan, generic);
    }

    #[test]
    fn every_kernel_mode_matches_generic_bit_for_bit() {
        let a = sample_a();
        let b = sample_b();
        let generic = spgemm(&a, &b);
        for mode in [
            KernelMode::Auto,
            KernelMode::Gather,
            KernelMode::Gustavson,
            KernelMode::Dense,
        ] {
            let plan = SymbolicProduct::plan_with_mode(&a.pattern(), &b.pattern(), mode);
            assert_eq!(plan.execute(&a, &b), generic, "mode {mode:?}");
            let mut scratch = plan.scratch::<f64>(2);
            let mut out = Csr::from_pattern(plan.out_pattern().clone());
            plan.execute_into_with(&a, &b, &mut out, &mut scratch);
            assert_eq!(out, generic, "mode {mode:?} via scratch");
            // Steady state: same buffers again.
            plan.execute_into_with(&a, &b, &mut out, &mut scratch);
            assert_eq!(out, generic, "mode {mode:?} via scratch, reused");
            let pool = bppsa_scan::WorkerPool::new(3);
            plan.execute_into_parallel_with(&a, &b, &mut out, &pool, &mut scratch);
            assert_eq!(out, generic, "mode {mode:?} parallel");
        }
    }

    #[test]
    fn forced_kernels_are_recorded_and_gather_table_is_mode_gated() {
        let a = sample_a();
        let b = sample_b();
        let gather =
            SymbolicProduct::plan_with_mode(&a.pattern(), &b.pattern(), KernelMode::Gather);
        assert_eq!(gather.kernel(), NumericKernel::Gather);
        assert!(!gather.gather.is_empty());
        let gustavson =
            SymbolicProduct::plan_with_mode(&a.pattern(), &b.pattern(), KernelMode::Gustavson);
        assert_eq!(gustavson.kernel(), NumericKernel::Gustavson);
        assert!(gustavson.gather.is_empty(), "no table off the gather path");
        assert_eq!(gustavson.execute_flops(), gustavson.flops());
        let dense = SymbolicProduct::plan_with_mode(&a.pattern(), &b.pattern(), KernelMode::Dense);
        assert_eq!(dense.kernel(), NumericKernel::Dense);
        assert!(dense.gather.is_empty());
        // Dense executes a.nnz()·cols MACs, structural or not.
        assert_eq!(dense.execute_flops(), 2 * a.nnz() as u64 * b.cols() as u64);
        // All modes agree on the symbolic outputs.
        assert_eq!(gather.out_pattern(), gustavson.out_pattern());
        assert_eq!(gather.out_pattern(), dense.out_pattern());
        assert_eq!(gather.flops(), gustavson.flops());
        assert_eq!(gather.flops(), dense.flops());
    }

    #[test]
    fn dense_kernel_canonicalizes_signed_zeros_like_generic() {
        // Rows of `a` whose first entry is negative and whose product rows
        // pass through structural zeros of `b`: the `av·(+0.0) = -0.0` trap
        // the leading `0 +` canonicalization must absorb. Cancelling pairs
        // in `b` additionally force exact-zero *sums*, whose sign must come
        // out `+0.0` on every kernel.
        let a = Csr::from_dense(&Matrix::from_fn(
            3,
            2,
            |_, c| if c == 0 { -2.0 } else { 0.5 },
        ));
        let b = Csr::from_dense(&Matrix::from_fn(2, 9, |r, c| match (r + c) % 3 {
            0 => 0.0,
            1 => 1.5 - c as f64,
            _ => c as f64 - 1.5,
        }));
        let generic = spgemm(&a, &b);
        let plan = SymbolicProduct::plan_with_mode(&a.pattern(), &b.pattern(), KernelMode::Dense);
        let out = plan.execute(&a, &b);
        assert_eq!(out, generic);
        for (x, y) in out.data().iter().zip(generic.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "sign-of-zero must match");
        }
    }

    #[test]
    fn undersized_scratch_caps_parallel_chunks() {
        // A 1-lane scratch on a multi-worker pool must degrade to fewer
        // chunks, not race on the accumulator.
        let a = sample_a();
        let b = sample_b();
        let plan =
            SymbolicProduct::plan_with_mode(&a.pattern(), &b.pattern(), KernelMode::Gustavson);
        let mut scratch = plan.scratch::<f64>(1);
        let pool = bppsa_scan::WorkerPool::new(3);
        let mut out = Csr::from_pattern(plan.out_pattern().clone());
        plan.execute_into_parallel_with(&a, &b, &mut out, &pool, &mut scratch);
        assert_eq!(out, spgemm(&a, &b));
    }

    #[test]
    #[should_panic(expected = "scratch does not match")]
    fn mismatched_scratch_is_rejected() {
        let a = sample_a();
        let b = sample_b();
        let plan =
            SymbolicProduct::plan_with_mode(&a.pattern(), &b.pattern(), KernelMode::Gustavson);
        let other = SymbolicProduct::plan_with_mode(
            &Csr::<f64>::identity(5).pattern(),
            &Csr::<f64>::identity(5).pattern(),
            KernelMode::Gustavson,
        );
        let mut scratch = other.scratch::<f64>(1);
        let mut out = Csr::from_pattern(plan.out_pattern().clone());
        plan.execute_into_with(&a, &b, &mut out, &mut scratch);
    }

    #[test]
    fn executed_output_shares_plan_pattern() {
        let a = sample_a();
        let b = sample_b();
        let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
        let c = plan.execute(&a, &b);
        assert!(Arc::ptr_eq(c.pattern_ref(), plan.out_pattern()));
        // Operand handles were retained, so matching is pointer equality.
        assert!(Arc::ptr_eq(plan.a_pattern(), a.pattern_ref()));
        assert!(plan.operands_match(&a, &b));
    }

    #[test]
    fn execute_into_matches_execute() {
        let a = sample_a();
        let b = sample_b();
        let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
        let reference = plan.execute(&a, &b);
        // Start from a buffer with a completely different shape: the first
        // call rebinds it.
        let mut out = Csr::<f64>::identity(7);
        plan.execute_into(&a, &b, &mut out);
        assert_eq!(out, reference);
        // Steady state: same buffer again.
        plan.execute_into(&a, &b, &mut out);
        assert_eq!(out, reference);
    }

    #[test]
    fn execute_into_parallel_matches_serial() {
        let pool = bppsa_scan::WorkerPool::new(3);
        let mut rng_state = 0x1234_5678_u64;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        // A moderately large random product so chunking is non-trivial.
        let (m, k, n) = (37, 29, 31);
        let a = Csr::from_dense(&Matrix::from_fn(m, k, |_, _| {
            let v = next();
            if v > -0.2 {
                v
            } else {
                0.0
            }
        }));
        let b = Csr::from_dense(&Matrix::from_fn(k, n, |_, _| {
            let v = next();
            if v > -0.1 {
                v
            } else {
                0.0
            }
        }));
        let reference = spgemm(&a, &b);
        for mode in [KernelMode::Gather, KernelMode::Gustavson, KernelMode::Dense] {
            let plan = SymbolicProduct::plan_with_mode(&a.pattern(), &b.pattern(), mode);
            let mut out = Csr::from_pattern(plan.out_pattern().clone());
            plan.execute_into_parallel(&a, &b, &mut out, &pool);
            assert_eq!(out, reference, "mode {mode:?}");
        }
    }

    #[test]
    fn plan_is_reusable_across_values() {
        let a = sample_a();
        let b = sample_b();
        let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
        // Same patterns, different values.
        let a2 = a.map_values(|v| v * 10.0);
        let b2 = b.map_values(|v| v - 1.0);
        let c2 = plan.execute(&a2, &b2);
        assert!(c2.to_dense().approx_eq(&dense_ref(&a2, &b2), 1e-12));
    }

    #[test]
    fn plan_flops_counts_structural_products() {
        let a = sample_a();
        let b = sample_b();
        let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
        // Row 0 of A hits rows 0 (1 entry) and 2 (1 entry) of B → 2 products;
        // row 1 hits row 1 (1 entry) → 1 product. Total 3 MACs = 6 FLOPs.
        assert_eq!(plan.flops(), 6);
        assert_eq!(plan.execute_flops(), 6);
    }

    #[test]
    #[should_panic(expected = "patterns do not match")]
    fn execute_rejects_wrong_pattern() {
        let a = sample_a();
        let b = sample_b();
        let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
        let wrong = Csr::identity(3);
        let _ = plan.execute(&wrong, &b);
    }

    /// A dense matrix whose row-occupancy is deliberately skewed: a run of
    /// leading all-zero rows, one dominating dense row, and a sparse tail —
    /// the shapes that used to collapse several raw chunk boundaries onto
    /// one row.
    fn skewed_dense(
        rows: usize,
        cols: usize,
        empty_lead: usize,
        heavy_row: usize,
        tail_density: f64,
        cells: &[f64],
    ) -> Matrix<f64> {
        let mut idx = 0usize;
        Matrix::from_fn(rows, cols, |i, _| {
            let v = cells[idx % cells.len()];
            idx += 1;
            if i < empty_lead.min(rows) {
                0.0
            } else if i == heavy_row % rows {
                if v == 0.0 {
                    1.0
                } else {
                    v
                }
            } else if v.abs() < tail_density * 5.0 {
                v
            } else {
                0.0
            }
        })
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(64))]

        #[test]
        fn chunk_boundaries_partition_rows_exactly(
            (rows, k, cols, empty_lead, heavy_row, tail_density) in (
                2usize..24,
                1usize..12,
                1usize..12,
                0usize..20,
                0usize..24,
                0.0f64..1.0,
            ),
            cells in proptest::collection::vec(-5.0f64..5.0, 64),
            mode_pick in 0usize..4,
        ) {
            let mode = [
                KernelMode::Auto,
                KernelMode::Gather,
                KernelMode::Gustavson,
                KernelMode::Dense,
            ][mode_pick];
            let a = Csr::from_dense(&skewed_dense(
                rows, k, empty_lead, heavy_row, tail_density, &cells,
            ));
            let b = Csr::from_dense(&skewed_dense(k, cols, 0, heavy_row, 0.6, &cells));
            let plan = SymbolicProduct::plan_with_mode(&a.pattern(), &b.pattern(), mode);
            let total = plan.work_total();
            for chunks in 2..=rows.min(9) {
                let boundaries: Vec<usize> = (0..=chunks)
                    .map(|c| plan.chunk_boundary_row(c, chunks, total, rows))
                    .collect();
                proptest::prop_assert_eq!(boundaries[0], 0);
                proptest::prop_assert_eq!(boundaries[chunks], rows);
                for c in 0..chunks {
                    // Strictly monotone: no empty and no duplicate chunks,
                    // so the ranges partition 0..rows exactly.
                    proptest::prop_assert!(
                        boundaries[c] < boundaries[c + 1],
                        "chunks={} boundaries={:?} (work_ptr={:?})",
                        chunks,
                        &boundaries,
                        &plan.work_ptr
                    );
                }
            }
            // And the row-parallel executor built on those boundaries stays
            // numerically identical to the serial generic path, whatever
            // kernel the mode resolved to.
            let reference = spgemm(&a, &b);
            let pool = WorkerPool::new(3);
            let mut scratch = plan.scratch::<f64>(4);
            let mut out = Csr::from_pattern(plan.out_pattern().clone());
            plan.execute_into_parallel_with(&a, &b, &mut out, &pool, &mut scratch);
            proptest::prop_assert_eq!(out, reference);
        }
    }

    #[test]
    fn chunk_pricing_follows_the_resolved_kernels_currency() {
        // A shape where the two work currencies disagree: A's row 0 carries
        // 8 nonzeros but only B's row 0 is populated, so every A row costs
        // the same 6 structural MACs, while the dense panel kernel pays
        // `a_row_nnz × cols` — 48 for row 0 vs 6 for the single-nonzero
        // rows. The balanced 2-way split must therefore differ by kernel:
        // MAC-priced plans cut the uniform work in half (rows 0..2 | 2..4),
        // the dense-priced plan isolates the wide row (rows 0..1 | 1..4).
        let a = Csr::<f64>::from_dense(&Matrix::from_fn(4, 8, |i, j| {
            if i == 0 || j == 0 {
                1.0
            } else {
                0.0
            }
        }));
        let b = Csr::<f64>::from_dense(&Matrix::from_fn(
            8,
            6,
            |i, _| {
                if i == 0 {
                    0.5
                } else {
                    0.0
                }
            },
        ));
        let reference = spgemm(&a, &b);
        let mut cuts = std::collections::HashMap::new();
        for mode in [KernelMode::Gather, KernelMode::Gustavson, KernelMode::Dense] {
            let plan = SymbolicProduct::plan_with_mode(&a.pattern(), &b.pattern(), mode);
            let total = plan.work_total();
            let boundaries: Vec<usize> = (0..=2)
                .map(|c| plan.chunk_boundary_row(c, 2, total, 4))
                .collect();
            assert_eq!(boundaries[0], 0);
            assert_eq!(boundaries[2], 4);
            assert!(boundaries[1] > 0 && boundaries[1] < 4);
            cuts.insert(mode, boundaries[1]);
            // Whatever the currency, the split executes exactly.
            let pool = WorkerPool::new(3);
            let mut scratch = plan.scratch::<f64>(4);
            let mut out = Csr::from_pattern(plan.out_pattern().clone());
            plan.execute_into_parallel_with(&a, &b, &mut out, &pool, &mut scratch);
            assert_eq!(out, reference);
        }
        assert_eq!(cuts[&KernelMode::Gather], 2, "uniform MAC pricing");
        assert_eq!(cuts[&KernelMode::Gustavson], 2, "uniform MAC pricing");
        assert_eq!(
            cuts[&KernelMode::Dense],
            1,
            "dense pricing charges row 0 its full a_row_nnz × cols panel"
        );
    }

    #[test]
    fn chained_products_stay_valid() {
        // Products of products (as in the scan's up-sweep) remain valid CSR.
        let a = sample_a();
        let b = sample_b();
        let c = spgemm(&a, &b); // 2x2
        let d = spgemm(&c, &c);
        assert_eq!(d.validate(), Ok(()));
        assert!(d
            .to_dense()
            .approx_eq(&c.to_dense().matmul(&c.to_dense()), 1e-12));
    }
}
