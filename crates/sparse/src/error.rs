//! Error types for sparse-matrix construction and validation.

use std::error::Error;
use std::fmt;

/// Error describing why a CSR structure is malformed.
///
/// Returned by [`crate::Csr::validate`] and the fallible constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    /// `indptr` must have exactly `rows + 1` entries.
    IndptrLength {
        /// Expected length (`rows + 1`).
        expected: usize,
        /// Actual length found.
        actual: usize,
    },
    /// `indptr` must start at 0.
    IndptrStart,
    /// `indptr` must be non-decreasing.
    IndptrMonotonicity {
        /// First row at which `indptr` decreases.
        row: usize,
    },
    /// The final `indptr` entry must equal `indices.len()`.
    IndptrEnd {
        /// `indptr[rows]`.
        expected: usize,
        /// `indices.len()`.
        actual: usize,
    },
    /// `indices` and `data` must have equal lengths.
    DataLength {
        /// `indices.len()`.
        indices: usize,
        /// `data.len()`.
        data: usize,
    },
    /// A column index is out of range.
    ColumnOutOfRange {
        /// Row containing the bad index.
        row: usize,
        /// The offending column index.
        col: usize,
        /// Number of columns in the matrix.
        cols: usize,
    },
    /// Column indices within a row must be strictly increasing.
    UnsortedRow {
        /// First row that is not strictly sorted.
        row: usize,
    },
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrError::IndptrLength { expected, actual } => {
                write!(
                    f,
                    "indptr length {actual} does not match rows+1 = {expected}"
                )
            }
            CsrError::IndptrStart => write!(f, "indptr does not start at 0"),
            CsrError::IndptrMonotonicity { row } => {
                write!(f, "indptr decreases at row {row}")
            }
            CsrError::IndptrEnd { expected, actual } => {
                write!(
                    f,
                    "indptr end {expected} does not match indices length {actual}"
                )
            }
            CsrError::DataLength { indices, data } => {
                write!(
                    f,
                    "indices length {indices} does not match data length {data}"
                )
            }
            CsrError::ColumnOutOfRange { row, col, cols } => {
                write!(f, "column index {col} out of range {cols} in row {row}")
            }
            CsrError::UnsortedRow { row } => {
                write!(f, "column indices not strictly increasing in row {row}")
            }
        }
    }
}

impl Error for CsrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CsrError::ColumnOutOfRange {
            row: 3,
            col: 9,
            cols: 5,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('9') && s.contains('5'));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(CsrError::IndptrStart);
    }
}
