//! FLOP estimators for sparse and dense kernels.
//!
//! Figure 11 of the paper is produced by *static analysis*: "due to the lack
//! of a fair implementation, we perform our experiments by calculating the
//! FLOPs needed for each step in our method and the baseline". These
//! functions are that static analysis. A multiply–add counts as 2 FLOPs.

use crate::{Csr, SparsityPattern};
use bppsa_tensor::Scalar;

/// FLOPs of a sparse matrix–vector product `A · x`: `2 · nnz(A)`.
pub fn spmv_flops<S: Scalar>(a: &Csr<S>) -> u64 {
    2 * a.nnz() as u64
}

/// FLOPs of a sparse matrix–vector product given only the pattern.
pub fn spmv_flops_pattern(a: &SparsityPattern) -> u64 {
    2 * a.nnz() as u64
}

/// FLOPs of the sparse product `A · B`:
/// `2 · Σ_i Σ_{k ∈ row_i(A)} nnz(row_k(B))`.
///
/// # Panics
///
/// Panics if the inner dimensions differ.
pub fn spgemm_flops<S: Scalar>(a: &Csr<S>, b: &Csr<S>) -> u64 {
    spgemm_flops_pattern(&a.pattern(), &b.pattern())
}

/// Pattern-only variant of [`spgemm_flops`].
///
/// # Panics
///
/// Panics if the inner dimensions differ.
pub fn spgemm_flops_pattern(a: &SparsityPattern, b: &SparsityPattern) -> u64 {
    assert_eq!(a.cols(), b.rows(), "spgemm_flops: inner dimensions differ");
    let mut macs = 0u64;
    for i in 0..a.rows() {
        for &k in a.row_indices(i) {
            macs += b.row_nnz(k as usize) as u64;
        }
    }
    2 * macs
}

/// FLOPs of a dense GEMM `(m × k) · (k × n)`: `2mkn`.
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * (m as u64) * (k as u64) * (n as u64)
}

/// FLOPs of a dense GEMV `(m × n) · n`: `2mn`.
pub fn gemv_flops(m: usize, n: usize) -> u64 {
    2 * (m as u64) * (n as u64)
}

/// Computes the *structural* output pattern size of `A · B` without building
/// the product (upper bound on the true nnz; exact when no cancellation).
///
/// # Panics
///
/// Panics if the inner dimensions differ.
pub fn spgemm_out_nnz(a: &SparsityPattern, b: &SparsityPattern) -> usize {
    assert_eq!(
        a.cols(),
        b.rows(),
        "spgemm_out_nnz: inner dimensions differ"
    );
    let n = b.cols();
    let mut marker = vec![usize::MAX; n];
    let mut nnz = 0usize;
    for i in 0..a.rows() {
        for &k in a.row_indices(i) {
            for &j in b.row_indices(k as usize) {
                if marker[j as usize] != i {
                    marker[j as usize] = i;
                    nnz += 1;
                }
            }
        }
    }
    nnz
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spgemm;
    use bppsa_tensor::Matrix;

    #[test]
    fn spmv_flops_is_twice_nnz() {
        let a = Csr::from_diagonal(&[1.0f32, 2.0, 3.0]);
        assert_eq!(spmv_flops(&a), 6);
    }

    #[test]
    fn spgemm_flops_diagonal_times_diagonal() {
        let a = Csr::from_diagonal(&[1.0f64; 4]);
        let b = Csr::from_diagonal(&[2.0f64; 4]);
        // Each of the 4 rows does exactly 1 MAC.
        assert_eq!(spgemm_flops(&a, &b), 8);
    }

    #[test]
    fn spgemm_flops_matches_symbolic_plan() {
        let a = Csr::from_dense(&Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0]]));
        let b = Csr::from_dense(&Matrix::from_rows(&[&[0.0, 1.0], &[4.0, 0.0], &[0.0, 5.0]]));
        let plan = crate::SymbolicProduct::plan(&a.pattern(), &b.pattern());
        assert_eq!(spgemm_flops(&a, &b), plan.flops());
    }

    #[test]
    fn dense_flop_formulas() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(gemv_flops(20, 20), 800);
    }

    #[test]
    fn dense_csr_spgemm_flops_equals_gemm_flops() {
        // Fully dense CSR operands should count exactly the dense GEMM FLOPs.
        let a = Csr::from_dense(&Matrix::from_fn(3, 4, |i, j| (i + j + 1) as f64));
        let b = Csr::from_dense(&Matrix::from_fn(4, 5, |i, j| (i * j + 1) as f64));
        assert_eq!(spgemm_flops(&a, &b), gemm_flops(3, 4, 5));
    }

    #[test]
    fn out_nnz_matches_actual_product_without_cancellation() {
        let a = Csr::from_dense(&Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0]]));
        let b = Csr::from_dense(&Matrix::from_rows(&[&[0.0, 1.0], &[4.0, 0.0], &[0.0, 5.0]]));
        let predicted = spgemm_out_nnz(&a.pattern(), &b.pattern());
        let actual = spgemm(&a, &b).nnz();
        assert_eq!(predicted, actual);
    }
}
