//! Density-adaptive numeric kernels for [`SymbolicProduct`].
//!
//! A symbolic SpGEMM plan fixes *what* gets computed (the output pattern and
//! the structural multiply–adds); this module is about *how*. Three numeric
//! kernels cover the density spectrum the scan's up-sweep walks through as
//! Jacobian products densify level by level:
//!
//! * [`NumericKernel::Gather`] — the original precomputed gather program:
//!   one `(a_off, b_off, slot)` triplet per structural multiply–add. Ideal
//!   when products-per-output is tiny (diagonal-ish, permutation-ish
//!   operands); the table costs 12 bytes of bandwidth per MAC, which loses
//!   badly once rows get dense.
//! * [`NumericKernel::Gustavson`] — a planned row-by-row Gustavson kernel
//!   over a pre-sized dense accumulator. No per-MAC table: the operands'
//!   own CSR arrays drive the loops, and the known output pattern replaces
//!   the symbolic sort/merge. The mid-density workhorse.
//! * [`NumericKernel::Dense`] — a cache-blocked microkernel over a packed
//!   row-major panel of the right operand: each output row is a sum of
//!   contiguous SIMD `axpy`s ([`Scalar::slice_axpy`], AVX on `x86_64`),
//!   tiled [`KERNEL_DENSE_ROW_BLOCK`] output rows ×
//!   [`KERNEL_DENSE_K_BLOCK`] panel rows at a time so panel traffic comes
//!   from cache instead of re-streaming DRAM per row. Worth the extra
//!   (structural-zero) multiplies once the right operand is dense-ish.
//!
//! Selection happens per product at plan time ([`KernelMode::Auto`]) from
//! pattern-level statistics only — never values — so the choice is as
//! deterministic as the patterns themselves (§3.3 of the paper). All three
//! kernels produce **bit-for-bit identical** results for finite operands:
//! they accumulate each output element's structural terms in the same order
//! and canonicalize the leading `-0.0` the same way the generic
//! [`spgemm`](crate::spgemm) does. (The dense kernel additionally multiplies
//! structural zeros, which is exact for finite operands but can turn an
//! `inf`/`NaN` operand into extra `NaN`s — non-finite Jacobians are outside
//! the contract.)
//!
//! [`SymbolicProduct`]: crate::SymbolicProduct

use crate::SparsityPattern;
use bppsa_tensor::Scalar;

/// Right-operand density at or above which [`KernelMode::Auto`] picks the
/// dense panel microkernel. At density `d` the panel kernel performs `1/d`×
/// the structural multiplies; `0.25` caps that overwork at 4×, which the
/// contiguous autovectorized loops amortize.
pub const KERNEL_DENSE_MIN_DENSITY: f64 = 0.25;

/// Minimum right-operand column count before the dense panel kernel is
/// considered: below this the panel rows are too short for vectorization to
/// beat the sparse kernels' exact-work loops.
pub const KERNEL_DENSE_MIN_COLS: usize = 8;

/// Maximum structural multiply–adds per output element for which
/// [`KernelMode::Auto`] keeps the gather program. At ≤ 2 MACs per output the
/// gather table is barely larger than the output itself and streams
/// perfectly; beyond that the 12-byte-per-MAC table is pure overhead next to
/// Gustavson's table-free loops.
pub const KERNEL_GATHER_MAX_MACS_PER_OUT: u64 = 2;

/// Output rows the dense kernel processes per cache block (one accumulator
/// row each, revisited once per k-block). Without row blocking every output
/// row re-streams its panel rows from DRAM — at 8% density no two adjacent
/// rows share panel rows, so reuse only emerges across ~`1/density` rows. A
/// big block amortizes each k-block's panel slice over many consumers: 512
/// rows drop per-call panel traffic to `⌈rows/512⌉` panel sweeps, and an
/// empirical sweep (128/256/512 × 64/128/256 k-rows, interleaved against
/// the gather kernel on the 1k × 1k 8%-density point) picked 512 over the
/// smaller blocks by ~10% despite the accumulator block (4 MiB for 1k-wide
/// `f64`) spilling past L2 — the stacked-axpy passes touch each accumulator
/// row only a handful of times per k-block, so panel locality dominates.
pub const KERNEL_DENSE_ROW_BLOCK: usize = 512;

/// Panel rows per inner k-block of the dense kernel: the slice of the
/// packed panel (`KERNEL_DENSE_K_BLOCK · cols` elements) that stays
/// cache-resident while all rows of the current row block consume their
/// `a`-entries falling in it. 128 rows of a 1k-wide `f64` panel is 1 MiB —
/// the empirical sweet spot on the same sweep: 64-row blocks re-enter the
/// per-row cursor loop too often (each visit re-touches the row's
/// accumulator), 256-row blocks thrash the cache shared with the
/// accumulator rows in flight.
pub const KERNEL_DENSE_K_BLOCK: usize = 128;

/// How a [`SymbolicProduct`](crate::SymbolicProduct) chooses its numeric
/// kernel — the SpGEMM analogue of `bppsa-core`'s `DiagonalMode`.
///
/// [`KernelMode::Auto`] selects per product from pattern statistics (see
/// [`KernelMode::resolve`]); the three forcing variants pin one kernel, for
/// differential testing and ablation. All modes are bit-for-bit identical
/// on finite operands, so `Auto` never changes results — only throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelMode {
    /// Pick per product from the operands' pattern statistics.
    #[default]
    Auto,
    /// Always run the precomputed gather program (the pre-refactor path).
    Gather,
    /// Always run the planned row-by-row Gustavson kernel.
    Gustavson,
    /// Always run the dense packed-panel microkernel.
    Dense,
}

/// The numeric kernel a [`SymbolicProduct`](crate::SymbolicProduct) resolved
/// to at plan time (a [`KernelMode`] with `Auto` already decided).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumericKernel {
    /// Precomputed `(a_off, b_off, slot)` gather program.
    Gather,
    /// Planned Gustavson row-by-row kernel over a dense accumulator.
    Gustavson,
    /// Register-blocked microkernel over a packed row-major panel.
    Dense,
}

impl KernelMode {
    /// Resolves the mode for one product from pattern-level statistics:
    /// `b` is the right operand, `out_nnz` the structural output count, and
    /// `macs` the structural multiply–adds a numeric execution performs.
    ///
    /// `Auto` picks [`NumericKernel::Dense`] when `b`'s density reaches
    /// [`KERNEL_DENSE_MIN_DENSITY`] (and it is at least
    /// [`KERNEL_DENSE_MIN_COLS`] wide), [`NumericKernel::Gather`] when the
    /// product averages at most [`KERNEL_GATHER_MAX_MACS_PER_OUT`] MACs per
    /// output element, and [`NumericKernel::Gustavson`] otherwise.
    pub fn resolve(self, b: &SparsityPattern, out_nnz: usize, macs: u64) -> NumericKernel {
        match self {
            KernelMode::Gather => NumericKernel::Gather,
            KernelMode::Gustavson => NumericKernel::Gustavson,
            KernelMode::Dense => NumericKernel::Dense,
            KernelMode::Auto => {
                let cells = (b.rows() * b.cols()) as f64;
                let density = if cells > 0.0 {
                    b.nnz() as f64 / cells
                } else {
                    0.0
                };
                if density >= KERNEL_DENSE_MIN_DENSITY && b.cols() >= KERNEL_DENSE_MIN_COLS {
                    NumericKernel::Dense
                } else if macs <= KERNEL_GATHER_MAX_MACS_PER_OUT * out_nnz as u64 {
                    NumericKernel::Gather
                } else {
                    NumericKernel::Gustavson
                }
            }
        }
    }
}

/// Reusable numeric scratch for one [`SymbolicProduct`](crate::SymbolicProduct):
/// dense accumulator lanes (Gustavson and Dense kernels) plus the packed
/// right-operand panel (Dense kernel only). Built once via
/// [`SymbolicProduct::scratch`](crate::SymbolicProduct::scratch) and reused
/// every execution, so the steady state stays allocation-free; the gather
/// kernel needs no scratch and gets an empty one.
///
/// One accumulator *lane* (a `cols`-wide row) is needed per concurrent row
/// chunk: serial execution uses lane 0, the row-chunk-parallel path uses one
/// lane per chunk. A scratch with fewer lanes than the pool would fan out to
/// simply caps the chunk count — never unsoundness, just less parallelism.
#[derive(Debug, Clone)]
pub struct KernelScratch<S> {
    /// `lanes × acc_rows × acc_cols` dense accumulator rows. Gustavson
    /// lanes (`acc_rows == 1`) are all-zero between executions (each row
    /// gathers *and re-zeroes* its touched entries); Dense lanes hold one
    /// [`KERNEL_DENSE_ROW_BLOCK`]-row cache block per lane, fully
    /// overwritten block by block.
    pub(crate) acc: Vec<S>,
    pub(crate) acc_rows: usize,
    pub(crate) acc_cols: usize,
    pub(crate) lanes: usize,
    /// `b.rows() × b.cols()` packed row-major right-operand panel (Dense
    /// only). Structural positions are refreshed by every pack; positions
    /// outside the pattern stay exactly `+0.0` forever.
    pub(crate) panel: Vec<S>,
}

impl<S: Scalar> KernelScratch<S> {
    /// An empty scratch (what the gather kernel uses).
    pub(crate) fn empty() -> Self {
        Self {
            acc: Vec::new(),
            acc_rows: 0,
            acc_cols: 0,
            lanes: 0,
            panel: Vec::new(),
        }
    }

    pub(crate) fn with_dims(
        lanes: usize,
        acc_rows: usize,
        acc_cols: usize,
        panel_len: usize,
    ) -> Self {
        Self {
            acc: vec![S::ZERO; lanes * acc_rows * acc_cols],
            acc_rows,
            acc_cols,
            lanes,
            panel: vec![S::ZERO; panel_len],
        }
    }

    /// Number of accumulator lanes (the row-parallel chunk-count cap).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Total heap bytes this scratch holds.
    pub fn bytes(&self) -> usize {
        (self.acc.len() + self.panel.len()) * std::mem::size_of::<S>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(rows: usize, cols: usize, nnz_rows: &[Vec<u32>]) -> SparsityPattern {
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        for r in nnz_rows {
            indices.extend_from_slice(r);
            indptr.push(indices.len());
        }
        assert_eq!(indptr.len(), rows + 1);
        SparsityPattern::new(rows, cols, indptr, indices)
    }

    #[test]
    fn forced_modes_resolve_to_themselves() {
        let b = pattern(1, 1, &[vec![0]]);
        assert_eq!(
            KernelMode::Gather.resolve(&b, 1, 100),
            NumericKernel::Gather
        );
        assert_eq!(
            KernelMode::Gustavson.resolve(&b, 1, 100),
            NumericKernel::Gustavson
        );
        assert_eq!(KernelMode::Dense.resolve(&b, 1, 100), NumericKernel::Dense);
    }

    #[test]
    fn auto_picks_gather_for_diagonal_like_products() {
        // Diagonal b: 1 MAC per output element.
        let b = pattern(4, 4, &[vec![0], vec![1], vec![2], vec![3]]);
        assert_eq!(KernelMode::Auto.resolve(&b, 4, 4), NumericKernel::Gather);
    }

    #[test]
    fn auto_picks_gustavson_for_mid_density() {
        // 16 cols, density 2/16 = 0.125 < 0.25, and 8 MACs per output.
        let rows: Vec<Vec<u32>> = (0..16).map(|k| vec![k, (k + 1) % 16]).collect();
        let b = pattern(16, 16, &rows);
        assert_eq!(
            KernelMode::Auto.resolve(&b, 16, 128),
            NumericKernel::Gustavson
        );
    }

    #[test]
    fn auto_picks_dense_above_the_density_threshold() {
        // 8 cols, every row half-full: density 0.5 ≥ 0.25 and cols ≥ 8.
        let rows: Vec<Vec<u32>> = (0..8).map(|_| vec![0, 2, 4, 6]).collect();
        let b = pattern(8, 8, &rows);
        assert_eq!(KernelMode::Auto.resolve(&b, 64, 256), NumericKernel::Dense);
    }

    #[test]
    fn auto_never_picks_dense_for_narrow_operands() {
        // Fully dense but only 4 columns wide: stays on the sparse kernels.
        let rows: Vec<Vec<u32>> = (0..4).map(|_| vec![0, 1, 2, 3]).collect();
        let b = pattern(4, 4, &rows);
        assert_ne!(KernelMode::Auto.resolve(&b, 16, 64), NumericKernel::Dense);
    }

    #[test]
    fn scratch_reports_lanes_and_bytes() {
        let s = KernelScratch::<f64>::with_dims(3, 2, 16, 64);
        assert_eq!(s.lanes(), 3);
        assert_eq!(s.bytes(), (3 * 2 * 16 + 64) * 8);
        let e = KernelScratch::<f64>::empty();
        assert_eq!(e.lanes(), 0);
        assert_eq!(e.bytes(), 0);
    }
}
