//! Property-based tests pinning the sparse kernels to dense references.

use bppsa_sparse::{flops, spgemm, Coo, Csr, SymbolicProduct};
use bppsa_tensor::{Matrix, Vector};
use proptest::prelude::*;

const DIM: std::ops::Range<usize> = 1..8;

/// A random matrix with ~`density` fraction of non-zeros.
fn sparse_dense_pair(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<f64>> {
    proptest::collection::vec((any::<bool>(), -5.0..5.0f64), rows * cols).prop_map(move |cells| {
        Matrix::from_vec(
            rows,
            cols,
            cells
                .into_iter()
                .map(|(keep, v)| if keep && v != 0.0 { v } else { 0.0 })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_roundtrips_dense(d in (DIM, DIM).prop_flat_map(|(m, n)| sparse_dense_pair(m, n))) {
        let csr = Csr::from_dense(&d);
        prop_assert_eq!(csr.validate(), Ok(()));
        prop_assert!(csr.to_dense().approx_eq(&d, 0.0));
        prop_assert_eq!(csr.nnz(), d.count_nonzeros());
    }

    #[test]
    fn spmv_matches_dense_matvec((d, x) in (DIM, DIM).prop_flat_map(|(m, n)| {
        (sparse_dense_pair(m, n), proptest::collection::vec(-5.0..5.0f64, n))
    })) {
        let csr = Csr::from_dense(&d);
        let x = Vector::from_vec(x);
        prop_assert!(csr.spmv(&x).approx_eq(&d.matvec(&x), 1e-10));
    }

    #[test]
    fn spgemm_matches_dense_matmul((a, b) in (DIM, DIM, DIM).prop_flat_map(|(m, k, n)| {
        (sparse_dense_pair(m, k), sparse_dense_pair(k, n))
    })) {
        let sa = Csr::from_dense(&a);
        let sb = Csr::from_dense(&b);
        let c = spgemm(&sa, &sb);
        prop_assert_eq!(c.validate(), Ok(()));
        prop_assert!(c.to_dense().approx_eq(&a.matmul(&b), 1e-9));
    }

    #[test]
    fn symbolic_plan_equals_generic_spgemm((a, b) in (DIM, DIM, DIM).prop_flat_map(|(m, k, n)| {
        (sparse_dense_pair(m, k), sparse_dense_pair(k, n))
    })) {
        let sa = Csr::from_dense(&a);
        let sb = Csr::from_dense(&b);
        let plan = SymbolicProduct::plan(&sa.pattern(), &sb.pattern());
        prop_assert_eq!(plan.execute(&sa, &sb), spgemm(&sa, &sb));
        // And the plan's FLOP count matches the static estimator.
        prop_assert_eq!(plan.flops(), flops::spgemm_flops(&sa, &sb));
    }

    #[test]
    fn transpose_matches_dense(d in (DIM, DIM).prop_flat_map(|(m, n)| sparse_dense_pair(m, n))) {
        let csr = Csr::from_dense(&d);
        let t = csr.transposed();
        prop_assert_eq!(t.validate(), Ok(()));
        prop_assert!(t.to_dense().approx_eq(&d.transposed(), 0.0));
        prop_assert_eq!(t.transposed(), csr);
    }

    #[test]
    fn coo_with_duplicates_matches_dense_accumulation(
        (rows, cols, triplets) in (DIM, DIM).prop_flat_map(|(m, n)| {
            let trip = proptest::collection::vec((0..m, 0..n, -3.0..3.0f64), 0..20);
            (Just(m), Just(n), trip)
        })
    ) {
        let mut coo = Coo::<f64>::new(rows, cols);
        let mut dense = Matrix::<f64>::zeros(rows, cols);
        for &(i, j, v) in &triplets {
            coo.push(i, j, v);
            dense.set(i, j, dense.get(i, j) + v);
        }
        let csr = coo.to_csr();
        prop_assert_eq!(csr.validate(), Ok(()));
        prop_assert!(csr.to_dense().approx_eq(&dense, 1e-10));
    }

    #[test]
    fn out_nnz_bounds_actual_nnz((a, b) in (DIM, DIM, DIM).prop_flat_map(|(m, k, n)| {
        (sparse_dense_pair(m, k), sparse_dense_pair(k, n))
    })) {
        let sa = Csr::from_dense(&a);
        let sb = Csr::from_dense(&b);
        let structural = flops::spgemm_out_nnz(&sa.pattern(), &sb.pattern());
        let actual = spgemm(&sa, &sb);
        // Structural count is exact for the kept-zeros convention.
        prop_assert_eq!(structural, actual.nnz());
        // Pruning can only shrink.
        prop_assert!(actual.pruned().nnz() <= structural);
    }

    #[test]
    fn spgemm_associativity((a, b, c) in (DIM, DIM, DIM, DIM).prop_flat_map(|(m, k, n, p)| {
        (sparse_dense_pair(m, k), sparse_dense_pair(k, n), sparse_dense_pair(n, p))
    })) {
        let (sa, sb, sc) = (Csr::from_dense(&a), Csr::from_dense(&b), Csr::from_dense(&c));
        let left = spgemm(&spgemm(&sa, &sb), &sc);
        let right = spgemm(&sa, &spgemm(&sb, &sc));
        prop_assert!(left.to_dense().approx_eq(&right.to_dense(), 1e-8));
    }

    #[test]
    fn execute_into_agrees_with_spgemm((a, b) in (DIM, DIM, DIM).prop_flat_map(|(m, k, n)| {
        (sparse_dense_pair(m, k), sparse_dense_pair(k, n))
    })) {
        let sa = Csr::from_dense(&a);
        let sb = Csr::from_dense(&b);
        let plan = SymbolicProduct::plan(&sa.pattern(), &sb.pattern());
        let reference = spgemm(&sa, &sb);
        // Buffer starts with an unrelated shape; execute_into must rebind it
        // and reuse it across calls without drifting.
        let mut out = Csr::<f64>::identity(1);
        plan.execute_into(&sa, &sb, &mut out);
        prop_assert_eq!(&out, &reference);
        plan.execute_into(&sa, &sb, &mut out);
        prop_assert_eq!(&out, &reference);
    }

    #[test]
    fn row_parallel_numeric_agrees_with_spgemm((a, b) in (DIM, DIM, DIM).prop_flat_map(|(m, k, n)| {
        (sparse_dense_pair(m, k), sparse_dense_pair(k, n))
    })) {
        let sa = Csr::from_dense(&a);
        let sb = Csr::from_dense(&b);
        let plan = SymbolicProduct::plan(&sa.pattern(), &sb.pattern());
        let reference = spgemm(&sa, &sb);
        let mut out = Csr::from_pattern(plan.out_pattern().clone());
        plan.execute_into_parallel(&sa, &sb, &mut out, bppsa_scan::global_pool());
        prop_assert_eq!(&out, &reference);
    }

    #[test]
    fn spmv_into_agrees_with_spmv((d, x) in (DIM, DIM).prop_flat_map(|(m, n)| {
        (sparse_dense_pair(m, n), proptest::collection::vec(-5.0..5.0f64, n))
    })) {
        let csr = Csr::from_dense(&d);
        let x = Vector::from_vec(x);
        let mut out = Vector::zeros(csr.rows());
        csr.spmv_into(&x, &mut out);
        prop_assert!(out.approx_eq(&csr.spmv(&x), 0.0));
    }
}
