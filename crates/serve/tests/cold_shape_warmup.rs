//! Cold-shape regression test: submitting a never-seen shape must not hold
//! the router lock across symbolic planning.
//!
//! Before the placeholder-lane rework, `route()` ran the whole planner
//! under the router lock, so one cold shape stalled **every** submitter —
//! exactly the end-to-end serialization the paper's scan formulation
//! removes from the backward pass itself. This test pins the fix with an
//! ordering gate instead of wall-clock thresholds:
//!
//! 1. a hot lane is warmed up front (tiny shape, `Live`);
//! 2. a second thread submits one request of a deliberately slow-to-plan
//!    shape (hundreds of symbolic SpGEMMs over wide, dense-ish patterns —
//!    hundreds of milliseconds even in release builds) and rendezvouses on
//!    a barrier **after** its submit returned;
//! 3. the main thread then drives a storm of hot round trips and
//!    afterwards reads the cold lane's state: every hot round trip must
//!    have completed **while the cold lane was still `Warming`**.
//!
//! With planning under the router lock, step 2 cannot pass the barrier
//! until planning is done (the submit itself blocks), so the gate fails.
//! The hot storm costs ~a millisecond per round against a plan that costs
//! hundreds of milliseconds — the ordering is not a close race. A
//! secondary latency assertion pins the same property quantitatively: the
//! slowest hot *submit call* must be far below the cold plan's measured
//! build time (under the old design it would equal it).

use bppsa_core::JacobianChain;
use bppsa_core::ScanElement;
use bppsa_serve::{BppsaService, LaneState, ServeConfig, ShedPolicy, Ticket};
use bppsa_sparse::Csr;
use bppsa_tensor::init::{seeded_rng, uniform_vector};
use bppsa_tensor::Matrix;
use rand::Rng;
use std::sync::Barrier;
use std::time::{Duration, Instant};

const HOT_ROUNDS: usize = 12;

fn sparse_chain(n: usize, width: usize, density: f64, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
    for _ in 0..n {
        let dense = Matrix::from_fn(width, width, |_, _| {
            if rng.random_range(0.0..1.0) < density {
                rng.random_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        chain.push(ScanElement::Sparse(Csr::from_dense(&dense)));
    }
    chain
}

/// Same patterns as `template`, fresh values.
fn revalue(template: &JacobianChain<f64>, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, template.seed().len(), 1.0));
    for jt in template.jacobians() {
        let ScanElement::Sparse(m) = jt else {
            unreachable!()
        };
        chain.push(ScanElement::Sparse(
            m.map_values(|_| rng.random_range(-1.0..1.0)),
        ));
    }
    chain
}

#[test]
fn hot_lane_unaffected_while_cold_shape_warms() {
    let service = BppsaService::<f64>::new(ServeConfig {
        max_batch: 4,
        max_delay: Duration::from_millis(1),
        queue_cap: 16,
        max_lanes: 4,
        workspaces_per_lane: 1,
        shed: ShedPolicy::disabled(),
        ..ServeConfig::default()
    });

    // Hot lane up front: lane 0, Live before the cold storm starts.
    let hot_template = sparse_chain(3, 5, 0.4, 1);
    let hot_ticket = Ticket::new();
    service
        .submit(revalue(&hot_template, 10), &hot_ticket)
        .expect("accepting");
    hot_ticket.wait().expect("hot lane serves");
    let _ = hot_ticket.take_chain();
    assert_eq!(service.metrics()[0].state, LaneState::Live);

    // The cold shape: 256 layers of width 48 at ~50% density — hundreds of
    // symbolic products over densifying patterns, hundreds of milliseconds
    // of planning even in release builds.
    let cold_chain = sparse_chain(256, 48, 0.5, 2);

    let barrier = Barrier::new(2);
    let cold_ticket = Ticket::new();
    let (hot_submit_latencies, cold_state_after_storm) = std::thread::scope(|s| {
        s.spawn(|| {
            // Submit returns once the *placeholder* lane accepted the
            // request; planning continues on the lane's dispatcher.
            service
                .submit_with_delay(cold_chain.clone(), Duration::from_millis(1), &cold_ticket)
                .expect("cold shape accepted");
            barrier.wait();
        });
        // Rendezvous: the cold submit has returned, its lane exists and is
        // warming (the plan cannot be done — it costs ~10^5 times a hot
        // round trip and started microseconds ago).
        barrier.wait();
        assert_eq!(
            service.metrics()[1].state,
            LaneState::Warming,
            "cold lane must be planning in the background, not under the router lock"
        );

        // Hot storm: full round trips on the live lane while the cold lane
        // plans. Under the old design each of these submits would park on
        // the router lock until the cold plan finished.
        let mut latencies = Vec::with_capacity(HOT_ROUNDS);
        for round in 0..HOT_ROUNDS {
            let chain = revalue(&hot_template, 100 + round as u64);
            let t0 = Instant::now();
            service
                .submit_with_delay(chain, Duration::ZERO, &hot_ticket)
                .expect("hot lane accepting during cold warm-up");
            latencies.push(t0.elapsed());
            hot_ticket
                .wait()
                .expect("hot request served during cold warm-up");
            let _ = hot_ticket.take_chain();
        }
        (latencies, service.metrics()[1].state)
    });

    // THE GATE: every hot round trip completed before the cold plan
    // finished.
    assert_eq!(
        cold_state_after_storm,
        LaneState::Warming,
        "hot round trips must complete while the cold lane is still warming"
    );

    // The cold request itself still completes, and its lane reports the
    // warm-up cost it made everyone else *not* pay.
    cold_ticket.wait().expect("cold request served");
    cold_ticket.with_result(|r| {
        assert_eq!(r.grads().len(), 256);
        assert!(r
            .grads()
            .iter()
            .all(|g| g.as_slice().iter().all(|v| v.is_finite())));
    });
    let cold = &service.metrics()[1];
    assert_eq!(cold.state, LaneState::Live);
    assert_eq!(cold.submitted, 1);
    assert_eq!(cold.requests_flushed(), 1);
    assert!(cold.plan_time > Duration::ZERO);
    assert!(cold.warmup_time >= cold.plan_time);

    // Quantitative echo of the gate (the hot lane's tail submit latency is
    // unaffected by the cold plan): the slowest hot submit *call* stays far
    // below the measured plan time. Under the router-lock design it would
    // have been ≈ plan_time.
    let worst_submit = *hot_submit_latencies.iter().max().expect("nonempty");
    assert!(
        worst_submit < cold.plan_time / 2,
        "hot submit latency {worst_submit:?} is not far below the cold plan time {:?}",
        cold.plan_time
    );

    // The hot lane served the whole storm.
    let hot = &service.metrics()[0];
    assert_eq!(hot.state, LaneState::Live);
    assert_eq!(hot.submitted, 1 + HOT_ROUNDS as u64);
    assert_eq!(hot.requests_flushed(), hot.submitted);
    service.shutdown();
}
