//! Service-level stress test: `N` producer threads hammering one
//! [`BppsaService`] with mixed-shape requests under random deadlines must
//!
//! 1. complete **every** request (no lost wakeups — each `wait()` returns),
//! 2. produce gradients **bit-for-bit identical** to serial single-workspace
//!    [`PlannedScan`] execution — the compiled program is deterministic, so
//!    which lane, batch, workspace, or thread served a request must not
//!    matter, and
//! 3. respect the lane cap: shapes beyond [`ServeConfig::max_lanes`] evict
//!    and re-create lanes without losing any in-flight request.

use bppsa_core::{BppsaOptions, JacobianChain, PlannedScan, ScanElement};
use bppsa_serve::{BppsaService, ServeConfig, ShedPolicy, SubmitError, Ticket};
use bppsa_sparse::Csr;
use bppsa_tensor::init::{seeded_rng, uniform_vector};
use bppsa_tensor::Matrix;
use rand::Rng;
use std::time::Duration;

const PRODUCERS: usize = 6;
const ROUNDS_PER_PRODUCER: usize = 40;
/// Distinct chain shapes (lanes), deliberately above `max_lanes` below so
/// MRU eviction runs under fire.
const SHAPES: usize = 4;
/// Distinct value sets per shape (so results differ per request).
const VARIANTS: usize = 3;

fn sparse_chain(n: usize, width: usize, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
    for _ in 0..n {
        let dense = Matrix::from_fn(width, width, |_, _| {
            if rng.random_range(0.0..1.0) < 0.35 {
                rng.random_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        chain.push(ScanElement::Sparse(Csr::from_dense(&dense)));
    }
    chain
}

/// Same patterns as `template`, fresh values.
fn revalue(template: &JacobianChain<f64>, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, template.seed().len(), 1.0));
    for jt in template.jacobians() {
        let ScanElement::Sparse(m) = jt else {
            unreachable!()
        };
        chain.push(ScanElement::Sparse(
            m.map_values(|_| rng.random_range(-1.0..1.0)),
        ));
    }
    chain
}

#[test]
fn mixed_shape_multi_producer_traffic_is_exact_and_lossless() {
    // Shape s: (4 + 3s) layers of width (6 + s).
    let templates: Vec<JacobianChain<f64>> = (0..SHAPES)
        .map(|s| sparse_chain(4 + 3 * s, 6 + s, 7 + s as u64))
        .collect();
    // chains[s][v]: variant v of shape s; references[s][v]: its serial
    // single-workspace gradients.
    let chains: Vec<Vec<JacobianChain<f64>>> = templates
        .iter()
        .enumerate()
        .map(|(s, t)| {
            (0..VARIANTS)
                .map(|v| revalue(t, 100 + (s * VARIANTS + v) as u64))
                .collect()
        })
        .collect();
    let references: Vec<Vec<Vec<Vec<f64>>>> = templates
        .iter()
        .zip(&chains)
        .map(|(template, variants)| {
            let plan = PlannedScan::plan(template, BppsaOptions::serial());
            let mut ws = plan.workspace::<f64>();
            variants
                .iter()
                .map(|chain| {
                    plan.execute_with(chain, &mut ws)
                        .grads()
                        .iter()
                        .map(|g| g.as_slice().to_vec())
                        .collect()
                })
                .collect()
        })
        .collect();

    let service = BppsaService::<f64>::new(ServeConfig {
        max_batch: 5,
        max_delay: Duration::from_micros(300),
        queue_cap: 32,
        max_lanes: SHAPES - 1, // force MRU eviction under load
        workspaces_per_lane: 0,
        shed: ShedPolicy::disabled(),
        ..ServeConfig::default()
    });

    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let service = &service;
            let chains = &chains;
            let references = &references;
            s.spawn(move || {
                let mut rng = seeded_rng(1000 + p as u64);
                let ticket = Ticket::new();
                for round in 0..ROUNDS_PER_PRODUCER {
                    let shape = rng.random_range(0..SHAPES);
                    let variant = rng.random_range(0..VARIANTS);
                    // Random deadline budget: from "flush me immediately"
                    // to "wait for co-traffic".
                    let delay = Duration::from_micros(rng.random_range(0..800));
                    let chain = chains[shape][variant].clone();
                    service
                        .submit_with_delay(chain, delay, &ticket)
                        .unwrap_or_else(|e| {
                            panic!("producer {p} round {round}: submit refused: {e}")
                        });
                    ticket.wait().unwrap_or_else(|e| {
                        panic!("producer {p} round {round}: request failed: {e}")
                    });
                    ticket.with_result(|r| {
                        for (g, expect) in r.grads().iter().zip(&references[shape][variant]) {
                            // Bit-for-bit: same compiled program, same
                            // rounding, whatever served it.
                            assert_eq!(
                                g.as_slice(),
                                expect.as_slice(),
                                "producer {p} round {round} shape {shape} variant {variant}"
                            );
                        }
                    });
                    // Drop the chain clone; the ticket is reused as-is.
                    let _ = ticket.take_chain();
                }
            });
        }
    });

    assert!(service.lanes() < SHAPES, "router exceeded its lane cap");
    assert!(
        service.lanes_created() >= SHAPES,
        "eviction should have forced lane re-creation"
    );
    service.shutdown();
}

#[test]
fn shed_policy_stress_every_ticket_completes_or_sheds() {
    // Shed-policy stress mode: tiny queues, aggressive deadlines, and both
    // shed thresholds armed, hammered by concurrent producers. Invariants:
    //
    // 1. every submit attempt resolves as **exactly one** of
    //    completed-through-the-ticket or shed-at-submit (chain handed
    //    back) — nothing hangs, nothing double-resolves;
    // 2. completed results stay bit-for-bit identical to serial
    //    single-workspace execution — shedding must not perturb what does
    //    flow through;
    // 3. the lanes' shed/submit counters reconcile exactly with what the
    //    producers observed.
    const SHED_PRODUCERS: usize = 4;
    const SHED_ROUNDS: usize = 50;
    const SHED_SHAPES: usize = 2;

    let templates: Vec<JacobianChain<f64>> = (0..SHED_SHAPES)
        .map(|s| sparse_chain(4 + 2 * s, 6, 300 + s as u64))
        .collect();
    let chains: Vec<Vec<JacobianChain<f64>>> = templates
        .iter()
        .enumerate()
        .map(|(s, t)| {
            (0..VARIANTS)
                .map(|v| revalue(t, 400 + (s * VARIANTS + v) as u64))
                .collect()
        })
        .collect();
    let references: Vec<Vec<Vec<Vec<f64>>>> = templates
        .iter()
        .zip(&chains)
        .map(|(template, variants)| {
            let plan = PlannedScan::plan(template, BppsaOptions::serial());
            let mut ws = plan.workspace::<f64>();
            variants
                .iter()
                .map(|chain| {
                    plan.execute_with(chain, &mut ws)
                        .grads()
                        .iter()
                        .map(|g| g.as_slice().to_vec())
                        .collect()
                })
                .collect()
        })
        .collect();

    let service = BppsaService::<f64>::new(ServeConfig {
        max_batch: 3,
        max_delay: Duration::from_micros(100),
        queue_cap: 4,
        max_lanes: SHED_SHAPES, // no eviction: the counters must reconcile
        workspaces_per_lane: 0,
        shed: ShedPolicy {
            max_queue_depth: Some(2),
            min_warming_delay: Some(Duration::from_micros(50)),
            feasibility: None,
        },
        ..ServeConfig::default()
    });

    // (completed, shed) per producer.
    let outcomes: Vec<(u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..SHED_PRODUCERS)
            .map(|p| {
                let service = &service;
                let chains = &chains;
                let references = &references;
                let templates = &templates;
                s.spawn(move || {
                    let mut rng = seeded_rng(2000 + p as u64);
                    let ticket = Ticket::new();
                    let mut completed = 0u64;
                    let mut shed = 0u64;
                    for round in 0..SHED_ROUNDS {
                        let shape = rng.random_range(0..SHED_SHAPES);
                        let variant = rng.random_range(0..VARIANTS);
                        let delay = Duration::from_micros(rng.random_range(0..200));
                        let chain = chains[shape][variant].clone();
                        match service.submit_with_delay(chain, delay, &ticket) {
                            Ok(()) => {
                                ticket.wait().unwrap_or_else(|e| {
                                    panic!("producer {p} round {round}: accepted request failed: {e}")
                                });
                                ticket.with_result(|r| {
                                    for (g, expect) in
                                        r.grads().iter().zip(&references[shape][variant])
                                    {
                                        assert_eq!(
                                            g.as_slice(),
                                            expect.as_slice(),
                                            "producer {p} round {round} shape {shape} variant {variant}"
                                        );
                                    }
                                });
                                let _ = ticket.take_chain();
                                completed += 1;
                            }
                            Err(SubmitError::Shed(chain)) => {
                                // The refusal hands the chain back intact and
                                // leaves the ticket idle for the next round.
                                assert_eq!(chain.num_layers(), templates[shape].num_layers());
                                shed += 1;
                            }
                            Err(other) => {
                                panic!("producer {p} round {round}: unexpected refusal: {other}")
                            }
                        }
                    }
                    (completed, shed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("producer panicked"))
            .collect()
    });

    let completed_total: u64 = outcomes.iter().map(|(c, _)| c).sum();
    let shed_total: u64 = outcomes.iter().map(|(_, s)| s).sum();
    assert_eq!(
        completed_total + shed_total,
        (SHED_PRODUCERS * SHED_ROUNDS) as u64,
        "every attempt resolves as exactly one of completed or shed"
    );
    assert!(
        completed_total >= SHED_SHAPES as u64,
        "at least the lane-seeding requests must flow through"
    );

    // Quiesce, then reconcile the lanes' counters with the producers'.
    service.shutdown();
    let snaps = service.metrics();
    assert_eq!(snaps.len(), SHED_SHAPES, "no eviction under this config");
    let submitted: u64 = snaps.iter().map(|l| l.submitted).sum();
    let lane_shed: u64 = snaps.iter().map(|l| l.shed).sum();
    let flushed: u64 = snaps.iter().map(|l| l.requests_flushed()).sum();
    assert_eq!(submitted, completed_total, "accepted == completed");
    assert_eq!(
        lane_shed, shed_total,
        "lane shed counters == producer sheds"
    );
    assert_eq!(
        flushed, submitted,
        "every accepted request left via a flush"
    );
}

#[test]
fn pipelined_producers_share_tickets_across_shapes() {
    // One producer keeps several tickets in flight at once (submit all,
    // then wait all), mixing shapes — exercises out-of-order completion
    // across lanes with interleaved deadline flushes.
    let templates: Vec<JacobianChain<f64>> = (0..3)
        .map(|s| sparse_chain(3 + 2 * s, 5 + s, 40 + s as u64))
        .collect();
    let service = BppsaService::<f64>::new(ServeConfig {
        max_batch: 4,
        max_delay: Duration::from_micros(400),
        queue_cap: 16,
        max_lanes: 3,
        workspaces_per_lane: 0,
        shed: ShedPolicy::disabled(),
        ..ServeConfig::default()
    });
    let tickets: Vec<Ticket<f64>> = (0..9).map(|_| Ticket::new()).collect();
    for wave in 0..5 {
        for (k, ticket) in tickets.iter().enumerate() {
            let chain = revalue(&templates[k % 3], 500 + (wave * 16 + k) as u64);
            service.submit(chain, ticket).expect("accepting");
        }
        for ticket in &tickets {
            ticket.wait().expect("wave request served");
            ticket.with_result(|r| assert!(!r.grads().is_empty()));
            let _ = ticket.take_chain();
        }
    }
    assert_eq!(service.lanes(), 3);
}
