//! Property-based tests for the serving layer's pure policy arithmetic.
//!
//! Two decision functions gate every request's path through a lane, and
//! both are deliberately pure so they can be pinned here without threads:
//!
//! * [`ShedPolicy`] — the submit-time refusal arithmetic. The properties
//!   that make shedding *safe* are monotonicity (adding queue depth or
//!   shrinking a delay budget never turns a refusal back into an accept —
//!   otherwise shedding would oscillate under load) and the seeding
//!   exemption (the request a lane's warm-up plan is built from is never
//!   shed, or a cold shape could starve itself forever).
//! * [`flush_decision`] — the dispatcher's wait-loop timer. The property
//!   that makes deadline batching *correct* is that the timer follows the
//!   **earliest** pending deadline whatever order requests arrived in:
//!   the decision is a pure function of the deadline *multiset*, `Flush`
//!   fires exactly when that minimum has passed, and `WaitUntil` targets
//!   exactly that minimum (never a later deadline, which would let the
//!   earliest request miss).

use bppsa_serve::{flush_decision, FlushCause, FlushDecision, ShedPolicy};
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// An arbitrary shed policy: each threshold independently absent or set.
fn shed_policy() -> impl Strategy<Value = ShedPolicy> {
    (any::<bool>(), 1..64usize, any::<bool>(), 0..200_000u64).prop_map(
        |(arm_depth, depth, arm_delay, min_us)| ShedPolicy {
            max_queue_depth: arm_depth.then_some(depth),
            min_warming_delay: arm_delay.then(|| Duration::from_micros(min_us)),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // More queued work never un-sheds: once the depth threshold refuses
    // at depth `d`, it refuses at every depth above `d` too.
    #[test]
    fn shed_depth_is_monotone(
        policy in shed_policy(),
        depth in 0..96usize,
        extra in 0..96usize,
    ) {
        if policy.sheds_on_depth(depth) {
            prop_assert!(
                policy.sheds_on_depth(depth + extra),
                "shed at depth {} but accepted at deeper {}",
                depth,
                depth + extra
            );
        }
    }

    // A tighter budget never un-sheds: once the warming-feasibility
    // threshold refuses a delay budget, it refuses every shorter budget.
    #[test]
    fn shed_warming_delay_is_anti_monotone(
        policy in shed_policy(),
        delay_us in 0..300_000u64,
        cut_us in 0..300_000u64,
    ) {
        let delay = Duration::from_micros(delay_us);
        let shorter = Duration::from_micros(delay_us.saturating_sub(cut_us));
        if policy.sheds_on_warming_delay(delay) {
            prop_assert!(
                policy.sheds_on_warming_delay(shorter),
                "shed at {:?} but accepted the shorter budget {:?}",
                delay,
                shorter
            );
        }
    }

    // The full decision inherits both monotonicities: raising the queue
    // depth or cutting the delay budget never flips a shed back to an
    // accept (with the other inputs held fixed).
    #[test]
    fn full_decision_is_monotone_under_load(
        policy in shed_policy(),
        depth in 0..96usize,
        extra in 0..96usize,
        delay_us in 0..300_000u64,
        cut_us in 0..300_000u64,
        warming in any::<bool>(),
    ) {
        let delay = Duration::from_micros(delay_us);
        let worse = Duration::from_micros(delay_us.saturating_sub(cut_us));
        if policy.should_shed(depth, warming, delay, false) {
            prop_assert!(
                policy.should_shed(depth + extra, warming, worse, false),
                "shed at (depth {}, delay {:?}) but accepted the strictly \
                 worse (depth {}, delay {:?})",
                depth,
                delay,
                depth + extra,
                worse
            );
        }
    }

    // The request that seeds a lane's warm-up is never shed, whatever the
    // policy and however hopeless its budget looks — it *is* the template
    // the plan gets built from, so refusing it would starve the shape.
    #[test]
    fn seeding_requests_are_never_shed(
        policy in shed_policy(),
        depth in 0..96usize,
        delay_us in 0..300_000u64,
        warming in any::<bool>(),
    ) {
        prop_assert!(
            !policy.should_shed(depth, warming, Duration::from_micros(delay_us), true),
            "a lane-seeding request was shed by {:?}",
            policy
        );
    }

    // The decision decomposes exactly into its published components, and
    // a disabled policy never sheds. Warming-delay infeasibility only
    // applies while the lane is actually warming.
    #[test]
    fn decision_decomposes_into_components(
        policy in shed_policy(),
        depth in 0..96usize,
        delay_us in 0..300_000u64,
        warming in any::<bool>(),
        seeds in any::<bool>(),
    ) {
        let delay = Duration::from_micros(delay_us);
        let expect = !seeds
            && (policy.sheds_on_depth(depth)
                || (warming && policy.sheds_on_warming_delay(delay)));
        prop_assert_eq!(policy.should_shed(depth, warming, delay, seeds), expect);
        prop_assert!(!ShedPolicy::disabled().should_shed(depth, warming, delay, seeds));
        if !warming {
            prop_assert_eq!(
                policy.should_shed(depth, false, delay, seeds),
                !seeds && policy.sheds_on_depth(depth),
                "warming-delay threshold leaked into a live lane's decision"
            );
        }
    }
}

/// Pending-request deadlines as offsets (in microseconds) around `now`:
/// negative offsets are already expired, positive ones are still in the
/// future. Offsets are deliberately allowed to collide (equal deadlines).
fn deadline_offsets() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-50_000..50_000i64, 0..24)
}

fn materialize(base: Instant, offsets: &[i64]) -> Vec<Instant> {
    offsets
        .iter()
        .map(|&us| {
            if us >= 0 {
                base + Duration::from_micros(us as u64)
            } else {
                base - Duration::from_micros(us.unsigned_abs())
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The flush timer follows the earliest pending deadline under
    // arbitrary arrival orderings. Against the pending set's *sorted*
    // model this pins, for every case the dispatcher can see:
    //
    // * `max_batch` reached → `Flush(MaxBatch)` regardless of deadlines;
    // * empty queue → `Park` while open, `Retire` once closed;
    // * non-empty closed queue → `Flush(Drain)` (shutdown never waits);
    // * otherwise the earliest deadline decides: passed → it flushes
    //   `Flush(Deadline)` *now*; still ahead → `WaitUntil` exactly that
    //   minimum, never a later deadline.
    #[test]
    fn flush_decision_follows_earliest_deadline(
        offsets in deadline_offsets(),
        open in any::<bool>(),
        max_batch in 1..12usize,
    ) {
        let now = Instant::now();
        let deadlines = materialize(now, &offsets);
        let decision = flush_decision(deadlines.iter().copied(), open, max_batch, now);

        let earliest = deadlines.iter().copied().min();
        let expect = if deadlines.len() >= max_batch {
            FlushDecision::Flush(FlushCause::MaxBatch)
        } else {
            match earliest {
                None if open => FlushDecision::Park,
                None => FlushDecision::Retire,
                Some(_) if !open => FlushDecision::Flush(FlushCause::Drain),
                Some(e) if now >= e => FlushDecision::Flush(FlushCause::Deadline),
                Some(e) => FlushDecision::WaitUntil(e),
            }
        };
        prop_assert_eq!(decision, expect, "against the sorted model");

        if let FlushDecision::WaitUntil(target) = decision {
            let e = earliest.expect("WaitUntil implies a pending request");
            prop_assert_eq!(target, e, "timer must target the minimum deadline");
            prop_assert!(target > now, "WaitUntil in the past would stall a due flush");
        }
    }

    // Arrival order is irrelevant: any permutation of the pending set
    // (here: reversal and a deterministic rotation, two permutations that
    // move every element for length > 1) produces the identical decision.
    #[test]
    fn flush_decision_is_order_invariant(
        offsets in deadline_offsets(),
        open in any::<bool>(),
        max_batch in 1..12usize,
        rot in 0..24usize,
    ) {
        let now = Instant::now();
        let deadlines = materialize(now, &offsets);
        let baseline = flush_decision(deadlines.iter().copied(), open, max_batch, now);

        let reversed = flush_decision(deadlines.iter().rev().copied(), open, max_batch, now);
        prop_assert_eq!(reversed, baseline, "reversal changed the decision");

        if !deadlines.is_empty() {
            let k = rot % deadlines.len();
            let rotated = deadlines[k..].iter().chain(&deadlines[..k]).copied();
            prop_assert_eq!(
                flush_decision(rotated, open, max_batch, now),
                baseline,
                "rotation by {} changed the decision",
                k
            );
        }
    }
}
