//! Property-based tests for the serving layer's pure policy arithmetic.
//!
//! Two decision functions gate every request's path through a lane, and
//! both are deliberately pure so they can be pinned here without threads:
//!
//! * [`ShedPolicy`] — the submit-time refusal arithmetic. The properties
//!   that make shedding *safe* are monotonicity (adding queue depth or
//!   shrinking a delay budget never turns a refusal back into an accept —
//!   otherwise shedding would oscillate under load) and the seeding
//!   exemption (the request a lane's warm-up plan is built from is never
//!   shed, or a cold shape could starve itself forever).
//! * [`flush_decision`] — the dispatcher's wait-loop timer. The property
//!   that makes deadline batching *correct* is that the timer follows the
//!   **earliest** pending deadline whatever order requests arrived in:
//!   the decision is a pure function of the deadline *multiset*, `Flush`
//!   fires exactly when that minimum has passed, and `WaitUntil` targets
//!   exactly that minimum (never a later deadline, which would let the
//!   earliest request miss).

use bppsa_serve::{flush_decision, FlushCause, FlushDecision, ShedPolicy};
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// An arbitrary shed policy: each threshold independently absent or set.
fn shed_policy() -> impl Strategy<Value = ShedPolicy> {
    (any::<bool>(), 1..64usize, any::<bool>(), 0..200_000u64).prop_map(
        |(arm_depth, depth, arm_delay, min_us)| ShedPolicy {
            max_queue_depth: arm_depth.then_some(depth),
            min_warming_delay: arm_delay.then(|| Duration::from_micros(min_us)),
            feasibility: None,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // More queued work never un-sheds: once the depth threshold refuses
    // at depth `d`, it refuses at every depth above `d` too.
    #[test]
    fn shed_depth_is_monotone(
        policy in shed_policy(),
        depth in 0..96usize,
        extra in 0..96usize,
    ) {
        if policy.sheds_on_depth(depth) {
            prop_assert!(
                policy.sheds_on_depth(depth + extra),
                "shed at depth {} but accepted at deeper {}",
                depth,
                depth + extra
            );
        }
    }

    // A tighter budget never un-sheds: once the warming-feasibility
    // threshold refuses a delay budget, it refuses every shorter budget.
    #[test]
    fn shed_warming_delay_is_anti_monotone(
        policy in shed_policy(),
        delay_us in 0..300_000u64,
        cut_us in 0..300_000u64,
    ) {
        let delay = Duration::from_micros(delay_us);
        let shorter = Duration::from_micros(delay_us.saturating_sub(cut_us));
        if policy.sheds_on_warming_delay(delay) {
            prop_assert!(
                policy.sheds_on_warming_delay(shorter),
                "shed at {:?} but accepted the shorter budget {:?}",
                delay,
                shorter
            );
        }
    }

    // The full decision inherits both monotonicities: raising the queue
    // depth or cutting the delay budget never flips a shed back to an
    // accept (with the other inputs held fixed).
    #[test]
    fn full_decision_is_monotone_under_load(
        policy in shed_policy(),
        depth in 0..96usize,
        extra in 0..96usize,
        delay_us in 0..300_000u64,
        cut_us in 0..300_000u64,
        warming in any::<bool>(),
    ) {
        let delay = Duration::from_micros(delay_us);
        let worse = Duration::from_micros(delay_us.saturating_sub(cut_us));
        if policy.should_shed(depth, warming, delay, false) {
            prop_assert!(
                policy.should_shed(depth + extra, warming, worse, false),
                "shed at (depth {}, delay {:?}) but accepted the strictly \
                 worse (depth {}, delay {:?})",
                depth,
                delay,
                depth + extra,
                worse
            );
        }
    }

    // The request that seeds a lane's warm-up is never shed, whatever the
    // policy and however hopeless its budget looks — it *is* the template
    // the plan gets built from, so refusing it would starve the shape.
    #[test]
    fn seeding_requests_are_never_shed(
        policy in shed_policy(),
        depth in 0..96usize,
        delay_us in 0..300_000u64,
        warming in any::<bool>(),
    ) {
        prop_assert!(
            !policy.should_shed(depth, warming, Duration::from_micros(delay_us), true),
            "a lane-seeding request was shed by {:?}",
            policy
        );
    }

    // The decision decomposes exactly into its published components, and
    // a disabled policy never sheds. Warming-delay infeasibility only
    // applies while the lane is actually warming.
    #[test]
    fn decision_decomposes_into_components(
        policy in shed_policy(),
        depth in 0..96usize,
        delay_us in 0..300_000u64,
        warming in any::<bool>(),
        seeds in any::<bool>(),
    ) {
        let delay = Duration::from_micros(delay_us);
        let expect = !seeds
            && (policy.sheds_on_depth(depth)
                || (warming && policy.sheds_on_warming_delay(delay)));
        prop_assert_eq!(policy.should_shed(depth, warming, delay, seeds), expect);
        prop_assert!(!ShedPolicy::disabled().should_shed(depth, warming, delay, seeds));
        if !warming {
            prop_assert_eq!(
                policy.should_shed(depth, false, delay, seeds),
                !seeds && policy.sheds_on_depth(depth),
                "warming-delay threshold leaked into a live lane's decision"
            );
        }
    }
}

/// Pending-request deadlines as offsets (in microseconds) around `now`:
/// negative offsets are already expired, positive ones are still in the
/// future. Offsets are deliberately allowed to collide (equal deadlines).
fn deadline_offsets() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-50_000..50_000i64, 0..24)
}

fn materialize(base: Instant, offsets: &[i64]) -> Vec<Instant> {
    offsets
        .iter()
        .map(|&us| {
            if us >= 0 {
                base + Duration::from_micros(us as u64)
            } else {
                base - Duration::from_micros(us.unsigned_abs())
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The flush timer follows the earliest pending deadline under
    // arbitrary arrival orderings. Against the pending set's *sorted*
    // model this pins, for every case the dispatcher can see:
    //
    // * `max_batch` reached → `Flush(MaxBatch)` regardless of deadlines;
    // * empty queue → `Park` while open, `Retire` once closed;
    // * non-empty closed queue → `Flush(Drain)` (shutdown never waits);
    // * otherwise the earliest deadline decides: passed → it flushes
    //   `Flush(Deadline)` *now*; still ahead → `WaitUntil` exactly that
    //   minimum, never a later deadline.
    #[test]
    fn flush_decision_follows_earliest_deadline(
        offsets in deadline_offsets(),
        open in any::<bool>(),
        max_batch in 1..12usize,
    ) {
        let now = Instant::now();
        let deadlines = materialize(now, &offsets);
        let decision = flush_decision(deadlines.iter().copied(), open, max_batch, now);

        let earliest = deadlines.iter().copied().min();
        let expect = if deadlines.len() >= max_batch {
            FlushDecision::Flush(FlushCause::MaxBatch)
        } else {
            match earliest {
                None if open => FlushDecision::Park,
                None => FlushDecision::Retire,
                Some(_) if !open => FlushDecision::Flush(FlushCause::Drain),
                Some(e) if now >= e => FlushDecision::Flush(FlushCause::Deadline),
                Some(e) => FlushDecision::WaitUntil(e),
            }
        };
        prop_assert_eq!(decision, expect, "against the sorted model");

        if let FlushDecision::WaitUntil(target) = decision {
            let e = earliest.expect("WaitUntil implies a pending request");
            prop_assert_eq!(target, e, "timer must target the minimum deadline");
            prop_assert!(target > now, "WaitUntil in the past would stall a due flush");
        }
    }

    // Arrival order is irrelevant: any permutation of the pending set
    // (here: reversal and a deterministic rotation, two permutations that
    // move every element for length > 1) produces the identical decision.
    #[test]
    fn flush_decision_is_order_invariant(
        offsets in deadline_offsets(),
        open in any::<bool>(),
        max_batch in 1..12usize,
        rot in 0..24usize,
    ) {
        let now = Instant::now();
        let deadlines = materialize(now, &offsets);
        let baseline = flush_decision(deadlines.iter().copied(), open, max_batch, now);

        let reversed = flush_decision(deadlines.iter().rev().copied(), open, max_batch, now);
        prop_assert_eq!(reversed, baseline, "reversal changed the decision");

        if !deadlines.is_empty() {
            let k = rot % deadlines.len();
            let rotated = deadlines[k..].iter().chain(&deadlines[..k]).copied();
            prop_assert_eq!(
                flush_decision(rotated, open, max_batch, now),
                baseline,
                "rotation by {} changed the decision",
                k
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Overload-policy arithmetic: the EWMA flush estimator, the feasibility
// predicate it feeds, and the brownout hysteresis machine. All pure, so the
// properties that make overload shedding safe pin down here without threads:
// the estimator always lands between its inputs (no overshoot that could
// shed a healthy lane), the predicate is monotone in queue depth and
// anti-monotone in the delay budget (no oscillation under load), a cold
// estimator never sheds anything, and the brownout level moves at most one
// step per poll inside its fixed range (no cliff-edge degradation).
// ---------------------------------------------------------------------------

use bppsa_serve::{
    ewma_update, predicted_wait, BrownoutLevel, BrownoutPolicy, BrownoutSignal, BrownoutState,
    FeasibilityPolicy,
};

fn feasibility() -> impl Strategy<Value = FeasibilityPolicy> {
    (0..32u64).prop_map(|min_flushes| FeasibilityPolicy { min_flushes })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The estimator is a convex combination: the update always lands in
    // the closed interval between the previous estimate and the sample.
    // (With the cold-start adoption rule, prev == 0 jumps straight to the
    // sample — also inside the interval.)
    #[test]
    fn ewma_stays_between_previous_and_sample(
        prev in 0..u64::MAX / 2,
        sample in 0..u64::MAX / 2,
    ) {
        let next = ewma_update(prev, sample);
        let (lo, hi) = (prev.min(sample), prev.max(sample));
        if prev == 0 {
            prop_assert_eq!(next, sample, "cold estimator adopts the first sample");
        } else {
            prop_assert!(next >= lo && next <= hi, "{} outside [{}, {}]", next, lo, hi);
        }
    }

    // Folding the same sample twice in either interleaving with another
    // produces the same *decision inputs* the predicate sees: the
    // predicate itself is a pure function of (queued, max_batch,
    // estimate, deadline) — same inputs, same answer, every time.
    #[test]
    fn feasibility_predicate_is_pure(
        policy in feasibility(),
        queued in 0..256usize,
        max_batch in 1..32usize,
        ewma_us in 0..1_000_000u64,
        deadline_us in 0..1_000_000u64,
    ) {
        let estimate = Some(Duration::from_micros(ewma_us));
        let deadline = Duration::from_micros(deadline_us);
        let first = policy.sheds(queued, max_batch, estimate, deadline);
        for _ in 0..4 {
            prop_assert_eq!(first, policy.sheds(queued, max_batch, estimate, deadline));
        }
        // And the decision matches the arithmetic it claims to apply:
        // refuse exactly when the predicted wait strictly exceeds the
        // budget (a wait equal to the budget is still feasible).
        let wait = predicted_wait(queued, max_batch, Duration::from_micros(ewma_us));
        prop_assert_eq!(first, wait > deadline);
    }

    // Deeper queues never un-shed, and a *longer* delay budget never
    // turns an accept into a refusal — the monotonicities that stop
    // feasibility shedding from oscillating under steady load.
    #[test]
    fn feasibility_is_monotone_in_depth_and_anti_monotone_in_budget(
        policy in feasibility(),
        queued in 0..128usize,
        extra in 0..128usize,
        max_batch in 1..32usize,
        ewma_us in 1..500_000u64,
        deadline_us in 0..1_000_000u64,
        slack_us in 0..1_000_000u64,
    ) {
        let estimate = Some(Duration::from_micros(ewma_us));
        let deadline = Duration::from_micros(deadline_us);
        if policy.sheds(queued, max_batch, estimate, deadline) {
            prop_assert!(
                policy.sheds(queued + extra, max_batch, estimate, deadline),
                "shed at depth {} but accepted at deeper {}", queued, queued + extra
            );
        } else {
            prop_assert!(
                !policy.sheds(
                    queued,
                    max_batch,
                    estimate,
                    deadline + Duration::from_micros(slack_us)
                ),
                "accepted with budget {:?} but shed with more slack", deadline
            );
        }
    }

    // The cold-start gate: with no estimate (fewer than `min_flushes`
    // samples recorded), nothing is ever shed, whatever the queue looks
    // like — an untrained estimator must not refuse traffic.
    #[test]
    fn cold_estimator_never_sheds(
        policy in feasibility(),
        queued in 0..4096usize,
        max_batch in 1..64usize,
        deadline_us in 0..1_000_000u64,
    ) {
        prop_assert!(!policy.sheds(
            queued,
            max_batch,
            None,
            Duration::from_micros(deadline_us)
        ));
    }

    // Predicted wait is `ceil(queued / max_batch)` flushes' worth of the
    // estimate: monotone in depth, anti-monotone in batch width, and an
    // empty queue predicts zero wait.
    #[test]
    fn predicted_wait_counts_whole_flushes(
        queued in 0..1024usize,
        max_batch in 1..64usize,
        ewma_us in 0..100_000u64,
    ) {
        let ewma = Duration::from_micros(ewma_us);
        let wait = predicted_wait(queued, max_batch, ewma);
        prop_assert_eq!(wait, ewma * (queued.div_ceil(max_batch) as u32));
        prop_assert!(predicted_wait(queued + 1, max_batch, ewma) >= wait);
        prop_assert!(predicted_wait(queued, max_batch + 1, ewma) <= wait);
        prop_assert_eq!(predicted_wait(0, max_batch, ewma), Duration::ZERO);
    }

    // Whatever signal sequence the supervisor feeds it, the brownout
    // level stays inside [Normal, DeclineColdShapes] and moves at most
    // one step per poll — degradation and recovery are both gradual.
    #[test]
    fn brownout_level_moves_one_step_at_a_time(
        signals in proptest::collection::vec(0..3u8, 0..64),
        hot_polls in 1..5u32,
        calm_polls in 1..5u32,
    ) {
        let policy = BrownoutPolicy {
            hot_polls,
            calm_polls,
            ..BrownoutPolicy::default()
        };
        policy.validate();
        let mut state = BrownoutState::default();
        let mut prev = state.level();
        prop_assert_eq!(prev, BrownoutLevel::Normal);
        for s in signals {
            let signal = match s {
                0 => BrownoutSignal::Hot,
                1 => BrownoutSignal::Calm,
                _ => BrownoutSignal::Neutral,
            };
            let level = state.observe(signal, &policy);
            let (lo, hi) = (prev.min(level), prev.max(level));
            prop_assert!(
                (lo as u8) + 1 >= hi as u8,
                "level jumped {:?} -> {:?}", prev, level
            );
            prop_assert!(level >= BrownoutLevel::Normal);
            prop_assert!(level <= BrownoutLevel::DeclineColdShapes);
            prev = level;
        }
    }
}
