//! Seeded chaos suite for the serving stack's supervision layer.
//!
//! Every test drives faults through the scriptable/seeded [`FaultInjector`]
//! and asserts the tentpole invariants of lane supervision:
//!
//! 1. **No hung tickets.** Under any fault schedule, every accepted request
//!    reaches a *terminal* state — each `wait_timeout` probe returns
//!    `Some(outcome)` well within its window, never `None` forever.
//! 2. **Exact results.** Requests that complete successfully are
//!    **bit-for-bit** identical to serial single-workspace execution — a
//!    fault on one lane never corrupts another lane's arithmetic.
//! 3. **Conservation.** `completed + failed + refused == attempts`: every
//!    submission is accounted for exactly once, across shedding, breaker
//!    quarantine, deadline expiry, plan panics, and dispatcher death.
//! 4. **Deterministic recovery.** The circuit breaker trips after exactly
//!    the configured consecutive-panic streak, refuses the shape during
//!    cool-down, and re-admits it through a single half-open probe whose
//!    success returns the shape to live service.

use bppsa_core::{BppsaOptions, JacobianChain, PlannedScan, ScanElement};
use bppsa_serve::{
    BppsaService, BreakerPolicy, DeadlinePolicy, FaultInjector, FaultRates, FaultScript, LaneState,
    RetryPolicy, ServeConfig, ServeError, ShedPolicy, SubmitError, SubmitRefusal, Ticket,
};
use bppsa_sparse::Csr;
use bppsa_tensor::init::{seeded_rng, uniform_vector};
use bppsa_tensor::Matrix;
use rand::Rng;
use std::time::{Duration, Instant};

/// Generous bound for "this ticket must terminate": far above any injected
/// stall or cool-down in this file, far below the test harness timeout.
const TERMINAL: Duration = Duration::from_secs(20);

fn sparse_chain(n: usize, width: usize, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
    for _ in 0..n {
        let dense = Matrix::from_fn(width, width, |_, _| {
            if rng.random_range(0.0..1.0) < 0.35 {
                rng.random_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        chain.push(ScanElement::Sparse(Csr::from_dense(&dense)));
    }
    chain
}

/// Same patterns as `template`, fresh values.
fn revalue(template: &JacobianChain<f64>, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, template.seed().len(), 1.0));
    for jt in template.jacobians() {
        let ScanElement::Sparse(m) = jt else {
            unreachable!()
        };
        chain.push(ScanElement::Sparse(
            m.map_values(|_| rng.random_range(-1.0..1.0)),
        ));
    }
    chain
}

/// Serial single-workspace reference gradients for `chain`.
fn reference(chain: &JacobianChain<f64>) -> Vec<Vec<f64>> {
    let plan = PlannedScan::plan(chain, BppsaOptions::serial());
    let mut ws = plan.workspace::<f64>();
    plan.execute_with(chain, &mut ws)
        .grads()
        .iter()
        .map(|g| g.as_slice().to_vec())
        .collect()
}

/// `wait_timeout` under the terminal bound — a `None` here is a hung
/// ticket, the exact bug class this suite exists to catch.
fn must_terminate(ticket: &Ticket<f64>, what: &str) -> Result<(), ServeError> {
    ticket
        .wait_timeout(TERMINAL)
        .unwrap_or_else(|| panic!("{what}: ticket still pending after {TERMINAL:?} (hung)"))
}

fn breaker_config(max_batch: usize, cooldown: Duration) -> ServeConfig {
    ServeConfig {
        max_batch,
        max_delay: Duration::from_micros(300),
        queue_cap: 32,
        max_lanes: 4,
        workspaces_per_lane: 1,
        shed: ShedPolicy::disabled(),
        breaker: BreakerPolicy {
            max_consecutive_panics: Some(2),
            cooldown,
        },
        // Chaos tests assert refusals, not absorb them.
        retry: RetryPolicy::none(),
        ..ServeConfig::default()
    }
}

#[test]
fn breaker_trips_after_streak_refuses_in_cooldown_and_probe_recovers() {
    let cooldown = Duration::from_millis(250);
    // max_batch 1: every request is its own flush, so the panic streak is
    // exactly the request count.
    let mut config = breaker_config(1, cooldown);
    config.faults = FaultInjector::scripted(FaultScript::new().batch_panic_times(0, 2));
    let service = BppsaService::<f64>::new(config);
    let template = sparse_chain(5, 6, 11);

    // Two injected batch panics in a row: streak reaches the threshold.
    for k in 0..2u64 {
        let ticket = Ticket::new();
        service
            .submit(revalue(&template, 20 + k), &ticket)
            .expect("lane accepts while breaker counts");
        assert_eq!(
            must_terminate(&ticket, "panicking batch"),
            Err(ServeError::BatchPanicked),
            "request {k} fails with per-batch attribution"
        );
        let _ = ticket.take_chain();
    }
    // The trip happens on the dispatcher thread after the second failure
    // is delivered; wait for it to become observable.
    let deadline = Instant::now() + TERMINAL;
    while !service
        .metrics()
        .iter()
        .any(|l| l.state == LaneState::Quarantined)
    {
        assert!(Instant::now() < deadline, "breaker never tripped");
        std::thread::yield_now();
    }
    let tripped = Instant::now();

    // During cool-down the shape is refused at the door, chain handed back.
    let ticket = Ticket::new();
    match service.submit(revalue(&template, 30), &ticket) {
        Err(SubmitError::Quarantined(chain)) => {
            assert_eq!(chain.num_layers(), 5, "chain handed back intact");
            assert_eq!(
                SubmitError::Quarantined(chain).kind(),
                SubmitRefusal::Quarantined
            );
        }
        other => panic!("expected Quarantined during cool-down, got {other:?}"),
    }
    assert!(service.quarantine_refusals() >= 1);
    assert_eq!(service.quarantined_shapes(), 1);

    // After the cool-down, exactly one request is admitted as the
    // half-open probe; the fault rules are spent, so it proves the shape
    // healthy and the quarantine lifts.
    std::thread::sleep(cooldown.saturating_sub(tripped.elapsed()) + Duration::from_millis(10));
    let probe_chain = revalue(&template, 31);
    let expect = reference(&probe_chain);
    let probe = Ticket::new();
    service
        .submit(probe_chain, &probe)
        .expect("cool-down elapsed: the probe is admitted");
    assert_eq!(must_terminate(&probe, "probe"), Ok(()));
    probe.with_result(|r| {
        for (g, e) in r.grads().iter().zip(&expect) {
            assert_eq!(g.as_slice(), e.as_slice(), "probe result bit-for-bit");
        }
    });
    assert_eq!(
        service.quarantined_shapes(),
        0,
        "probe success lifts quarantine"
    );

    // Fully recovered: ordinary traffic serves again.
    let after = Ticket::new();
    service
        .submit(revalue(&template, 32), &after)
        .expect("shape is live again");
    assert_eq!(must_terminate(&after, "post-recovery"), Ok(()));

    let snaps = service.metrics();
    let dead = snaps
        .iter()
        .find(|l| l.state == LaneState::Quarantined)
        .expect("tripped lane metrics retained");
    assert_eq!(dead.batch_panics, 2, "streak of exactly the threshold");
    assert!(dead.breaker_tripped);
}

#[test]
fn plan_panic_with_breaker_quarantines_shape_immediately() {
    let cooldown = Duration::from_millis(250);
    let mut config = breaker_config(4, cooldown);
    config.faults = FaultInjector::scripted(FaultScript::new().plan_panic(0));
    let service = BppsaService::<f64>::new(config);
    let template = sparse_chain(4, 5, 12);

    // The seeding request's warm-up dies: PlanPanicked, and (threshold 1
    // for plan panics — nothing can execute without a plan) the shape is
    // quarantined at once.
    let seedling = Ticket::new();
    service
        .submit(revalue(&template, 40), &seedling)
        .expect("placeholder lane accepts its seed");
    assert_eq!(
        must_terminate(&seedling, "seed of plan-panicked lane"),
        Err(ServeError::PlanPanicked)
    );
    let _ = seedling.take_chain();

    let refusal = Ticket::new();
    match service.submit(revalue(&template, 41), &refusal) {
        Err(SubmitError::Quarantined(_)) => {}
        other => panic!("expected Quarantined after plan panic, got {other:?}"),
    }

    // Probe after cool-down: the plan rule is spent, warm-up succeeds, the
    // shape recovers.
    std::thread::sleep(cooldown + Duration::from_millis(10));
    let probe = Ticket::new();
    service
        .submit(revalue(&template, 42), &probe)
        .expect("probe admitted after cool-down");
    assert_eq!(must_terminate(&probe, "probe"), Ok(()));
    assert_eq!(service.quarantined_shapes(), 0);
}

#[test]
fn dispatcher_killed_at_start_leaves_no_hung_ticket() {
    let mut config = breaker_config(4, Duration::from_millis(50));
    config.breaker = BreakerPolicy::disabled();
    config.faults = FaultInjector::scripted(FaultScript::new().kill_dispatcher_at_start(0));
    let service = BppsaService::<f64>::new(config);
    let template = sparse_chain(4, 6, 13);

    // Race of the kill vs. the seeding push, both outcomes legal: the push
    // lands first and dies with the lane (LaneDied), or the supervisor
    // closes the queue first and the push re-routes to a fresh lane (rule
    // spent) and completes. Either way: terminal, never hung.
    let chain = revalue(&template, 50);
    let expect = reference(&chain);
    let ticket = Ticket::new();
    service
        .submit(chain, &ticket)
        .expect("accepted or re-routed");
    match must_terminate(&ticket, "seed of killed dispatcher") {
        Ok(()) => ticket.with_result(|r| {
            for (g, e) in r.grads().iter().zip(&expect) {
                assert_eq!(g.as_slice(), e.as_slice());
            }
        }),
        Err(e) => {
            assert_eq!(e, ServeError::LaneDied, "supervision attributes the death");
            let _ = ticket.take_chain();
        }
    }

    // The shape recovers on the next submit regardless (no breaker armed:
    // dispatcher death retires, it does not quarantine).
    let after = Ticket::new();
    service
        .submit(revalue(&template, 51), &after)
        .expect("shape re-creates after the death");
    assert_eq!(must_terminate(&after, "post-death"), Ok(()));
}

#[test]
fn dispatcher_killed_mid_flush_fails_assembled_batch_with_lane_died() {
    let mut config = breaker_config(8, Duration::from_millis(50));
    config.breaker = BreakerPolicy::disabled();
    config.max_delay = Duration::from_millis(30);
    config.faults = FaultInjector::scripted(FaultScript::new().kill_dispatcher_at_flush(0, 0));
    let service = BppsaService::<f64>::new(config);
    let template = sparse_chain(5, 6, 14);

    let tickets: Vec<Ticket<f64>> = (0..3).map(|_| Ticket::new()).collect();
    for (k, ticket) in tickets.iter().enumerate() {
        service
            .submit(revalue(&template, 60 + k as u64), ticket)
            .expect("accepting");
    }
    // The seeding request is first in the queue, so it is in flush 0's
    // assembled batch when the dispatcher dies — guaranteed LaneDied. The
    // others are either in that batch / the failed queue (LaneDied) or
    // raced the close and re-routed to a fresh lane (Ok).
    let outcomes: Vec<Result<(), ServeError>> = tickets
        .iter()
        .enumerate()
        .map(|(k, t)| must_terminate(t, &format!("request {k} under mid-flush kill")))
        .collect();
    assert_eq!(
        outcomes[0],
        Err(ServeError::LaneDied),
        "the assembled batch fails with LaneDied, not a hang"
    );
    for (k, outcome) in outcomes.iter().enumerate() {
        assert!(
            matches!(outcome, Ok(()) | Err(ServeError::LaneDied)),
            "request {k}: unexpected outcome {outcome:?}"
        );
    }
    assert!(
        service.metrics().iter().any(|l| l.died),
        "supervision records the death"
    );

    // Chains of failed requests come back; resubmission completes exactly.
    for (k, (ticket, outcome)) in tickets.iter().zip(&outcomes).enumerate() {
        if outcome.is_err() {
            let chain = ticket.take_chain();
            let expect = reference(&chain);
            service.submit(chain, ticket).expect("lane re-created");
            assert_eq!(must_terminate(ticket, "resubmission"), Ok(()));
            ticket.with_result(|r| {
                for (g, e) in r.grads().iter().zip(&expect) {
                    assert_eq!(g.as_slice(), e.as_slice(), "resubmit {k} bit-for-bit");
                }
            });
        }
    }
}

#[test]
fn hard_deadline_fails_stalled_requests_instead_of_executing_them() {
    let mut config = breaker_config(8, Duration::from_millis(50));
    config.breaker = BreakerPolicy::disabled();
    config.max_delay = Duration::from_millis(5);
    config.deadline = DeadlinePolicy::Hard {
        grace: Duration::from_millis(2),
    };
    // Flush 0 stalls far past every queued deadline + grace.
    config.faults =
        FaultInjector::scripted(FaultScript::new().flush_stall(0, 0, Duration::from_millis(60)));
    let service = BppsaService::<f64>::new(config);
    let template = sparse_chain(4, 6, 15);

    let stale = Ticket::new();
    service
        .submit(revalue(&template, 70), &stale)
        .expect("accepting");
    assert_eq!(
        must_terminate(&stale, "stalled request"),
        Err(ServeError::DeadlineExceeded),
        "hard deadline fails the aged request at assembly"
    );
    let _ = stale.take_chain();
    assert!(
        service.metrics().iter().any(|l| l.deadline_expired >= 1),
        "expiry is counted"
    );

    // The lane survives (an expired batch is not a lane failure): the next
    // request executes normally, and exactly.
    let fresh_chain = revalue(&template, 71);
    let expect = reference(&fresh_chain);
    let fresh = Ticket::new();
    service.submit(fresh_chain, &fresh).expect("lane live");
    assert_eq!(must_terminate(&fresh, "post-expiry request"), Ok(()));
    fresh.with_result(|r| {
        for (g, e) in r.grads().iter().zip(&expect) {
            assert_eq!(g.as_slice(), e.as_slice());
        }
    });
}

#[test]
fn seeded_storm_every_ticket_terminal_results_exact_and_conserved() {
    // Probabilistic chaos, deterministic by seed: plan panics, batch
    // panics, and flush stalls rain on 4 shapes × 24 rounds while the
    // breaker trips and recovers underneath. The invariants:
    // every submission is accounted for exactly once, every accepted
    // request terminates, and every success is bit-for-bit exact.
    const SHAPES: usize = 4;
    const ROUNDS: usize = 24;
    let config = ServeConfig {
        max_batch: 3,
        max_delay: Duration::from_micros(200),
        queue_cap: 16,
        max_lanes: SHAPES,
        workspaces_per_lane: 1,
        shed: ShedPolicy::disabled(),
        breaker: BreakerPolicy {
            max_consecutive_panics: Some(2),
            cooldown: Duration::from_millis(20),
        },
        retry: RetryPolicy::none(),
        faults: FaultInjector::seeded(
            0xC4A0_5BAD,
            FaultRates {
                plan_panic: 0.25,
                batch_panic: 0.30,
                flush_stall: 0.20,
                stall: Duration::from_millis(2),
            },
        ),
        ..ServeConfig::default()
    };
    let service = BppsaService::<f64>::new(config);
    let templates: Vec<JacobianChain<f64>> = (0..SHAPES)
        .map(|s| sparse_chain(3 + 2 * s, 5 + s, 80 + s as u64))
        .collect();

    let mut attempts = 0u64;
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut refused = 0u64;
    for round in 0..ROUNDS {
        for (s, template) in templates.iter().enumerate() {
            let chain = revalue(template, 1000 + (round * SHAPES + s) as u64);
            let expect = reference(&chain);
            let ticket = Ticket::new();
            attempts += 1;
            match service.submit(chain, &ticket) {
                Ok(()) => {
                    match must_terminate(&ticket, &format!("storm round {round} shape {s}")) {
                        Ok(()) => {
                            completed += 1;
                            ticket.with_result(|r| {
                                for (g, e) in r.grads().iter().zip(&expect) {
                                    assert_eq!(
                                        g.as_slice(),
                                        e.as_slice(),
                                        "storm round {round} shape {s}: exact despite chaos"
                                    );
                                }
                            });
                        }
                        Err(e) => {
                            failed += 1;
                            assert!(
                                matches!(
                                    e,
                                    ServeError::BatchPanicked
                                        | ServeError::PlanPanicked
                                        | ServeError::LaneQuarantined
                                ),
                                "storm round {round} shape {s}: unexpected failure {e:?}"
                            );
                            let _ = ticket.take_chain();
                        }
                    }
                }
                Err(e) => {
                    refused += 1;
                    assert_eq!(
                        e.kind(),
                        SubmitRefusal::Quarantined,
                        "the only refusal this storm can produce"
                    );
                }
            }
        }
    }
    assert_eq!(
        completed + failed + refused,
        attempts,
        "every submission accounted for exactly once"
    );
    assert!(completed > 0, "storm must let some traffic through");
    assert!(
        failed + refused > 0,
        "storm must actually inject faults (rates are well above zero)"
    );
    assert!(service.config().faults.fired() > 0);

    // Metrics-side conservation: across all lanes ever created (none
    // compacted here — cap is default 256), flushed requests equal
    // successful completions, and failed drains/panics cover the rest.
    let snaps = service.metrics();
    let flushed: u64 = snaps.iter().map(|l| l.requests_flushed()).sum();
    assert!(
        flushed >= completed,
        "every completed request went through a flush"
    );
    service.shutdown();
}

#[test]
fn retrying_submit_rides_out_a_quarantine_window() {
    // A retry policy whose budget comfortably covers the breaker cool-down
    // turns the Quarantined refusal into a wait-and-probe: the caller sees
    // only Ok.
    let cooldown = Duration::from_millis(40);
    let mut config = breaker_config(1, cooldown);
    config.retry = RetryPolicy {
        budget: Duration::from_secs(5),
        initial_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(10),
        jitter: 0.25,
        jitter_seed: 7,
    };
    config.faults = FaultInjector::scripted(FaultScript::new().batch_panic_times(0, 2));
    let service = BppsaService::<f64>::new(config);
    let template = sparse_chain(4, 5, 16);

    for k in 0..2u64 {
        let ticket = Ticket::new();
        service
            .submit(revalue(&template, 90 + k), &ticket)
            .expect("accepting");
        assert!(must_terminate(&ticket, "tripping batch").is_err());
        let _ = ticket.take_chain();
    }
    // Trip pending on the dispatcher thread; submit_retrying absorbs both
    // the in-flight race and the whole cool-down window.
    let chain = revalue(&template, 92);
    let expect = reference(&chain);
    let ticket = Ticket::new();
    service
        .submit_retrying(chain, &ticket)
        .expect("retry policy rides out the quarantine");
    assert_eq!(must_terminate(&ticket, "retried submit"), Ok(()));
    ticket.with_result(|r| {
        for (g, e) in r.grads().iter().zip(&expect) {
            assert_eq!(g.as_slice(), e.as_slice());
        }
    });
}
