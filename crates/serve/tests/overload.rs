//! Overload-robustness integration suite: the feasibility gate, the global
//! memory budget, the stall watchdog, and brownout degradation — each
//! exercised end-to-end through a real [`BppsaService`] with scripted or
//! seeded fault injection. The tentpole invariants:
//!
//! 1. **Doomed requests are refused, not queued.** Once the EWMA flush
//!    estimator is trained, a request whose delay budget the queue cannot
//!    meet fails fast with [`SubmitError::Infeasible`], chain handed back.
//! 2. **A wedged flush never hangs a ticket.** With the watchdog armed, a
//!    scripted flush stall resolves every assembled ticket with
//!    [`ServeError::FlushStalled`] within the stall budget (plus polling
//!    slack) — long before the stuck execution itself returns — and the
//!    lane quarantines and recovers through the standard half-open probe.
//! 3. **A shape storm never allocates past the budget.** Peak reserved
//!    bytes stay within the configured [`MemoryBudget`] while every request
//!    still completes bit-for-bit exactly.
//! 4. **Degradation is stepped and reversible.** Sustained shedding walks
//!    the brownout level down to declining cold shapes; recovery walks it
//!    back to [`BrownoutLevel::Normal`].
//! 5. **Conservation.** `completed + failed + refused == attempts` under a
//!    storm that mixes shedding, backpressure, and infeasibility refusals.

use bppsa_core::{BppsaOptions, JacobianChain, PlannedScan, ScanElement};
use bppsa_serve::{
    lane_plan_options, BppsaService, BreakerPolicy, BrownoutLevel, BrownoutPolicy, FaultInjector,
    FaultRates, FaultScript, FeasibilityPolicy, LaneState, MemoryBudget, RetryPolicy, ServeConfig,
    ServeError, ShedPolicy, SubmitError, SubmitRefusal, Ticket, WatchdogPolicy,
};
use bppsa_sparse::Csr;
use bppsa_tensor::init::{seeded_rng, uniform_vector};
use bppsa_tensor::Matrix;
use rand::Rng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Generous bound for "this ticket must terminate": far above any injected
/// stall or cool-down in this file, far below the test harness timeout.
const TERMINAL: Duration = Duration::from_secs(20);

fn sparse_chain(n: usize, width: usize, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
    for _ in 0..n {
        let dense = Matrix::from_fn(width, width, |_, _| {
            if rng.random_range(0.0..1.0) < 0.35 {
                rng.random_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        chain.push(ScanElement::Sparse(Csr::from_dense(&dense)));
    }
    chain
}

/// Same patterns as `template`, fresh values.
fn revalue(template: &JacobianChain<f64>, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, template.seed().len(), 1.0));
    for jt in template.jacobians() {
        let ScanElement::Sparse(m) = jt else {
            unreachable!()
        };
        chain.push(ScanElement::Sparse(
            m.map_values(|_| rng.random_range(-1.0..1.0)),
        ));
    }
    chain
}

/// Serial single-workspace reference gradients for `chain`.
fn reference(chain: &JacobianChain<f64>) -> Vec<Vec<f64>> {
    let plan = PlannedScan::plan(chain, BppsaOptions::serial());
    let mut ws = plan.workspace::<f64>();
    plan.execute_with(chain, &mut ws)
        .grads()
        .iter()
        .map(|g| g.as_slice().to_vec())
        .collect()
}

/// `wait_timeout` under the terminal bound — a `None` here is a hung
/// ticket, the exact bug class this suite exists to catch.
fn must_terminate(ticket: &Ticket<f64>, what: &str) -> Result<(), ServeError> {
    ticket
        .wait_timeout(TERMINAL)
        .unwrap_or_else(|| panic!("{what}: ticket still pending after {TERMINAL:?} (hung)"))
}

fn assert_exact(ticket: &Ticket<f64>, expect: &[Vec<f64>], what: &str) {
    ticket.with_result(|r| {
        for (g, e) in r.grads().iter().zip(expect) {
            assert_eq!(g.as_slice(), e.as_slice(), "{what}: bit-for-bit");
        }
    });
}

#[test]
fn watchdog_condemns_wedged_flush_within_budget_and_probe_recovers() {
    // Flush 0 is scripted to sleep far longer than the watchdog's stall
    // budget. Without the watchdog, every ticket in that flush would sit
    // pending for the whole sleep; with it, they must resolve (typed, not
    // hung) within stall budget + polling slack.
    const STALL: Duration = Duration::from_millis(600);
    let cooldown = Duration::from_millis(300);
    let config = ServeConfig {
        max_batch: 1,
        max_delay: Duration::from_micros(200),
        queue_cap: 32,
        max_lanes: 4,
        workspaces_per_lane: 1,
        shed: ShedPolicy::disabled(),
        breaker: BreakerPolicy {
            max_consecutive_panics: Some(2),
            cooldown,
        },
        retry: RetryPolicy::none(),
        watchdog: Some(WatchdogPolicy {
            stall_budget: Duration::from_millis(40),
            poll_interval: Duration::from_millis(5),
        }),
        faults: FaultInjector::scripted(FaultScript::new().flush_stall(0, 0, STALL)),
        ..ServeConfig::default()
    };
    let service = BppsaService::<f64>::new(config);
    let template = sparse_chain(5, 6, 201);

    // max_batch 1: the first request alone is flush 0 (the stalled one);
    // the other two stay queued behind the wedged execution.
    let tickets: Vec<Ticket<f64>> = (0..3).map(|_| Ticket::new()).collect();
    let start = Instant::now();
    for (k, ticket) in tickets.iter().enumerate() {
        service
            .submit(revalue(&template, 210 + k as u64), ticket)
            .expect("accepting");
    }
    assert_eq!(
        must_terminate(&tickets[0], "stalled flush"),
        Err(ServeError::FlushStalled),
        "the assembled request fails typed, not hung"
    );
    let detected = start.elapsed();
    assert!(
        detected < STALL.mul_f64(0.7),
        "watchdog resolved the ticket in {detected:?} — must be well before \
         the {STALL:?} stall itself returns"
    );
    // The stalled ticket's chain is captive inside the stuck execution (no
    // take_chain here — see ServeError::FlushStalled); the *queued* ones
    // fail with their chains handed back.
    for (k, ticket) in tickets.iter().enumerate().skip(1) {
        assert_eq!(
            must_terminate(ticket, "queued behind the stall"),
            Err(ServeError::LaneQuarantined),
            "queued request {k}"
        );
        assert_eq!(ticket.take_chain().num_layers(), 5, "chain handed back");
    }

    // Condemnation quarantines the lane exactly like a breaker trip.
    let deadline = Instant::now() + TERMINAL;
    while !service
        .metrics()
        .iter()
        .any(|l| l.stalled && l.state == LaneState::Quarantined)
    {
        assert!(Instant::now() < deadline, "stall never marked quarantined");
        std::thread::yield_now();
    }
    let refused = Ticket::new();
    match service.submit(revalue(&template, 220), &refused) {
        Err(SubmitError::Quarantined(_)) => {}
        other => panic!("expected Quarantined during cool-down, got {other:?}"),
    }

    // After the cool-down the half-open probe is admitted; the stall rule
    // is spent, so it proves the shape healthy — bit-for-bit.
    std::thread::sleep(cooldown + Duration::from_millis(20));
    let probe_chain = revalue(&template, 221);
    let expect = reference(&probe_chain);
    let probe = Ticket::new();
    service
        .submit(probe_chain, &probe)
        .expect("cool-down elapsed: the probe is admitted");
    assert_eq!(must_terminate(&probe, "probe"), Ok(()));
    assert_exact(&probe, &expect, "probe");
    assert_eq!(service.quarantined_shapes(), 0, "probe lifts quarantine");

    // Rollup-side accounting: the stall is a counted, attributable event.
    assert_eq!(
        service.metrics().iter().filter(|l| l.stalled).count(),
        1,
        "exactly one lane records the stall"
    );
    service.shutdown();
}

#[test]
fn feasibility_gate_trains_on_flush_latency_and_refuses_doomed_requests() {
    // One scripted 8 ms stall on flush 0 trains the EWMA estimator far
    // above microsecond-scale delay budgets, deterministically.
    const TRAIN_STALL: Duration = Duration::from_millis(8);
    let config = ServeConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(40),
        queue_cap: 32,
        max_lanes: 2,
        workspaces_per_lane: 1,
        shed: ShedPolicy {
            feasibility: Some(FeasibilityPolicy { min_flushes: 1 }),
            ..ShedPolicy::disabled()
        },
        // Retry armed on purpose: Infeasible is *not* transient, so the
        // retrying submit below must return it immediately instead of
        // burning the 5 s budget re-asking the same queue.
        retry: RetryPolicy::default(),
        faults: FaultInjector::scripted(FaultScript::new().flush_stall(0, 0, TRAIN_STALL)),
        ..ServeConfig::default()
    };
    let service = BppsaService::<f64>::new(config);
    let template = sparse_chain(4, 6, 301);

    // Cold start: no timed flush yet, so even a zero-budget request behind
    // a non-empty queue is accepted — an untrained estimator never sheds.
    let training: Vec<Ticket<f64>> = (0..8).map(|_| Ticket::new()).collect();
    for (k, ticket) in training.iter().take(7).enumerate() {
        service
            .submit(revalue(&template, 310 + k as u64), ticket)
            .expect("accepting");
    }
    service
        .submit_with_delay(revalue(&template, 317), Duration::ZERO, &training[7])
        .expect("cold estimator must not shed, whatever the budget");
    for (k, ticket) in training.iter().enumerate() {
        assert_eq!(
            must_terminate(ticket, &format!("training request {k}")),
            Ok(())
        );
    }

    // Trained (1 timed flush >= min_flushes, EWMA >= the 8 ms stall). Park
    // one request so the queue is non-empty, then ask for the impossible:
    // a 100 us budget against a >= 8 ms predicted wait.
    let parked = Ticket::new();
    service
        .submit_with_delay(revalue(&template, 320), Duration::from_millis(150), &parked)
        .expect("empty queue predicts zero wait");
    let doomed = revalue(&template, 321);
    let asked = Instant::now();
    let rejected = Ticket::new();
    match service.submit_retrying_with_delay(doomed, Duration::from_micros(100), &rejected) {
        Err(SubmitError::Infeasible(chain)) => {
            assert_eq!(chain.num_layers(), 4, "chain handed back intact");
            assert!(!SubmitError::Infeasible(chain).kind().is_transient());
        }
        other => panic!("expected Infeasible, got {other:?}"),
    }
    assert!(
        asked.elapsed() < Duration::from_secs(1),
        "Infeasible is not retried: the refusal must return immediately, \
         not after the retry budget"
    );

    // The same queue with a feasible budget is accepted and completes.
    let feasible_chain = revalue(&template, 322);
    let expect = reference(&feasible_chain);
    let feasible = Ticket::new();
    service
        .submit_with_delay(feasible_chain, Duration::from_secs(5), &feasible)
        .expect("a generous budget clears the predicted wait");
    assert_eq!(must_terminate(&parked, "parked request"), Ok(()));
    assert_eq!(must_terminate(&feasible, "feasible request"), Ok(()));
    assert_exact(&feasible, &expect, "feasible request");

    // Refusal accounting: exactly one infeasibility, separate from sheds.
    let snaps = service.metrics();
    assert_eq!(snaps.iter().map(|l| l.infeasible).sum::<u64>(), 1);
    assert_eq!(snaps.iter().map(|l| l.shed).sum::<u64>(), 0);
    assert!(
        snaps
            .iter()
            .any(|l| l.flush_samples >= 1 && l.ewma_flush_latency >= TRAIN_STALL.mul_f64(0.5)),
        "estimator trained on the stalled flush"
    );
    service.shutdown();
}

#[test]
fn external_memory_pressure_refuses_cold_shapes_and_retry_rides_out_release() {
    // The budget is shared process-wide: consume it entirely *outside* the
    // service, so lane creation has nothing to evict and must refuse.
    let budget = Arc::new(MemoryBudget::new(1 << 20));
    assert!(budget.try_reserve(budget.limit()), "external reservation");
    let config = ServeConfig {
        max_batch: 2,
        max_delay: Duration::from_micros(300),
        queue_cap: 8,
        max_lanes: 2,
        workspaces_per_lane: 1,
        retry: RetryPolicy {
            budget: Duration::from_secs(5),
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            jitter: 0.25,
            jitter_seed: 3,
        },
        memory: Some(Arc::clone(&budget)),
        ..ServeConfig::default()
    };
    let service = BppsaService::<f64>::new(config);
    let template = sparse_chain(4, 5, 401);

    let ticket = Ticket::new();
    match service.submit(revalue(&template, 410), &ticket) {
        Err(SubmitError::MemoryPressure(chain)) => {
            assert_eq!(chain.num_layers(), 4, "chain handed back intact");
            assert!(
                SubmitError::MemoryPressure(chain).kind().is_transient(),
                "memory pressure subsides as reservations release — retryable"
            );
        }
        other => panic!("expected MemoryPressure with nothing evictable, got {other:?}"),
    }
    assert_eq!(service.memory_refusals(), 1);

    // Release the external hold mid-retry: submit_retrying treats the
    // refusal as transient and lands once headroom appears.
    let releaser = {
        let budget = Arc::clone(&budget);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            budget.release(budget.limit());
        })
    };
    let chain = revalue(&template, 411);
    let expect = reference(&chain);
    let retried = Ticket::new();
    service
        .submit_retrying(chain, &retried)
        .expect("retry rides out the pressure window");
    assert_eq!(must_terminate(&retried, "retried submit"), Ok(()));
    assert_exact(&retried, &expect, "retried submit");
    releaser.join().expect("releaser thread");
    service.shutdown();
}

#[test]
fn shape_storm_peak_reservation_never_exceeds_budget() {
    // Five distinct shapes storm a service whose budget fits exactly the
    // largest single lane. max_lanes 1 forces the MRU store to evict on
    // every shape change, so each new lane's pool can only grow once the
    // previous lane's reservation releases — the budget, not the storm,
    // bounds peak memory, and every request still completes exactly.
    const SHAPES: usize = 5;
    const ROUNDS: usize = 3;
    let templates: Vec<JacobianChain<f64>> = (0..SHAPES)
        .map(|s| sparse_chain(3 + s, 5 + (s % 2), 500 + s as u64))
        .collect();
    let largest = templates
        .iter()
        .map(|t| PlannedScan::plan(t, lane_plan_options(t.num_layers())).workspace_bytes::<f64>())
        .max()
        .expect("non-empty");
    let budget = Arc::new(MemoryBudget::new(largest));
    let config = ServeConfig {
        max_batch: 2,
        max_delay: Duration::from_micros(200),
        queue_cap: 8,
        max_lanes: 1,
        workspaces_per_lane: 1,
        retry: RetryPolicy::none(),
        memory: Some(Arc::clone(&budget)),
        ..ServeConfig::default()
    };
    let service = BppsaService::<f64>::new(config);

    for round in 0..ROUNDS {
        for (s, template) in templates.iter().enumerate() {
            let chain = revalue(template, 600 + (round * SHAPES + s) as u64);
            let expect = reference(&chain);
            let ticket = Ticket::new();
            service
                .submit(chain, &ticket)
                .expect("shape storm is routed, never refused: eviction frees the budget");
            assert_eq!(
                must_terminate(&ticket, &format!("round {round} shape {s}")),
                Ok(())
            );
            assert_exact(&ticket, &expect, &format!("round {round} shape {s}"));
        }
    }
    assert!(
        budget.peak_reserved() <= budget.limit(),
        "peak {} exceeded the {} byte budget",
        budget.peak_reserved(),
        budget.limit()
    );
    assert!(
        budget.peak_reserved() > 0,
        "the budget was actually charged"
    );
    assert_eq!(service.memory_refusals(), 0, "eviction always sufficed");
    assert_eq!(service.lanes_created(), SHAPES * ROUNDS);
    service.shutdown();
    drop(service);
    assert_eq!(
        budget.reserved(),
        0,
        "every lane's reservation released on retirement"
    );
}

#[test]
fn brownout_steps_down_under_shed_storm_declines_cold_shapes_and_recovers() {
    // Fast supervision cadence (5 ms polls via the watchdog's interval, a
    // stall budget too large to ever fire) and single-poll hysteresis so
    // the whole degrade/recover cycle fits in test time.
    let config = ServeConfig {
        max_batch: 2,
        max_delay: Duration::from_micros(500),
        queue_cap: 4,
        max_lanes: 2,
        workspaces_per_lane: 1,
        shed: ShedPolicy {
            max_queue_depth: Some(1),
            ..ShedPolicy::disabled()
        },
        retry: RetryPolicy::none(),
        watchdog: Some(WatchdogPolicy {
            stall_budget: Duration::from_secs(30),
            poll_interval: Duration::from_millis(5),
        }),
        brownout: Some(BrownoutPolicy {
            shed_rate_high: 0.5,
            shed_rate_low: 0.25,
            hot_polls: 1,
            calm_polls: 1,
            ..BrownoutPolicy::default()
        }),
        ..ServeConfig::default()
    };
    let service = BppsaService::<f64>::new(config);
    let hot = sparse_chain(4, 5, 701);
    let cold = sparse_chain(7, 6, 702);

    // Storm the hot shape with non-blocking submits: depth-1 shedding
    // refuses most of a tight loop, driving the shed rate past the Hot
    // threshold every poll window until the level bottoms out.
    let mut accepted: Vec<Ticket<f64>> = Vec::new();
    let mut refusals = 0u64;
    let mut seed = 710u64;
    let deadline = Instant::now() + TERMINAL;
    while service.brownout_level() < BrownoutLevel::DeclineColdShapes {
        assert!(Instant::now() < deadline, "brownout never reached bottom");
        for _ in 0..32 {
            let ticket = Ticket::new();
            seed += 1;
            match service.try_submit(revalue(&hot, seed), &ticket) {
                Ok(()) => accepted.push(ticket),
                Err(e) => {
                    assert!(
                        matches!(
                            e.kind(),
                            SubmitRefusal::Shed
                                | SubmitRefusal::Backpressure
                                | SubmitRefusal::LaneWarming
                        ),
                        "unexpected refusal {e:?}"
                    );
                    refusals += 1;
                }
            }
        }
    }
    assert!(refusals > 0, "the storm must actually shed");

    // At the deepest level the service declines to build lanes for cold
    // shapes — the memory/planning cost is refused, transiently.
    let probe = Ticket::new();
    match service.try_submit(revalue(&cold, 720), &probe) {
        Err(SubmitError::MemoryPressure(chain)) => {
            assert_eq!(chain.num_layers(), 7, "chain handed back intact");
        }
        other => panic!("expected cold-shape decline, got {other:?}"),
    }
    // The snapshot surfaces the degraded level on the live lane.
    assert!(
        service
            .metrics()
            .iter()
            .any(|l| l.brownout_level >= BrownoutLevel::NoSegmentation),
        "lane snapshot reflects the browned-out level"
    );

    // Everything the storm accepted still terminates (brownout degrades
    // throughput, never strands work).
    for (k, ticket) in accepted.iter().enumerate() {
        assert_eq!(
            must_terminate(ticket, &format!("storm-accepted request {k}")),
            Ok(())
        );
    }

    // Recovery: an idle service is Calm every window (shed rate zero), so
    // the level steps back up one poll at a time to Normal.
    let deadline = Instant::now() + TERMINAL;
    while service.brownout_level() != BrownoutLevel::Normal {
        assert!(Instant::now() < deadline, "brownout never recovered");
        std::thread::sleep(Duration::from_millis(5));
    }
    // And cold shapes are welcome again.
    let cold_chain = revalue(&cold, 721);
    let expect = reference(&cold_chain);
    let after = Ticket::new();
    service
        .submit(cold_chain, &after)
        .expect("recovered service builds cold lanes again");
    assert_eq!(must_terminate(&after, "post-recovery cold shape"), Ok(()));
    assert_exact(&after, &expect, "post-recovery cold shape");
    service.shutdown();
}

#[test]
fn overload_storm_conserves_every_submission() {
    // Bursty non-blocking traffic against a narrow queue with depth
    // shedding *and* a trained feasibility gate (seeded 2 ms flush stalls
    // keep the EWMA far above the 300 us delay budget): every submission
    // must be accounted for exactly once across completed / failed /
    // refused, refusal tallies must match the service's own counters, and
    // every completion must be bit-for-bit exact.
    const SHAPES: usize = 2;
    const VARIANTS: usize = 8;
    const BURSTS: usize = 15;
    let config = ServeConfig {
        max_batch: 2,
        max_delay: Duration::from_micros(300),
        queue_cap: 3,
        max_lanes: SHAPES,
        workspaces_per_lane: 1,
        shed: ShedPolicy {
            max_queue_depth: Some(2),
            feasibility: Some(FeasibilityPolicy { min_flushes: 2 }),
            ..ShedPolicy::disabled()
        },
        retry: RetryPolicy::none(),
        faults: FaultInjector::seeded(
            0x0E11_0CAD,
            FaultRates {
                flush_stall: 0.4,
                stall: Duration::from_millis(2),
                ..FaultRates::none()
            },
        ),
        ..ServeConfig::default()
    };
    let service = BppsaService::<f64>::new(config);
    let templates: Vec<JacobianChain<f64>> = (0..SHAPES)
        .map(|s| sparse_chain(4 + s, 5 + s, 800 + s as u64))
        .collect();
    // Value variants cycle, so references are precomputed once each.
    type Variant = (JacobianChain<f64>, Vec<Vec<f64>>);
    let variants: Vec<Vec<Variant>> = templates
        .iter()
        .enumerate()
        .map(|(s, t)| {
            (0..VARIANTS)
                .map(|v| {
                    let chain = revalue(t, 900 + (s * VARIANTS + v) as u64);
                    let expect = reference(&chain);
                    (chain, expect)
                })
                .collect()
        })
        .collect();

    let mut attempts = 0u64;
    let mut completed = 0u64;
    let mut refused = 0u64;
    let mut shed_seen = 0u64;
    let mut infeasible_seen = 0u64;
    for burst in 0..BURSTS {
        let mut in_flight: Vec<(Ticket<f64>, usize, usize)> = Vec::new();
        for k in 0..8usize {
            let s = (burst + k) % SHAPES;
            let v = (burst * 8 + k) % VARIANTS;
            let ticket = Ticket::new();
            attempts += 1;
            match service.try_submit(variants[s][v].0.clone(), &ticket) {
                Ok(()) => in_flight.push((ticket, s, v)),
                Err(e) => {
                    refused += 1;
                    match e.kind() {
                        SubmitRefusal::Shed => shed_seen += 1,
                        SubmitRefusal::Infeasible => infeasible_seen += 1,
                        SubmitRefusal::Backpressure | SubmitRefusal::LaneWarming => {}
                        other => panic!("burst {burst} request {k}: unexpected refusal {other}"),
                    }
                }
            }
        }
        // Drain the burst: everything accepted terminates successfully
        // (stalls only slow flushes here, they never fail them).
        for (ticket, s, v) in &in_flight {
            assert_eq!(
                must_terminate(ticket, &format!("burst {burst} shape {s} variant {v}")),
                Ok(())
            );
            assert_exact(
                ticket,
                &variants[*s][*v].1,
                &format!("burst {burst} shape {s} variant {v}"),
            );
            completed += 1;
        }
    }
    assert_eq!(
        completed + refused,
        attempts,
        "every submission accounted for exactly once (failed == 0 here)"
    );
    assert!(completed > 0, "the storm must let traffic through");
    assert!(refused > 0, "the storm must actually overload the queue");
    // The service's own refusal counters agree with the caller's tally —
    // infeasibility and shedding are counted separately, never conflated.
    let snaps = service.metrics();
    let rollup = service.metrics_rollup();
    assert_eq!(
        snaps.iter().map(|l| l.shed).sum::<u64>() + rollup.shed,
        shed_seen
    );
    assert_eq!(
        snaps.iter().map(|l| l.infeasible).sum::<u64>() + rollup.infeasible,
        infeasible_seen
    );
    service.shutdown();
}
