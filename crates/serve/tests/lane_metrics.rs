//! Flush-cause accounting: single-lane scenarios that deterministically
//! force each of the three [`FlushCause`]s and assert the lane's
//! [`LaneMetricsSnapshot`] counts them exactly — plus the batch-size
//! histogram invariant (`requests_flushed() == submitted` on a quiescent
//! lane) and the warm-up timing surface.
//!
//! Determinism notes: a flush can only be triggered by (a) `max_batch`
//! pending requests, (b) an expired delay budget, or (c) a drain. Each test
//! arranges for exactly one of those to be reachable — budgets of a minute
//! make (b) unreachable, `max_batch` above the submitted count makes (a)
//! unreachable — so the expected cause is not a race winner but the only
//! possibility.

use bppsa_core::JacobianChain;
use bppsa_core::ScanElement;
use bppsa_serve::{
    lane_plan_options, BppsaService, FlushCause, LaneState, PlanKind, ServeConfig, ShedPolicy,
    Ticket, LANE_SEGMENTS, LANE_SEGMENT_MIN_LAYERS,
};
use bppsa_sparse::Csr;
use bppsa_tensor::init::{seeded_rng, uniform_vector};
use bppsa_tensor::Matrix;
use rand::Rng;
use std::time::Duration;

fn sparse_chain(n: usize, width: usize, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
    for _ in 0..n {
        let dense = Matrix::from_fn(width, width, |_, _| {
            if rng.random_range(0.0..1.0) < 0.4 {
                rng.random_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        chain.push(ScanElement::Sparse(Csr::from_dense(&dense)));
    }
    chain
}

/// Same patterns as `template`, fresh values.
fn revalue(template: &JacobianChain<f64>, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, template.seed().len(), 1.0));
    for jt in template.jacobians() {
        let ScanElement::Sparse(m) = jt else {
            unreachable!()
        };
        chain.push(ScanElement::Sparse(
            m.map_values(|_| rng.random_range(-1.0..1.0)),
        ));
    }
    chain
}

fn config(max_batch: usize) -> ServeConfig {
    ServeConfig {
        max_batch,
        max_delay: Duration::from_secs(60),
        queue_cap: 16,
        max_lanes: 2,
        workspaces_per_lane: 0,
        shed: ShedPolicy::disabled(),
        ..ServeConfig::default()
    }
}

#[test]
fn max_batch_flush_is_counted_exactly_once() {
    // max_batch 4, one-minute budgets: only a full batch can flush.
    let service = BppsaService::<f64>::new(config(4));
    let template = sparse_chain(5, 6, 1);
    let tickets: Vec<Ticket<f64>> = (0..4).map(|_| Ticket::new()).collect();
    for (k, ticket) in tickets.iter().enumerate() {
        service
            .submit(revalue(&template, 10 + k as u64), ticket)
            .expect("accepting");
    }
    for ticket in &tickets {
        ticket.wait().expect("served by the full-batch flush");
    }
    let snap = &service.metrics()[0];
    assert_eq!(snap.state, LaneState::Live);
    assert_eq!(snap.submitted, 4);
    assert_eq!(snap.shed, 0);
    assert_eq!(snap.queue_depth, 0);
    assert_eq!(snap.flushes_of(FlushCause::MaxBatch), 1);
    assert_eq!(snap.flushes_of(FlushCause::Deadline), 0);
    assert_eq!(snap.flushes_of(FlushCause::Drain), 0);
    assert_eq!(snap.flushes(), 1);
    assert_eq!(
        snap.batch_size_counts,
        vec![0, 0, 0, 1],
        "one flush of exactly max_batch requests"
    );
    assert_eq!(snap.requests_flushed(), snap.submitted);
}

#[test]
fn deadline_flushes_are_counted_exactly() {
    // max_batch 8 but only single requests with short budgets: every flush
    // is a deadline flush of size 1.
    let mut cfg = config(8);
    cfg.max_delay = Duration::from_millis(2);
    let service = BppsaService::<f64>::new(cfg);
    let template = sparse_chain(5, 6, 2);
    let ticket = Ticket::new();
    for round in 0..3 {
        service
            .submit(revalue(&template, 20 + round), &ticket)
            .expect("accepting");
        ticket.wait().expect("deadline flush serves the request");
        let _ = ticket.take_chain();
    }
    let snap = &service.metrics()[0];
    assert_eq!(snap.state, LaneState::Live);
    assert_eq!(snap.submitted, 3);
    assert_eq!(snap.flushes_of(FlushCause::MaxBatch), 0);
    assert_eq!(snap.flushes_of(FlushCause::Deadline), 3);
    assert_eq!(snap.flushes_of(FlushCause::Drain), 0);
    assert_eq!(snap.batch_size_counts[0], 3, "three flushes of one request");
    assert_eq!(snap.requests_flushed(), snap.submitted);
    // The lane went through a real warm-up and reported its cost.
    assert!(snap.plan_time > Duration::ZERO);
    assert!(snap.warmup_time >= snap.plan_time);
}

#[test]
fn drain_flush_on_shutdown_is_counted_exactly_once() {
    // Two requests parked behind one-minute budgets, then shutdown: the
    // only reachable flush is the drain, carrying both requests.
    let service = BppsaService::<f64>::new(config(8));
    let template = sparse_chain(5, 6, 3);
    let t1 = Ticket::new();
    let t2 = Ticket::new();
    service
        .submit(revalue(&template, 30), &t1)
        .expect("accepting");
    service
        .submit(revalue(&template, 31), &t2)
        .expect("accepting");
    service.shutdown();
    t1.wait().expect("drained request completes");
    t2.wait().expect("drained request completes");
    let snap = &service.metrics()[0];
    assert_eq!(snap.state, LaneState::Retired);
    assert_eq!(snap.submitted, 2);
    assert_eq!(snap.flushes_of(FlushCause::MaxBatch), 0);
    assert_eq!(snap.flushes_of(FlushCause::Deadline), 0);
    assert_eq!(snap.flushes_of(FlushCause::Drain), 1);
    assert_eq!(
        snap.batch_size_counts,
        vec![0, 1, 0, 0, 0, 0, 0, 0],
        "one drain flush of both requests"
    );
    assert_eq!(snap.requests_flushed(), snap.submitted);
}

#[test]
fn mixed_causes_accumulate_and_histogram_sums_to_submits() {
    // One lane sees, in order: a full batch (MaxBatch), a short-budget
    // single (Deadline), and a parked pair cut off by shutdown (Drain).
    let service = BppsaService::<f64>::new(config(3));
    let template = sparse_chain(5, 6, 4);

    // Phase 1: exactly max_batch requests under one-minute budgets.
    let tickets: Vec<Ticket<f64>> = (0..3).map(|_| Ticket::new()).collect();
    for (k, ticket) in tickets.iter().enumerate() {
        service
            .submit(revalue(&template, 40 + k as u64), ticket)
            .expect("accepting");
    }
    for ticket in &tickets {
        ticket.wait().expect("full batch served");
    }

    // Phase 2: one short-budget request.
    let lone = Ticket::new();
    service
        .submit_with_delay(revalue(&template, 50), Duration::from_millis(2), &lone)
        .expect("accepting");
    lone.wait().expect("deadline flush served");

    // Phase 3: two parked requests drained by shutdown.
    let parked: Vec<Ticket<f64>> = (0..2).map(|_| Ticket::new()).collect();
    for (k, ticket) in parked.iter().enumerate() {
        service
            .submit(revalue(&template, 60 + k as u64), ticket)
            .expect("accepting");
    }
    service.shutdown();
    for ticket in &parked {
        ticket.wait().expect("drained request completes");
    }

    let snap = &service.metrics()[0];
    assert_eq!(snap.state, LaneState::Retired);
    assert_eq!(snap.submitted, 6);
    assert_eq!(snap.flushes_of(FlushCause::MaxBatch), 1);
    assert_eq!(snap.flushes_of(FlushCause::Deadline), 1);
    assert_eq!(snap.flushes_of(FlushCause::Drain), 1);
    assert_eq!(snap.flushes(), 3);
    assert_eq!(
        snap.batch_size_counts,
        vec![1, 1, 1],
        "sizes 1 (deadline), 2 (drain), 3 (max batch) each seen once"
    );
    assert_eq!(snap.requests_flushed(), snap.submitted);
}

#[test]
fn plan_profile_reports_kind_and_kernel_mix() {
    // Two lanes with observably different compiled programs: a mid-density
    // 10-wide CSR chain (whose densifying products exercise the dense panel
    // kernel under KernelMode::Auto) and an all-diagonal chain (which takes
    // the elementwise fast path and plans no products at all).
    let mut cfg = config(8);
    cfg.max_delay = Duration::from_millis(2);
    let service = BppsaService::<f64>::new(cfg);

    let csr_template = sparse_chain(6, 10, 5);
    let csr_ticket = Ticket::new();
    service
        .submit(revalue(&csr_template, 70), &csr_ticket)
        .expect("accepting");
    csr_ticket.wait().expect("csr lane serves");

    let mut rng = seeded_rng(6);
    let mut diag_template = JacobianChain::new(uniform_vector(&mut rng, 6, 1.0));
    for _ in 0..5 {
        let diag: Vec<f64> = (0..6).map(|_| rng.random_range(-1.2..1.2)).collect();
        diag_template.push(ScanElement::Sparse(Csr::from_diagonal(&diag)));
    }
    let diag_ticket = Ticket::new();
    service
        .submit(revalue(&diag_template, 71), &diag_ticket)
        .expect("accepting");
    diag_ticket.wait().expect("diagonal lane serves");

    let metrics = service.metrics();
    assert_eq!(metrics.len(), 2);
    let csr_snap = &metrics[0];
    assert_eq!(csr_snap.plan_kind, Some(PlanKind::Csr));
    assert!(
        csr_snap.kernel_counts.total() > 0,
        "a CSR plan hoists products: {:?}",
        csr_snap.kernel_counts
    );
    assert!(
        csr_snap.kernel_counts.dense > 0,
        "0.4-density 10-wide operands must resolve some combines to the \
         dense panel kernel: {:?}",
        csr_snap.kernel_counts
    );
    let diag_snap = &metrics[1];
    assert_eq!(diag_snap.plan_kind, Some(PlanKind::Diagonal));
    assert_eq!(
        diag_snap.kernel_counts.total(),
        0,
        "diagonal plans hoist no products"
    );
}

#[test]
fn lane_plan_options_segments_at_the_layer_threshold() {
    // The routing function is pure: one layer below the threshold stays on
    // the unsegmented serial plan, at the threshold it switches to the
    // pooled segmented plan.
    assert_eq!(lane_plan_options(0).segments, 1);
    assert_eq!(lane_plan_options(LANE_SEGMENT_MIN_LAYERS - 1).segments, 1);
    assert_eq!(
        lane_plan_options(LANE_SEGMENT_MIN_LAYERS).segments,
        LANE_SEGMENTS
    );
    assert_eq!(
        lane_plan_options(4 * LANE_SEGMENT_MIN_LAYERS).segments,
        LANE_SEGMENTS
    );
}

#[test]
fn deep_chain_lanes_segment_transparently() {
    // A shallow lane and a deep (>= LANE_SEGMENT_MIN_LAYERS) lane through
    // the same service: the deep lane's plan must segment without the
    // caller asking, and both must report it through `plan_segments`.
    let mut cfg = config(8);
    cfg.max_delay = Duration::from_millis(2);
    let service = BppsaService::<f64>::new(cfg);

    let shallow = sparse_chain(5, 6, 8);
    let ticket = Ticket::new();
    service
        .submit(revalue(&shallow, 80), &ticket)
        .expect("accepting");
    ticket.wait().expect("shallow lane serves");

    // Narrow layers keep the symbolic plan for 1024 products cheap.
    let deep = sparse_chain(LANE_SEGMENT_MIN_LAYERS, 3, 9);
    let deep_ticket = Ticket::new();
    service
        .submit(revalue(&deep, 81), &deep_ticket)
        .expect("accepting");
    deep_ticket.wait().expect("deep lane serves");

    let metrics = service.metrics();
    assert_eq!(metrics.len(), 2);
    let shallow_snap = &metrics[0];
    assert_eq!(shallow_snap.plan_kind, Some(PlanKind::Csr));
    assert_eq!(
        shallow_snap.plan_segments, 1,
        "shallow lanes plan unsegmented"
    );
    let deep_snap = &metrics[1];
    assert_eq!(deep_snap.plan_kind, Some(PlanKind::Csr));
    assert_eq!(
        deep_snap.plan_segments, LANE_SEGMENTS,
        "deep lanes segment transparently"
    );
}
