//! Allocation-behavior test for the serving front door: the steady-state
//! request loop — submit a reclaimed chain, coalesce, flush, complete,
//! read — performs **zero heap allocations** end to end, per lane.
//!
//! Every stage is allocation-free by construction once warmed: routing is
//! an MRU hit (vec shuffle), enqueue moves the chain into a pre-reserved
//! ring, the dispatcher reuses its batch scratch, the batched fan-out runs
//! over prewarmed pooled workspaces through the worker pool's reused batch
//! header (asserted zero-alloc by `crates/core/tests/alloc_free.rs`), and
//! completion copies gradients into the ticket's reused result buffer and
//! hands the chain back. This test pins the composition of all of it —
//! producer, dispatcher, and pool workers all run inside the counted
//! region.
//!
//! This file intentionally contains a single `#[test]` so no concurrent
//! test thread can pollute the process-wide counters.

use bppsa_core::{bppsa_backward, BppsaOptions, JacobianChain, ScanElement};
use bppsa_serve::{BppsaService, ServeConfig, Ticket};
use bppsa_sparse::Csr;
use bppsa_tensor::init::{seeded_rng, uniform_vector};
use bppsa_tensor::Matrix;
use rand::Rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

struct CountingAllocator;

static TRACKING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if TRACKING.load(Ordering::Relaxed) {
            DEALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with counting enabled, returning `(allocs, deallocs)`.
fn counted(f: impl FnOnce()) -> (u64, u64) {
    ALLOCS.store(0, Ordering::SeqCst);
    DEALLOCS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    f();
    TRACKING.store(false, Ordering::SeqCst);
    (
        ALLOCS.load(Ordering::SeqCst),
        DEALLOCS.load(Ordering::SeqCst),
    )
}

fn sparse_chain(n: usize, width: usize, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
    for _ in 0..n {
        let dense = Matrix::from_fn(width, width, |_, _| {
            if rng.random_range(0.0..1.0) < 0.3 {
                rng.random_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        chain.push(ScanElement::Sparse(Csr::from_dense(&dense)));
    }
    chain
}

/// An all-diagonal chain (shared full-diagonal pattern), so the lane's
/// warm-up plan compiles the elementwise fast path.
fn diagonal_chain(n: usize, width: usize, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let pattern = Csr::from_diagonal(&vec![1.0f64; width]).pattern();
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
    for _ in 0..n {
        let diag: Vec<f64> = (0..width).map(|_| rng.random_range(-1.2..1.2)).collect();
        chain.push(ScanElement::Sparse(Csr::from_pattern_and_values(
            pattern.clone(),
            diag,
        )));
    }
    chain
}

/// Same patterns as `template`, fresh values.
fn sparse_chain_like(template: &JacobianChain<f64>, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, template.seed().len(), 1.0));
    for jt in template.jacobians() {
        let ScanElement::Sparse(m) = jt else {
            unreachable!()
        };
        chain.push(ScanElement::Sparse(
            m.map_values(|_| rng.random_range(-1.0..1.0)),
        ));
    }
    chain
}

#[test]
fn steady_state_served_requests_are_allocation_free() {
    const BATCH: usize = 4;
    // The entire overload-robustness stack is armed — feasibility gate,
    // global memory budget, stall watchdog, brownout supervision — and the
    // steady state must *still* be allocation-free: the gate is two atomic
    // loads per push, budget accounting only charges on pool growth (all
    // during warm-up), and the supervisor thread polls into scratch whose
    // capacity is reserved at spawn. The policies are sized to never
    // actually fire here (µs flushes against ms budgets); what's counted
    // is their always-on bookkeeping cost.
    let budget = std::sync::Arc::new(bppsa_serve::MemoryBudget::new(1 << 30));
    let service = BppsaService::<f64>::new(ServeConfig {
        max_batch: BATCH,
        // Generous delay budget: full batches still flush immediately at
        // max_batch; the slack only keeps the (armed) feasibility gate
        // from refusing µs-scale flushes on a slow machine.
        max_delay: Duration::from_millis(10),
        queue_cap: 16,
        max_lanes: 2,
        workspaces_per_lane: 0,
        shed: bppsa_serve::ShedPolicy {
            feasibility: Some(bppsa_serve::FeasibilityPolicy { min_flushes: 2 }),
            ..bppsa_serve::ShedPolicy::disabled()
        },
        memory: Some(std::sync::Arc::clone(&budget)),
        watchdog: Some(bppsa_serve::WatchdogPolicy {
            stall_budget: Duration::from_secs(5),
            poll_interval: Duration::from_millis(25),
        }),
        brownout: Some(bppsa_serve::BrownoutPolicy::default()),
        ..ServeConfig::default()
    });

    let template = sparse_chain(18, 10, 7);
    let chains: Vec<JacobianChain<f64>> = (0..BATCH)
        .map(|k| sparse_chain_like(&template, 40 + k as u64))
        .collect();
    let expected: Vec<f64> = chains
        .iter()
        .map(|chain| {
            bppsa_backward(chain, BppsaOptions::serial())
                .grads()
                .iter()
                .flat_map(|g| g.as_slice())
                .copied()
                .sum()
        })
        .collect();

    let tickets: Vec<Ticket<f64>> = (0..BATCH).map(|_| Ticket::new()).collect();
    // Pre-sized per-request checksum sink, writable without allocating.
    let sums: Vec<std::sync::Mutex<f64>> = (0..BATCH)
        .map(|_| std::sync::Mutex::new(f64::NAN))
        .collect();

    // One steady-state round: submit every reclaimed chain, wait, read the
    // gradients into the pre-sized sink, reclaim the chains.
    let round = |chains: &mut Vec<Option<JacobianChain<f64>>>| {
        for (k, ticket) in tickets.iter().enumerate() {
            let chain = chains[k].take().expect("chain reclaimed last round");
            service.submit(chain, ticket).expect("service accepting");
        }
        for (k, ticket) in tickets.iter().enumerate() {
            ticket.wait().expect("request served");
            ticket.with_result(|r| {
                let sum: f64 = r.grads().iter().flat_map(|g| g.as_slice()).copied().sum();
                *sums[k].lock().unwrap() = sum;
            });
            chains[k] = Some(ticket.take_chain());
        }
    };

    let mut slots: Vec<Option<JacobianChain<f64>>> = chains.into_iter().map(Some).collect();
    // Warm-up: build the lane (plan + workspaces + dispatcher), size every
    // ticket's result buffer, reach the workspace pool's steady state.
    for _ in 0..3 {
        round(&mut slots);
    }

    let (allocs, deallocs) = counted(|| {
        for _ in 0..3 {
            round(&mut slots);
        }
    });
    assert_eq!(
        (allocs, deallocs),
        (0, 0),
        "steady-state served request rounds must not touch the heap"
    );

    // Still correct after the counted rounds (and the requests really ran:
    // checksums match the generic backward per chain).
    for (k, expect) in expected.iter().enumerate() {
        let got = *sums[k].lock().unwrap();
        assert!(
            (got - expect).abs() < 1e-10,
            "request {k}: checksum {got} vs {expect}"
        );
    }
    assert_eq!(service.lanes(), 1);

    // --- Diagonal-shape lane: an all-diagonal chain routes to a second
    // lane whose warm-up plan (BppsaOptions::serial() → DiagonalMode::Auto)
    // compiles the elementwise fast path. The diagonal program's steady
    // state — dense plane loads, elementwise stages, in-place gradient
    // materialization — must clear the same zero-allocation bar through
    // the whole service loop.
    let diag_template = diagonal_chain(48, 10, 9);
    assert!(
        bppsa_core::PlannedScan::plan(&diag_template, BppsaOptions::serial())
            .diagonal_kernel()
            .is_some(),
        "the lane's warm-up options must compile the diagonal program"
    );
    let diag_chains: Vec<JacobianChain<f64>> = (0..BATCH)
        .map(|k| sparse_chain_like(&diag_template, 70 + k as u64))
        .collect();
    let diag_expected: Vec<f64> = diag_chains
        .iter()
        .map(|chain| {
            bppsa_backward(chain, BppsaOptions::serial())
                .grads()
                .iter()
                .flat_map(|g| g.as_slice())
                .copied()
                .sum()
        })
        .collect();
    let mut diag_slots: Vec<Option<JacobianChain<f64>>> =
        diag_chains.into_iter().map(Some).collect();
    for _ in 0..3 {
        round(&mut diag_slots);
    }
    let (dallocs, ddeallocs) = counted(|| {
        for _ in 0..3 {
            round(&mut diag_slots);
        }
    });
    assert_eq!(
        (dallocs, ddeallocs),
        (0, 0),
        "steady-state diagonal-lane request rounds must not touch the heap"
    );
    for (k, expect) in diag_expected.iter().enumerate() {
        let got = *sums[k].lock().unwrap();
        assert!(
            (got - expect).abs() < 1e-10,
            "diagonal request {k}: checksum {got} vs {expect}"
        );
    }
    assert_eq!(service.lanes(), 2);

    // The armed machinery really was live — the budget was charged by the
    // lanes' pools (and never overrun), the estimator trained past its
    // gate, and the supervisor held the service at Normal throughout.
    assert!(budget.peak_reserved() > 0, "pools charged the budget");
    assert!(budget.peak_reserved() <= budget.limit());
    assert!(service
        .metrics()
        .iter()
        .all(|l| l.flush_samples >= 2 && l.infeasible == 0));
    assert_eq!(service.brownout_level(), bppsa_serve::BrownoutLevel::Normal);
    service.shutdown();
}
