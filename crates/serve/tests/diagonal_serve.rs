//! Serve-layer differential coverage for the diagonal fast path: lanes are
//! *transparent* — a diagonal-shape lane (whose warm-up plan compiles the
//! elementwise program under the default `DiagonalMode::Auto`) returns the
//! same gradients a caller would get from the serial unplanned executor.
//!
//! Short chains take the linear kernel and are checked **bit for bit**;
//! chains past [`DIAGONAL_LOG_SPACE_MIN_LEN`] take the log-space kernel and
//! are checked against the sequential baseline within a tight relative
//! bound.

use bppsa_core::{
    bppsa_backward, linear_backward, BppsaOptions, DiagonalKernel, JacobianChain, PlannedScan,
    ScanElement, DIAGONAL_LOG_SPACE_MIN_LEN,
};
use bppsa_serve::{BppsaService, ServeConfig, ShedPolicy, Ticket};
use bppsa_sparse::Csr;
use bppsa_tensor::init::{seeded_rng, uniform_vector};
use rand::rngs::StdRng;
use rand::Rng;
use std::time::Duration;

fn service(max_batch: usize) -> BppsaService<f64> {
    BppsaService::new(ServeConfig {
        max_batch,
        max_delay: Duration::from_micros(200),
        queue_cap: 32,
        max_lanes: 2,
        workspaces_per_lane: 0,
        shed: ShedPolicy::disabled(),
        ..ServeConfig::default()
    })
}

/// An all-diagonal chain over one shared pattern; `coeff` draws each lane
/// coefficient.
fn diagonal_chain(
    rng: &mut StdRng,
    n: usize,
    width: usize,
    coeff: impl Fn(&mut StdRng) -> f64,
) -> JacobianChain<f64> {
    let pattern = Csr::from_diagonal(&vec![1.0f64; width]).pattern();
    let mut chain = JacobianChain::new(uniform_vector(rng, width, 1.0));
    for _ in 0..n {
        let diag: Vec<f64> = (0..width).map(|_| coeff(rng)).collect();
        chain.push(ScanElement::Sparse(Csr::from_pattern_and_values(
            pattern.clone(),
            diag,
        )));
    }
    chain
}

/// Short diagonal chains (linear kernel): every served gradient must equal
/// the serial unplanned executor's **bit for bit** — batching, lane
/// routing, and the elementwise program change nothing observable.
#[test]
fn served_diagonal_lane_is_bit_for_bit_with_serial() {
    let rng = &mut seeded_rng(21);
    let chains: Vec<JacobianChain<f64>> = (0..8)
        .map(|_| {
            diagonal_chain(rng, 64, 9, |r| match r.random_range(0..8usize) {
                0 => 0.0,
                1 => r.random_range(-1e-300..1e-300),
                _ => r.random_range(-1.5..1.5),
            })
        })
        .collect();
    // The lane's warm-up options compile the linear kernel for this shape.
    assert_eq!(
        PlannedScan::plan(&chains[0], BppsaOptions::serial()).diagonal_kernel(),
        Some(DiagonalKernel::Linear)
    );
    let expected: Vec<_> = chains
        .iter()
        .map(|c| bppsa_backward(c, BppsaOptions::serial()))
        .collect();

    let service = service(4);
    let tickets: Vec<Ticket<f64>> = (0..chains.len()).map(|_| Ticket::new()).collect();
    for (chain, ticket) in chains.into_iter().zip(&tickets) {
        service.submit(chain, ticket).expect("service accepting");
    }
    for (k, ticket) in tickets.iter().enumerate() {
        ticket.wait().expect("request served");
        ticket.with_result(|r| {
            assert_eq!(r.grads().len(), expected[k].grads().len());
            for (i, (a, b)) in r.grads().iter().zip(expected[k].grads()).enumerate() {
                for (lane, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
                    assert!(
                        x.to_bits() == y.to_bits(),
                        "request {k} grad {i} lane {lane}: {x:e} vs {y:e}"
                    );
                }
            }
        });
    }
    assert_eq!(service.lanes(), 1, "one shape, one lane");
    service.shutdown();
}

/// A chain long enough for `Auto` to pick the log-space kernel: the served
/// result stays within 1e-6 relative of the sequential baseline even
/// though the lane batched and re-planned nothing per request.
#[test]
fn served_long_diagonal_lane_takes_log_space_within_tolerance() {
    let rng = &mut seeded_rng(22);
    let n = DIAGONAL_LOG_SPACE_MIN_LEN;
    // Coefficients near ±(1 ± 1e-3): prefix products stay within e^{±~33}.
    let coeff = |r: &mut StdRng| {
        let sign = if r.random::<bool>() { 1.0 } else { -1.0 };
        sign * (1.0 + r.random_range(-1e-3..1e-3))
    };
    let chain = diagonal_chain(rng, n, 2, coeff);
    assert_eq!(
        PlannedScan::plan(&chain, BppsaOptions::serial()).diagonal_kernel(),
        Some(DiagonalKernel::LogSpace)
    );
    let reference = linear_backward(&chain);

    let service = service(1);
    let ticket = Ticket::new();
    service.submit(chain, &ticket).expect("service accepting");
    ticket.wait().expect("request served");
    ticket.with_result(|r| {
        assert_eq!(r.grads().len(), reference.grads().len());
        for (i, (a, b)) in r.grads().iter().zip(reference.grads()).enumerate() {
            for (lane, (&x, &y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
                let tol = 1e-6 * x.abs().max(y.abs()) + 1e-280;
                assert!(
                    (x - y).abs() <= tol,
                    "grad {i} lane {lane}: {x:e} vs {y:e} (tol {tol:e})"
                );
            }
        }
    });
    service.shutdown();
}
