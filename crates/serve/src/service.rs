//! The front door: shape-routed lanes, deadline micro-batching dispatchers,
//! bounded-queue backpressure, load shedding, and graceful shutdown.
//!
//! # Lane lifecycle
//!
//! A **lane** is the unit of coalescing: one compiled
//! [`PlannedScan`](bppsa_core::PlannedScan) (planned from the first chain of
//! its shape), one [`BatchedBackward`] (workspace pool) and one dispatcher
//! thread. [`BppsaService::submit`] routes each request to the lane whose
//! shape key matches the chain — an MRU store capped at
//! [`ServeConfig::max_lanes`], so a new shape beyond the cap evicts the
//! least recently used lane. An evicted lane is *closed*, not killed: its
//! dispatcher drains every pending request, completes the tickets, and
//! exits; submitters racing the eviction observe the closed queue and
//! transparently re-route (which re-creates the lane).
//!
//! Lane **bring-up is non-blocking**: a never-seen shape inserts only a
//! *placeholder* (shape key + bounded queue + metrics) under the router
//! lock; the expensive part — symbolic planning and workspace-pool
//! construction — runs on the new lane's own dispatcher thread, so
//! submitters of *other* shapes route untouched while the cold lane warms.
//! While a lane is [`Warming`](LaneState::Warming), blocking submits queue
//! as usual (parking on the lane's condvar only when the bounded queue
//! fills), and [`BppsaService::try_submit`] refuses with
//! [`SubmitError::LaneWarming`] so non-blocking callers can route traffic
//! elsewhere. The full per-lane state machine is `Warming → Live →
//! Draining → Retired` (see [`LaneState`]).
//!
//! # Deadline policy
//!
//! Each lane's dispatcher coalesces its queue into
//! [`BatchedBackward::execute`] fan-outs: it flushes as soon as
//! [`ServeConfig::max_batch`] requests are pending, or when the **earliest**
//! pending deadline (a request's submit time + its delay budget — arrival
//! order does not order deadlines) expires, whichever comes first. A single
//! request therefore never waits longer
//! than its own delay budget, and a full batch never waits at all. This is
//! the trade the paper's parallel-scan backward wants: a bounded, tunable
//! latency cost buys wide batches that keep the `O(log n)` critical path
//! fed with per-request parallelism. Every flush is attributed to a
//! [`FlushCause`] in the lane's metrics.
//!
//! # Backpressure, shedding, and shutdown
//!
//! Every lane queue is bounded by [`ServeConfig::queue_cap`]:
//! [`BppsaService::submit`] blocks until the dispatcher drains room (memory
//! stays bounded by `queue_cap` chains + the workspace pool), while
//! [`BppsaService::try_submit`] returns [`SubmitError::Backpressure`]
//! instead. A [`ShedPolicy`] turns blocking into refusal for requests that
//! are doomed anyway: beyond a queue-depth threshold, or with a delay
//! budget the lane's warm-up would consume before the first flush, submit
//! returns [`SubmitError::Shed`] immediately (the chain handed back) and
//! the lane's shed counter records it. [`BppsaService::shutdown`] (also run
//! on drop) closes the router and every lane, then joins the dispatchers —
//! each drains its pending requests first, so every accepted request
//! completes and every waiter wakes; only *new* submissions are refused
//! with [`SubmitError::Shutdown`], handing the chain back.
//!
//! # Failure domains & supervision
//!
//! Failure handling is layered by *blast radius*. A panic inside one batch
//! job is caught per flush and attributed per request
//! ([`ServeError::BatchPanicked`]); a panic inside warm-up planning fails
//! the lane's accepted queue ([`ServeError::PlanPanicked`]); a dispatcher
//! dying **outside** every guard is caught by a drop-guard supervisor that
//! fails everything the lane still held ([`ServeError::LaneDied`]) instead
//! of hanging waiters. A lane whose batches panic
//! [`BreakerPolicy::max_consecutive_panics`] times in a row trips its
//! circuit breaker: the lane exits [`LaneState::Quarantined`] and its
//! *shape* enters cool-down — new submits are refused with
//! [`SubmitError::Quarantined`] until the cool-down elapses, after which
//! exactly one **half-open probe** lane tests recovery (one clean flush
//! restores the shape; one panic re-trips it). Under
//! [`DeadlinePolicy::Hard`], requests already past their deadline at
//! batch-assembly time fail with [`ServeError::DeadlineExceeded`] instead
//! of executing late. All of it is exercised on purpose through the
//! seeded/scripted [`FaultInjector`](crate::FaultInjector)
//! ([`ServeConfig::faults`]), and transient refusals are absorbed by the
//! config's [`RetryPolicy`] via [`BppsaService::submit_retrying`].
//!
//! # Observability
//!
//! [`BppsaService::metrics`] snapshots every lane ever created (retired
//! lanes included): submit/shed/flush counts, flush causes, batch-size
//! histogram, queue depth, plan/warm-up time, and the failure counters
//! (batch panics, breaker trips, deadline expiries, dispatcher deaths).
//! Terminal lanes beyond [`ServeConfig::retired_metrics_cap`] fold into a
//! [`RetiredRollup`](crate::RetiredRollup)
//! ([`BppsaService::metrics_rollup`]) so unbounded shape churn cannot grow
//! the registry forever. See [`LaneMetricsSnapshot`].

use crate::fault::{FaultInjector, InjectionPoint};
use crate::metrics::{FlushCause, LaneMetrics, LaneMetricsSnapshot, LaneState, RetiredRollup};
use crate::overload::{
    BrownoutLevel, BrownoutPolicy, BrownoutState, FeasibilityPolicy, WatchdogPolicy,
};
use crate::retry::RetryPolicy;
use crate::ticket::{ServeError, Ticket, TicketShared};
use bppsa_core::{
    chain_matches_shape, BatchedBackward, BppsaOptions, JacobianChain, MemoryBudget, Mru,
    PlannedScan, ScanElement,
};
use bppsa_scan::global_pool;
use bppsa_sparse::SparsityPattern;
use bppsa_tensor::Scalar;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When to refuse a request at submit time instead of queueing it — load
/// shedding for requests that are overwhelmingly likely to miss their
/// deadline anyway. Disabled by default.
///
/// Shedding is per lane and synchronous: a shed request never enters the
/// queue, its chain is handed back in [`SubmitError::Shed`], and the lane's
/// shed counter ([`LaneMetricsSnapshot::shed`]) records the refusal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShedPolicy {
    /// Refuse when the target lane already has this many requests queued.
    /// Must be non-zero when set. Values above [`ServeConfig::queue_cap`]
    /// are inert (the queue can never get that deep); at exactly
    /// `queue_cap`, a full queue *sheds* non-seeding requests where
    /// blocking backpressure would otherwise have parked them — an armed
    /// policy prefers refusal over waiting.
    pub max_queue_depth: Option<usize>,
    /// Deadline feasibility during bring-up: refuse a request whose delay
    /// budget is below this while its lane is still
    /// [`Warming`](LaneState::Warming) — the warm-up (symbolic planning +
    /// workspace construction) would consume the budget before the first
    /// flush could run. The request that *seeds* a lane's warm-up is
    /// exempt (it is the template the plan is built from). Applies to
    /// blocking submits only: non-blocking submits to a warming lane are
    /// refused earlier with [`SubmitError::LaneWarming`], which is not
    /// counted as a shed.
    pub min_warming_delay: Option<Duration>,
    /// Deadline feasibility in steady state: refuse a request whose delay
    /// budget the lane's own measured flush latency says cannot be met —
    /// predicted wait (queue depth, batch width, EWMA flush latency, see
    /// [`predicted_wait`](crate::predicted_wait)) strictly exceeding the
    /// budget refuses with [`SubmitError::Infeasible`] (not counted as a
    /// shed — [`LaneMetricsSnapshot::infeasible`] records it separately).
    /// Inert until the lane has served
    /// [`FeasibilityPolicy::min_flushes`] flushes, so a cold estimator
    /// never refuses anything.
    pub feasibility: Option<FeasibilityPolicy>,
}

impl ShedPolicy {
    /// Never shed (the default): requests queue or block under plain
    /// backpressure.
    pub fn disabled() -> Self {
        Self::default()
    }

    fn validate(&self) {
        if let Some(depth) = self.max_queue_depth {
            assert!(depth >= 1, "ShedPolicy: max_queue_depth must be >= 1");
        }
    }

    /// Whether the depth threshold refuses a request seeing `queue_depth`
    /// entries already queued. Pure; monotone in `queue_depth`.
    pub fn sheds_on_depth(&self, queue_depth: usize) -> bool {
        self.max_queue_depth.is_some_and(|max| queue_depth >= max)
    }

    /// Whether the warming-feasibility threshold refuses a blocking request
    /// with delay budget `delay` submitted to a still-warming lane. Pure;
    /// anti-monotone in `delay` (a shorter budget never un-sheds).
    pub fn sheds_on_warming_delay(&self, delay: Duration) -> bool {
        self.min_warming_delay.is_some_and(|min| delay < min)
    }

    /// Whether the feasibility threshold refuses a request with delay
    /// budget `delay`, given the lane's flush-latency `estimate` (already
    /// gated on the cold-start sample count — `None` never refuses). Pure;
    /// delegates to [`FeasibilityPolicy::sheds`], exclusive boundary.
    pub fn sheds_on_infeasibility(
        &self,
        queued: usize,
        max_batch: usize,
        estimate: Option<Duration>,
        delay: Duration,
    ) -> bool {
        self.feasibility
            .is_some_and(|p| p.sheds(queued, max_batch, estimate, delay))
    }

    /// The full shed decision for a blocking submit, as the lane's enqueue
    /// path applies it: a request that seeds its lane's warm-up is never
    /// shed; otherwise the depth threshold applies always and the
    /// warming-delay threshold applies while the lane is warming. Pure —
    /// this is the function the shed proptests pin down; the submit path
    /// calls the same component predicates.
    pub fn should_shed(
        &self,
        queue_depth: usize,
        warming: bool,
        delay: Duration,
        seeds_warmup: bool,
    ) -> bool {
        !seeds_warmup
            && (self.sheds_on_depth(queue_depth) || (warming && self.sheds_on_warming_delay(delay)))
    }
}

/// Per-lane circuit breaker: after this many *consecutive* batch panics the
/// lane stops serving and quarantines its shape. Disabled by default.
///
/// Breaking exists to stop a poisoned shape from thrashing
/// evict → replan → panic forever: without it, a shape whose every batch
/// panics keeps its lane live (each panic fails only its own batch) and
/// keeps accepting traffic. With a breaker armed, the tripped lane exits
/// [`LaneState::Quarantined`], its still-queued requests fail with
/// [`ServeError::LaneQuarantined`], and new submits of the shape are
/// refused up front with [`SubmitError::Quarantined`] until
/// [`BreakerPolicy::cooldown`] elapses — then exactly one **half-open
/// probe** lane is created for the shape (its breaker threshold is 1): one
/// clean flush restores the shape to full service, one panic re-trips the
/// quarantine for another cool-down. A warm-up plan panic on a
/// breaker-armed lane trips the quarantine immediately (threshold 1 —
/// nothing can execute without a plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Trip after this many uninterrupted batch panics (`None` disables the
    /// breaker). Must be non-zero when set. Probe lanes always use an
    /// effective threshold of 1, whatever is configured here.
    pub max_consecutive_panics: Option<u32>,
    /// How long a tripped shape is refused before the half-open probe.
    pub cooldown: Duration,
}

impl BreakerPolicy {
    /// Never trip (the default): a panicking lane keeps serving, each panic
    /// failing only its own batch.
    pub fn disabled() -> Self {
        Self {
            max_consecutive_panics: None,
            cooldown: Duration::from_millis(100),
        }
    }

    fn validate(&self) {
        if let Some(n) = self.max_consecutive_panics {
            assert!(n >= 1, "BreakerPolicy: max_consecutive_panics must be >= 1");
        }
    }
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

/// What happens to a request that is already past its deadline when its
/// batch is assembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlinePolicy {
    /// Execute late (the default): the deadline only *times the flush*; a
    /// request whose budget expired still runs in the next batch.
    #[default]
    Soft,
    /// Fail late requests at flush with [`ServeError::DeadlineExceeded`]
    /// instead of executing them — for callers that cannot use a stale
    /// gradient. A request is failed only when it is past its deadline by
    /// **more than `grace`** at batch-assembly time: the request whose
    /// deadline *triggered* the flush is, by construction, exactly at its
    /// deadline when assembly starts, so a zero grace would fail every
    /// deadline-flushed request. Pick a grace above scheduling jitter
    /// (tens of microseconds to a few milliseconds) and below the
    /// staleness the caller can tolerate.
    Hard {
        /// Lateness tolerated before a request is failed rather than run.
        grace: Duration,
    },
}

/// Tuning knobs of a [`BppsaService`].
///
/// Not `Copy` (the [`FaultInjector`] shares its schedule by `Arc`); clone
/// freely — a clone shares the same fault schedule and is otherwise a
/// plain value.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Flush a lane as soon as this many requests are pending (also the
    /// upper bound on one fan-out's width). Must be non-zero.
    pub max_batch: usize,
    /// Default per-request delay budget for [`BppsaService::submit`]: the
    /// longest a request waits for co-batchable traffic before its lane
    /// flushes below `max_batch`.
    pub max_delay: Duration,
    /// Per-lane pending-request bound; submissions beyond it block (or
    /// return [`SubmitError::Backpressure`] from
    /// [`BppsaService::try_submit`]). Must be non-zero.
    pub queue_cap: usize,
    /// Most-recently-used cap on concurrently live lanes (distinct chain
    /// shapes); the least recently used lane beyond it is drained and
    /// retired. Must be non-zero.
    pub max_lanes: usize,
    /// Workspace-pool capacity per lane; `0` sizes to the shared scan
    /// pool's worker count + 1 (every worker plus the dispatcher can hold a
    /// workspace without blocking).
    pub workspaces_per_lane: usize,
    /// Load-shedding thresholds (disabled by default).
    pub shed: ShedPolicy,
    /// Consecutive-batch-panic circuit breaker + shape quarantine
    /// (disabled by default).
    pub breaker: BreakerPolicy,
    /// What to do with requests already past their deadline at flush
    /// ([`DeadlinePolicy::Soft`] — execute late — by default).
    pub deadline: DeadlinePolicy,
    /// Budget/backoff/jitter for [`BppsaService::submit_retrying`] and for
    /// `bppsa-models`' served training paths.
    pub retry: RetryPolicy,
    /// Metrics-registry bound: once more than this many lanes have ever
    /// been created, terminal (retired/quarantined) lanes' metrics fold —
    /// oldest first — into the [`RetiredRollup`](crate::RetiredRollup)
    /// until the registry is back at the cap, and their dispatchers'
    /// already-finished `JoinHandle`s are reaped. Live lanes are never
    /// folded, so the registry can still exceed the cap transiently while
    /// more than `retired_metrics_cap` lanes are actually serving.
    pub retired_metrics_cap: usize,
    /// Fault-injection schedule (the disabled no-op by default — a single
    /// branch per injection point, nothing on the steady-state path).
    pub faults: FaultInjector,
    /// Global memory budget shared by every lane's workspace pool (`None`
    /// — the default — is unbudgeted). With a budget armed, pool growth
    /// and warm-up prewarming reserve bytes against it: exhaustion makes
    /// checkout fall back to blocking on already-owned workspaces instead
    /// of allocating, and lane creation under exhaustion evicts the
    /// least-recently-used lane (or refuses with
    /// [`SubmitError::MemoryPressure`] when nothing is evictable) — a
    /// shape storm can never allocate past the budget. Share one `Arc`
    /// across services to bound a whole process.
    pub memory: Option<Arc<MemoryBudget>>,
    /// Flush-stall watchdog (`None` — the default — disables it). When
    /// armed, a per-service supervisor thread polls every lane's published
    /// in-flight flush and condemns any lane stuck in execution past the
    /// stall budget: its assembled requests fail with
    /// [`ServeError::FlushStalled`], its queue drains with
    /// [`ServeError::LaneQuarantined`] (chains handed back), and the shape
    /// quarantines for the breaker cool-down — no ticket ever hangs on a
    /// wedged kernel. Off the hot path: the dispatcher's extra cost is one
    /// mutex update per *flush*, not per request.
    pub watchdog: Option<WatchdogPolicy>,
    /// Brownout controller (`None` — the default — disables it). When
    /// armed (the supervisor thread runs if either this or
    /// [`watchdog`](Self::watchdog) is set), sustained overload — shed +
    /// infeasible refusal rate, memory-budget utilization — steps each
    /// lane down through [`BrownoutLevel`]s (skip segmentation, halve
    /// batch width, decline cold shapes) with hysteresis, and back up on
    /// recovery. The level is visible in
    /// [`LaneMetricsSnapshot::brownout_level`].
    pub brownout: Option<BrownoutPolicy>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            max_delay: Duration::from_millis(1),
            queue_cap: 64,
            max_lanes: bppsa_core::PLAN_CACHE_CAPACITY,
            workspaces_per_lane: 0,
            shed: ShedPolicy::disabled(),
            breaker: BreakerPolicy::disabled(),
            deadline: DeadlinePolicy::Soft,
            retry: RetryPolicy::default(),
            retired_metrics_cap: 256,
            faults: FaultInjector::disabled(),
            memory: None,
            watchdog: None,
            brownout: None,
        }
    }
}

impl ServeConfig {
    fn validate(&self) {
        assert!(self.max_batch >= 1, "ServeConfig: max_batch must be >= 1");
        assert!(self.queue_cap >= 1, "ServeConfig: queue_cap must be >= 1");
        assert!(self.max_lanes >= 1, "ServeConfig: max_lanes must be >= 1");
        self.shed.validate();
        self.breaker.validate();
        self.retry.validate();
        if let Some(watchdog) = self.watchdog {
            watchdog.validate();
        }
        if let Some(brownout) = self.brownout {
            brownout.validate();
        }
    }

    fn workspace_capacity(&self) -> usize {
        if self.workspaces_per_lane == 0 {
            global_pool().size() + 1
        } else {
            self.workspaces_per_lane
        }
    }
}

/// Why a submission was refused; the chain is always handed back for retry
/// or disposal.
#[derive(Debug)]
pub enum SubmitError<S> {
    /// The service is shutting down (or already shut down).
    Shutdown(JacobianChain<S>),
    /// [`BppsaService::try_submit`] only: the target lane's queue is full.
    Backpressure(JacobianChain<S>),
    /// The ticket already has a request in flight — one flight per ticket
    /// at a time.
    TicketInFlight(JacobianChain<S>),
    /// [`BppsaService::try_submit`] only: the target lane is still
    /// [`Warming`](LaneState::Warming) (its plan is being built on the
    /// dispatcher thread). Retry, block via [`BppsaService::submit`], or
    /// route elsewhere.
    LaneWarming(JacobianChain<S>),
    /// The [`ShedPolicy`] refused the request (queue too deep, or the delay
    /// budget is infeasible while the lane warms).
    Shed(JacobianChain<S>),
    /// The chain's shape is quarantined: a lane of this shape tripped its
    /// [`BreakerPolicy`] (or is mid-probe) and the cool-down has not
    /// produced a successful half-open probe yet. Transient — retry after
    /// the cool-down (e.g. via [`BppsaService::submit_retrying`]), or
    /// route the work elsewhere.
    Quarantined(JacobianChain<S>),
    /// The lane's own measured flush latency says the request cannot meet
    /// its delay budget (see [`ShedPolicy::feasibility`]): the predicted
    /// queue wait already exceeds the deadline, so queueing it would only
    /// burn a batch slot on a guaranteed miss. **Not transient** — an
    /// immediate retry faces the same queue and the same estimate; retry
    /// with a larger budget, or route elsewhere.
    Infeasible(JacobianChain<S>),
    /// The service is under memory pressure: the configured
    /// [`MemoryBudget`] is exhausted and creating a lane for this (cold)
    /// shape was refused — either nothing was evictable, or the brownout
    /// controller is at [`BrownoutLevel::DeclineColdShapes`]. Transient —
    /// pressure subsides as lanes retire and release their workspaces.
    MemoryPressure(JacobianChain<S>),
}

/// The chain-free identity of a [`SubmitError`] — `Copy`, comparable, and
/// displayable, for surfacing a refusal through layers that must not carry
/// the (potentially large) chain along, e.g. `bppsa-models`' typed
/// retry-exhaustion errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitRefusal {
    /// See [`SubmitError::Shutdown`].
    Shutdown,
    /// See [`SubmitError::Backpressure`].
    Backpressure,
    /// See [`SubmitError::TicketInFlight`].
    TicketInFlight,
    /// See [`SubmitError::LaneWarming`].
    LaneWarming,
    /// See [`SubmitError::Shed`].
    Shed,
    /// See [`SubmitError::Quarantined`].
    Quarantined,
    /// See [`SubmitError::Infeasible`].
    Infeasible,
    /// See [`SubmitError::MemoryPressure`].
    MemoryPressure,
}

impl SubmitRefusal {
    /// Whether retrying can ever help: `true` for the transient refusals
    /// ([`Backpressure`](Self::Backpressure),
    /// [`LaneWarming`](Self::LaneWarming), [`Shed`](Self::Shed),
    /// [`Quarantined`](Self::Quarantined),
    /// [`MemoryPressure`](Self::MemoryPressure)); `false` for
    /// [`Shutdown`](Self::Shutdown) (permanent),
    /// [`TicketInFlight`](Self::TicketInFlight) (a caller bug), and
    /// [`Infeasible`](Self::Infeasible) — an immediate retry of an
    /// infeasible request faces the same queue and the same latency
    /// estimate, so backing off and resubmitting only deepens the
    /// overload the refusal exists to relieve.
    pub fn is_transient(self) -> bool {
        !matches!(
            self,
            SubmitRefusal::Shutdown | SubmitRefusal::TicketInFlight | SubmitRefusal::Infeasible
        )
    }
}

impl std::fmt::Display for SubmitRefusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitRefusal::Shutdown => write!(f, "service is shutting down"),
            SubmitRefusal::Backpressure => write!(f, "lane queue is full"),
            SubmitRefusal::TicketInFlight => {
                write!(f, "ticket already has a request in flight")
            }
            SubmitRefusal::LaneWarming => {
                write!(f, "lane is still warming (plan being built)")
            }
            SubmitRefusal::Shed => write!(f, "request shed by load-shedding policy"),
            SubmitRefusal::Quarantined => {
                write!(f, "chain shape is quarantined by a tripped circuit breaker")
            }
            SubmitRefusal::Infeasible => {
                write!(f, "predicted queue wait exceeds the request's delay budget")
            }
            SubmitRefusal::MemoryPressure => {
                write!(f, "memory budget exhausted; cold-shape lane refused")
            }
        }
    }
}

impl std::error::Error for SubmitRefusal {}

impl<S> SubmitError<S> {
    /// Reclaims the refused chain.
    pub fn into_chain(self) -> JacobianChain<S> {
        match self {
            SubmitError::Shutdown(c)
            | SubmitError::Backpressure(c)
            | SubmitError::TicketInFlight(c)
            | SubmitError::LaneWarming(c)
            | SubmitError::Shed(c)
            | SubmitError::Quarantined(c)
            | SubmitError::Infeasible(c)
            | SubmitError::MemoryPressure(c) => c,
        }
    }

    /// The refusal's chain-free identity (see [`SubmitRefusal`]).
    pub fn kind(&self) -> SubmitRefusal {
        match self {
            SubmitError::Shutdown(_) => SubmitRefusal::Shutdown,
            SubmitError::Backpressure(_) => SubmitRefusal::Backpressure,
            SubmitError::TicketInFlight(_) => SubmitRefusal::TicketInFlight,
            SubmitError::LaneWarming(_) => SubmitRefusal::LaneWarming,
            SubmitError::Shed(_) => SubmitRefusal::Shed,
            SubmitError::Quarantined(_) => SubmitRefusal::Quarantined,
            SubmitError::Infeasible(_) => SubmitRefusal::Infeasible,
            SubmitError::MemoryPressure(_) => SubmitRefusal::MemoryPressure,
        }
    }
}

impl<S> std::fmt::Display for SubmitError<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.kind().fmt(f)
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // Queue and router state are value-only; a panicking holder leaves them
    // consistent (panics inside a flush are caught before this layer).
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Reverts a `begin_flight` when routing panics: an invalid chain fails
/// [`LaneShape::of`]'s validation on the router-miss path — after the
/// ticket was marked in flight — and the ticket must come back *idle*
/// (reusable), not stranded `Pending`. Forgotten on the non-panicking
/// path. Validation itself lives only on the miss path because a chain
/// that matches an existing lane's shape key is valid by construction
/// (the key pins seed width and every per-layer pattern, and the lane's
/// template was validated at creation) — the steady-state submit pays no
/// extra chain walk.
struct FlightGuard<'a, S>(&'a TicketShared<S>);

impl<S> Drop for FlightGuard<'_, S> {
    fn drop(&mut self) {
        self.0.abort_flight();
    }
}

/// The routing identity of a lane, extractable without planning: seed width
/// plus the per-layer sparsity patterns. Matching delegates to the same
/// [`chain_matches_shape`] predicate as
/// [`PlannedScan::matches`](bppsa_core::PlannedScan::matches)
/// (allocation-free, `Arc`-pointer fast path) — a warming lane (no plan
/// yet) routes identically to a live one, and routing cannot drift from
/// plan compatibility. Clones share the pattern `Arc`s (quarantine entries
/// key on a cloned shape).
#[derive(Clone)]
struct LaneShape {
    seed_len: usize,
    patterns: Vec<Arc<SparsityPattern>>,
}

impl LaneShape {
    /// Extracts the shape key.
    ///
    /// # Panics
    ///
    /// Panics if the chain is structurally invalid or not all-CSR — *before*
    /// any router state is touched, so a bad submit can never evict or
    /// orphan an existing lane.
    fn of<S: Scalar>(chain: &JacobianChain<S>) -> Self {
        chain.validate();
        let patterns = chain
            .jacobians()
            .iter()
            .map(|jt| match jt {
                ScanElement::Sparse(m) => m.pattern(),
                other => panic!("BppsaService: chain must be all-CSR, found {other}"),
            })
            .collect();
        Self {
            seed_len: chain.seed().len(),
            patterns,
        }
    }

    fn matches<S: Scalar>(&self, chain: &JacobianChain<S>) -> bool {
        chain_matches_shape(chain, self.seed_len, &self.patterns)
    }

    /// Shape-to-shape identity, mirroring [`LaneShape::matches`]'s chain
    /// semantics: same seed width, same per-layer patterns (`Arc`-pointer
    /// fast path, structural fallback — distinct chains of one shape
    /// family carry distinct pattern `Arc`s).
    fn same_as(&self, other: &LaneShape) -> bool {
        self.seed_len == other.seed_len
            && self.patterns.len() == other.patterns.len()
            && self
                .patterns
                .iter()
                .zip(&other.patterns)
                .all(|(a, b)| Arc::ptr_eq(a, b) || a == b)
    }
}

/// How the quarantine book answers a routing request for a shape.
enum Admission {
    /// Not quarantined: route normally.
    Clear,
    /// Quarantined and cooling down (or a probe is already in flight):
    /// refuse with [`SubmitError::Quarantined`].
    Refuse,
    /// Cool-down elapsed and this caller won the half-open slot: create
    /// the lane as a **probe** (breaker threshold 1; its first clean flush
    /// clears the quarantine).
    Probe,
}

/// The per-service registry of quarantined shapes, shared (`Arc`) between
/// the router and every lane so a dispatcher can trip/clear its shape
/// without reaching back into the router (no router↔lane lock cycle: the
/// book's lock is a leaf — taken with the router lock held on the routing
/// miss path, but never the other way around).
#[derive(Default)]
struct QuarantineBook {
    entries: Mutex<Vec<QuarantineEntry>>,
    /// Submits refused because their shape was quarantined (the realized
    /// refusal rate under a panicking shape — also what the
    /// `serve_recovery` bench reports).
    refused: AtomicU64,
}

struct QuarantineEntry {
    shape: LaneShape,
    /// End of the cool-down; admissions before it are refused.
    until: Instant,
    /// A half-open probe lane is in flight: further admissions are refused
    /// until the probe proves (entry removed) or re-trips (cool-down
    /// extended) — exactly one prober at a time keeps recovery
    /// deterministic.
    probing: bool,
}

impl QuarantineBook {
    /// The routing decision for `chain` at `now`.
    fn admit<S: Scalar>(&self, chain: &JacobianChain<S>, now: Instant) -> Admission {
        let mut entries = lock(&self.entries);
        let Some(entry) = entries.iter_mut().find(|e| e.shape.matches(chain)) else {
            return Admission::Clear;
        };
        if entry.probing || now < entry.until {
            self.refused.fetch_add(1, Ordering::Relaxed);
            return Admission::Refuse;
        }
        entry.probing = true;
        Admission::Probe
    }

    /// Trips (or re-trips) the quarantine for `shape`: refusals until
    /// `now + cooldown`, then one probe.
    fn trip(&self, shape: &LaneShape, cooldown: Duration, now: Instant) {
        let mut entries = lock(&self.entries);
        if let Some(entry) = entries.iter_mut().find(|e| e.shape.same_as(shape)) {
            entry.until = now + cooldown;
            entry.probing = false;
        } else {
            entries.push(QuarantineEntry {
                shape: shape.clone(),
                until: now + cooldown,
                probing: false,
            });
        }
    }

    /// A probe lane flushed cleanly: the shape returns to full service.
    fn clear(&self, shape: &LaneShape) {
        let mut entries = lock(&self.entries);
        entries.retain(|e| !e.shape.same_as(shape));
    }

    /// A probe lane exited without proving (evicted, shut down, drained
    /// empty): release the half-open slot so the next submit of the shape
    /// probes again instead of being refused forever. No-op unless a probe
    /// is actually in flight for `shape` — after a re-trip (`probing`
    /// already false) or a clear (entry gone) there is nothing to release.
    fn abort_probe(&self, shape: &LaneShape) {
        let mut entries = lock(&self.entries);
        if let Some(entry) = entries.iter_mut().find(|e| e.shape.same_as(shape)) {
            entry.probing = false;
        }
    }

    fn refusals(&self) -> u64 {
        self.refused.load(Ordering::Relaxed)
    }

    /// Shapes currently under quarantine (cooling down or mid-probe).
    fn len(&self) -> usize {
        lock(&self.entries).len()
    }
}

struct PendingRequest<S> {
    chain: JacobianChain<S>,
    deadline: Instant,
    ticket: Arc<TicketShared<S>>,
}

struct LaneQueue<S> {
    pending: VecDeque<PendingRequest<S>>,
    /// `false` once the lane is evicted or the service shuts down: the
    /// dispatcher drains what is queued, completes it, and exits; new
    /// pushes are refused.
    open: bool,
}

/// Why a [`Lane::push`] was refused.
enum PushRefusal {
    /// Lane closed (evicted or shutting down) — re-route.
    Closed,
    /// Queue full and the caller asked not to block.
    Full,
    /// Lane still planning and the caller asked not to block.
    Warming,
    /// The shed policy refused the request.
    Shed,
    /// The feasibility estimator refused the request (predicted wait
    /// exceeds the delay budget).
    Infeasible,
}

/// The flush currently inside [`BatchedBackward::execute`], published by
/// the dispatcher for the stall watchdog. `active` is armed after batch
/// assembly (before the `FlushTiming` injection point, so scripted stalls
/// are watchdog-visible) and disarmed when the flush returns; the tickets
/// travel with their flight tokens so a condemnation races safely against
/// a late-waking dispatcher (exactly one side completes each ticket — see
/// `TicketShared::finish_if`). The vector's capacity is reserved once at
/// lane creation: arming is a truncate-and-extend into owned storage,
/// allocation-free in the steady state.
struct InFlight<S> {
    tickets: Vec<(Arc<TicketShared<S>>, u64)>,
    started: Instant,
    active: bool,
}

struct Lane<S> {
    shape: LaneShape,
    /// Set by the dispatcher once planning + workspace construction finish
    /// (the lane's `Warming → Live` transition). Submitters never touch it.
    batched: OnceLock<BatchedBackward<S>>,
    queue: Mutex<LaneQueue<S>>,
    /// Dispatcher wakeup: request arrived or lane closed.
    submitted: Condvar,
    /// Submitter wakeup: the dispatcher drained queue room.
    space: Condvar,
    lane_id: usize,
    max_batch: usize,
    queue_cap: usize,
    shed: ShedPolicy,
    /// Effective consecutive-panic trip threshold: `None` = breaker
    /// disabled; probe lanes get `Some(1)` whatever the config says.
    breaker_threshold: Option<u32>,
    /// Cool-down applied when this lane trips.
    cooldown: Duration,
    deadline_policy: DeadlinePolicy,
    faults: FaultInjector,
    /// The service's quarantine registry (shared so the dispatcher can
    /// trip/clear/abort its shape without the router).
    book: Arc<QuarantineBook>,
    /// Whether this lane is a half-open probe for a quarantined shape.
    probe: bool,
    metrics: Arc<LaneMetrics>,
    /// The watchdog declared this lane stalled and took its tickets over:
    /// the dispatcher, should its wedged flush ever return, must exit
    /// without completing tickets or clearing the quarantine.
    condemned: AtomicBool,
    /// The flush currently executing, for the watchdog (see [`InFlight`]).
    inflight: Mutex<InFlight<S>>,
}

impl<S: Scalar> Lane<S> {
    /// A placeholder lane: shape key, bounded queue, metrics — everything a
    /// submitter needs to route and enqueue, and nothing that requires
    /// planning. Cheap enough to build under the router lock; the plan and
    /// workspace pool are late-bound by the dispatcher ([`warm_up`]).
    fn placeholder(
        shape: LaneShape,
        config: &ServeConfig,
        lane_id: usize,
        probe: bool,
        book: Arc<QuarantineBook>,
    ) -> Self {
        let metrics = Arc::new(LaneMetrics::new(
            lane_id,
            shape.patterns.len(),
            shape.seed_len,
            config.max_batch,
            probe,
        ));
        // A probe must prove itself on its very first flush: any panic
        // re-trips, whatever threshold full-service lanes get.
        let breaker_threshold =
            config
                .breaker
                .max_consecutive_panics
                .map(|n| if probe { 1 } else { n });
        Self {
            shape,
            batched: OnceLock::new(),
            queue: Mutex::new(LaneQueue {
                pending: VecDeque::with_capacity(config.queue_cap),
                open: true,
            }),
            submitted: Condvar::new(),
            space: Condvar::new(),
            lane_id,
            max_batch: config.max_batch,
            queue_cap: config.queue_cap,
            shed: config.shed,
            breaker_threshold,
            cooldown: config.breaker.cooldown,
            deadline_policy: config.deadline,
            faults: config.faults.clone(),
            book,
            probe,
            metrics,
            condemned: AtomicBool::new(false),
            inflight: Mutex::new(InFlight {
                tickets: Vec::with_capacity(config.max_batch),
                started: Instant::now(),
                active: false,
            }),
        }
    }
}

impl<S> Lane<S> {
    /// Enqueues a request, blocking on a full queue when `block` (the
    /// bounded-queue backpressure). `seed` marks the request that created
    /// the lane — it is the template the plan will be built from, so the
    /// warming refusal/shed checks never apply to it. Refusals hand the
    /// chain back.
    fn push(
        &self,
        chain: JacobianChain<S>,
        deadline: Instant,
        delay: Duration,
        ticket: Arc<TicketShared<S>>,
        block: bool,
        seed: bool,
    ) -> Result<(), (JacobianChain<S>, PushRefusal)> {
        let mut q = lock(&self.queue);
        loop {
            if !q.open {
                return Err((chain, PushRefusal::Closed));
            }
            // The request that seeds the warm-up is exempt from every
            // shed/warming check: the lane-creating request by definition,
            // but also *any* request reaching a warming lane whose queue is
            // still empty — the creator may never have pushed (e.g. a
            // `TicketInFlight` refusal after `route()` created the lane),
            // and the dispatcher plans from the first queued chain,
            // whoever's it is. Refusing it would starve the lane: it
            // would sit in `Warming` refusing non-blocking traffic forever.
            let warming = self.metrics.state() == LaneState::Warming;
            let seeds_warmup = seed || (warming && q.pending.is_empty());
            if !seeds_warmup {
                // Same arithmetic as the pure `ShedPolicy::should_shed`
                // (pinned by proptest), applied in refusal-precedence
                // order: the depth threshold sheds in both modes, then a
                // warming lane refuses non-blocking callers (they can
                // route traffic elsewhere), then a blocking request whose
                // delay budget the warm-up would consume anyway is shed;
                // everyone else queues (or parks below on a full queue).
                if self.shed.sheds_on_depth(q.pending.len()) {
                    self.metrics.record_shed();
                    return Err((chain, PushRefusal::Shed));
                }
                if warming {
                    if !block {
                        return Err((chain, PushRefusal::Warming));
                    }
                    if self.shed.sheds_on_warming_delay(delay) {
                        self.metrics.record_shed();
                        return Err((chain, PushRefusal::Shed));
                    }
                }
                // Feasibility last (it is the most speculative refusal):
                // the lane's own EWMA flush latency predicts this request's
                // queue wait; a predicted miss is refused up front instead
                // of burning a batch slot on a guaranteed deadline miss.
                // The estimate is `None` until the estimator has
                // `min_flushes` samples — a cold lane never refuses on
                // feasibility — so this costs one armed-policy branch plus
                // two relaxed atomic loads, and nothing at all when the
                // policy is off.
                if let Some(policy) = self.shed.feasibility {
                    let estimate = self.metrics.flush_estimate(policy.min_flushes);
                    if policy.sheds(q.pending.len(), self.max_batch, estimate, delay) {
                        self.metrics.record_infeasible();
                        return Err((chain, PushRefusal::Infeasible));
                    }
                }
            }
            if q.pending.len() < self.queue_cap {
                break;
            }
            if !block {
                return Err((chain, PushRefusal::Full));
            }
            q = self.space.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
        q.pending.push_back(PendingRequest {
            chain,
            deadline,
            ticket,
        });
        self.metrics.record_submit(q.pending.len());
        drop(q);
        self.submitted.notify_one();
        Ok(())
    }

    /// Closes the lane: the dispatcher drains the remaining queue (every
    /// accepted request still completes) and exits; new pushes re-route.
    fn close(&self) {
        self.metrics.mark_draining();
        let mut q = lock(&self.queue);
        q.open = false;
        drop(q);
        self.submitted.notify_all();
        self.space.notify_all();
    }

    /// Closes the lane and fails everything it accepted with `err` — the
    /// drain used by every "this lane can never serve" exit (warm-up
    /// panic, breaker trip, dispatcher death). Chains are handed back,
    /// every waiter wakes, and parked submitters re-route.
    fn fail_queue(&self, err: ServeError) {
        self.close();
        let mut q = lock(&self.queue);
        while let Some(req) = q.pending.pop_front() {
            req.ticket.finish(req.chain, Some(err));
        }
        drop(q);
        self.metrics.record_failed_drain();
        self.space.notify_all();
    }

    /// Watchdog takeover of a stalled lane (supervisor thread only): fails
    /// the published in-flight tickets with [`ServeError::FlushStalled`]
    /// (no chain handed back — the chains are captive in the wedged
    /// execution), drains the queue with [`ServeError::LaneQuarantined`]
    /// (those chains *are* handed back), and quarantines the shape for the
    /// breaker cool-down so recovery goes through the usual half-open
    /// probe. The token-guarded `finish_if` makes the race against a
    /// late-waking dispatcher safe: exactly one side completes each
    /// ticket, and the condemned flag stops the dispatcher from clearing
    /// the quarantine its wedged flush never earned.
    fn condemn_stalled(&self, now: Instant) {
        self.condemned.store(true, Ordering::Release);
        let mut inflight = lock(&self.inflight);
        if inflight.active {
            inflight.active = false;
            for (ticket, token) in inflight.tickets.drain(..) {
                ticket.finish_if(token, None, Some(ServeError::FlushStalled));
            }
        }
        drop(inflight);
        self.book.trip(&self.shape, self.cooldown, now);
        self.metrics.record_stalled();
        self.metrics.mark_quarantined();
        self.fail_queue(ServeError::LaneQuarantined);
    }
}

/// Chains at least this deep plan segment-parallel execution
/// ([`BppsaOptions::segmented`]) when their lane warms up. Below it, the
/// batch-level fan-out of [`BatchedBackward`] is parallelism enough and
/// segmentation would only add stitch overhead per request.
pub const LANE_SEGMENT_MIN_LAYERS: usize = 1024;

/// Segments a deep-chain lane requests at warm-up. Two keeps every segment
/// heavy (half the chain each) and maps onto small worker pools without
/// idle groups; genuinely wide hosts can revisit this alongside the
/// multi-core re-baselining (see ROADMAP).
pub const LANE_SEGMENTS: usize = 2;

/// The plan options a lane's warm-up uses for a `layers`-deep chain: deep
/// chains (≥ [`LANE_SEGMENT_MIN_LAYERS`]) transparently pick
/// segment-parallel pooled execution; everything else plans serial and
/// relies on the batch-level fan-out. Pure — pinned by unit test, surfaced
/// per lane via [`LaneMetricsSnapshot::plan_segments`](crate::LaneMetricsSnapshot::plan_segments).
pub fn lane_plan_options(layers: usize) -> BppsaOptions {
    if layers >= LANE_SEGMENT_MIN_LAYERS {
        BppsaOptions::pooled().segmented(LANE_SEGMENTS)
    } else {
        BppsaOptions::serial()
    }
}

/// The warming phase of a lane's dispatcher: wait for the lane's first
/// request, build the compiled plan and workspace pool from it **off the
/// router lock**, and publish them (`Warming → Live`). Returns `false` when
/// the lane should retire without serving: closed before any request
/// arrived, or planning panicked (every accepted request is then failed
/// with [`ServeError::PlanPanicked`] instead of hanging its ticket).
fn warm_up<S: Scalar>(lane: &Lane<S>, config: &ServeConfig) -> bool {
    let template = {
        let mut q = lock(&lane.queue);
        loop {
            if let Some(front) = q.pending.front() {
                // Clone the template under the lock (cold path, once per
                // lane); planning reads only its patterns and shapes.
                break front.chain.clone();
            }
            if !q.open {
                return false; // closed empty: retire without a plan
            }
            q = lane
                .submitted
                .wait(q)
                .unwrap_or_else(PoisonError::into_inner);
        }
    };
    let warm_start = Instant::now();
    let built = catch_unwind(AssertUnwindSafe(|| {
        // Injection point: a scripted/seeded plan panic exercises the
        // PlanPanicked drain (and plan-panic quarantine); a stall extends
        // the Warming window deterministically.
        lane.faults
            .fire(InjectionPoint::PlanBuild { lane: lane.lane_id });
        // Brownout at `NoSegmentation` or deeper plans this lane serial:
        // segment-parallel execution multiplies per-workspace footprint
        // and worker-pool contention — exactly what a pressured service
        // wants less of. (The level was seeded from the service-wide
        // brownout at lane creation; a lane created calm keeps its
        // segmented plan even if pressure arrives later — replanning is
        // the costlier evil.)
        let options = if lane.metrics.brownout() >= BrownoutLevel::NoSegmentation {
            BppsaOptions::serial()
        } else {
            lane_plan_options(template.num_layers())
        };
        let plan = Arc::new(PlannedScan::plan(&template, options));
        let capacity = config.workspace_capacity();
        // A configured memory budget makes pool growth a *reservation*:
        // prewarming stops at the budget (best effort) and steady-state
        // checkout falls back to blocking on already-owned workspaces
        // instead of allocating past it.
        let batched =
            BatchedBackward::with_capacity_budgeted(plan, capacity, config.memory.clone());
        batched.prewarm(config.max_batch.min(capacity));
        batched
    }));
    match built {
        Ok(batched) => {
            lane.metrics
                .record_warmup(batched.plan().build_time(), warm_start.elapsed());
            lane.metrics.record_plan_profile(
                batched.plan().plan_kind(),
                batched.plan().kernel_counts(),
                batched.plan().segments(),
            );
            let stored = lane.batched.set(batched);
            debug_assert!(stored.is_ok(), "warm-up runs exactly once per lane");
            lane.metrics.mark_live();
            true
        }
        Err(_) => {
            // Shape validity was checked at submit, so a planner panic here
            // is an internal bug — but it must not hang tickets. With a
            // breaker armed, it also quarantines the shape immediately
            // (nothing can execute without a plan, so the effective
            // threshold is 1): without that, a plan-panicking shape would
            // thrash evict → re-create → re-plan → panic on every submit.
            if lane.breaker_threshold.is_some() {
                lane.book.trip(&lane.shape, lane.cooldown, Instant::now());
                lane.metrics.mark_quarantined();
            }
            lane.fail_queue(ServeError::PlanPanicked);
            false
        }
    }
}

/// What a lane's dispatcher should do next, given the pending requests'
/// deadlines, the queue's open flag, and the time. Pure — extracted from
/// the dispatcher's wait loop so the deadline-ordering proptest can pin the
/// timer arithmetic without threads; the dispatcher calls exactly this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushDecision {
    /// Flush now, attributing the batch to this cause.
    Flush(FlushCause),
    /// Nothing is due yet: sleep until the **earliest** pending deadline
    /// (re-deciding on any new arrival). Deadlines are submit-time +
    /// per-request budget, so arrival order does not order them — a
    /// short-budget request queued behind long-budget ones still bounds
    /// the wait.
    WaitUntil(Instant),
    /// Queue empty and open: park until a request arrives.
    Park,
    /// Queue empty and closed: drained — the dispatcher retires.
    Retire,
}

/// The dispatcher's flush-timing decision (see [`FlushDecision`]):
/// `deadlines` are the pending requests' absolute deadlines (any order),
/// `open` whether the lane still accepts work, `max_batch` the flush width
/// cap, `now` the decision time. Allocation-free; O(pending).
pub fn flush_decision(
    deadlines: impl IntoIterator<Item = Instant>,
    open: bool,
    max_batch: usize,
    now: Instant,
) -> FlushDecision {
    let mut pending = 0usize;
    let mut earliest: Option<Instant> = None;
    for deadline in deadlines {
        pending += 1;
        earliest = Some(earliest.map_or(deadline, |e| e.min(deadline)));
    }
    if pending >= max_batch {
        return FlushDecision::Flush(FlushCause::MaxBatch); // full batch never waits
    }
    let Some(earliest) = earliest else {
        return if open {
            FlushDecision::Park
        } else {
            FlushDecision::Retire
        };
    };
    if !open {
        return FlushDecision::Flush(FlushCause::Drain); // flush the remainder immediately
    }
    if now >= earliest {
        FlushDecision::Flush(FlushCause::Deadline)
    } else {
        FlushDecision::WaitUntil(earliest)
    }
}

/// Drop-guard supervision for a dispatcher thread: owns the batch scratch
/// (so an unwinding dispatcher still holds its assembled requests), and on
/// a panic that escapes every `catch_unwind` — injected dispatcher kills,
/// or an internal bug outside the guarded regions — fails everything the
/// lane holds with [`ServeError::LaneDied`] instead of leaving waiters
/// parked forever on tickets nothing will ever complete.
///
/// On *every* dispatcher exit (clean or not) the guard also releases the
/// shape's half-open probe slot if this lane held one and never proved it
/// (a probe evicted or shut down mid-flight must not wedge its shape in
/// "probing" forever); the release is a no-op after a clear or a re-trip.
struct Supervisor<'a, S: Scalar> {
    lane: &'a Lane<S>,
    chains: Vec<JacobianChain<S>>,
    tickets: Vec<Arc<TicketShared<S>>>,
    /// Flight tokens captured at assembly, parallel to `tickets`: every
    /// completion below goes through the token-guarded
    /// `finish_if`/`stage_if` so a watchdog takeover of a stalled flush
    /// can never double-complete (or cross-complete a newer flight of) a
    /// ticket this scratch still holds.
    tokens: Vec<u64>,
    deadlines: Vec<Instant>,
}

impl<'a, S: Scalar> Supervisor<'a, S> {
    fn new(lane: &'a Lane<S>) -> Self {
        Self {
            lane,
            chains: Vec::with_capacity(lane.max_batch),
            tickets: Vec::with_capacity(lane.max_batch),
            tokens: Vec::with_capacity(lane.max_batch),
            deadlines: Vec::with_capacity(lane.max_batch),
        }
    }
}

impl<S: Scalar> Drop for Supervisor<'_, S> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Everything here must be panic-free: a panic in drop during
            // unwind aborts the process. `finish`/`close`/`fail_queue`
            // absorb mutex poison and take no foreign callbacks. Ordering
            // matters: the death is recorded and the lane made unroutable
            // (queue closed, state terminal) *before* any ticket fails, so
            // a waiter woken by a `LaneDied` outcome already sees the death
            // in the metrics and a resubmit routes to a fresh lane instead
            // of racing into this one's queue.
            self.lane.metrics.record_died();
            self.lane.fail_queue(ServeError::LaneDied);
            self.lane.metrics.mark_retired();
            self.deadlines.clear();
            for ((chain, ticket), token) in self
                .chains
                .drain(..)
                .zip(self.tickets.drain(..))
                .zip(self.tokens.drain(..))
            {
                // Token-guarded: if the watchdog already condemned this
                // flush (stall, then the injected panic killed the woken
                // dispatcher), its tickets are complete and must not be
                // re-finished.
                ticket.finish_if(token, Some(chain), Some(ServeError::LaneDied));
            }
        }
        self.lane.book.abort_probe(&self.lane.shape);
    }
}

/// One lane's dispatcher: warm the lane up (plan + workspaces, off the
/// router lock), then wait for work, coalesce under the deadline policy,
/// flush, repeat — exiting only once the lane is closed *and* drained. The
/// batch scratch vectors are reused across flushes, so the dispatcher's
/// steady state allocates nothing.
fn dispatcher_loop<S: Scalar>(lane: &Lane<S>, config: &ServeConfig) {
    let mut sup = Supervisor::new(lane);
    // Injection point: a scripted panic here escapes every catch_unwind —
    // the supervisor's drop guard fails the lane with `LaneDied` (the
    // "dispatcher dies outside any guarded region" failure domain).
    lane.faults
        .fire(InjectionPoint::DispatcherStart { lane: lane.lane_id });
    if !warm_up(lane, config) {
        lane.metrics.mark_retired();
        return;
    }
    let batched = lane.batched.get().expect("warm-up published the executor");
    // Counts assembled batches; scripted `BatchExecute`/`FlushTiming` rules
    // index flushes by this (assembly order), not by executed batches.
    let mut flush_idx: u64 = 0;
    loop {
        // One relaxed load per *flush cycle*, not per request: under
        // brownout the effective batch width halves (min 1) at
        // `HalfBatch` and above, trading throughput for queue drain —
        // smaller flushes return workspaces and queue room sooner.
        let max_batch = lane.metrics.brownout().effective_max_batch(lane.max_batch);
        let cause;
        let depth_after;
        {
            let mut q = lock(&lane.queue);
            cause = loop {
                // Deadlines are submit-time + per-request budget, so
                // arrival order does not order them: a short-budget request
                // queued behind long-budget ones must still flush within
                // *its own* budget. O(pending) per wake, bounded by
                // queue_cap, allocation-free.
                match flush_decision(
                    q.pending.iter().map(|r| r.deadline),
                    q.open,
                    max_batch,
                    Instant::now(),
                ) {
                    FlushDecision::Flush(cause) => break cause,
                    FlushDecision::Retire => {
                        lane.metrics.mark_retired();
                        return; // closed and drained
                    }
                    FlushDecision::Park => {
                        q = lane
                            .submitted
                            .wait(q)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    FlushDecision::WaitUntil(deadline) => {
                        q = lane
                            .submitted
                            .wait_timeout(q, deadline.saturating_duration_since(Instant::now()))
                            .unwrap_or_else(PoisonError::into_inner)
                            .0;
                    }
                }
            };
            for _ in 0..q.pending.len().min(max_batch) {
                let req = q.pending.pop_front().expect("counted above");
                sup.tokens.push(req.ticket.flight_token());
                sup.chains.push(req.chain);
                sup.tickets.push(req.ticket);
                sup.deadlines.push(req.deadline);
            }
            depth_after = q.pending.len();
        }
        lane.space.notify_all();
        // Publish the assembled flush for the stall watchdog *before* the
        // FlushTiming injection point: a scripted stall below is exactly
        // the wedged-execution failure the watchdog exists to catch, so it
        // must already be visible. One short mutex section per flush, into
        // capacity reserved at lane creation — nothing per request, no
        // allocation.
        {
            let mut inflight = lock(&lane.inflight);
            inflight.tickets.clear();
            inflight
                .tickets
                .extend(sup.tickets.iter().cloned().zip(sup.tokens.iter().copied()));
            inflight.started = Instant::now();
            inflight.active = true;
        }
        lane.metrics.tick_heartbeat();
        let flush_started = Instant::now();
        // Injection point, deliberately *outside* any catch_unwind: a stall
        // here ages the assembled batch (the hard-deadline test vector, and
        // the watchdog's scripted-stall vector); a panic kills the
        // dispatcher mid-flight with the batch scratch populated,
        // exercising the supervisor's `LaneDied` drain.
        lane.faults.fire(InjectionPoint::FlushTiming {
            lane: lane.lane_id,
            flush: flush_idx,
        });
        // Hard-deadline enforcement happens at assembly, after the flush
        // timer and any injected stall: a request whose deadline passed
        // more than `grace` ago fails with `DeadlineExceeded` instead of
        // executing. Strictly-greater-than-grace, because on a
        // deadline-cause flush the triggering request is *at* its deadline
        // by construction — zero grace would still execute it unless the
        // dispatcher overslept.
        if let DeadlinePolicy::Hard { grace } = lane.deadline_policy {
            let cutoff = Instant::now();
            let mut keep = sup.chains.len();
            let mut i = 0;
            while i < keep {
                if cutoff.saturating_duration_since(sup.deadlines[i]) > grace {
                    keep -= 1;
                    sup.chains.swap(i, keep);
                    sup.tickets.swap(i, keep);
                    sup.tokens.swap(i, keep);
                    sup.deadlines.swap(i, keep);
                } else {
                    i += 1;
                }
            }
            let expired = sup.chains.len() - keep;
            if expired > 0 {
                lane.metrics
                    .record_deadline_expired(expired as u64, depth_after);
                for _ in 0..expired {
                    let chain = sup.chains.pop().expect("counted above");
                    let ticket = sup.tickets.pop().expect("counted above");
                    let token = sup.tokens.pop().expect("counted above");
                    sup.deadlines.pop();
                    ticket.finish_if(token, Some(chain), Some(ServeError::DeadlineExceeded));
                }
            }
        }
        sup.deadlines.clear();
        let executed = !sup.chains.is_empty();
        if executed {
            lane.metrics
                .record_flush(cause, sup.chains.len(), depth_after);
            let tripped = flush(
                batched,
                lane,
                flush_idx,
                &mut sup.chains,
                &mut sup.tickets,
                &mut sup.tokens,
            );
            if tripped {
                // The breaker (or the stall watchdog, mid-flush) already
                // quarantined the shape and failed the queue; `Quarantined`
                // is sticky against any later `mark_retired` (the state
                // must outlive the lane so `metrics()` reports the trip).
                // Disarm before exiting so the watchdog never re-condemns
                // a flush that already resolved.
                lock(&lane.inflight).active = false;
                return;
            }
        }
        // Disarm the watchdog publication and feed the feasibility
        // estimator. The latency sample spans injection + deadline pruning
        // + execution — everything between "batch assembled" and "tickets
        // complete", which is exactly what a queued request waits behind.
        {
            let mut inflight = lock(&lane.inflight);
            inflight.active = false;
            inflight.tickets.clear();
        }
        lane.metrics.tick_heartbeat();
        if executed {
            lane.metrics.record_flush_latency(flush_started.elapsed());
        }
        flush_idx += 1;
    }
}

/// Executes one coalesced batch and completes every ticket, attributing a
/// batch panic per request: members whose execution finished (their result
/// was staged) complete successfully; the panicking member fails with
/// [`crate::ServeError::BatchPanicked`]. The panic never crosses to other
/// batches — the worker pool's poison signal is generation-scoped (see
/// `bppsa-scan`'s pool docs), and it is caught here before the dispatcher
/// touches the next batch.
///
/// This is also where the circuit breaker observes outcomes: a success
/// resets the consecutive-panic streak (and, on a half-open probe lane,
/// proves the shape healthy — the quarantine lifts); a panic extends it,
/// and when the streak reaches the [`BreakerPolicy`] threshold the shape is
/// quarantined — pending requests fail with
/// [`crate::ServeError::LaneQuarantined`] and the returned flag tells the
/// dispatcher to exit.
fn flush<S: Scalar>(
    batched: &BatchedBackward<S>,
    lane: &Lane<S>,
    flush_idx: u64,
    chains: &mut Vec<JacobianChain<S>>,
    tickets: &mut Vec<Arc<TicketShared<S>>>,
    tokens: &mut Vec<u64>,
) -> bool {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        // Injection point: indistinguishable from a kernel panic to
        // everything downstream — per-request attribution, breaker streaks.
        lane.faults.fire(InjectionPoint::BatchExecute {
            lane: lane.lane_id,
            flush: flush_idx,
        });
        batched.execute(chains, &|i, result| tickets[i].stage_if(tokens[i], result));
    }));
    let failure = outcome.is_err().then_some(ServeError::BatchPanicked);
    for ((chain, ticket), token) in chains
        .drain(..)
        .zip(tickets.drain(..))
        .zip(tokens.drain(..))
    {
        // Token-guarded: no-ops on tickets a watchdog condemnation already
        // failed while this flush sat stalled.
        ticket.finish_if(token, Some(chain), failure);
    }
    if lane.condemned.load(Ordering::Acquire) {
        // The stall watchdog took this lane over while the flush above sat
        // wedged: its tickets are already failed, its queue drained, its
        // shape quarantined. Exit without recording a success and — above
        // all — without letting a probe lane's late success clear the
        // quarantine its stall just earned.
        return true;
    }
    if outcome.is_ok() {
        lane.metrics.record_batch_success();
        if lane.probe {
            // Half-open probe proved the shape healthy: lift the
            // quarantine (no-op after the first success). The probe lane
            // itself keeps its threshold-1 breaker for its lifetime; the
            // shape returns to the configured threshold when a fresh lane
            // is created for it.
            lane.book.clear(&lane.shape);
        }
        return false;
    }
    let streak = lane.metrics.record_batch_panic();
    if lane.breaker_threshold.is_some_and(|t| streak >= t) {
        lane.book.trip(&lane.shape, lane.cooldown, Instant::now());
        lane.metrics.mark_quarantined();
        lane.fail_queue(ServeError::LaneQuarantined);
        return true;
    }
    false
}

/// Supervisor poll cadence when only the brownout controller is armed
/// (with a watchdog, its [`WatchdogPolicy::poll_interval`] wins — the
/// stall budget needs the tighter clock).
const BROWNOUT_POLL: Duration = Duration::from_millis(100);

/// Per-lane brownout bookkeeping held by the supervisor thread: the
/// hysteresis state machine plus the counter values at the previous poll
/// (the controller works on *deltas* — pressure is a rate, not a total).
struct LanePressure {
    lane_id: usize,
    state: BrownoutState,
    last_refused: u64,
    last_attempts: u64,
}

/// The overload supervisor: one thread per service (spawned lazily with
/// the first lane, only when [`ServeConfig::watchdog`] or
/// [`ServeConfig::brownout`] is armed), entirely off the submit/flush hot
/// path. Each poll it snapshots the live lanes under the router lock (an
/// `Arc` copy into scratch whose capacity is reserved once — the
/// steady-state poll allocates nothing), then:
///
/// - **watchdog**: any lane whose published in-flight flush has been
///   executing past the stall budget is condemned ([`Lane::condemn_stalled`]
///   — tickets fail typed, queue drains, shape quarantines);
/// - **brownout**: each lane's refusal-rate delta plus the memory budget's
///   utilization feed the [`BrownoutState`] hysteresis machine; the
///   resulting level is mirrored into the lane's metrics (where the
///   dispatcher reads it) and the maximum across lanes is published
///   service-wide (where the cold-shape decline reads it).
fn supervisor_loop<S: Scalar>(shared: &ServiceShared<S>) {
    let poll = shared
        .config
        .watchdog
        .map(|w| w.poll_interval)
        .unwrap_or(BROWNOUT_POLL);
    let max_lanes = shared.config.max_lanes;
    let mut lanes: Vec<Arc<Lane<S>>> = Vec::with_capacity(max_lanes);
    // Live lanes never exceed `max_lanes`, and stale trackers are pruned
    // every poll, so neither scratch ever outgrows its capacity.
    let mut trackers: Vec<LanePressure> = Vec::with_capacity(max_lanes);
    loop {
        {
            let (stopped, wake) = &*shared.stop;
            let mut guard = stopped.lock().unwrap_or_else(PoisonError::into_inner);
            if !*guard {
                guard = wake
                    .wait_timeout(guard, poll)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
            if *guard {
                return;
            }
        }
        lanes.clear();
        {
            let router = lock(&shared.router);
            // `iter` (not `find`) so supervision never perturbs MRU order.
            for lane in router.lanes.iter() {
                lanes.push(Arc::clone(lane));
            }
        }
        let now = Instant::now();
        if let Some(watchdog) = shared.config.watchdog {
            for lane in &lanes {
                if lane.condemned.load(Ordering::Acquire) {
                    continue;
                }
                let stalled = {
                    let inflight = lock(&lane.inflight);
                    inflight.active
                        && watchdog.is_stalled(now.saturating_duration_since(inflight.started))
                };
                if stalled {
                    lane.condemn_stalled(now);
                }
            }
        }
        if let Some(policy) = shared.config.brownout {
            let utilization = shared.config.memory.as_ref().map(|budget| {
                if budget.limit() == 0 {
                    1.0
                } else {
                    budget.reserved() as f64 / budget.limit() as f64
                }
            });
            trackers.retain(|t| lanes.iter().any(|l| l.lane_id == t.lane_id));
            let mut service_level = BrownoutLevel::Normal;
            for lane in &lanes {
                let tracker = match trackers.iter_mut().find(|t| t.lane_id == lane.lane_id) {
                    Some(t) => t,
                    None => {
                        // Seed the delta baseline at the lane's *current*
                        // counters: traffic before supervision started
                        // (or before this lane was first seen) is not a
                        // rate this poll observed.
                        trackers.push(LanePressure {
                            lane_id: lane.lane_id,
                            state: BrownoutState::default(),
                            last_refused: lane.metrics.overload_refusals(),
                            last_attempts: lane.metrics.overload_attempts(),
                        });
                        trackers.last_mut().expect("just pushed")
                    }
                };
                let refused = lane.metrics.overload_refusals();
                let attempts = lane.metrics.overload_attempts();
                let signal = policy.signal(
                    refused.saturating_sub(tracker.last_refused),
                    attempts.saturating_sub(tracker.last_attempts),
                    utilization,
                );
                tracker.last_refused = refused;
                tracker.last_attempts = attempts;
                let level = tracker.state.observe(signal, &policy);
                lane.metrics.set_brownout(level);
                service_level = service_level.max(level);
            }
            shared
                .pressure
                .brownout
                .store(service_level as u8, Ordering::Relaxed);
        }
    }
}

struct Router<S> {
    lanes: Mru<Arc<Lane<S>>>,
    /// Dispatchers not yet reaped: joined opportunistically on the lane
    /// creation path once finished (so a churning workload does not
    /// accumulate one zombie `JoinHandle` per retired lane), and the
    /// remainder at shutdown.
    handles: Vec<JoinHandle<()>>,
    /// Metrics of every lane not yet compacted, in creation (`lane_id`)
    /// order — retained past eviction/retirement so
    /// [`BppsaService::metrics`] can report drained lanes. A `LaneMetrics`
    /// is a fixed set of atomics, so the registry's footprint is negligible
    /// next to a live lane's workspaces; still, it is bounded by
    /// [`ServeConfig::retired_metrics_cap`] — the oldest *terminal* lanes
    /// beyond the cap fold into [`Router::rollup`].
    metrics: Vec<Arc<LaneMetrics>>,
    /// Aggregate of every lane compacted out of [`Router::metrics`].
    rollup: RetiredRollup,
    open: bool,
    lanes_created: usize,
}

impl<S> Router<S> {
    /// Housekeeping on the lane-creation slow path (never on the
    /// steady-state submit path): join dispatchers that have already
    /// exited, and fold the oldest terminal (Retired/Quarantined) lanes'
    /// metrics into the rollup once the registry exceeds `cap`. Live lanes
    /// are never compacted, so the registry can transiently exceed `cap`
    /// when more than `cap` lanes are live at once.
    fn reap_and_compact(&mut self, cap: usize) {
        for handle in std::mem::take(&mut self.handles) {
            if handle.is_finished() {
                // The dispatcher already exited; join cannot block. A
                // panicked dispatcher was handled by its supervisor — the
                // unwind payload itself is of no further interest.
                let _ = handle.join();
            } else {
                self.handles.push(handle);
            }
        }
        if self.metrics.len() > cap {
            let mut rollup = self.rollup;
            let mut excess = self.metrics.len() - cap;
            self.metrics.retain(|m| {
                let terminal = matches!(m.state(), LaneState::Retired | LaneState::Quarantined);
                if excess > 0 && terminal {
                    rollup.absorb(&m.snapshot());
                    excess -= 1;
                    false
                } else {
                    true
                }
            });
            self.rollup = rollup;
        }
    }
}

/// Service-wide overload state: written by the supervisor thread, read on
/// the cold-shape routing path and by the observability accessors. All
/// relaxed — these are pressure signals, not synchronization.
struct PressureShared {
    /// Maximum [`BrownoutLevel`] across live lanes, as `u8`.
    brownout: AtomicU8,
    /// Submits refused with [`SubmitError::MemoryPressure`]. Laneless by
    /// nature (the refusal happens *instead of* creating a lane), so it is
    /// counted here, not in any lane's metrics, and never folds into the
    /// [`RetiredRollup`].
    memory_refused: AtomicU64,
}

struct ServiceShared<S> {
    config: ServeConfig,
    /// Shape-keyed quarantine, shared with every lane (lanes trip/clear it
    /// from dispatcher threads; the router consults it on the miss path).
    /// Its internal lock is a leaf: taken under the router lock on the
    /// miss path, never the other way around.
    book: Arc<QuarantineBook>,
    router: Mutex<Router<S>>,
    pressure: PressureShared,
    /// The overload supervisor thread (watchdog + brownout controller),
    /// spawned lazily on the first lane creation when either policy is
    /// armed; `None` forever otherwise. Joined at shutdown.
    supervisor: Mutex<Option<JoinHandle<()>>>,
    /// Stop signal for the supervisor: flag + condvar so shutdown
    /// interrupts a sleeping poll immediately instead of waiting it out.
    stop: Arc<(Mutex<bool>, Condvar)>,
}

/// Why [`BppsaService::route`] refused to produce a lane.
enum RouteRefusal {
    /// The service is shutting down.
    Shutdown,
    /// The chain's shape is quarantined and its cool-down has not elapsed
    /// (or another request already holds the half-open probe slot).
    Quarantined,
    /// The memory budget is exhausted with nothing evictable, or the
    /// brownout controller is declining cold shapes.
    MemoryPressure,
}

/// A deadline micro-batching front door over [`BatchedBackward`]: accepts
/// independently submitted backward requests, routes them by chain shape to
/// per-plan lanes, and coalesces each lane's queue into wide planned-scan
/// fan-outs.
///
/// See the crate-level docs and `ARCHITECTURE.md`'s "serving layer"
/// section for the lane lifecycle, deadline policy, backpressure/shedding,
/// and shutdown story, [`Ticket`] for the client side, and
/// [`BppsaService::metrics`] for per-lane observability.
///
/// # Examples
///
/// Mixed shapes route to separate lanes and still all complete:
///
/// ```
/// use bppsa_core::{JacobianChain, ScanElement};
/// use bppsa_serve::{BppsaService, ServeConfig, Ticket};
/// use bppsa_sparse::Csr;
/// use bppsa_tensor::Vector;
/// use std::time::Duration;
///
/// let service = BppsaService::<f64>::new(ServeConfig {
///     max_batch: 4,
///     max_delay: Duration::from_micros(200),
///     ..ServeConfig::default()
/// });
///
/// // Two different chain shapes (1 layer vs 2 layers).
/// let tickets: Vec<Ticket<f64>> = (0..4).map(|_| Ticket::new()).collect();
/// for (k, ticket) in tickets.iter().enumerate() {
///     let mut chain = JacobianChain::new(Vector::from_vec(vec![1.0 + k as f64, -1.0]));
///     chain.push(ScanElement::Sparse(Csr::from_diagonal(&[2.0, 0.5])));
///     if k % 2 == 1 {
///         chain.push(ScanElement::Sparse(Csr::from_diagonal(&[1.5, 3.0])));
///     }
///     service.submit(chain, ticket).expect("accepting");
/// }
/// for ticket in &tickets {
///     ticket.wait().expect("served");
/// }
/// assert_eq!(service.lanes(), 2);
/// ```
pub struct BppsaService<S> {
    shared: Arc<ServiceShared<S>>,
}

impl<S> BppsaService<S> {
    /// A service with no lanes yet; lanes (shape key + queue immediately,
    /// plan + workspace pool + dispatcher warm-up in the background)
    /// materialize per shape on first submission.
    ///
    /// # Panics
    ///
    /// Panics if `config` has a zero `max_batch`, `queue_cap`, or
    /// `max_lanes`, or a zero shed `max_queue_depth`.
    pub fn new(config: ServeConfig) -> Self {
        config.validate();
        let max_lanes = config.max_lanes;
        Self {
            shared: Arc::new(ServiceShared {
                config,
                book: Arc::new(QuarantineBook::default()),
                router: Mutex::new(Router {
                    lanes: Mru::new(max_lanes),
                    handles: Vec::new(),
                    metrics: Vec::new(),
                    rollup: RetiredRollup::default(),
                    open: true,
                    lanes_created: 0,
                }),
                pressure: PressureShared {
                    brownout: AtomicU8::new(BrownoutLevel::Normal as u8),
                    memory_refused: AtomicU64::new(0),
                },
                supervisor: Mutex::new(None),
                stop: Arc::new((Mutex::new(false), Condvar::new())),
            }),
        }
    }

    /// A clone of the service's configuration (the service itself keeps
    /// the original — configuration is fixed at construction).
    pub fn config(&self) -> ServeConfig {
        self.shared.config.clone()
    }

    /// Number of currently live lanes (distinct shapes being served,
    /// warming lanes included).
    pub fn lanes(&self) -> usize {
        lock(&self.shared.router).lanes.len()
    }

    /// Total lanes ever created — exceeds [`BppsaService::lanes`] once MRU
    /// eviction has retired shapes (or a closed lane was re-created).
    pub fn lanes_created(&self) -> usize {
        lock(&self.shared.router).lanes_created
    }

    /// Point-in-time metrics for every lane still in the registry (evicted
    /// and retired lanes included), in creation (`lane_id`) order. The
    /// registry is bounded by [`ServeConfig::retired_metrics_cap`]: once it
    /// overflows, the oldest terminal lanes are folded into
    /// [`BppsaService::metrics_rollup`] and no longer appear here — so
    /// `lane_id`s are ascending but not necessarily contiguous from zero.
    /// See [`LaneMetricsSnapshot`] for the fields and their consistency
    /// caveats.
    pub fn metrics(&self) -> Vec<LaneMetricsSnapshot> {
        // Only the registry clone (a memcpy of `Arc`s) happens under the
        // router lock; the per-lane atomic loads and histogram copies run
        // lock-free, so a polling monitor never serializes request routing.
        let lanes: Vec<Arc<LaneMetrics>> = lock(&self.shared.router).metrics.clone();
        lanes.iter().map(|m| m.snapshot()).collect()
    }

    /// Aggregate counters of every lane compacted out of the
    /// [`BppsaService::metrics`] registry (see
    /// [`ServeConfig::retired_metrics_cap`]). Total traffic ever served is
    /// the rollup plus the sum over current [`BppsaService::metrics`].
    pub fn metrics_rollup(&self) -> RetiredRollup {
        lock(&self.shared.router).rollup
    }

    /// How many submissions were refused at the door because their shape
    /// was quarantined ([`SubmitError::Quarantined`]). Realized refusal
    /// work is one shape comparison under a leaf lock — no lane, queue, or
    /// planner is touched.
    pub fn quarantine_refusals(&self) -> u64 {
        self.shared.book.refusals()
    }

    /// Number of shapes currently tracked by the quarantine book (tripped
    /// and not yet proven healthy by a half-open probe). Cool-down expiry
    /// alone does not remove an entry — a successful probe does.
    pub fn quarantined_shapes(&self) -> usize {
        self.shared.book.len()
    }

    /// How many submissions were refused with
    /// [`SubmitError::MemoryPressure`] (memory budget exhausted with
    /// nothing evictable, or brownout declining cold shapes). Laneless —
    /// these refusals happen *instead of* creating a lane, so they appear
    /// here rather than in any lane's metrics or the retired rollup.
    pub fn memory_refusals(&self) -> u64 {
        self.shared.pressure.memory_refused.load(Ordering::Relaxed)
    }

    /// The service-wide brownout level: the maximum across live lanes, as
    /// last published by the supervisor thread.
    /// [`BrownoutLevel::Normal`] whenever [`ServeConfig::brownout`] is
    /// disabled.
    pub fn brownout_level(&self) -> BrownoutLevel {
        BrownoutLevel::from_u8(self.shared.pressure.brownout.load(Ordering::Relaxed))
    }

    /// Gracefully shuts the service down: refuses new submissions, closes
    /// every lane, and joins the dispatchers — each drains its pending
    /// queue first, so **every accepted request completes** and every
    /// waiting ticket wakes. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        let (lanes, handles) = {
            let mut router = lock(&self.shared.router);
            router.open = false;
            let lanes: Vec<Arc<Lane<S>>> = router.lanes.drain().collect();
            (lanes, std::mem::take(&mut router.handles))
        };
        for lane in &lanes {
            lane.close();
        }
        for handle in handles {
            // A dispatcher can only terminate by draining; a panic would be
            // a bug, but shutdown must still reap the remaining threads.
            let _ = handle.join();
        }
        // Stop the overload supervisor last: it must be able to condemn a
        // stalled lane right up until that lane's dispatcher is joined.
        let supervisor = lock(&self.shared.supervisor).take();
        if let Some(handle) = supervisor {
            let (stopped, wake) = &*self.shared.stop;
            *stopped.lock().unwrap_or_else(PoisonError::into_inner) = true;
            wake.notify_all();
            let _ = handle.join();
        }
    }
}

impl<S: Scalar> BppsaService<S> {
    /// Submits a backward request with the configured
    /// [`ServeConfig::max_delay`] budget. See
    /// [`BppsaService::submit_with_delay`].
    ///
    /// # Errors
    ///
    /// As [`BppsaService::submit_with_delay`].
    pub fn submit(
        &self,
        chain: JacobianChain<S>,
        ticket: &Ticket<S>,
    ) -> Result<(), SubmitError<S>> {
        self.submit_with_delay(chain, self.shared.config.max_delay, ticket)
    }

    /// Submits a backward request with an explicit delay budget: the
    /// request's lane flushes no later than `delay` from now, even if the
    /// batch is not full. Blocks while the lane's queue is at capacity
    /// (backpressure). Completion is observed through the `ticket`.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Shutdown`] when the service is shutting down,
    /// [`SubmitError::TicketInFlight`] when `ticket` already has a pending
    /// request, [`SubmitError::Shed`] when the configured [`ShedPolicy`]
    /// refuses the request; all hand the chain back.
    ///
    /// # Panics
    ///
    /// Panics if the chain is invalid for planning (must be structurally
    /// valid and all-CSR, see [`PlannedScan::plan`]).
    pub fn submit_with_delay(
        &self,
        chain: JacobianChain<S>,
        delay: Duration,
        ticket: &Ticket<S>,
    ) -> Result<(), SubmitError<S>> {
        self.submit_inner(chain, delay, ticket, true)
            .map_err(|e| match e {
                SubmitError::Backpressure(_) | SubmitError::LaneWarming(_) => {
                    unreachable!("blocking submit queues instead of refusing room/warm-up")
                }
                other => other,
            })
    }

    /// Non-blocking [`BppsaService::submit`]: a full lane queue returns
    /// [`SubmitError::Backpressure`] (with the chain) instead of waiting,
    /// and a still-warming lane returns [`SubmitError::LaneWarming`] unless
    /// this very request is the one that created it.
    ///
    /// # Errors
    ///
    /// As [`BppsaService::submit_with_delay`], plus
    /// [`SubmitError::Backpressure`] and [`SubmitError::LaneWarming`].
    pub fn try_submit(
        &self,
        chain: JacobianChain<S>,
        ticket: &Ticket<S>,
    ) -> Result<(), SubmitError<S>> {
        self.submit_inner(chain, self.shared.config.max_delay, ticket, false)
    }

    fn submit_inner(
        &self,
        chain: JacobianChain<S>,
        delay: Duration,
        ticket: &Ticket<S>,
        block: bool,
    ) -> Result<(), SubmitError<S>> {
        let shared = ticket.shared();
        let deadline = Instant::now() + delay;
        // Refusal order: the ticket is marked in flight *before* the
        // router is touched — a TicketInFlight refusal must not create a
        // placeholder lane (or, at `max_lanes` capacity, evict a healthy
        // serving lane) for a request it then refuses — and the mark
        // precedes the enqueue, so a racing completion cannot be lost. An
        // invalid chain panics inside `route` (shape extraction on the
        // miss path); [`FlightGuard`] returns the ticket to idle across
        // that unwind.
        if !shared.begin_flight() {
            return Err(SubmitError::TicketInFlight(chain));
        }
        let mut chain = chain;
        loop {
            let routed = {
                let guard = FlightGuard(&shared);
                let routed = self.route(&chain);
                std::mem::forget(guard);
                routed
            };
            let (lane, created) = match routed {
                Ok(pair) => pair,
                Err(RouteRefusal::Shutdown) => {
                    shared.abort_flight();
                    return Err(SubmitError::Shutdown(chain));
                }
                Err(RouteRefusal::Quarantined) => {
                    shared.abort_flight();
                    return Err(SubmitError::Quarantined(chain));
                }
                Err(RouteRefusal::MemoryPressure) => {
                    shared.abort_flight();
                    return Err(SubmitError::MemoryPressure(chain));
                }
            };
            match lane.push(chain, deadline, delay, Arc::clone(&shared), block, created) {
                Ok(()) => return Ok(()),
                Err((c, PushRefusal::Closed)) => {
                    // Lane evicted between routing and push: re-route (the
                    // lane is re-created if its shape is still wanted).
                    chain = c;
                }
                Err((c, PushRefusal::Full)) => {
                    shared.abort_flight();
                    return Err(SubmitError::Backpressure(c));
                }
                Err((c, PushRefusal::Warming)) => {
                    shared.abort_flight();
                    return Err(SubmitError::LaneWarming(c));
                }
                Err((c, PushRefusal::Shed)) => {
                    shared.abort_flight();
                    return Err(SubmitError::Shed(c));
                }
                Err((c, PushRefusal::Infeasible)) => {
                    shared.abort_flight();
                    return Err(SubmitError::Infeasible(c));
                }
            }
        }
    }

    /// Finds (MRU) or creates the lane whose shape key matches `chain`;
    /// refuses when the router is closed or the shape is quarantined, and
    /// the boolean reports whether this call created the lane (its request
    /// seeds the warm-up).
    ///
    /// Creation inserts only a **placeholder** — shape key, bounded queue,
    /// metrics — so the router lock is held for O(layers) pattern clones,
    /// never for planning: the symbolic planner and workspace pool are
    /// built by the new lane's dispatcher thread ([`warm_up`]), and
    /// submitters of other shapes route concurrently.
    fn route(&self, chain: &JacobianChain<S>) -> Result<(Arc<Lane<S>>, bool), RouteRefusal> {
        let mut router = lock(&self.shared.router);
        if !router.open {
            return Err(RouteRefusal::Shutdown);
        }
        // A lane whose warm-up failed (plan panic), whose breaker tripped,
        // or whose dispatcher died closed itself but could not remove
        // itself from the router. Evicted/shut-down lanes leave the store
        // *before* they close, so an in-store terminal lane is exactly one
        // of those failure cases: drop it here, or matching requests would
        // ping-pong between its Closed refusal and this router forever.
        // Allocation-free when nothing matches (the overwhelmingly common
        // case).
        drop(router.lanes.extract(|lane| {
            matches!(
                lane.metrics.state(),
                LaneState::Draining | LaneState::Retired | LaneState::Quarantined
            )
        }));
        if let Some(lane) = router.lanes.find(|lane| lane.shape.matches(chain)) {
            return Ok((Arc::clone(lane), false));
        }
        // Miss: extract the shape key *before* touching the MRU store — a
        // panic on an invalid chain (this is where submits validate; a hit
        // proves validity by construction) must not evict, and orphan with
        // a forever-parked dispatcher, an existing lane. The submitter's
        // `FlightGuard` returns its ticket to idle across the unwind.
        let shape = LaneShape::of(chain);
        // Deepest brownout level: a browned-out service serves the shapes
        // it already has plans and workspaces for, and declines to pay a
        // cold shape's planning + pool cost. Checked before the quarantine
        // gate so a refusal can never leak a half-open probe slot.
        let service_level =
            BrownoutLevel::from_u8(self.shared.pressure.brownout.load(Ordering::Relaxed));
        if service_level >= BrownoutLevel::DeclineColdShapes {
            self.shared
                .pressure
                .memory_refused
                .fetch_add(1, Ordering::Relaxed);
            return Err(RouteRefusal::MemoryPressure);
        }
        // Quarantine gate, also only on the miss path: a hit proves the
        // shape is not quarantined (a trip marks its lane Quarantined, and
        // the purge above removed any such lane before the find). A
        // tripped shape is refused outright until its cool-down elapses,
        // then exactly one request is admitted as the half-open probe.
        let probe = match self.shared.book.admit(chain, Instant::now()) {
            Admission::Refuse => return Err(RouteRefusal::Quarantined),
            Admission::Probe => true,
            Admission::Clear => false,
        };
        // Lane creation is the slow path already — amortize supervision
        // housekeeping here (reap exited dispatchers, bound the metrics
        // registry) instead of on the per-request fast path.
        router.reap_and_compact(self.shared.config.retired_metrics_cap);
        // Memory-budget admission: with the budget exhausted, a new lane's
        // warm-up could not prewarm a single workspace — it would park on
        // the budget while holding the shape's traffic. Evict the
        // least-recently-used lane instead (its drain returns its pool's
        // reservation), and refuse outright only when there is nothing to
        // evict: the budget is consumed outside this service's lanes, and
        // admitting the shape would just move the stall into warm-up.
        let mut budget_evicted = None;
        if self
            .shared
            .config
            .memory
            .as_ref()
            .is_some_and(|budget| budget.exhausted())
        {
            match router.lanes.pop_lru(|_| true) {
                Some(coldest) => budget_evicted = Some(coldest),
                None => {
                    if probe {
                        // Hand the half-open slot back: this refusal said
                        // nothing about the shape's health.
                        self.shared.book.abort_probe(&shape);
                    }
                    self.shared
                        .pressure
                        .memory_refused
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(RouteRefusal::MemoryPressure);
                }
            }
        }
        let config = self.shared.config.clone();
        let id = router.lanes_created;
        let lane = Arc::new(Lane::placeholder(
            shape,
            &config,
            id,
            probe,
            Arc::clone(&self.shared.book),
        ));
        // Seed the new lane's brownout level from the service-wide one so
        // its warm-up plans under the pressure that exists *now* (a calm
        // supervisor poll later steps it back up).
        lane.metrics.set_brownout(service_level);
        let (_, inserted, evicted) = router
            .lanes
            .find_or_insert_with_evicted(|_| false, || Arc::clone(&lane));
        debug_assert!(inserted, "fresh lane always inserts");
        router.lanes_created += 1;
        router.metrics.push(Arc::clone(&lane.metrics));
        {
            let worker = Arc::clone(&lane);
            let handle = std::thread::Builder::new()
                .name(format!("bppsa-serve-lane-{id}"))
                .spawn(move || dispatcher_loop(&worker, &config))
                .expect("spawn serve lane dispatcher");
            router.handles.push(handle);
        }
        drop(router);
        self.ensure_supervisor();
        if let Some(evicted) = evicted {
            // Outside the router lock: the evicted lane drains its pending
            // requests in the background and its dispatcher retires.
            evicted.close();
        }
        if let Some(evicted) = budget_evicted {
            evicted.close();
        }
        Ok((lane, true))
    }

    /// Spawns the overload supervisor thread on the first lane creation,
    /// if (and only if) a watchdog or brownout policy is armed. Lane
    /// creation is already the slow path, and lazy spawning keeps a
    /// never-submitted-to service thread-free.
    fn ensure_supervisor(&self) {
        if self.shared.config.watchdog.is_none() && self.shared.config.brownout.is_none() {
            return;
        }
        let mut slot = lock(&self.shared.supervisor);
        if slot.is_some() {
            return;
        }
        if *self
            .shared
            .stop
            .0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
        {
            return; // shut down already; never resurrect the thread
        }
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name("bppsa-serve-supervisor".into())
            .spawn(move || supervisor_loop(&shared))
            .expect("spawn serve overload supervisor");
        *slot = Some(handle);
    }

    /// [`BppsaService::submit`] wrapped in the configured
    /// [`ServeConfig::retry`] policy: transient refusals
    /// ([`SubmitRefusal::is_transient`]) are retried with exponential
    /// backoff until the policy's budget is spent, then the last refusal is
    /// returned. [`SubmitError::Shutdown`] and
    /// [`SubmitError::TicketInFlight`] return immediately.
    ///
    /// # Errors
    ///
    /// As [`BppsaService::submit`], once the retry budget is exhausted.
    pub fn submit_retrying(
        &self,
        chain: JacobianChain<S>,
        ticket: &Ticket<S>,
    ) -> Result<(), SubmitError<S>> {
        self.submit_retrying_with_delay(chain, self.shared.config.max_delay, ticket)
    }

    /// [`BppsaService::submit_with_delay`] wrapped in the configured
    /// [`ServeConfig::retry`] policy; see [`BppsaService::submit_retrying`].
    ///
    /// # Errors
    ///
    /// As [`BppsaService::submit_with_delay`], once the retry budget is
    /// exhausted.
    pub fn submit_retrying_with_delay(
        &self,
        chain: JacobianChain<S>,
        delay: Duration,
        ticket: &Ticket<S>,
    ) -> Result<(), SubmitError<S>> {
        let policy = self.shared.config.retry;
        let start = Instant::now();
        let mut attempt: u32 = 0;
        let mut chain = chain;
        loop {
            match self.submit_with_delay(chain, delay, ticket) {
                Ok(()) => return Ok(()),
                Err(e) if !e.kind().is_transient() => return Err(e),
                Err(e) => {
                    let elapsed = start.elapsed();
                    if elapsed >= policy.budget {
                        return Err(e);
                    }
                    // Never sleep past the budget: the last wait is clipped
                    // so retry exhaustion is observed promptly.
                    let backoff = policy.backoff_for(attempt).min(policy.budget - elapsed);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    chain = e.into_chain();
                    attempt += 1;
                }
            }
        }
    }
}

impl<S> Drop for BppsaService<S> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<S> std::fmt::Debug for BppsaService<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let router = lock(&self.shared.router);
        f.debug_struct("BppsaService")
            .field("config", &self.shared.config)
            .field("lanes", &router.lanes.len())
            .field("lanes_created", &router.lanes_created)
            .field("open", &router.open)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeError;
    use bppsa_core::{bppsa_backward, ScanElement};
    use bppsa_sparse::Csr;
    use bppsa_tensor::init::{seeded_rng, uniform_vector};
    use bppsa_tensor::Matrix;
    use rand::Rng;

    fn sparse_chain(n: usize, width: usize, seed: u64) -> JacobianChain<f64> {
        let mut rng = seeded_rng(seed);
        let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
        for _ in 0..n {
            let dense = Matrix::from_fn(width, width, |_, _| {
                if rng.random_range(0.0..1.0) < 0.4 {
                    rng.random_range(-1.0..1.0)
                } else {
                    0.0
                }
            });
            chain.push(ScanElement::Sparse(Csr::from_dense(&dense)));
        }
        chain
    }

    /// Same sparsity patterns as `template` (so the request routes to the
    /// template's lane), fresh values.
    fn revalue(template: &JacobianChain<f64>, seed: u64) -> JacobianChain<f64> {
        let mut rng = seeded_rng(seed);
        let mut chain = JacobianChain::new(uniform_vector(&mut rng, template.seed().len(), 1.0));
        for jt in template.jacobians() {
            let ScanElement::Sparse(m) = jt else {
                unreachable!()
            };
            chain.push(ScanElement::Sparse(
                m.map_values(|_| rng.random_range(-1.0..1.0)),
            ));
        }
        chain
    }

    fn quick_config() -> ServeConfig {
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_micros(500),
            queue_cap: 16,
            max_lanes: 4,
            workspaces_per_lane: 0,
            shed: ShedPolicy::disabled(),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn single_request_flushes_by_deadline_without_further_traffic() {
        // max_batch is 4 but only one request arrives: the deadline policy
        // alone must flush it — no co-traffic, no nudge.
        let service = BppsaService::<f64>::new(quick_config());
        let chain = sparse_chain(6, 8, 1);
        let reference = bppsa_backward(&chain, BppsaOptions::serial());
        let ticket = Ticket::new();
        service.submit(chain, &ticket).expect("accepting");
        ticket.wait().expect("deadline flush completes the request");
        ticket.with_result(|r| assert!(r.max_abs_diff(&reference) < 1e-12));
        assert_eq!(service.lanes(), 1);
    }

    #[test]
    fn coalesced_batch_matches_serial_bit_for_bit() {
        let service = BppsaService::<f64>::new(quick_config());
        let template = sparse_chain(10, 8, 2);
        let plan = PlannedScan::plan(&template, BppsaOptions::serial());
        let chains: Vec<JacobianChain<f64>> = (0..8)
            .map(|k| {
                let mut rng = seeded_rng(100 + k);
                let mut chain =
                    JacobianChain::new(uniform_vector(&mut rng, template.seed().len(), 1.0));
                for jt in template.jacobians() {
                    let ScanElement::Sparse(m) = jt else {
                        unreachable!()
                    };
                    chain.push(ScanElement::Sparse(
                        m.map_values(|_| rng.random_range(-1.0..1.0)),
                    ));
                }
                chain
            })
            .collect();
        let references: Vec<Vec<Vec<f64>>> = chains
            .iter()
            .map(|chain| {
                let mut ws = plan.workspace::<f64>();
                plan.execute_with(chain, &mut ws)
                    .grads()
                    .iter()
                    .map(|g| g.as_slice().to_vec())
                    .collect()
            })
            .collect();
        let tickets: Vec<Ticket<f64>> = chains.iter().map(|_| Ticket::new()).collect();
        for (chain, ticket) in chains.into_iter().zip(&tickets) {
            service.submit(chain, ticket).expect("accepting");
        }
        for (k, ticket) in tickets.iter().enumerate() {
            ticket.wait().expect("served");
            ticket.with_result(|r| {
                for (g, expect) in r.grads().iter().zip(&references[k]) {
                    // Same compiled program, same rounding: exact equality.
                    assert_eq!(g.as_slice(), expect.as_slice());
                }
            });
        }
        assert_eq!(service.lanes(), 1, "one shape, one lane");
    }

    #[test]
    fn short_budget_request_flushes_within_its_own_deadline() {
        // Regression test: the dispatcher used to arm its timer on the
        // *front* request's deadline only, so a short-budget request queued
        // behind a long-budget one waited out the long budget. The flush
        // timer must follow the earliest pending deadline.
        let service = BppsaService::<f64>::new(ServeConfig {
            max_batch: 8, // never reached: the deadline must do the work
            max_delay: Duration::from_millis(400),
            queue_cap: 16,
            max_lanes: 2,
            workspaces_per_lane: 0,
            shed: ShedPolicy::disabled(),
            ..ServeConfig::default()
        });
        let template = sparse_chain(5, 6, 45);
        let long = Ticket::new();
        service
            .submit_with_delay(revalue(&template, 46), Duration::from_millis(400), &long)
            .expect("accepting");
        let short = Ticket::new();
        let t0 = Instant::now();
        service
            .submit_with_delay(revalue(&template, 47), Duration::from_millis(2), &short)
            .expect("accepting");
        short.wait().expect("served");
        let waited = t0.elapsed();
        assert!(
            waited < Duration::from_millis(200),
            "short-budget request waited {waited:?} — the long co-request's budget leaked onto it"
        );
        // The whole prefix flushes together, so the long request rides along.
        long.wait().expect("served in the same flush");
    }

    #[test]
    fn invalid_chain_panic_does_not_orphan_existing_lanes() {
        // Regression test: at lane capacity, a panic while admitting a new
        // shape used to strike *inside* the MRU make-closure, after the LRU
        // lane had already been evicted — leaking a never-closed lane whose
        // dispatcher parked forever and hung shutdown. Shape extraction now
        // happens before any eviction, and the submitting ticket stays
        // idle.
        let mut config = quick_config();
        config.max_lanes = 1;
        let service = BppsaService::<f64>::new(config);
        let template = sparse_chain(4, 6, 48);
        let ticket = Ticket::new();
        service
            .submit(revalue(&template, 49), &ticket)
            .expect("accepting");
        ticket.wait().expect("served");

        // An un-plannable chain (dense element) panics inside submit.
        let mut bad = JacobianChain::new(bppsa_tensor::Vector::from_vec(vec![1.0, 2.0]));
        bad.push(ScanElement::Dense(bppsa_tensor::Matrix::identity(2)));
        let bad_ticket = Ticket::new();
        let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = service.submit(bad, &bad_ticket);
        }));
        assert!(panicked.is_err(), "dense chain must be rejected loudly");

        // The existing lane is intact, the panicking ticket reusable, and
        // shutdown (via drop at the end of this test) must not hang.
        service
            .submit(revalue(&template, 50), &bad_ticket)
            .expect("ticket left idle by the failed submit");
        bad_ticket.wait().expect("served on the surviving lane");
        assert_eq!(service.lanes(), 1);
        assert_eq!(service.lanes_created(), 1, "no lane was evicted or leaked");
        service.shutdown();
    }

    #[test]
    fn mru_eviction_drains_and_recreates_lanes() {
        let mut config = quick_config();
        config.max_lanes = 2;
        let service = BppsaService::<f64>::new(config);
        // Three shapes through a 2-lane router: the first lane is evicted…
        for (n, seed) in [(3usize, 10u64), (5, 11), (7, 12)] {
            let ticket = Ticket::new();
            service
                .submit(sparse_chain(n, 6, seed), &ticket)
                .expect("accepting");
            ticket.wait().expect("served");
        }
        assert_eq!(service.lanes(), 2);
        assert_eq!(service.lanes_created(), 3);
        // …and transparently re-created when its shape returns.
        let ticket = Ticket::new();
        service
            .submit(sparse_chain(3, 6, 13), &ticket)
            .expect("accepting");
        ticket.wait().expect("served");
        assert_eq!(service.lanes(), 2);
        assert_eq!(service.lanes_created(), 4);
        // The metrics registry observed all four lanes, in creation order.
        let snaps = service.metrics();
        assert_eq!(snaps.len(), 4);
        for (k, snap) in snaps.iter().enumerate() {
            assert_eq!(snap.lane_id, k);
            assert!(snap.submitted >= 1);
        }
        assert_eq!(
            snaps[0].state,
            LaneState::Retired,
            "evicted lane drained and retired"
        );
    }

    #[test]
    fn shutdown_refuses_new_work_and_returns_the_chain() {
        let service = BppsaService::<f64>::new(quick_config());
        let ticket = Ticket::new();
        service
            .submit(sparse_chain(4, 6, 20), &ticket)
            .expect("accepting");
        service.shutdown();
        // The accepted request completed during the drain.
        ticket.wait().expect("drained before retiring");
        let refused = service.submit(sparse_chain(4, 6, 21), &Ticket::new());
        let chain = match refused {
            Err(SubmitError::Shutdown(chain)) => chain,
            other => panic!("expected Shutdown, got {other:?}"),
        };
        assert_eq!(chain.num_layers(), 4, "chain handed back intact");
    }

    #[test]
    fn ticket_in_flight_is_refused() {
        let mut config = quick_config();
        config.max_delay = Duration::from_millis(50); // keep it pending
        let service = BppsaService::<f64>::new(config);
        let ticket = Ticket::new();
        service
            .submit(sparse_chain(4, 6, 30), &ticket)
            .expect("accepting");
        let second = service.submit(sparse_chain(4, 6, 31), &ticket);
        assert!(matches!(second, Err(SubmitError::TicketInFlight(_))));
        ticket.wait().expect("first request still completes");
    }

    #[test]
    fn try_submit_backpressure_hands_the_chain_back() {
        // A lane whose dispatcher is stuck behind a long deadline with
        // queue_cap 1: the second try_submit must refuse with the chain.
        let config = ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(200),
            queue_cap: 1,
            max_lanes: 2,
            workspaces_per_lane: 1,
            shed: ShedPolicy::disabled(),
            ..ServeConfig::default()
        };
        let service = BppsaService::<f64>::new(config);
        let template = sparse_chain(4, 6, 40);
        let t1 = Ticket::new();
        service
            .submit(revalue(&template, 41), &t1)
            .expect("accepting");
        // The lane may still be warming; try_submit then refuses with
        // LaneWarming instead — wait until it is live to isolate the
        // backpressure refusal.
        while service.metrics()[0].state == LaneState::Warming {
            std::thread::yield_now();
        }
        let t2 = Ticket::new();
        let refused = service.try_submit(revalue(&template, 42), &t2);
        match refused {
            Err(SubmitError::Backpressure(_)) => {}
            // The queued request can flush between the state poll and the
            // try_submit, leaving room; then the submit legitimately lands.
            Ok(()) => {
                t2.wait().expect("served");
                let _ = t2.take_chain();
            }
            other => panic!("expected Backpressure or Ok, got {other:?}"),
        }
        t1.wait().expect("queued request still served");
        // The refused ticket is reusable immediately.
        service
            .submit(revalue(&template, 43), &t2)
            .expect("accepting after refusal");
        t2.wait().expect("served");
    }

    #[test]
    fn try_submit_while_warming_is_refused_with_lane_warming() {
        // A heavy-to-plan shape holds its lane in Warming long enough for a
        // second, non-creating try_submit to observe the warming refusal.
        let service = BppsaService::<f64>::new(ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(100),
            queue_cap: 16,
            max_lanes: 2,
            workspaces_per_lane: 1,
            shed: ShedPolicy::disabled(),
            ..ServeConfig::default()
        });
        let template = sparse_chain(60, 16, 70);
        let creator = Ticket::new();
        service
            .submit(revalue(&template, 71), &creator)
            .expect("the creating request seeds the lane");
        let follower = Ticket::new();
        let refused = service.try_submit(revalue(&template, 72), &follower);
        match refused {
            Err(SubmitError::LaneWarming(chain)) => {
                assert_eq!(chain.num_layers(), 60, "chain handed back intact");
                // The refusal left the ticket idle and the lane serving.
                service
                    .submit(chain, &follower)
                    .expect("blocking submit queues behind the warm-up");
                follower.wait().expect("served once live");
            }
            Ok(()) => {
                // Raced a very fast warm-up — then it must simply serve.
                follower.wait().expect("served");
            }
            other => panic!("expected LaneWarming or Ok, got {other:?}"),
        }
        creator.wait().expect("creator served");
    }

    #[test]
    fn shed_policy_refuses_on_queue_depth() {
        // queue_cap 8 but shed threshold 1: once one request is queued, the
        // next submit is shed instead of queueing or blocking.
        let service = BppsaService::<f64>::new(ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(200),
            queue_cap: 8,
            max_lanes: 2,
            workspaces_per_lane: 1,
            shed: ShedPolicy {
                max_queue_depth: Some(1),
                min_warming_delay: None,
                feasibility: None,
            },
            ..ServeConfig::default()
        });
        let template = sparse_chain(4, 6, 80);
        let t1 = Ticket::new();
        service
            .submit(revalue(&template, 81), &t1)
            .expect("first request queues");
        let t2 = Ticket::new();
        let refused = service.submit(revalue(&template, 82), &t2);
        match refused {
            Err(SubmitError::Shed(chain)) => {
                assert_eq!(chain.num_layers(), 4, "chain handed back intact");
                let snap = &service.metrics()[0];
                assert!(snap.shed >= 1, "shed counter records the refusal");
                // Once the queued request drained, the shed ticket is
                // reusable and the depth threshold no longer trips.
                t1.wait().expect("first request still served");
                service
                    .submit(chain, &t2)
                    .expect("accepting once the queue drained");
                t2.wait().expect("served");
            }
            // The first request can flush before the second submit reads
            // the queue depth; then nothing is shed.
            Ok(()) => {
                t1.wait().expect("first request still served");
                t2.wait().expect("served");
            }
            other => panic!("expected Shed or Ok, got {other:?}"),
        }
    }

    #[test]
    fn panicking_request_poisons_only_its_own_batch() {
        // End-to-end panic containment across *concurrently flushing*
        // lanes, directly exercising the worker pool's generation-scoped
        // poisoning: lane A's batch carries one request that panics inside
        // `PlannedScan::execute_with` (its chain matches the lane plan's
        // shapes but not its length — reachable here by pushing past the
        // router on a hand-built lane), while lane B flushes clean batches
        // the whole time. The panicking request must fail, its innocent
        // co-members and every lane-B request must succeed.
        let config = quick_config();
        let good_template = sparse_chain(6, 8, 50);
        let lane_a = Arc::new(Lane::<f64>::placeholder(
            LaneShape::of(&good_template),
            &config,
            0,
            false,
            Arc::new(QuarantineBook::default()),
        ));
        // Wrong *length* for lane A's plan: `execute_with`'s chain check
        // panics deterministically inside the batch job. (Unreachable via
        // `submit` — routing always matches — hence the hand-built lane.)
        let bad_chain = sparse_chain(9, 8, 51);
        let service_b = BppsaService::<f64>::new(quick_config());
        let b_template = sparse_chain(5, 6, 52);

        // All assertions run *after* the dispatcher is retired, so a
        // failure reports instead of hanging the scope join.
        let (good_outcomes, bad_outcome, bad_layers, after_outcome, b_outcomes) =
            std::thread::scope(|s| {
                let lane = Arc::clone(&lane_a);
                let dispatcher = s.spawn(move || dispatcher_loop(&lane, &config));

                // Lane A: 3 good requests + 1 poisoned, one coalesced
                // batch. The first push seeds the warm-up, so the lane's
                // plan is built from a *good* chain.
                let good_tickets: Vec<Ticket<f64>> = (0..3).map(|_| Ticket::new()).collect();
                let bad_ticket = Ticket::new();
                let delay = Duration::from_millis(5);
                let deadline = Instant::now() + delay;
                for (k, ticket) in good_tickets.iter().enumerate() {
                    assert!(ticket.shared().begin_flight());
                    lane_a
                        .push(
                            revalue(&good_template, 60 + k as u64),
                            deadline,
                            delay,
                            ticket.shared(),
                            true,
                            k == 0,
                        )
                        .unwrap_or_else(|_| panic!("open lane refused"));
                }
                assert!(bad_ticket.shared().begin_flight());
                lane_a
                    .push(bad_chain, deadline, delay, bad_ticket.shared(), true, false)
                    .unwrap_or_else(|_| panic!("open lane refused"));

                // Lane B (separate service): concurrent clean traffic racing
                // lane A's poisoned flush on the shared worker pool.
                let b_outcomes: Vec<Result<(), ServeError>> = (0..20)
                    .map(|round| {
                        let ticket = Ticket::new();
                        service_b
                            .submit(revalue(&b_template, 80 + round), &ticket)
                            .expect("accepting");
                        ticket.wait()
                    })
                    .collect();

                let good_outcomes: Vec<Result<(), ServeError>> = good_tickets
                    .iter()
                    .map(|t| {
                        let outcome = t.wait();
                        if outcome.is_ok() {
                            t.with_result(|r| assert_eq!(r.grads().len(), 6));
                        }
                        outcome
                    })
                    .collect();
                let bad_outcome = bad_ticket.wait();
                let bad_layers = bad_ticket.take_chain().num_layers();

                // The lane survives its poisoned batch: a fresh request
                // flushes cleanly before the dispatcher retires.
                let after = Ticket::new();
                assert!(after.shared().begin_flight());
                let after_delay = Duration::from_millis(2);
                lane_a
                    .push(
                        revalue(&good_template, 70),
                        Instant::now() + after_delay,
                        after_delay,
                        after.shared(),
                        true,
                        false,
                    )
                    .unwrap_or_else(|_| panic!("open lane refused"));
                let after_outcome = after.wait();

                lane_a.close();
                dispatcher.join().expect("dispatcher retired cleanly");
                (
                    good_outcomes,
                    bad_outcome,
                    bad_layers,
                    after_outcome,
                    b_outcomes,
                )
            });

        for (k, outcome) in good_outcomes.iter().enumerate() {
            assert_eq!(
                *outcome,
                Ok(()),
                "innocent co-member {k} must still complete"
            );
        }
        assert_eq!(bad_outcome, Err(ServeError::BatchPanicked));
        assert_eq!(bad_layers, 9, "the panicking request's chain comes back");
        assert_eq!(after_outcome, Ok(()), "lane survives its poisoned batch");
        for (round, outcome) in b_outcomes.iter().enumerate() {
            assert_eq!(
                *outcome,
                Ok(()),
                "concurrent clean lane caught a foreign panic (round {round})"
            );
        }
    }

    #[test]
    fn zero_retry_budget_returns_the_first_refusal_without_spinning() {
        // RetryPolicy::none() (budget == Duration::ZERO): a transient
        // refusal must come back after exactly one attempt — no backoff
        // sleep, no spin loop — because any elapsed time satisfies
        // `elapsed >= budget`. A shed-armed lane with one parked request
        // makes the refusal deterministic.
        let mut config = quick_config();
        config.max_delay = Duration::from_secs(60);
        config.max_batch = 8;
        config.retry = RetryPolicy::none();
        config.shed = ShedPolicy {
            max_queue_depth: Some(1),
            min_warming_delay: None,
            feasibility: None,
        };
        let service = BppsaService::<f64>::new(config);
        let template = sparse_chain(4, 6, 120);
        let parked = Ticket::new();
        service
            .submit(revalue(&template, 121), &parked)
            .expect("first request parks under the minute budget");

        let doomed = Ticket::new();
        let start = Instant::now();
        let refused = service.submit_retrying(revalue(&template, 122), &doomed);
        let elapsed = start.elapsed();
        let Err(SubmitError::Shed(chain)) = refused else {
            panic!("expected a shed refusal, got {refused:?}");
        };
        assert_eq!(chain.num_layers(), template.num_layers(), "chain returned");
        assert!(
            elapsed < Duration::from_secs(5),
            "zero budget must not spin through backoff sleeps: {elapsed:?}"
        );
        service.shutdown();
        parked.wait().expect("parked request drains on shutdown");
    }

    #[test]
    fn failed_warmup_lane_is_purged_and_recreated() {
        // Regression: a lane whose warm-up failed (plan panic) closes
        // itself but cannot remove itself from the router store — submits
        // of its shape used to ping-pong forever between the closed lane's
        // refusal and the router. `route()` must purge in-store
        // Draining/Retired lanes and re-create the shape.
        let service = BppsaService::<f64>::new(quick_config());
        let template = sparse_chain(4, 6, 90);
        // Fabricate the failure state: a placeholder lane of the
        // template's shape, closed before it ever planned (exactly what
        // `warm_up`'s panic branch leaves behind), force-inserted into the
        // router.
        let dead = Arc::new(Lane::<f64>::placeholder(
            LaneShape::of(&template),
            &quick_config(),
            99,
            false,
            Arc::new(QuarantineBook::default()),
        ));
        dead.close();
        {
            let mut router = lock(&service.shared.router);
            let (_, inserted, _) = router
                .lanes
                .find_or_insert_with_evicted(|_| false, || Arc::clone(&dead));
            assert!(inserted);
        }
        let ticket = Ticket::new();
        service
            .submit(revalue(&template, 91), &ticket)
            .expect("route must purge the dead lane and re-create the shape");
        ticket.wait().expect("served by the re-created lane");
        assert_eq!(service.lanes(), 1, "dead lane purged from the router");
    }

    #[test]
    fn ticket_in_flight_refusal_never_touches_the_router() {
        // Regression: begin_flight used to be checked only *after* route()
        // had created a placeholder lane, so a doomed submit (ticket
        // already in flight) spawned a dispatcher for a lane nothing would
        // seed — and, at max_lanes capacity, evicted a healthy serving
        // lane to make room for it.
        let mut config = quick_config();
        config.max_delay = Duration::from_millis(100); // keep `busy` pending
        config.max_lanes = 1; // an erroneous lane creation would evict
        let service = BppsaService::<f64>::new(config);
        let busy = Ticket::new();
        service
            .submit(sparse_chain(3, 5, 95), &busy)
            .expect("accepting");
        let new_shape = sparse_chain(6, 7, 96);
        let refused = service.try_submit(revalue(&new_shape, 97), &busy);
        assert!(matches!(refused, Err(SubmitError::TicketInFlight(_))));
        assert_eq!(
            service.lanes_created(),
            1,
            "a refused submit must not create a lane"
        );
        busy.wait().expect("live lane unaffected by the refusal");
        // The shape (and the ticket) work fine once legitimately submitted.
        service
            .submit(revalue(&new_shape, 98), &busy)
            .expect("accepting after refusal");
        busy.wait().expect("served");
    }

    #[test]
    fn empty_warming_lane_accepts_any_request_as_seed() {
        // Defense-in-depth at the push layer: should an empty Warming lane
        // ever exist (no request queued, dispatcher parked waiting for a
        // template), a non-seed non-blocking push must be accepted as the
        // warm-up's seed — refusing it with Warming would starve the lane
        // forever, since the dispatcher plans from the first queued chain,
        // whoever's it is.
        let config = quick_config();
        let template = sparse_chain(4, 6, 99);
        let lane = Lane::<f64>::placeholder(
            LaneShape::of(&template),
            &config,
            0,
            false,
            Arc::new(QuarantineBook::default()),
        );
        let seed_delay = Duration::from_millis(50);
        let first = Ticket::new();
        assert!(first.shared().begin_flight());
        lane.push(
            revalue(&template, 100),
            Instant::now() + seed_delay,
            seed_delay,
            first.shared(),
            false, // non-blocking
            false, // NOT the creator — still must seed the empty lane
        )
        .unwrap_or_else(|_| panic!("empty warming lane must accept its seeding request"));
        // With the seed queued, further non-blocking pushes see the normal
        // warming refusal.
        let second = Ticket::new();
        assert!(second.shared().begin_flight());
        let refused = lane.push(
            revalue(&template, 101),
            Instant::now() + seed_delay,
            seed_delay,
            second.shared(),
            false,
            false,
        );
        assert!(
            matches!(refused, Err((_, PushRefusal::Warming))),
            "seeded warming lane refuses further non-blocking pushes"
        );
        // No dispatcher was spawned for this hand-built lane; complete the
        // queued ticket manually so nothing dangles.
        lane.close();
        let mut q = lock(&lane.queue);
        while let Some(req) = q.pending.pop_front() {
            req.ticket.finish(req.chain, None);
        }
        drop(q);
        assert_eq!(first.wait(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "max_batch must be >= 1")]
    fn zero_max_batch_is_rejected() {
        let mut config = quick_config();
        config.max_batch = 0;
        let _ = BppsaService::<f64>::new(config);
    }

    #[test]
    #[should_panic(expected = "max_queue_depth must be >= 1")]
    fn zero_shed_depth_is_rejected() {
        let mut config = quick_config();
        config.shed.max_queue_depth = Some(0);
        let _ = BppsaService::<f64>::new(config);
    }
}
