//! The front door: shape-routed lanes, deadline micro-batching dispatchers,
//! bounded-queue backpressure, and graceful shutdown.
//!
//! # Lane lifecycle
//!
//! A **lane** is the unit of coalescing: one compiled
//! [`PlannedScan`](bppsa_core::PlannedScan) (planned from the first chain of
//! its shape), one [`BatchedBackward`] (workspace pool) and one dispatcher
//! thread. [`BppsaService::submit`] routes each request to the lane whose
//! plan [`matches`](bppsa_core::PlannedScan::matches) the chain — an MRU
//! store capped at [`ServeConfig::max_lanes`], so a new shape beyond the cap
//! evicts the least recently used lane. An evicted lane is *closed*, not
//! killed: its dispatcher drains every pending request, completes the
//! tickets, and exits; submitters racing the eviction observe the closed
//! queue and transparently re-route (which re-creates the lane).
//!
//! # Deadline policy
//!
//! Each lane's dispatcher coalesces its queue into
//! [`BatchedBackward::execute`] fan-outs: it flushes as soon as
//! [`ServeConfig::max_batch`] requests are pending, or when the **earliest**
//! pending deadline (a request's submit time + its delay budget — arrival
//! order does not order deadlines) expires, whichever comes first. A single
//! request therefore never waits longer
//! than its own delay budget, and a full batch never waits at all. This is
//! the trade the paper's parallel-scan backward wants: a bounded, tunable
//! latency cost buys wide batches that keep the `O(log n)` critical path
//! fed with per-request parallelism.
//!
//! # Backpressure and shutdown
//!
//! Every lane queue is bounded by [`ServeConfig::queue_cap`]:
//! [`BppsaService::submit`] blocks until the dispatcher drains room (memory
//! stays bounded by `queue_cap` chains + the workspace pool), while
//! [`BppsaService::try_submit`] returns [`SubmitError::Backpressure`]
//! instead. [`BppsaService::shutdown`] (also run on drop) closes the router
//! and every lane, then joins the dispatchers — each drains its pending
//! requests first, so every accepted request completes and every waiter
//! wakes; only *new* submissions are refused with
//! [`SubmitError::Shutdown`], handing the chain back.

use crate::ticket::{Ticket, TicketShared};
use bppsa_core::{BatchedBackward, BppsaOptions, JacobianChain, Mru, PlannedScan};
use bppsa_scan::global_pool;
use bppsa_tensor::Scalar;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`BppsaService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Flush a lane as soon as this many requests are pending (also the
    /// upper bound on one fan-out's width). Must be non-zero.
    pub max_batch: usize,
    /// Default per-request delay budget for [`BppsaService::submit`]: the
    /// longest a request waits for co-batchable traffic before its lane
    /// flushes below `max_batch`.
    pub max_delay: Duration,
    /// Per-lane pending-request bound; submissions beyond it block (or
    /// return [`SubmitError::Backpressure`] from
    /// [`BppsaService::try_submit`]). Must be non-zero.
    pub queue_cap: usize,
    /// Most-recently-used cap on concurrently live lanes (distinct chain
    /// shapes); the least recently used lane beyond it is drained and
    /// retired. Must be non-zero.
    pub max_lanes: usize,
    /// Workspace-pool capacity per lane; `0` sizes to the shared scan
    /// pool's worker count + 1 (every worker plus the dispatcher can hold a
    /// workspace without blocking).
    pub workspaces_per_lane: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            max_delay: Duration::from_millis(1),
            queue_cap: 64,
            max_lanes: bppsa_core::PLAN_CACHE_CAPACITY,
            workspaces_per_lane: 0,
        }
    }
}

impl ServeConfig {
    fn validate(&self) {
        assert!(self.max_batch >= 1, "ServeConfig: max_batch must be >= 1");
        assert!(self.queue_cap >= 1, "ServeConfig: queue_cap must be >= 1");
        assert!(self.max_lanes >= 1, "ServeConfig: max_lanes must be >= 1");
    }

    fn workspace_capacity(&self) -> usize {
        if self.workspaces_per_lane == 0 {
            global_pool().size() + 1
        } else {
            self.workspaces_per_lane
        }
    }
}

/// Why a submission was refused; the chain is always handed back for retry
/// or disposal.
#[derive(Debug)]
pub enum SubmitError<S> {
    /// The service is shutting down (or already shut down).
    Shutdown(JacobianChain<S>),
    /// [`BppsaService::try_submit`] only: the target lane's queue is full.
    Backpressure(JacobianChain<S>),
    /// The ticket already has a request in flight — one flight per ticket
    /// at a time.
    TicketInFlight(JacobianChain<S>),
}

impl<S> SubmitError<S> {
    /// Reclaims the refused chain.
    pub fn into_chain(self) -> JacobianChain<S> {
        match self {
            SubmitError::Shutdown(c)
            | SubmitError::Backpressure(c)
            | SubmitError::TicketInFlight(c) => c,
        }
    }
}

impl<S> std::fmt::Display for SubmitError<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Shutdown(_) => write!(f, "service is shutting down"),
            SubmitError::Backpressure(_) => write!(f, "lane queue is full"),
            SubmitError::TicketInFlight(_) => {
                write!(f, "ticket already has a request in flight")
            }
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // Queue and router state are value-only; a panicking holder leaves them
    // consistent (panics inside a flush are caught before this layer).
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

struct PendingRequest<S> {
    chain: JacobianChain<S>,
    deadline: Instant,
    ticket: Arc<TicketShared<S>>,
}

struct LaneQueue<S> {
    pending: VecDeque<PendingRequest<S>>,
    /// `false` once the lane is evicted or the service shuts down: the
    /// dispatcher drains what is queued, completes it, and exits; new
    /// pushes are refused.
    open: bool,
}

/// Why a [`Lane::push`] was refused.
enum PushRefusal {
    /// Lane closed (evicted or shutting down) — re-route.
    Closed,
    /// Queue full and the caller asked not to block.
    Full,
}

struct Lane<S> {
    batched: BatchedBackward<S>,
    queue: Mutex<LaneQueue<S>>,
    /// Dispatcher wakeup: request arrived or lane closed.
    submitted: Condvar,
    /// Submitter wakeup: the dispatcher drained queue room.
    space: Condvar,
    max_batch: usize,
    queue_cap: usize,
}

impl<S: Scalar> Lane<S> {
    /// Plans the lane's compiled scan from the first chain of its shape and
    /// prewarms enough workspaces for a full batch.
    fn new(chain: &JacobianChain<S>, config: &ServeConfig) -> Self {
        let plan = Arc::new(PlannedScan::plan(chain, BppsaOptions::serial()));
        let capacity = config.workspace_capacity();
        let batched = BatchedBackward::with_capacity(plan, capacity);
        batched.prewarm(config.max_batch.min(capacity));
        Self {
            batched,
            queue: Mutex::new(LaneQueue {
                pending: VecDeque::with_capacity(config.queue_cap),
                open: true,
            }),
            submitted: Condvar::new(),
            space: Condvar::new(),
            max_batch: config.max_batch,
            queue_cap: config.queue_cap,
        }
    }
}

impl<S> Lane<S> {
    /// Enqueues a request, blocking on a full queue when `block` (the
    /// bounded-queue backpressure). Refusals hand the chain back.
    fn push(
        &self,
        chain: JacobianChain<S>,
        deadline: Instant,
        ticket: Arc<TicketShared<S>>,
        block: bool,
    ) -> Result<(), (JacobianChain<S>, PushRefusal)> {
        let mut q = lock(&self.queue);
        loop {
            if !q.open {
                return Err((chain, PushRefusal::Closed));
            }
            if q.pending.len() < self.queue_cap {
                break;
            }
            if !block {
                return Err((chain, PushRefusal::Full));
            }
            q = self.space.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
        q.pending.push_back(PendingRequest {
            chain,
            deadline,
            ticket,
        });
        drop(q);
        self.submitted.notify_one();
        Ok(())
    }

    /// Closes the lane: the dispatcher drains the remaining queue (every
    /// accepted request still completes) and exits; new pushes re-route.
    fn close(&self) {
        let mut q = lock(&self.queue);
        q.open = false;
        drop(q);
        self.submitted.notify_all();
        self.space.notify_all();
    }
}

/// One lane's dispatcher: wait for work, coalesce under the deadline
/// policy, flush, repeat — exiting only once the lane is closed *and*
/// drained. The batch scratch vectors are reused across flushes, so the
/// dispatcher's steady state allocates nothing.
fn dispatcher_loop<S: Scalar>(lane: &Lane<S>) {
    let max_batch = lane.max_batch;
    let mut chains: Vec<JacobianChain<S>> = Vec::with_capacity(max_batch);
    let mut tickets: Vec<Arc<TicketShared<S>>> = Vec::with_capacity(max_batch);
    loop {
        {
            let mut q = lock(&lane.queue);
            loop {
                if q.pending.len() >= max_batch {
                    break; // a full batch never waits
                }
                if q.pending.is_empty() {
                    if !q.open {
                        return; // closed and drained: retire
                    }
                    q = lane
                        .submitted
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                    continue;
                }
                if !q.open {
                    break; // draining: flush the remainder immediately
                }
                // Earliest-deadline flush. Deadlines are submit-time +
                // per-request budget, so arrival order does not order them:
                // a short-budget request queued behind long-budget ones
                // must still flush within *its own* budget. O(pending) per
                // wake, bounded by queue_cap, allocation-free.
                let deadline = q
                    .pending
                    .iter()
                    .map(|r| r.deadline)
                    .min()
                    .expect("nonempty");
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                q = lane
                    .submitted
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
            for _ in 0..q.pending.len().min(max_batch) {
                let req = q.pending.pop_front().expect("counted above");
                chains.push(req.chain);
                tickets.push(req.ticket);
            }
        }
        lane.space.notify_all();
        flush(&lane.batched, &mut chains, &mut tickets);
    }
}

/// Executes one coalesced batch and completes every ticket, attributing a
/// batch panic per request: members whose execution finished (their result
/// was staged) complete successfully; the panicking member fails with
/// [`crate::ServeError::BatchPanicked`]. The panic never crosses to other
/// batches — the worker pool's poison signal is generation-scoped (see
/// `bppsa-scan`'s pool docs), and it is caught here before the dispatcher
/// touches the next batch.
fn flush<S: Scalar>(
    batched: &BatchedBackward<S>,
    chains: &mut Vec<JacobianChain<S>>,
    tickets: &mut Vec<Arc<TicketShared<S>>>,
) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        batched.execute(chains, &|i, result| tickets[i].stage(result));
    }));
    let batch_panicked = outcome.is_err();
    for (chain, ticket) in chains.drain(..).zip(tickets.drain(..)) {
        ticket.finish(chain, batch_panicked);
    }
}

struct Router<S> {
    lanes: Mru<Arc<Lane<S>>>,
    /// Every dispatcher ever spawned (including retired lanes'), joined at
    /// shutdown.
    handles: Vec<JoinHandle<()>>,
    open: bool,
    lanes_created: usize,
}

struct ServiceShared<S> {
    config: ServeConfig,
    router: Mutex<Router<S>>,
}

/// A deadline micro-batching front door over [`BatchedBackward`]: accepts
/// independently submitted backward requests, routes them by chain shape to
/// per-plan lanes, and coalesces each lane's queue into wide planned-scan
/// fan-outs.
///
/// See the crate-level docs and `ARCHITECTURE.md`'s "serving layer"
/// section for the lane lifecycle, deadline policy, backpressure, and
/// shutdown story, and [`Ticket`] for the client side.
///
/// # Examples
///
/// Mixed shapes route to separate lanes and still all complete:
///
/// ```
/// use bppsa_core::{JacobianChain, ScanElement};
/// use bppsa_serve::{BppsaService, ServeConfig, Ticket};
/// use bppsa_sparse::Csr;
/// use bppsa_tensor::Vector;
/// use std::time::Duration;
///
/// let service = BppsaService::<f64>::new(ServeConfig {
///     max_batch: 4,
///     max_delay: Duration::from_micros(200),
///     ..ServeConfig::default()
/// });
///
/// // Two different chain shapes (1 layer vs 2 layers).
/// let tickets: Vec<Ticket<f64>> = (0..4).map(|_| Ticket::new()).collect();
/// for (k, ticket) in tickets.iter().enumerate() {
///     let mut chain = JacobianChain::new(Vector::from_vec(vec![1.0 + k as f64, -1.0]));
///     chain.push(ScanElement::Sparse(Csr::from_diagonal(&[2.0, 0.5])));
///     if k % 2 == 1 {
///         chain.push(ScanElement::Sparse(Csr::from_diagonal(&[1.5, 3.0])));
///     }
///     service.submit(chain, ticket).expect("accepting");
/// }
/// for ticket in &tickets {
///     ticket.wait().expect("served");
/// }
/// assert_eq!(service.lanes(), 2);
/// ```
pub struct BppsaService<S> {
    shared: Arc<ServiceShared<S>>,
}

impl<S> BppsaService<S> {
    /// A service with no lanes yet; lanes (plan + workspace pool +
    /// dispatcher thread) materialize per shape on first submission.
    ///
    /// # Panics
    ///
    /// Panics if `config` has a zero `max_batch`, `queue_cap`, or
    /// `max_lanes`.
    pub fn new(config: ServeConfig) -> Self {
        config.validate();
        Self {
            shared: Arc::new(ServiceShared {
                config,
                router: Mutex::new(Router {
                    lanes: Mru::new(config.max_lanes),
                    handles: Vec::new(),
                    open: true,
                    lanes_created: 0,
                }),
            }),
        }
    }

    /// The service's configuration.
    pub fn config(&self) -> ServeConfig {
        self.shared.config
    }

    /// Number of currently live lanes (distinct shapes being served).
    pub fn lanes(&self) -> usize {
        lock(&self.shared.router).lanes.len()
    }

    /// Total lanes ever created — exceeds [`BppsaService::lanes`] once MRU
    /// eviction has retired shapes (or a closed lane was re-created).
    pub fn lanes_created(&self) -> usize {
        lock(&self.shared.router).lanes_created
    }

    /// Gracefully shuts the service down: refuses new submissions, closes
    /// every lane, and joins the dispatchers — each drains its pending
    /// queue first, so **every accepted request completes** and every
    /// waiting ticket wakes. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        let (lanes, handles) = {
            let mut router = lock(&self.shared.router);
            router.open = false;
            let lanes: Vec<Arc<Lane<S>>> = router.lanes.drain().collect();
            (lanes, std::mem::take(&mut router.handles))
        };
        for lane in &lanes {
            lane.close();
        }
        for handle in handles {
            // A dispatcher can only terminate by draining; a panic would be
            // a bug, but shutdown must still reap the remaining threads.
            let _ = handle.join();
        }
    }
}

impl<S: Scalar> BppsaService<S> {
    /// Submits a backward request with the configured
    /// [`ServeConfig::max_delay`] budget. See
    /// [`BppsaService::submit_with_delay`].
    ///
    /// # Errors
    ///
    /// As [`BppsaService::submit_with_delay`].
    pub fn submit(
        &self,
        chain: JacobianChain<S>,
        ticket: &Ticket<S>,
    ) -> Result<(), SubmitError<S>> {
        self.submit_with_delay(chain, self.shared.config.max_delay, ticket)
    }

    /// Submits a backward request with an explicit delay budget: the
    /// request's lane flushes no later than `delay` from now, even if the
    /// batch is not full. Blocks while the lane's queue is at capacity
    /// (backpressure). Completion is observed through the `ticket`.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Shutdown`] when the service is shutting down,
    /// [`SubmitError::TicketInFlight`] when `ticket` already has a pending
    /// request; both hand the chain back.
    ///
    /// # Panics
    ///
    /// Panics if the chain is invalid for planning (must be all-CSR, see
    /// [`PlannedScan::plan`]).
    pub fn submit_with_delay(
        &self,
        chain: JacobianChain<S>,
        delay: Duration,
        ticket: &Ticket<S>,
    ) -> Result<(), SubmitError<S>> {
        self.submit_inner(chain, delay, ticket, true)
            .map_err(|e| match e {
                SubmitError::Backpressure(_) => unreachable!("blocking submit never refuses room"),
                other => other,
            })
    }

    /// Non-blocking [`BppsaService::submit`]: a full lane queue returns
    /// [`SubmitError::Backpressure`] (with the chain) instead of waiting.
    ///
    /// # Errors
    ///
    /// As [`BppsaService::submit_with_delay`], plus
    /// [`SubmitError::Backpressure`].
    pub fn try_submit(
        &self,
        chain: JacobianChain<S>,
        ticket: &Ticket<S>,
    ) -> Result<(), SubmitError<S>> {
        self.submit_inner(chain, self.shared.config.max_delay, ticket, false)
    }

    fn submit_inner(
        &self,
        chain: JacobianChain<S>,
        delay: Duration,
        ticket: &Ticket<S>,
        block: bool,
    ) -> Result<(), SubmitError<S>> {
        let shared = ticket.shared();
        let deadline = Instant::now() + delay;
        let mut chain = chain;
        // The ticket is marked in flight only after the first successful
        // route: a routing panic (invalid chain) must leave the ticket
        // idle, while the mark must still precede the enqueue so a racing
        // completion cannot be lost.
        let mut in_flight = false;
        loop {
            let Some(lane) = self.route(&chain) else {
                if in_flight {
                    shared.abort_flight();
                }
                return Err(SubmitError::Shutdown(chain));
            };
            if !in_flight {
                if !shared.begin_flight() {
                    return Err(SubmitError::TicketInFlight(chain));
                }
                in_flight = true;
            }
            match lane.push(chain, deadline, Arc::clone(&shared), block) {
                Ok(()) => return Ok(()),
                Err((c, PushRefusal::Closed)) => {
                    // Lane evicted between routing and push: re-route (the
                    // lane is re-created if its shape is still wanted).
                    chain = c;
                }
                Err((c, PushRefusal::Full)) => {
                    shared.abort_flight();
                    return Err(SubmitError::Backpressure(c));
                }
            }
        }
    }

    /// Finds (MRU) or creates the lane whose compiled plan matches `chain`;
    /// `None` when the router is closed. Lane creation runs the symbolic
    /// planner under the router lock — amortized across the lane's
    /// lifetime, like every other §3.3 hoist.
    fn route(&self, chain: &JacobianChain<S>) -> Option<Arc<Lane<S>>> {
        let config = self.shared.config;
        let mut router = lock(&self.shared.router);
        if !router.open {
            return None;
        }
        if let Some(lane) = router.lanes.find(|lane| lane.batched.plan().matches(chain)) {
            return Some(Arc::clone(lane));
        }
        // Miss: plan the new lane *before* touching the MRU store — a
        // planner panic (invalid chain) must not evict (and orphan, with a
        // forever-parked dispatcher) an existing lane.
        let lane = Arc::new(Lane::new(chain, &config));
        let (_, inserted, evicted) = router
            .lanes
            .find_or_insert_with_evicted(|_| false, || Arc::clone(&lane));
        debug_assert!(inserted, "fresh lane always inserts");
        {
            let id = router.lanes_created;
            router.lanes_created += 1;
            let worker = Arc::clone(&lane);
            let handle = std::thread::Builder::new()
                .name(format!("bppsa-serve-lane-{id}"))
                .spawn(move || dispatcher_loop(&worker))
                .expect("spawn serve lane dispatcher");
            router.handles.push(handle);
        }
        drop(router);
        if let Some(evicted) = evicted {
            // Outside the router lock: the evicted lane drains its pending
            // requests in the background and its dispatcher retires.
            evicted.close();
        }
        Some(lane)
    }
}

impl<S> Drop for BppsaService<S> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<S> std::fmt::Debug for BppsaService<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let router = lock(&self.shared.router);
        f.debug_struct("BppsaService")
            .field("config", &self.shared.config)
            .field("lanes", &router.lanes.len())
            .field("lanes_created", &router.lanes_created)
            .field("open", &router.open)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeError;
    use bppsa_core::{bppsa_backward, ScanElement};
    use bppsa_sparse::Csr;
    use bppsa_tensor::init::{seeded_rng, uniform_vector};
    use bppsa_tensor::Matrix;
    use rand::Rng;

    fn sparse_chain(n: usize, width: usize, seed: u64) -> JacobianChain<f64> {
        let mut rng = seeded_rng(seed);
        let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
        for _ in 0..n {
            let dense = Matrix::from_fn(width, width, |_, _| {
                if rng.random_range(0.0..1.0) < 0.4 {
                    rng.random_range(-1.0..1.0)
                } else {
                    0.0
                }
            });
            chain.push(ScanElement::Sparse(Csr::from_dense(&dense)));
        }
        chain
    }

    /// Same sparsity patterns as `template` (so the request routes to the
    /// template's lane), fresh values.
    fn revalue(template: &JacobianChain<f64>, seed: u64) -> JacobianChain<f64> {
        let mut rng = seeded_rng(seed);
        let mut chain = JacobianChain::new(uniform_vector(&mut rng, template.seed().len(), 1.0));
        for jt in template.jacobians() {
            let ScanElement::Sparse(m) = jt else {
                unreachable!()
            };
            chain.push(ScanElement::Sparse(
                m.map_values(|_| rng.random_range(-1.0..1.0)),
            ));
        }
        chain
    }

    fn quick_config() -> ServeConfig {
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_micros(500),
            queue_cap: 16,
            max_lanes: 4,
            workspaces_per_lane: 0,
        }
    }

    #[test]
    fn single_request_flushes_by_deadline_without_further_traffic() {
        // max_batch is 4 but only one request arrives: the deadline policy
        // alone must flush it — no co-traffic, no nudge.
        let service = BppsaService::<f64>::new(quick_config());
        let chain = sparse_chain(6, 8, 1);
        let reference = bppsa_backward(&chain, BppsaOptions::serial());
        let ticket = Ticket::new();
        service.submit(chain, &ticket).expect("accepting");
        ticket.wait().expect("deadline flush completes the request");
        ticket.with_result(|r| assert!(r.max_abs_diff(&reference) < 1e-12));
        assert_eq!(service.lanes(), 1);
    }

    #[test]
    fn coalesced_batch_matches_serial_bit_for_bit() {
        let service = BppsaService::<f64>::new(quick_config());
        let template = sparse_chain(10, 8, 2);
        let plan = PlannedScan::plan(&template, BppsaOptions::serial());
        let chains: Vec<JacobianChain<f64>> = (0..8)
            .map(|k| {
                let mut rng = seeded_rng(100 + k);
                let mut chain =
                    JacobianChain::new(uniform_vector(&mut rng, template.seed().len(), 1.0));
                for jt in template.jacobians() {
                    let ScanElement::Sparse(m) = jt else {
                        unreachable!()
                    };
                    chain.push(ScanElement::Sparse(
                        m.map_values(|_| rng.random_range(-1.0..1.0)),
                    ));
                }
                chain
            })
            .collect();
        let references: Vec<Vec<Vec<f64>>> = chains
            .iter()
            .map(|chain| {
                let mut ws = plan.workspace::<f64>();
                plan.execute_with(chain, &mut ws)
                    .grads()
                    .iter()
                    .map(|g| g.as_slice().to_vec())
                    .collect()
            })
            .collect();
        let tickets: Vec<Ticket<f64>> = chains.iter().map(|_| Ticket::new()).collect();
        for (chain, ticket) in chains.into_iter().zip(&tickets) {
            service.submit(chain, ticket).expect("accepting");
        }
        for (k, ticket) in tickets.iter().enumerate() {
            ticket.wait().expect("served");
            ticket.with_result(|r| {
                for (g, expect) in r.grads().iter().zip(&references[k]) {
                    // Same compiled program, same rounding: exact equality.
                    assert_eq!(g.as_slice(), expect.as_slice());
                }
            });
        }
        assert_eq!(service.lanes(), 1, "one shape, one lane");
    }

    #[test]
    fn short_budget_request_flushes_within_its_own_deadline() {
        // Regression test: the dispatcher used to arm its timer on the
        // *front* request's deadline only, so a short-budget request queued
        // behind a long-budget one waited out the long budget. The flush
        // timer must follow the earliest pending deadline.
        let service = BppsaService::<f64>::new(ServeConfig {
            max_batch: 8, // never reached: the deadline must do the work
            max_delay: Duration::from_millis(400),
            queue_cap: 16,
            max_lanes: 2,
            workspaces_per_lane: 0,
        });
        let template = sparse_chain(5, 6, 45);
        let long = Ticket::new();
        service
            .submit_with_delay(revalue(&template, 46), Duration::from_millis(400), &long)
            .expect("accepting");
        let short = Ticket::new();
        let t0 = Instant::now();
        service
            .submit_with_delay(revalue(&template, 47), Duration::from_millis(2), &short)
            .expect("accepting");
        short.wait().expect("served");
        let waited = t0.elapsed();
        assert!(
            waited < Duration::from_millis(200),
            "short-budget request waited {waited:?} — the long co-request's budget leaked onto it"
        );
        // The whole prefix flushes together, so the long request rides along.
        long.wait().expect("served in the same flush");
    }

    #[test]
    fn planner_panic_does_not_orphan_existing_lanes() {
        // Regression test: at lane capacity, a panic while planning a new
        // shape used to strike *inside* the MRU make-closure, after the LRU
        // lane had already been evicted — leaking a never-closed lane whose
        // dispatcher parked forever and hung shutdown. Planning now happens
        // before any eviction, and the submitting ticket stays idle.
        let mut config = quick_config();
        config.max_lanes = 1;
        let service = BppsaService::<f64>::new(config);
        let template = sparse_chain(4, 6, 48);
        let ticket = Ticket::new();
        service
            .submit(revalue(&template, 49), &ticket)
            .expect("accepting");
        ticket.wait().expect("served");

        // An un-plannable chain (dense element) panics inside submit.
        let mut bad = JacobianChain::new(bppsa_tensor::Vector::from_vec(vec![1.0, 2.0]));
        bad.push(ScanElement::Dense(bppsa_tensor::Matrix::identity(2)));
        let bad_ticket = Ticket::new();
        let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = service.submit(bad, &bad_ticket);
        }));
        assert!(panicked.is_err(), "dense chain must be rejected loudly");

        // The existing lane is intact, the panicking ticket reusable, and
        // shutdown (via drop at the end of this test) must not hang.
        service
            .submit(revalue(&template, 50), &bad_ticket)
            .expect("ticket left idle by the failed submit");
        bad_ticket.wait().expect("served on the surviving lane");
        assert_eq!(service.lanes(), 1);
        assert_eq!(service.lanes_created(), 1, "no lane was evicted or leaked");
        service.shutdown();
    }

    #[test]
    fn mru_eviction_drains_and_recreates_lanes() {
        let mut config = quick_config();
        config.max_lanes = 2;
        let service = BppsaService::<f64>::new(config);
        // Three shapes through a 2-lane router: the first lane is evicted…
        for (n, seed) in [(3usize, 10u64), (5, 11), (7, 12)] {
            let ticket = Ticket::new();
            service
                .submit(sparse_chain(n, 6, seed), &ticket)
                .expect("accepting");
            ticket.wait().expect("served");
        }
        assert_eq!(service.lanes(), 2);
        assert_eq!(service.lanes_created(), 3);
        // …and transparently re-created when its shape returns.
        let ticket = Ticket::new();
        service
            .submit(sparse_chain(3, 6, 13), &ticket)
            .expect("accepting");
        ticket.wait().expect("served");
        assert_eq!(service.lanes(), 2);
        assert_eq!(service.lanes_created(), 4);
    }

    #[test]
    fn shutdown_refuses_new_work_and_returns_the_chain() {
        let service = BppsaService::<f64>::new(quick_config());
        let ticket = Ticket::new();
        service
            .submit(sparse_chain(4, 6, 20), &ticket)
            .expect("accepting");
        service.shutdown();
        // The accepted request completed during the drain.
        ticket.wait().expect("drained before retiring");
        let refused = service.submit(sparse_chain(4, 6, 21), &Ticket::new());
        let chain = match refused {
            Err(SubmitError::Shutdown(chain)) => chain,
            other => panic!("expected Shutdown, got {other:?}"),
        };
        assert_eq!(chain.num_layers(), 4, "chain handed back intact");
    }

    #[test]
    fn ticket_in_flight_is_refused() {
        let mut config = quick_config();
        config.max_delay = Duration::from_millis(50); // keep it pending
        let service = BppsaService::<f64>::new(config);
        let ticket = Ticket::new();
        service
            .submit(sparse_chain(4, 6, 30), &ticket)
            .expect("accepting");
        let second = service.submit(sparse_chain(4, 6, 31), &ticket);
        assert!(matches!(second, Err(SubmitError::TicketInFlight(_))));
        ticket.wait().expect("first request still completes");
    }

    #[test]
    fn try_submit_backpressure_hands_the_chain_back() {
        // A lane whose dispatcher is stuck behind a long deadline with
        // queue_cap 1: the second try_submit must refuse with the chain.
        let config = ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(200),
            queue_cap: 1,
            max_lanes: 2,
            workspaces_per_lane: 1,
        };
        let service = BppsaService::<f64>::new(config);
        let template = sparse_chain(4, 6, 40);
        let t1 = Ticket::new();
        service
            .submit(revalue(&template, 41), &t1)
            .expect("accepting");
        let t2 = Ticket::new();
        let refused = service.try_submit(revalue(&template, 42), &t2);
        assert!(matches!(refused, Err(SubmitError::Backpressure(_))));
        t1.wait().expect("queued request still served");
        // The refused ticket is reusable immediately.
        service
            .submit(revalue(&template, 43), &t2)
            .expect("accepting after refusal");
        t2.wait().expect("served");
    }

    #[test]
    fn panicking_request_poisons_only_its_own_batch() {
        // End-to-end panic containment across *concurrently flushing*
        // lanes, directly exercising the worker pool's generation-scoped
        // poisoning: lane A's batch carries one request that panics inside
        // `PlannedScan::execute_with` (its chain matches the lane plan's
        // shapes but not its length — reachable here by pushing past the
        // router on a hand-built lane), while lane B flushes clean batches
        // the whole time. The panicking request must fail, its innocent
        // co-members and every lane-B request must succeed.
        let config = quick_config();
        let good_template = sparse_chain(6, 8, 50);
        let lane_a = Arc::new(Lane::new(&good_template, &config));
        // Wrong *length* for lane A's plan: `execute_with`'s chain check
        // panics deterministically inside the batch job. (Unreachable via
        // `submit` — routing always matches — hence the hand-built lane.)
        let bad_chain = sparse_chain(9, 8, 51);
        let service_b = BppsaService::<f64>::new(quick_config());
        let b_template = sparse_chain(5, 6, 52);

        // All assertions run *after* the dispatcher is retired, so a
        // failure reports instead of hanging the scope join.
        let (good_outcomes, bad_outcome, bad_layers, after_outcome, b_outcomes) =
            std::thread::scope(|s| {
                let lane = Arc::clone(&lane_a);
                let dispatcher = s.spawn(move || dispatcher_loop(&lane));

                // Lane A: 3 good requests + 1 poisoned, one coalesced batch.
                let good_tickets: Vec<Ticket<f64>> = (0..3).map(|_| Ticket::new()).collect();
                let bad_ticket = Ticket::new();
                let deadline = Instant::now() + Duration::from_millis(5);
                for (k, ticket) in good_tickets.iter().enumerate() {
                    assert!(ticket.shared().begin_flight());
                    lane_a
                        .push(
                            revalue(&good_template, 60 + k as u64),
                            deadline,
                            ticket.shared(),
                            true,
                        )
                        .unwrap_or_else(|_| panic!("open lane refused"));
                }
                assert!(bad_ticket.shared().begin_flight());
                lane_a
                    .push(bad_chain, deadline, bad_ticket.shared(), true)
                    .unwrap_or_else(|_| panic!("open lane refused"));

                // Lane B (separate service): concurrent clean traffic racing
                // lane A's poisoned flush on the shared worker pool.
                let b_outcomes: Vec<Result<(), ServeError>> = (0..20)
                    .map(|round| {
                        let ticket = Ticket::new();
                        service_b
                            .submit(revalue(&b_template, 80 + round), &ticket)
                            .expect("accepting");
                        ticket.wait()
                    })
                    .collect();

                let good_outcomes: Vec<Result<(), ServeError>> = good_tickets
                    .iter()
                    .map(|t| {
                        let outcome = t.wait();
                        if outcome.is_ok() {
                            t.with_result(|r| assert_eq!(r.grads().len(), 6));
                        }
                        outcome
                    })
                    .collect();
                let bad_outcome = bad_ticket.wait();
                let bad_layers = bad_ticket.take_chain().num_layers();

                // The lane survives its poisoned batch: a fresh request
                // flushes cleanly before the dispatcher retires.
                let after = Ticket::new();
                assert!(after.shared().begin_flight());
                lane_a
                    .push(
                        revalue(&good_template, 70),
                        Instant::now() + Duration::from_millis(2),
                        after.shared(),
                        true,
                    )
                    .unwrap_or_else(|_| panic!("open lane refused"));
                let after_outcome = after.wait();

                lane_a.close();
                dispatcher.join().expect("dispatcher retired cleanly");
                (
                    good_outcomes,
                    bad_outcome,
                    bad_layers,
                    after_outcome,
                    b_outcomes,
                )
            });

        for (k, outcome) in good_outcomes.iter().enumerate() {
            assert_eq!(
                *outcome,
                Ok(()),
                "innocent co-member {k} must still complete"
            );
        }
        assert_eq!(bad_outcome, Err(ServeError::BatchPanicked));
        assert_eq!(bad_layers, 9, "the panicking request's chain comes back");
        assert_eq!(after_outcome, Ok(()), "lane survives its poisoned batch");
        for (round, outcome) in b_outcomes.iter().enumerate() {
            assert_eq!(
                *outcome,
                Ok(()),
                "concurrent clean lane caught a foreign panic (round {round})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "max_batch must be >= 1")]
    fn zero_max_batch_is_rejected() {
        let mut config = quick_config();
        config.max_batch = 0;
        let _ = BppsaService::<f64>::new(config);
    }
}
