//! Client-side completion handles for served backward requests.
//!
//! A [`Ticket`] is the reusable rendezvous between one submitter and the
//! service: `submit` moves a [`JacobianChain`] in, the lane dispatcher
//! executes it inside a coalesced batch, and completion hands the chain
//! *back* into the ticket together with the gradients — so a steady-state
//! client loop (refresh values in place, resubmit, wait, read) performs
//! **zero heap allocations** after its first round trip. The gradient copy
//! reuses the ticket's buffer whenever the shapes match, and waiting is a
//! plain condvar park.

use bppsa_core::{BackwardResult, JacobianChain};
use bppsa_tensor::Scalar;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Why a served request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// A job in this request's coalesced batch panicked and this request's
    /// own execution did not complete. Requests of the same batch whose
    /// execution finished before the panic still complete successfully —
    /// the panic is attributed per request, and other batches (other lanes,
    /// other flushes) are never affected.
    BatchPanicked,
    /// The lane's warm-up (symbolic planning + workspace construction)
    /// panicked before this request could execute; the lane retired and
    /// every request it had accepted fails with this error (chains handed
    /// back). Shape validity is checked at submit, so this indicates an
    /// internal planning bug, not a malformed request.
    PlanPanicked,
    /// The lane's dispatcher thread died outside its panic guards (an
    /// injected or internal fault escaping every `catch_unwind`).
    /// Supervision failed every request the lane still held — queued or
    /// mid-assembly — with this error instead of leaving their waiters
    /// hung; chains are handed back. The lane is purged from the router on
    /// the next routing of its shape, so later submits transparently
    /// re-create it.
    LaneDied,
    /// The lane's circuit breaker tripped
    /// ([`BreakerPolicy::max_consecutive_panics`](crate::BreakerPolicy::max_consecutive_panics)
    /// uninterrupted batch panics) while this request was queued: the lane
    /// exited [`LaneState::Quarantined`](crate::LaneState::Quarantined)
    /// and failed its whole queue with this error (chains handed back).
    /// Until the cool-down elapses, *new* submits of the shape are refused
    /// up front with
    /// [`SubmitError::Quarantined`](crate::SubmitError::Quarantined).
    LaneQuarantined,
    /// Under [`DeadlinePolicy::Hard`](crate::DeadlinePolicy::Hard), this
    /// request was already past its deadline (by more than the configured
    /// grace) when the dispatcher assembled its batch, so it was failed at
    /// flush instead of executed late. The chain is handed back; resubmit
    /// with a larger delay budget if late results are acceptable, or switch
    /// to [`DeadlinePolicy::Soft`](crate::DeadlinePolicy::Soft).
    DeadlineExceeded,
    /// The stall watchdog
    /// ([`WatchdogPolicy`](crate::WatchdogPolicy)) found the lane's flush
    /// stuck inside execution past its stall budget and failed the lane:
    /// requests already assembled into the stalled flush resolve with this
    /// error **without their chain handed back** (the chain is captive
    /// inside the stuck execution — do not call
    /// [`Ticket::take_chain`] after it; rebuild the chain instead), while
    /// requests still queued fail with chains returned. The lane is
    /// quarantined exactly as a circuit-breaker trip would
    /// ([`LaneState::Quarantined`](crate::LaneState::Quarantined)) and
    /// recovers through the same half-open probe.
    FlushStalled,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BatchPanicked => {
                write!(f, "a job in this request's coalesced batch panicked")
            }
            ServeError::PlanPanicked => {
                write!(f, "the lane's plan construction panicked during warm-up")
            }
            ServeError::LaneDied => {
                write!(f, "the lane's dispatcher thread died; request not served")
            }
            ServeError::LaneQuarantined => {
                write!(f, "the lane's circuit breaker tripped; shape quarantined")
            }
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline expired before its batch flushed")
            }
            ServeError::FlushStalled => {
                write!(f, "the lane's flush stalled past its watchdog budget")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Where a ticket currently is in its request lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// No request submitted yet (or the last flight was aborted).
    Idle,
    /// A request is in flight; `wait` blocks.
    Pending,
    /// The last request completed; `outcome` says how.
    Done,
}

pub(crate) struct TicketShared<S> {
    inner: Mutex<TicketInner<S>>,
    done: Condvar,
}

struct TicketInner<S> {
    phase: Phase,
    /// Monotonic flight generation, bumped by every `begin_flight`. Guarded
    /// completion (`finish_if` / `stage_if`) carries the generation it was
    /// assembled under and no-ops when it no longer matches — so a stalled
    /// dispatcher waking up after the watchdog already failed (and the
    /// client possibly resubmitted) its tickets cannot corrupt a newer
    /// flight.
    flight: u64,
    /// `Some` exactly when `phase == Done`.
    outcome: Option<Result<(), ServeError>>,
    /// Whether the in-flight request's execution completed (its result was
    /// staged) — distinguishes the panicking member of a poisoned batch
    /// from its innocent co-members.
    staged: bool,
    /// The last completed flight's gradients; reused across flights.
    result: Option<BackwardResult<S>>,
    /// The request chain, handed back on completion for in-place refresh.
    chain: Option<JacobianChain<S>>,
}

impl<S> TicketShared<S> {
    fn lock(&self) -> MutexGuard<'_, TicketInner<S>> {
        // Ticket state carries no invariant a panicking holder could break
        // mid-update that a waiter must not see (single writer per phase).
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Marks the ticket in flight. `false` if a request is already pending.
    pub(crate) fn begin_flight(&self) -> bool {
        let mut inner = self.lock();
        if inner.phase == Phase::Pending {
            return false;
        }
        inner.phase = Phase::Pending;
        inner.flight = inner.flight.wrapping_add(1);
        inner.outcome = None;
        inner.staged = false;
        true
    }

    /// The current flight generation — captured at batch assembly and
    /// passed back through [`TicketShared::finish_if`] /
    /// [`TicketShared::stage_if`].
    pub(crate) fn flight_token(&self) -> u64 {
        self.lock().flight
    }

    /// Rolls a [`TicketShared::begin_flight`] back after a refused submit.
    pub(crate) fn abort_flight(&self) {
        let mut inner = self.lock();
        debug_assert_eq!(inner.phase, Phase::Pending);
        inner.phase = Phase::Idle;
    }

    /// Completes the flight: hands the chain back and wakes waiters. A
    /// [`ServeError::BatchPanicked`] failure is attributed per request:
    /// members whose execution finished (staged) still complete
    /// successfully; only the unexecuted ones fail. Other failures (e.g.
    /// [`ServeError::PlanPanicked`]) fail the flight unconditionally.
    pub(crate) fn finish(&self, chain: JacobianChain<S>, failure: Option<ServeError>) {
        let mut inner = self.lock();
        debug_assert_eq!(inner.phase, Phase::Pending);
        Self::complete(&mut inner, Some(chain), failure);
        drop(inner);
        self.done.notify_all();
    }

    /// Guarded [`TicketShared::finish`]: completes the flight only if it is
    /// still pending *and* still generation `token`; returns whether it
    /// did. `chain: None` completes without handing a chain back (the
    /// watchdog takeover path — the chain is captive in a stalled
    /// execution). Safe to race: exactly one of the competing completers
    /// (watchdog vs. woken dispatcher) observes the matching generation.
    pub(crate) fn finish_if(
        &self,
        token: u64,
        chain: Option<JacobianChain<S>>,
        failure: Option<ServeError>,
    ) -> bool {
        let mut inner = self.lock();
        if inner.phase != Phase::Pending || inner.flight != token {
            return false;
        }
        Self::complete(&mut inner, chain, failure);
        drop(inner);
        self.done.notify_all();
        true
    }

    fn complete(
        inner: &mut TicketInner<S>,
        chain: Option<JacobianChain<S>>,
        failure: Option<ServeError>,
    ) {
        inner.outcome = Some(match failure {
            None => Ok(()),
            Some(ServeError::BatchPanicked) if inner.staged => Ok(()),
            Some(err) => Err(err),
        });
        if let Some(chain) = chain {
            inner.chain = Some(chain);
        }
        inner.phase = Phase::Done;
    }
}

impl<S: Scalar> TicketShared<S> {
    /// Stages the request's gradients (called from the batch fan-out while
    /// the executing workspace is still checked out). Reuses the ticket's
    /// result buffer when shapes match — allocation-free in the steady
    /// state.
    #[cfg(test)]
    pub(crate) fn stage(&self, result: &BackwardResult<S>) {
        let mut inner = self.lock();
        Self::stage_inner(&mut inner, result);
    }

    /// Guarded [`TicketShared::stage`]: stages only while the flight is
    /// still pending generation `token` — a stalled execution waking after
    /// watchdog takeover must not overwrite a newer flight's result.
    pub(crate) fn stage_if(&self, token: u64, result: &BackwardResult<S>) {
        let mut inner = self.lock();
        if inner.phase != Phase::Pending || inner.flight != token {
            return;
        }
        Self::stage_inner(&mut inner, result);
    }

    fn stage_inner(inner: &mut TicketInner<S>, result: &BackwardResult<S>) {
        match &mut inner.result {
            Some(dst)
                if dst.grads().len() == result.grads().len()
                    && dst
                        .grads()
                        .iter()
                        .zip(result.grads())
                        .all(|(d, s)| d.len() == s.len()) =>
            {
                for (dst, src) in dst.grads_mut().iter_mut().zip(result.grads()) {
                    dst.as_mut_slice().copy_from_slice(src.as_slice());
                }
            }
            slot => *slot = Some(result.clone()),
        }
        inner.staged = true;
    }
}

/// A reusable completion handle: one in-flight request at a time, chain and
/// gradient buffers recycled across flights.
///
/// The steady-state client loop — take the chain back, refresh its values
/// in place, resubmit, wait, read — performs **zero heap allocations**
/// after the first completed round trip (asserted by
/// `crates/serve/tests/alloc_free_serve.rs`).
///
/// # Examples
///
/// ```
/// use bppsa_core::{JacobianChain, ScanElement};
/// use bppsa_serve::{BppsaService, ServeConfig, Ticket};
/// use bppsa_sparse::Csr;
/// use bppsa_tensor::Vector;
///
/// let service = BppsaService::<f64>::new(ServeConfig::default());
/// let ticket = Ticket::new();
///
/// let mut chain = JacobianChain::new(Vector::from_vec(vec![1.0, -2.0]));
/// chain.push(ScanElement::Sparse(Csr::from_diagonal(&[3.0, 0.5])));
/// service.submit(chain, &ticket).expect("service accepting");
///
/// ticket.wait().expect("request served");
/// let grad = ticket.with_result(|r| r.grad_x(1).as_slice().to_vec());
/// assert_eq!(grad, vec![1.0, -2.0]); // ∇x_n = seed
///
/// // Reuse: reclaim the chain, refresh values in place, go again.
/// let chain = ticket.take_chain();
/// service.submit(chain, &ticket).expect("service accepting");
/// ticket.wait().expect("request served");
/// ```
pub struct Ticket<S> {
    shared: Arc<TicketShared<S>>,
}

impl<S> Ticket<S> {
    /// A fresh, idle ticket.
    pub fn new() -> Self {
        Self {
            shared: Arc::new(TicketShared {
                inner: Mutex::new(TicketInner {
                    phase: Phase::Idle,
                    flight: 0,
                    outcome: None,
                    staged: false,
                    result: None,
                    chain: None,
                }),
                done: Condvar::new(),
            }),
        }
    }

    pub(crate) fn shared(&self) -> Arc<TicketShared<S>> {
        Arc::clone(&self.shared)
    }

    /// Blocks until the in-flight request completes; repeated calls after
    /// completion return the same outcome until the next submit.
    ///
    /// # Panics
    ///
    /// Panics if no request was ever submitted on this ticket.
    pub fn wait(&self) -> Result<(), ServeError> {
        let mut inner = self.shared.lock();
        loop {
            match inner.phase {
                Phase::Done => return inner.outcome.expect("Done implies outcome"),
                Phase::Idle => panic!("Ticket::wait: no request in flight"),
                Phase::Pending => {
                    inner = self
                        .shared
                        .done
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Like [`Ticket::wait`], but gives up after `timeout`: returns
    /// `Some(outcome)` if the request completed within the window, `None`
    /// if it is still pending when the timeout elapses (the request stays
    /// in flight — the ticket cannot be resubmitted until it completes, so
    /// a `None` is a liveness probe, not a cancellation).
    ///
    /// # Panics
    ///
    /// Panics if no request was ever submitted on this ticket.
    ///
    /// # Examples
    ///
    /// ```
    /// use bppsa_core::{JacobianChain, ScanElement};
    /// use bppsa_serve::{BppsaService, ServeConfig, Ticket};
    /// use bppsa_sparse::Csr;
    /// use bppsa_tensor::Vector;
    /// use std::time::Duration;
    ///
    /// let service = BppsaService::<f64>::new(ServeConfig::default());
    /// let ticket = Ticket::new();
    /// let mut chain = JacobianChain::new(Vector::from_vec(vec![1.0, -2.0]));
    /// chain.push(ScanElement::Sparse(Csr::from_diagonal(&[3.0, 0.5])));
    /// service.submit(chain, &ticket).expect("service accepting");
    ///
    /// // A served request terminates; a generous timeout never trips.
    /// let outcome = ticket.wait_timeout(Duration::from_secs(30));
    /// assert_eq!(outcome, Some(Ok(())));
    /// ```
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> Option<Result<(), ServeError>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.shared.lock();
        loop {
            match inner.phase {
                Phase::Done => return Some(inner.outcome.expect("Done implies outcome")),
                Phase::Idle => panic!("Ticket::wait_timeout: no request in flight"),
                Phase::Pending => {
                    let now = std::time::Instant::now();
                    let left = deadline
                        .checked_duration_since(now)
                        .filter(|d| !d.is_zero())?;
                    inner = self
                        .shared
                        .done
                        .wait_timeout(inner, left)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
        }
    }

    /// Whether the last submitted request has completed (never blocks).
    pub fn is_done(&self) -> bool {
        self.shared.lock().phase == Phase::Done
    }

    /// Reads the completed gradients under the ticket lock (no copy; copy
    /// out what must outlive the call).
    ///
    /// # Panics
    ///
    /// Panics if the last request did not complete successfully (or none
    /// was submitted) — check [`Ticket::wait`] first.
    pub fn with_result<R>(&self, f: impl FnOnce(&BackwardResult<S>) -> R) -> R {
        let inner = self.shared.lock();
        assert_eq!(
            (inner.phase, inner.outcome),
            (Phase::Done, Some(Ok(()))),
            "Ticket::with_result: last request did not complete successfully"
        );
        f(inner.result.as_ref().expect("successful flight staged"))
    }

    /// Reclaims the chain of the last completed request for in-place value
    /// refresh and resubmission (the allocation-free client loop).
    ///
    /// # Panics
    ///
    /// Panics while a request is in flight, or if there is no chain to take
    /// (none submitted yet, or already taken).
    pub fn take_chain(&self) -> JacobianChain<S> {
        let mut inner = self.shared.lock();
        assert_ne!(
            inner.phase,
            Phase::Pending,
            "Ticket::take_chain: request still in flight"
        );
        inner
            .chain
            .take()
            .expect("Ticket::take_chain: no chain held")
    }
}

impl<S> Default for Ticket<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> std::fmt::Debug for Ticket<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.shared.lock();
        f.debug_struct("Ticket")
            .field("phase", &inner.phase)
            .field("outcome", &inner.outcome)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bppsa_sparse::Csr;
    use bppsa_tensor::Vector;

    fn tiny_chain(scale: f64) -> JacobianChain<f64> {
        let mut chain = JacobianChain::new(Vector::from_vec(vec![scale, -scale]));
        chain.push(bppsa_core::ScanElement::Sparse(Csr::from_diagonal(&[
            2.0, 3.0,
        ])));
        chain
    }

    #[test]
    fn begin_stage_finish_roundtrip() {
        let ticket = Ticket::<f64>::new();
        let shared = ticket.shared();
        assert!(shared.begin_flight());
        assert!(!shared.begin_flight(), "double begin must be refused");
        let result = BackwardResult::from_grads(vec![Vector::from_vec(vec![1.0, 2.0])]);
        shared.stage(&result);
        shared.finish(tiny_chain(1.0), None);
        assert_eq!(ticket.wait(), Ok(()));
        assert_eq!(
            ticket.with_result(|r| r.grad_x(1).as_slice().to_vec()),
            vec![1.0, 2.0]
        );
        let chain = ticket.take_chain();
        assert_eq!(chain.seed().as_slice(), &[1.0, -1.0]);
    }

    #[test]
    fn panicked_batch_fails_only_unstaged_members() {
        let staged = Ticket::<f64>::new();
        let unstaged = Ticket::<f64>::new();
        for t in [&staged, &unstaged] {
            assert!(t.shared().begin_flight());
        }
        staged
            .shared()
            .stage(&BackwardResult::from_grads(vec![Vector::from_vec(vec![
                5.0,
            ])]));
        staged
            .shared()
            .finish(tiny_chain(1.0), Some(ServeError::BatchPanicked));
        unstaged
            .shared()
            .finish(tiny_chain(2.0), Some(ServeError::BatchPanicked));
        assert_eq!(staged.wait(), Ok(()));
        assert_eq!(unstaged.wait(), Err(ServeError::BatchPanicked));
        // Both get their chains back regardless of outcome.
        assert_eq!(staged.take_chain().seed().as_slice(), &[1.0, -1.0]);
        assert_eq!(unstaged.take_chain().seed().as_slice(), &[2.0, -2.0]);
    }

    #[test]
    fn abort_flight_returns_to_idle() {
        let ticket = Ticket::<f64>::new();
        assert!(ticket.shared().begin_flight());
        ticket.shared().abort_flight();
        assert!(ticket.shared().begin_flight(), "idle again after abort");
    }

    #[test]
    #[should_panic(expected = "no request in flight")]
    fn wait_without_submit_panics() {
        let _ = Ticket::<f64>::new().wait();
    }

    #[test]
    #[should_panic(expected = "did not complete successfully")]
    fn with_result_after_failure_panics() {
        let ticket = Ticket::<f64>::new();
        ticket.shared().begin_flight();
        ticket
            .shared()
            .finish(tiny_chain(1.0), Some(ServeError::BatchPanicked));
        assert_eq!(ticket.wait(), Err(ServeError::BatchPanicked));
        ticket.with_result(|_| ());
    }

    #[test]
    fn wait_timeout_probes_without_consuming_the_flight() {
        let ticket = Ticket::<f64>::new();
        let shared = ticket.shared();
        assert!(shared.begin_flight());
        // Still pending: the probe returns None and the flight stays live.
        assert_eq!(
            ticket.wait_timeout(std::time::Duration::from_millis(1)),
            None
        );
        shared.finish(tiny_chain(1.0), Some(ServeError::LaneDied));
        assert_eq!(
            ticket.wait_timeout(std::time::Duration::from_secs(1)),
            Some(Err(ServeError::LaneDied))
        );
        // Repeated probes after completion keep returning the outcome.
        assert_eq!(
            ticket.wait_timeout(std::time::Duration::ZERO),
            Some(Err(ServeError::LaneDied))
        );
        assert_eq!(ticket.take_chain().seed().as_slice(), &[1.0, -1.0]);
    }

    #[test]
    fn supervision_errors_fail_even_staged_members() {
        // Unlike BatchPanicked, LaneDied / LaneQuarantined / DeadlineExceeded
        // carry no per-request execution attribution: the flight fails.
        for err in [
            ServeError::LaneDied,
            ServeError::LaneQuarantined,
            ServeError::DeadlineExceeded,
        ] {
            let ticket = Ticket::<f64>::new();
            assert!(ticket.shared().begin_flight());
            ticket
                .shared()
                .stage(&BackwardResult::from_grads(vec![Vector::from_vec(vec![
                    5.0,
                ])]));
            ticket.shared().finish(tiny_chain(1.0), Some(err));
            assert_eq!(ticket.wait(), Err(err));
            let _ = ticket.take_chain();
        }
    }

    #[test]
    fn guarded_finish_races_resolve_to_exactly_one_winner() {
        let ticket = Ticket::<f64>::new();
        let shared = ticket.shared();
        assert!(shared.begin_flight());
        let token = shared.flight_token();
        // Watchdog takeover: completes without a chain.
        assert!(shared.finish_if(token, None, Some(ServeError::FlushStalled)));
        // The stalled dispatcher waking up loses the race cleanly.
        assert!(!shared.finish_if(token, Some(tiny_chain(1.0)), None));
        assert_eq!(ticket.wait(), Err(ServeError::FlushStalled));
    }

    #[test]
    fn stale_generation_cannot_touch_a_newer_flight() {
        let ticket = Ticket::<f64>::new();
        let shared = ticket.shared();
        assert!(shared.begin_flight());
        let stale = shared.flight_token();
        shared.finish_if(stale, None, Some(ServeError::FlushStalled));
        assert_eq!(ticket.wait(), Err(ServeError::FlushStalled));

        // Client resubmits: a new generation begins.
        assert!(shared.begin_flight());
        let fresh = shared.flight_token();
        assert_ne!(stale, fresh);

        // The old execution finally completes — and must be ignored.
        shared.stage_if(
            stale,
            &BackwardResult::from_grads(vec![Vector::from_vec(vec![9.0])]),
        );
        assert!(!shared.finish_if(stale, Some(tiny_chain(7.0)), None));
        assert!(!ticket.is_done(), "stale completion must not finish fresh");

        // The fresh flight completes normally.
        shared.stage_if(
            fresh,
            &BackwardResult::from_grads(vec![Vector::from_vec(vec![1.0, 2.0])]),
        );
        assert!(shared.finish_if(fresh, Some(tiny_chain(3.0)), None));
        assert_eq!(ticket.wait(), Ok(()));
        assert_eq!(
            ticket.with_result(|r| r.grad_x(1).as_slice().to_vec()),
            vec![1.0, 2.0],
            "stale stage must not have leaked into the fresh result"
        );
        assert_eq!(ticket.take_chain().seed().as_slice(), &[3.0, -3.0]);
    }

    #[test]
    fn stalled_takeover_leaves_no_chain_behind() {
        let ticket = Ticket::<f64>::new();
        let shared = ticket.shared();
        assert!(shared.begin_flight());
        let token = shared.flight_token();
        assert!(shared.finish_if(token, None, Some(ServeError::FlushStalled)));
        assert_eq!(ticket.wait(), Err(ServeError::FlushStalled));
        // Documented: the chain is captive in the stalled execution.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ticket.take_chain()));
        assert!(result.is_err(), "take_chain after FlushStalled must panic");
    }

    #[test]
    fn plan_panic_fails_even_staged_members() {
        // PlanPanicked is not per-request-attributable: nothing executed.
        let ticket = Ticket::<f64>::new();
        assert!(ticket.shared().begin_flight());
        ticket
            .shared()
            .finish(tiny_chain(1.0), Some(ServeError::PlanPanicked));
        assert_eq!(ticket.wait(), Err(ServeError::PlanPanicked));
        assert_eq!(ticket.take_chain().seed().as_slice(), &[1.0, -1.0]);
    }
}
