//! Per-lane observability: lock-free counters updated on the serving hot
//! path, read through point-in-time snapshots.
//!
//! Every lane owns a [`LaneMetrics`] (shared with the service's metrics
//! registry via `Arc`, so a lane stays observable after it is evicted,
//! drained, and retired). All updates are relaxed atomic operations — the
//! steady-state request loop stays strictly zero-alloc and the counters
//! never take the lane's queue lock on the read side. Reads go through
//! [`BppsaService::metrics`](crate::BppsaService::metrics), which
//! materializes one [`LaneMetricsSnapshot`] per lane ever created.
//!
//! The counters are the substrate for load shedding
//! ([`ShedPolicy`](crate::ShedPolicy)): queue depth and lane state are what
//! the submit-side shed checks read, and the shed counter records every
//! refusal so an operator can see *where* doomed traffic is being turned
//! away.

use crate::overload::{ewma_update, BrownoutLevel};
use bppsa_core::{KernelCounts, PlanKind};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::Duration;

/// Where a lane is in its lifecycle. The normal state machine is
/// `Warming → Live → Draining → Retired` (a lane evicted or shut down
/// before its plan finished skips `Live`); a lane whose circuit breaker
/// trips exits through `Quarantined` instead of `Retired`:
///
/// * **Warming** — the placeholder lane exists (shape key + bounded queue)
///   and its dispatcher is building the compiled plan and workspace pool.
///   Requests queue up; non-blocking submits are refused with
///   [`SubmitError::LaneWarming`](crate::SubmitError::LaneWarming).
/// * **Live** — the plan is built; the dispatcher coalesces and flushes
///   under the deadline policy.
/// * **Draining** — the lane was evicted or the service is shutting down:
///   no new requests are accepted, everything already queued still flushes.
/// * **Retired** — the dispatcher has exited; the lane's counters remain
///   readable through the service's metrics registry.
/// * **Quarantined** — the lane hit
///   [`BreakerPolicy::max_consecutive_panics`](crate::BreakerPolicy::max_consecutive_panics)
///   and exited, taking its *shape* into cool-down: new submits of the
///   shape are refused with
///   [`SubmitError::Quarantined`](crate::SubmitError::Quarantined) until
///   the cool-down elapses, then exactly one half-open probe lane tests
///   recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneState {
    /// Placeholder inserted; the dispatcher is planning off the router lock.
    Warming,
    /// Plan built; serving under the deadline policy.
    Live,
    /// Evicted or shutting down; flushing the remaining queue.
    Draining,
    /// Dispatcher exited; counters remain readable.
    Retired,
    /// Breaker tripped; the shape is cooling down and submits are refused.
    Quarantined,
}

/// Why a lane's dispatcher flushed a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushCause {
    /// `max_batch` requests were pending — a full batch never waits.
    MaxBatch,
    /// The earliest pending request's delay budget expired.
    Deadline,
    /// The lane is draining (evicted or shutting down) and flushed its
    /// remainder immediately.
    Drain,
}

const CAUSES: usize = 3;

fn cause_index(cause: FlushCause) -> usize {
    match cause {
        FlushCause::MaxBatch => 0,
        FlushCause::Deadline => 1,
        FlushCause::Drain => 2,
    }
}

/// The per-lane atomic counters (crate-internal; read via
/// [`LaneMetricsSnapshot`]).
#[derive(Debug)]
pub(crate) struct LaneMetrics {
    lane_id: usize,
    layers: usize,
    seed_len: usize,
    state: AtomicU8,
    submitted: AtomicU64,
    shed: AtomicU64,
    queue_depth: AtomicUsize,
    flushes: [AtomicU64; CAUSES],
    /// `batch_sizes[k]` counts flushes of exactly `k + 1` requests
    /// (`len == max_batch`; a flush is never empty or wider than
    /// `max_batch`).
    batch_sizes: Vec<AtomicU64>,
    plan_nanos: AtomicU64,
    warmup_nanos: AtomicU64,
    /// Which program kind the lane's plan compiled to: `0` = not yet
    /// planned, `1` = CSR, `2` = diagonal. Written once at warm-up.
    plan_kind: AtomicU8,
    /// How many chain segments the lane's plan scans concurrently (`0` =
    /// not yet planned, `1` = unsegmented). Written once at warm-up.
    plan_segments: AtomicU64,
    kernels_gather: AtomicU64,
    kernels_gustavson: AtomicU64,
    kernels_dense: AtomicU64,
    batch_panics: AtomicU64,
    consecutive_panics: AtomicU32,
    breaker_tripped: AtomicU8,
    deadline_expired: AtomicU64,
    died: AtomicU8,
    /// Requests refused up front because their predicted wait exceeded
    /// their deadline ([`SubmitError::Infeasible`](crate::SubmitError::Infeasible)).
    infeasible: AtomicU64,
    /// EWMA of observed flush latencies in nanoseconds (the feasibility
    /// estimator's state; single writer — the dispatcher — so plain
    /// load/store suffice). `0` = no observation yet.
    ewma_flush_nanos: AtomicU64,
    /// Timed flushes folded into the EWMA (the cold-start gate's input).
    flush_samples: AtomicU64,
    /// Monotonic flush-progress heartbeat: bumped when a flush enters
    /// execution and again when it leaves, so odd = executing right now.
    /// The watchdog's liveness signal is the published in-flight batch;
    /// this gauge is the cheap observable mirror.
    heartbeat: AtomicU64,
    /// Whether the stall watchdog condemned this lane
    /// ([`ServeError::FlushStalled`](crate::ServeError::FlushStalled)).
    stalled: AtomicU8,
    /// The service [`BrownoutLevel`] as last mirrored into this lane.
    brownout: AtomicU8,
    probe: bool,
}

impl LaneMetrics {
    pub(crate) fn new(
        lane_id: usize,
        layers: usize,
        seed_len: usize,
        max_batch: usize,
        probe: bool,
    ) -> Self {
        Self {
            lane_id,
            layers,
            seed_len,
            state: AtomicU8::new(LaneState::Warming as u8),
            submitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            flushes: [const { AtomicU64::new(0) }; CAUSES],
            batch_sizes: (0..max_batch).map(|_| AtomicU64::new(0)).collect(),
            plan_nanos: AtomicU64::new(0),
            warmup_nanos: AtomicU64::new(0),
            plan_kind: AtomicU8::new(0),
            plan_segments: AtomicU64::new(0),
            kernels_gather: AtomicU64::new(0),
            kernels_gustavson: AtomicU64::new(0),
            kernels_dense: AtomicU64::new(0),
            batch_panics: AtomicU64::new(0),
            consecutive_panics: AtomicU32::new(0),
            breaker_tripped: AtomicU8::new(0),
            deadline_expired: AtomicU64::new(0),
            died: AtomicU8::new(0),
            infeasible: AtomicU64::new(0),
            ewma_flush_nanos: AtomicU64::new(0),
            flush_samples: AtomicU64::new(0),
            heartbeat: AtomicU64::new(0),
            stalled: AtomicU8::new(0),
            brownout: AtomicU8::new(0),
            probe,
        }
    }

    pub(crate) fn state(&self) -> LaneState {
        match self.state.load(Ordering::Acquire) {
            s if s == LaneState::Warming as u8 => LaneState::Warming,
            s if s == LaneState::Live as u8 => LaneState::Live,
            s if s == LaneState::Draining as u8 => LaneState::Draining,
            s if s == LaneState::Quarantined as u8 => LaneState::Quarantined,
            _ => LaneState::Retired,
        }
    }

    /// `Warming → Live`; loses to a concurrent `Draining` transition (an
    /// eviction racing the end of planning), which must win so the drain is
    /// observable.
    pub(crate) fn mark_live(&self) {
        let _ = self.state.compare_exchange(
            LaneState::Warming as u8,
            LaneState::Live as u8,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// `Warming | Live → Draining` (idempotent; never resurrects Retired).
    pub(crate) fn mark_draining(&self) {
        let _ = self
            .state
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |s| {
                (s == LaneState::Warming as u8 || s == LaneState::Live as u8)
                    .then_some(LaneState::Draining as u8)
            });
    }

    /// Terminal: the dispatcher exited. Never overwrites `Quarantined` —
    /// a breaker trip is the more specific terminal state and must stay
    /// visible to the router's purge/metrics readers.
    pub(crate) fn mark_retired(&self) {
        let _ = self
            .state
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |s| {
                (s != LaneState::Quarantined as u8).then_some(LaneState::Retired as u8)
            });
    }

    /// Terminal: the breaker tripped and the lane exited with its shape in
    /// cool-down.
    pub(crate) fn mark_quarantined(&self) {
        self.breaker_tripped.store(1, Ordering::Relaxed);
        self.state
            .store(LaneState::Quarantined as u8, Ordering::Release);
    }

    /// One request accepted into the queue, which now holds `depth` entries.
    pub(crate) fn record_submit(&self, depth: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// One request refused by the shed policy.
    pub(crate) fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// One batch of `size` requests flushed for `cause`, leaving `depth`
    /// entries queued.
    pub(crate) fn record_flush(&self, cause: FlushCause, size: usize, depth: usize) {
        self.flushes[cause_index(cause)].fetch_add(1, Ordering::Relaxed);
        debug_assert!(size >= 1 && size <= self.batch_sizes.len());
        self.batch_sizes[size - 1].fetch_add(1, Ordering::Relaxed);
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// The warm-up failed (or the dispatcher died) and the queue was
    /// drained *unserved*: reset the depth gauge. The drained requests stay
    /// counted in `submitted` but never reach the flush histogram — the
    /// cases where a terminal lane's `requests_flushed()` is below its
    /// `submitted`.
    pub(crate) fn record_failed_drain(&self) {
        self.queue_depth.store(0, Ordering::Relaxed);
    }

    /// One flush's batch execution panicked. Returns the new
    /// consecutive-panic count (the breaker's input).
    pub(crate) fn record_batch_panic(&self) -> u32 {
        self.batch_panics.fetch_add(1, Ordering::Relaxed);
        self.consecutive_panics.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// One flush's batch execution succeeded: the consecutive-panic streak
    /// resets (the breaker only counts *uninterrupted* failures).
    pub(crate) fn record_batch_success(&self) {
        self.consecutive_panics.store(0, Ordering::Relaxed);
    }

    /// `n` queued requests were failed at flush for being past their hard
    /// deadline, leaving `depth` entries queued.
    pub(crate) fn record_deadline_expired(&self, n: u64, depth: usize) {
        self.deadline_expired.fetch_add(n, Ordering::Relaxed);
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// The dispatcher thread died outside its panic guards; supervision
    /// failed the lane's remaining tickets.
    pub(crate) fn record_died(&self) {
        self.died.store(1, Ordering::Relaxed);
    }

    /// One request refused up front as infeasible (predicted wait past its
    /// deadline).
    pub(crate) fn record_infeasible(&self) {
        self.infeasible.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one timed flush into the EWMA estimator. Single writer (the
    /// lane's dispatcher); readers go through
    /// [`LaneMetrics::flush_estimate`].
    pub(crate) fn record_flush_latency(&self, elapsed: Duration) {
        let prev = self.ewma_flush_nanos.load(Ordering::Relaxed);
        let next = ewma_update(prev, elapsed.as_nanos().min(u64::MAX as u128) as u64);
        self.ewma_flush_nanos.store(next, Ordering::Relaxed);
        self.flush_samples.fetch_add(1, Ordering::Release);
    }

    /// The lane's flush-latency estimate, or `None` while fewer than
    /// `min_samples.max(1)` flushes have been timed (the feasibility
    /// cold-start gate: never shed on an untrained estimator).
    pub(crate) fn flush_estimate(&self, min_samples: u64) -> Option<Duration> {
        if self.flush_samples.load(Ordering::Acquire) < min_samples.max(1) {
            return None;
        }
        Some(Duration::from_nanos(
            self.ewma_flush_nanos.load(Ordering::Relaxed),
        ))
    }

    /// Advances the flush-progress heartbeat (entering or leaving
    /// execution).
    pub(crate) fn tick_heartbeat(&self) {
        self.heartbeat.fetch_add(1, Ordering::Release);
    }

    /// The stall watchdog condemned this lane's flush.
    pub(crate) fn record_stalled(&self) {
        self.stalled.store(1, Ordering::Relaxed);
    }

    /// Overload refusals this lane has issued (shed + infeasible) — the
    /// numerator of the brownout controller's refusal rate.
    pub(crate) fn overload_refusals(&self) -> u64 {
        self.shed.load(Ordering::Relaxed) + self.infeasible.load(Ordering::Relaxed)
    }

    /// Submission attempts this lane has seen (accepted + shed +
    /// infeasible) — the denominator of the brownout refusal rate.
    pub(crate) fn overload_attempts(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed) + self.overload_refusals()
    }

    /// Mirrors the service brownout level into this lane for snapshots.
    pub(crate) fn set_brownout(&self, level: BrownoutLevel) {
        self.brownout.store(level as u8, Ordering::Relaxed);
    }

    /// The brownout level as last mirrored into this lane.
    pub(crate) fn brownout(&self) -> BrownoutLevel {
        BrownoutLevel::from_u8(self.brownout.load(Ordering::Relaxed))
    }

    /// Records the cold-start cost: `plan` is the symbolic phase alone (from
    /// [`PlannedScan::build_time`](bppsa_core::PlannedScan::build_time)),
    /// `warmup` the whole bring-up (plan + workspace-pool construction and
    /// prewarm).
    pub(crate) fn record_warmup(&self, plan: Duration, warmup: Duration) {
        self.plan_nanos
            .store(plan.as_nanos() as u64, Ordering::Relaxed);
        self.warmup_nanos
            .store(warmup.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records what the lane's plan compiled to: the program kind
    /// ([`PlannedScan::plan_kind`](bppsa_core::PlannedScan::plan_kind)),
    /// the kernel-mode mix across its combines
    /// ([`PlannedScan::kernel_counts`](bppsa_core::PlannedScan::kernel_counts)),
    /// and the segment count
    /// ([`PlannedScan::segments`](bppsa_core::PlannedScan::segments)).
    /// Written once at warm-up, alongside [`LaneMetrics::record_warmup`].
    pub(crate) fn record_plan_profile(
        &self,
        kind: PlanKind,
        counts: KernelCounts,
        segments: usize,
    ) {
        self.plan_segments.store(segments as u64, Ordering::Relaxed);
        self.kernels_gather
            .store(counts.gather as u64, Ordering::Relaxed);
        self.kernels_gustavson
            .store(counts.gustavson as u64, Ordering::Relaxed);
        self.kernels_dense
            .store(counts.dense as u64, Ordering::Relaxed);
        let tag = match kind {
            PlanKind::Csr => 1,
            PlanKind::Diagonal => 2,
        };
        self.plan_kind.store(tag, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> LaneMetricsSnapshot {
        LaneMetricsSnapshot {
            lane_id: self.lane_id,
            layers: self.layers,
            seed_len: self.seed_len,
            state: self.state(),
            submitted: self.submitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_batch_flushes: self.flushes[cause_index(FlushCause::MaxBatch)]
                .load(Ordering::Relaxed),
            deadline_flushes: self.flushes[cause_index(FlushCause::Deadline)]
                .load(Ordering::Relaxed),
            drain_flushes: self.flushes[cause_index(FlushCause::Drain)].load(Ordering::Relaxed),
            batch_size_counts: self
                .batch_sizes
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            plan_time: Duration::from_nanos(self.plan_nanos.load(Ordering::Relaxed)),
            warmup_time: Duration::from_nanos(self.warmup_nanos.load(Ordering::Relaxed)),
            plan_kind: match self.plan_kind.load(Ordering::Relaxed) {
                1 => Some(PlanKind::Csr),
                2 => Some(PlanKind::Diagonal),
                _ => None,
            },
            plan_segments: self.plan_segments.load(Ordering::Relaxed) as usize,
            kernel_counts: KernelCounts {
                gather: self.kernels_gather.load(Ordering::Relaxed) as usize,
                gustavson: self.kernels_gustavson.load(Ordering::Relaxed) as usize,
                dense: self.kernels_dense.load(Ordering::Relaxed) as usize,
            },
            batch_panics: self.batch_panics.load(Ordering::Relaxed),
            consecutive_panics: self.consecutive_panics.load(Ordering::Relaxed),
            breaker_tripped: self.breaker_tripped.load(Ordering::Relaxed) != 0,
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            died: self.died.load(Ordering::Relaxed) != 0,
            infeasible: self.infeasible.load(Ordering::Relaxed),
            ewma_flush_latency: Duration::from_nanos(self.ewma_flush_nanos.load(Ordering::Relaxed)),
            flush_samples: self.flush_samples.load(Ordering::Relaxed),
            flush_progress: self.heartbeat.load(Ordering::Relaxed),
            stalled: self.stalled.load(Ordering::Relaxed) != 0,
            brownout_level: self.brownout(),
            probe: self.probe,
        }
    }
}

/// A point-in-time copy of one lane's counters, from
/// [`BppsaService::metrics`](crate::BppsaService::metrics).
///
/// Snapshots cover every lane ever created — including evicted/retired
/// lanes — ordered by [`LaneMetricsSnapshot::lane_id`] (creation order).
/// Counter reads are relaxed: a snapshot taken while traffic is in flight
/// is internally consistent only up to the usual torn-read caveats; once a
/// lane is quiescent (all tickets waited on, or the service shut down) the
/// counts are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneMetricsSnapshot {
    /// Creation-ordered lane identity (`0..lanes_created`), matching the
    /// dispatcher thread name `bppsa-serve-lane-{lane_id}`.
    pub lane_id: usize,
    /// Chain length (layers) of the shape this lane serves.
    pub layers: usize,
    /// Seed-gradient width of the shape this lane serves.
    pub seed_len: usize,
    /// Where the lane is in `Warming → Live → Draining → Retired`.
    pub state: LaneState,
    /// Requests accepted into the lane's queue.
    pub submitted: u64,
    /// Requests refused by the [`ShedPolicy`](crate::ShedPolicy).
    pub shed: u64,
    /// Requests queued at the last queue transition (gauge, not a counter).
    pub queue_depth: usize,
    /// Flushes triggered by a full batch ([`FlushCause::MaxBatch`]).
    pub max_batch_flushes: u64,
    /// Flushes triggered by an expired delay budget
    /// ([`FlushCause::Deadline`]).
    pub deadline_flushes: u64,
    /// Flushes triggered by eviction/shutdown drain ([`FlushCause::Drain`]).
    pub drain_flushes: u64,
    /// `batch_size_counts[k]` = flushes that carried exactly `k + 1`
    /// requests (length = the lane's `max_batch`).
    pub batch_size_counts: Vec<u64>,
    /// Wall-clock cost of the symbolic planning phase alone.
    pub plan_time: Duration,
    /// Whole bring-up cost: planning plus workspace-pool construction and
    /// prewarm. Zero until the warm-up finishes; it is recorded just
    /// *before* the lane's `Warming → Live` transition, so a racing
    /// snapshot may briefly observe a nonzero `warmup_time` while `state`
    /// still reads [`LaneState::Warming`] — key "still warming" off
    /// `state`, not off this field.
    pub warmup_time: Duration,
    /// Which program kind the lane's plan compiled to (`None` until the
    /// warm-up records it — a lane that never finished planning stays
    /// `None`). Recorded alongside `warmup_time`, with the same racing-
    /// snapshot caveat.
    pub plan_kind: Option<PlanKind>,
    /// How many chain segments the lane's plan scans concurrently: `0`
    /// until the warm-up records it, `1` for unsegmented plans, `≥ 2` when
    /// the lane transparently picked segment-parallel execution for a deep
    /// chain. Recorded alongside `plan_kind`.
    pub plan_segments: usize,
    /// The kernel-mode mix across the plan's matrix–matrix combines: how
    /// many resolved to each numeric SpGEMM kernel. All zeros for diagonal
    /// plans (they hoist no products) and for lanes that never planned.
    pub kernel_counts: KernelCounts,
    /// Flushes whose batch execution panicked (each failed its whole batch
    /// with [`ServeError::BatchPanicked`](crate::ServeError::BatchPanicked)).
    pub batch_panics: u64,
    /// Current uninterrupted batch-panic streak (gauge; resets to 0 on any
    /// successful flush). The breaker trips when this reaches
    /// [`BreakerPolicy::max_consecutive_panics`](crate::BreakerPolicy::max_consecutive_panics).
    pub consecutive_panics: u32,
    /// Whether this lane tripped its circuit breaker (implies the lane
    /// ended [`LaneState::Quarantined`]).
    pub breaker_tripped: bool,
    /// Requests failed at flush with
    /// [`ServeError::DeadlineExceeded`](crate::ServeError::DeadlineExceeded)
    /// under [`DeadlinePolicy::Hard`](crate::DeadlinePolicy::Hard).
    pub deadline_expired: u64,
    /// Whether the dispatcher thread died outside its panic guards and
    /// supervision failed the lane's remaining tickets with
    /// [`ServeError::LaneDied`](crate::ServeError::LaneDied).
    pub died: bool,
    /// Requests refused up front with
    /// [`SubmitError::Infeasible`](crate::SubmitError::Infeasible): their
    /// predicted queue wait already exceeded their deadline. Counted
    /// separately from [`shed`](Self::shed) (static depth/warming
    /// refusals) so operators can see *measured-latency* shedding.
    pub infeasible: u64,
    /// The lane's current EWMA flush-latency estimate (zero until the
    /// first timed flush). This is the feasibility estimator's state; it
    /// is only *acted* on after
    /// [`FeasibilityPolicy::min_flushes`](crate::FeasibilityPolicy::min_flushes)
    /// samples.
    pub ewma_flush_latency: Duration,
    /// Timed flushes folded into
    /// [`ewma_flush_latency`](Self::ewma_flush_latency).
    pub flush_samples: u64,
    /// Monotonic flush-progress heartbeat (odd while a flush is inside
    /// execution). Stuck-odd past the watchdog's stall budget is exactly
    /// the condition the supervisor condemns.
    pub flush_progress: u64,
    /// Whether the stall watchdog condemned this lane
    /// ([`ServeError::FlushStalled`](crate::ServeError::FlushStalled);
    /// implies the lane ended [`LaneState::Quarantined`]).
    pub stalled: bool,
    /// The service-wide [`BrownoutLevel`](crate::BrownoutLevel) as last
    /// mirrored into this lane by the supervisor (or by the lane's own
    /// dispatcher at flush time).
    pub brownout_level: BrownoutLevel,
    /// Whether this lane was the half-open probe for a quarantined shape
    /// (created after cool-down to test recovery; one clean flush restores
    /// the shape to service, one panic re-trips the quarantine).
    pub probe: bool,
}

impl LaneMetricsSnapshot {
    /// Flushes attributed to `cause`.
    pub fn flushes_of(&self, cause: FlushCause) -> u64 {
        match cause {
            FlushCause::MaxBatch => self.max_batch_flushes,
            FlushCause::Deadline => self.deadline_flushes,
            FlushCause::Drain => self.drain_flushes,
        }
    }

    /// Total flushes across all causes (equals the sum of
    /// [`LaneMetricsSnapshot::batch_size_counts`]).
    pub fn flushes(&self) -> u64 {
        self.max_batch_flushes + self.deadline_flushes + self.drain_flushes
    }

    /// Requests that have left through a flush: `Σ (k+1) ·
    /// batch_size_counts[k]`. On a quiescent lane this equals
    /// [`LaneMetricsSnapshot::submitted`] minus what is still queued —
    /// except after a warm-up plan panic (requests drained unserved, failed
    /// with [`ServeError::PlanPanicked`](crate::ServeError::PlanPanicked)),
    /// a dispatcher death
    /// ([`ServeError::LaneDied`](crate::ServeError::LaneDied)), a breaker
    /// trip ([`ServeError::LaneQuarantined`](crate::ServeError::LaneQuarantined)),
    /// or hard-deadline expiry
    /// ([`ServeError::DeadlineExceeded`](crate::ServeError::DeadlineExceeded))
    /// — requests failed through those paths never reach the histogram.
    pub fn requests_flushed(&self) -> u64 {
        self.batch_size_counts
            .iter()
            .enumerate()
            .map(|(k, count)| (k as u64 + 1) * count)
            .sum()
    }
}

/// Aggregate counters folded out of terminal (retired or quarantined)
/// lanes' snapshots once the metrics registry outgrows
/// [`ServeConfig::retired_metrics_cap`](crate::ServeConfig::retired_metrics_cap).
/// Per-lane identity (ids, shapes, histograms, timings) is dropped; the
/// totals keep reconciling — `submitted` here plus the live registry's
/// `submitted` still equals everything the service ever accepted. Read via
/// [`BppsaService::metrics_rollup`](crate::BppsaService::metrics_rollup).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetiredRollup {
    /// Terminal lanes folded into this rollup (no longer individually
    /// listed by [`BppsaService::metrics`](crate::BppsaService::metrics)).
    pub lanes: u64,
    /// Sum of the folded lanes' `submitted`.
    pub submitted: u64,
    /// Sum of the folded lanes' `shed`.
    pub shed: u64,
    /// Sum of the folded lanes' [`FlushCause::MaxBatch`] flushes.
    pub max_batch_flushes: u64,
    /// Sum of the folded lanes' [`FlushCause::Deadline`] flushes.
    pub deadline_flushes: u64,
    /// Sum of the folded lanes' [`FlushCause::Drain`] flushes.
    pub drain_flushes: u64,
    /// Sum of the folded lanes' [`LaneMetricsSnapshot::requests_flushed`].
    pub requests_flushed: u64,
    /// Sum of the folded lanes' `batch_panics`.
    pub batch_panics: u64,
    /// Folded lanes whose breaker tripped.
    pub breaker_trips: u64,
    /// Sum of the folded lanes' `deadline_expired`.
    pub deadline_expired: u64,
    /// Folded lanes whose dispatcher died outside its panic guards.
    pub died: u64,
    /// Sum of the folded lanes' `infeasible` refusals — kept so terminal-
    /// lane history stays reconcilable: `completed + failed + refused`
    /// accounting must survive lane compaction, and feasibility refusals
    /// are part of `refused`. (`MemoryPressure` refusals have no lane —
    /// they are refused at routing — and live in
    /// [`BppsaService::memory_refusals`](crate::BppsaService::memory_refusals),
    /// which compaction never touches.)
    pub infeasible: u64,
    /// Folded lanes condemned by the stall watchdog.
    pub stalled: u64,
}

impl RetiredRollup {
    /// Folds one terminal lane's snapshot into the rollup.
    pub(crate) fn absorb(&mut self, snap: &LaneMetricsSnapshot) {
        self.lanes += 1;
        self.submitted += snap.submitted;
        self.shed += snap.shed;
        self.max_batch_flushes += snap.max_batch_flushes;
        self.deadline_flushes += snap.deadline_flushes;
        self.drain_flushes += snap.drain_flushes;
        self.requests_flushed += snap.requests_flushed();
        self.batch_panics += snap.batch_panics;
        self.breaker_trips += u64::from(snap.breaker_tripped);
        self.deadline_expired += snap.deadline_expired;
        self.died += u64::from(snap.died);
        self.infeasible += snap.infeasible;
        self.stalled += u64::from(snap.stalled);
    }

    /// Total flushes across all causes in the folded lanes.
    pub fn flushes(&self) -> u64 {
        self.max_batch_flushes + self.deadline_flushes + self.drain_flushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_machine_transitions() {
        let m = LaneMetrics::new(0, 3, 4, 8, false);
        assert_eq!(m.state(), LaneState::Warming);
        m.mark_live();
        assert_eq!(m.state(), LaneState::Live);
        m.mark_draining();
        assert_eq!(m.state(), LaneState::Draining);
        m.mark_live(); // stale CAS loses: draining is sticky
        assert_eq!(m.state(), LaneState::Draining);
        m.mark_retired();
        assert_eq!(m.state(), LaneState::Retired);
        m.mark_draining(); // never resurrects a retired lane
        assert_eq!(m.state(), LaneState::Retired);
    }

    #[test]
    fn eviction_while_warming_skips_live() {
        let m = LaneMetrics::new(1, 3, 4, 8, false);
        m.mark_draining();
        assert_eq!(m.state(), LaneState::Draining);
        m.mark_live(); // the dispatcher finishing its plan after the evict
        assert_eq!(m.state(), LaneState::Draining);
    }

    #[test]
    fn quarantine_is_sticky_against_retire() {
        let m = LaneMetrics::new(3, 3, 4, 8, false);
        m.mark_live();
        m.mark_quarantined();
        assert_eq!(m.state(), LaneState::Quarantined);
        m.mark_retired(); // a later generic exit path must not mask the trip
        assert_eq!(m.state(), LaneState::Quarantined);
        m.mark_draining();
        assert_eq!(m.state(), LaneState::Quarantined);
        assert!(m.snapshot().breaker_tripped);
    }

    #[test]
    fn breaker_streak_counts_and_resets() {
        let m = LaneMetrics::new(4, 3, 4, 8, true);
        assert_eq!(m.record_batch_panic(), 1);
        assert_eq!(m.record_batch_panic(), 2);
        m.record_batch_success();
        assert_eq!(m.record_batch_panic(), 1, "success resets the streak");
        let snap = m.snapshot();
        assert_eq!(snap.batch_panics, 3, "total count never resets");
        assert_eq!(snap.consecutive_panics, 1);
        assert!(snap.probe);
        assert!(!snap.died);
    }

    #[test]
    fn rollup_absorbs_terminal_snapshots() {
        let a = LaneMetrics::new(0, 3, 4, 4, false);
        a.record_submit(1);
        a.record_submit(2);
        a.record_flush(FlushCause::MaxBatch, 2, 0);
        a.record_batch_panic();
        a.mark_quarantined();
        let b = LaneMetrics::new(1, 3, 4, 4, false);
        b.record_submit(1);
        b.record_deadline_expired(1, 0);
        b.record_died();
        b.mark_retired();
        let mut rollup = RetiredRollup::default();
        rollup.absorb(&a.snapshot());
        rollup.absorb(&b.snapshot());
        assert_eq!(rollup.lanes, 2);
        assert_eq!(rollup.submitted, 3);
        assert_eq!(rollup.requests_flushed, 2);
        assert_eq!(rollup.flushes(), 1);
        assert_eq!(rollup.batch_panics, 1);
        assert_eq!(rollup.breaker_trips, 1);
        assert_eq!(rollup.deadline_expired, 1);
        assert_eq!(rollup.died, 1);
    }

    #[test]
    fn flush_estimate_gates_on_samples_then_tracks_ewma() {
        let m = LaneMetrics::new(5, 3, 4, 8, false);
        assert_eq!(m.flush_estimate(3), None, "no observations yet");
        m.record_flush_latency(Duration::from_micros(800));
        m.record_flush_latency(Duration::from_micros(800));
        assert_eq!(m.flush_estimate(3), None, "below the cold-start gate");
        m.record_flush_latency(Duration::from_micros(800));
        let est = m.flush_estimate(3).expect("gate passed");
        assert_eq!(est, Duration::from_micros(800), "constant stream adopted");
        // min_samples == 0 still requires at least one observation.
        let cold = LaneMetrics::new(6, 3, 4, 8, false);
        assert_eq!(cold.flush_estimate(0), None);
        let snap = m.snapshot();
        assert_eq!(snap.flush_samples, 3);
        assert_eq!(snap.ewma_flush_latency, Duration::from_micros(800));
    }

    #[test]
    fn rollup_folds_infeasible_and_stalled() {
        let m = LaneMetrics::new(7, 3, 4, 4, false);
        m.record_infeasible();
        m.record_infeasible();
        m.record_stalled();
        m.mark_quarantined();
        let snap = m.snapshot();
        assert_eq!(snap.infeasible, 2);
        assert!(snap.stalled);
        let mut rollup = RetiredRollup::default();
        rollup.absorb(&snap);
        assert_eq!(rollup.infeasible, 2);
        assert_eq!(rollup.stalled, 1);
    }

    #[test]
    fn heartbeat_parity_marks_in_flight_execution() {
        let m = LaneMetrics::new(8, 3, 4, 4, false);
        assert_eq!(m.snapshot().flush_progress, 0);
        m.tick_heartbeat(); // entering execution
        assert_eq!(m.snapshot().flush_progress % 2, 1);
        m.tick_heartbeat(); // leaving execution
        assert_eq!(m.snapshot().flush_progress, 2);
    }

    #[test]
    fn brownout_level_mirrors_into_snapshot() {
        let m = LaneMetrics::new(9, 3, 4, 4, false);
        assert_eq!(m.snapshot().brownout_level, BrownoutLevel::Normal);
        m.set_brownout(BrownoutLevel::HalfBatch);
        assert_eq!(m.brownout(), BrownoutLevel::HalfBatch);
        assert_eq!(m.snapshot().brownout_level, BrownoutLevel::HalfBatch);
    }

    #[test]
    fn snapshot_reflects_counts_and_histogram() {
        let m = LaneMetrics::new(2, 5, 6, 4, false);
        for depth in 1..=6 {
            m.record_submit(depth.min(4));
        }
        m.record_flush(FlushCause::MaxBatch, 4, 2);
        m.record_flush(FlushCause::Deadline, 2, 0);
        m.record_shed();
        m.record_warmup(Duration::from_micros(3), Duration::from_micros(9));
        let snap = m.snapshot();
        assert_eq!(snap.submitted, 6);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.flushes(), 2);
        assert_eq!(snap.flushes_of(FlushCause::MaxBatch), 1);
        assert_eq!(snap.flushes_of(FlushCause::Deadline), 1);
        assert_eq!(snap.flushes_of(FlushCause::Drain), 0);
        assert_eq!(snap.batch_size_counts, vec![0, 1, 0, 1]);
        assert_eq!(snap.requests_flushed(), 6);
        assert_eq!(snap.plan_time, Duration::from_micros(3));
        assert_eq!(snap.warmup_time, Duration::from_micros(9));
    }
}
