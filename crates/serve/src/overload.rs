//! Overload policies: feasibility shedding, stall watchdog, and brownout
//! degradation.
//!
//! Everything decision-shaped in this module is a **pure function** of
//! explicitly-passed observations — the same discipline as
//! [`flush_decision`](crate::flush_decision) — so the proptest suite can
//! pin monotonicity and arrival-order invariance without threads. The
//! impure parts (atomics holding the EWMA, the supervisor thread driving
//! the watchdog and the brownout controller) live in `service.rs` and
//! `metrics.rs` and only ever *call* these functions.
//!
//! The three policies:
//!
//! * [`FeasibilityPolicy`] — refuse requests whose predicted queue wait
//!   ([`predicted_wait`]: `ceil(queued / max_batch)` flushes at the lane's
//!   EWMA flush latency, [`ewma_update`]) already exceeds their deadline.
//!   Shedding a doomed request at submit hands its chain straight back
//!   instead of burning a queue slot to produce a late failure.
//! * [`WatchdogPolicy`] — bound how long a flush may sit inside execution
//!   before the supervisor declares the lane stalled and fails it through
//!   the quarantine machinery ([`ServeError::FlushStalled`](crate::ServeError::FlushStalled)).
//! * [`BrownoutPolicy`] / [`BrownoutLevel`] / [`BrownoutState`] — a
//!   hysteresis ladder stepping service quality down (and back up) one
//!   level at a time as shed-rate and memory-budget signals persist.

use std::time::Duration;

/// EWMA weight: each new sample contributes `1/2^EWMA_SHIFT` (= 1/8) of
/// the estimate. Integer shift keeps the policy types `Copy + Eq` and the
/// update branch-free on the dispatcher.
pub const EWMA_SHIFT: u32 = 3;

/// Folds one observed flush latency into the running EWMA (both in
/// nanoseconds). A zero `prev` means "no estimate yet" and adopts the
/// sample outright; afterwards
/// `next = prev - prev/2^`[`EWMA_SHIFT`]` + sample/2^`[`EWMA_SHIFT`].
///
/// Monotone in both arguments (pinned by proptests): a slower sample or a
/// slower history never *lowers* the estimate.
pub fn ewma_update(prev_nanos: u64, sample_nanos: u64) -> u64 {
    if prev_nanos == 0 {
        return sample_nanos;
    }
    prev_nanos - (prev_nanos >> EWMA_SHIFT) + (sample_nanos >> EWMA_SHIFT)
}

/// Predicted time until a request at queue position `queued` (counting
/// itself: `pending + 1`) would flush: full flushes ahead of it at
/// `max_batch` per flush, each taking `ewma_flush`.
///
/// Pure in its arguments — two submitters observing the same queue depth
/// and estimate get the same prediction regardless of arrival order (the
/// `flush_decision`-style invariance the proptests pin). Monotone in
/// `queued` and in `ewma_flush`, anti-monotone in `max_batch`.
pub fn predicted_wait(queued: usize, max_batch: usize, ewma_flush: Duration) -> Duration {
    debug_assert!(max_batch > 0, "predicted_wait: max_batch must be non-zero");
    let flushes = queued.div_ceil(max_batch.max(1)) as u32;
    ewma_flush.saturating_mul(flushes)
}

/// Feasibility sub-policy of [`ShedPolicy`](crate::ShedPolicy): refuse a
/// request up front ([`SubmitError::Infeasible`](crate::SubmitError::Infeasible))
/// when its predicted wait exceeds its deadline.
///
/// The estimator needs history before it can be trusted: no request is
/// ever shed on feasibility before the lane has timed at least
/// [`min_flushes`](Self::min_flushes) flushes (the cold-start gate), and a
/// still-warming lane — which has timed none — therefore never
/// feasibility-sheds at all (warming admission stays governed by
/// [`ShedPolicy::min_warming_delay`](crate::ShedPolicy::min_warming_delay)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeasibilityPolicy {
    /// Observed (timed) flushes required before predictions are acted on.
    /// `0` behaves as `1`: an estimate only exists after the first timed
    /// flush.
    pub min_flushes: u64,
}

impl Default for FeasibilityPolicy {
    /// Trust the estimator after 8 timed flushes — one full EWMA window at
    /// the [`EWMA_SHIFT`] weight.
    fn default() -> Self {
        Self { min_flushes: 8 }
    }
}

impl FeasibilityPolicy {
    /// Whether a request that can wait at most `deadline` should be
    /// refused, given the lane's current estimate. `estimate` is `None`
    /// below the cold-start gate (then nothing is shed). Pure; exclusive
    /// boundary — a predicted wait exactly equal to the deadline is still
    /// feasible.
    pub fn sheds(
        &self,
        queued: usize,
        max_batch: usize,
        estimate: Option<Duration>,
        deadline: Duration,
    ) -> bool {
        match estimate {
            Some(ewma) => predicted_wait(queued, max_batch, ewma) > deadline,
            None => false,
        }
    }
}

/// Stall-watchdog configuration: enables the per-service supervisor
/// thread via [`ServeConfig::watchdog`](crate::ServeConfig::watchdog).
///
/// The dispatcher publishes each flush's ticket set and start instant
/// before executing; the supervisor polls every
/// [`poll_interval`](Self::poll_interval) and, when a flush has been
/// executing longer than [`stall_budget`](Self::stall_budget), condemns
/// the lane: assembled requests fail with
/// [`ServeError::FlushStalled`](crate::ServeError::FlushStalled), queued
/// requests fail with chains handed back, and the shape is quarantined
/// for the breaker cool-down (half-open probe recovery as usual). Every
/// affected waiter therefore resolves within
/// `stall_budget + poll_interval` plus scheduling grace — no ticket ever
/// hangs on a stalled (not panicked) execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogPolicy {
    /// Longest a single flush may sit inside execution before the lane is
    /// declared stalled.
    pub stall_budget: Duration,
    /// How often the supervisor samples lane progress. Bounds detection
    /// latency on top of `stall_budget`; keep it a fraction of the budget.
    pub poll_interval: Duration,
}

impl Default for WatchdogPolicy {
    /// A 2 s stall budget sampled every 100 ms — far above any healthy
    /// flush, far below a hung one.
    fn default() -> Self {
        Self {
            stall_budget: Duration::from_secs(2),
            poll_interval: Duration::from_millis(100),
        }
    }
}

impl WatchdogPolicy {
    /// Panics if the policy is not internally consistent (zero budget or
    /// poll interval).
    pub fn validate(&self) {
        assert!(
            !self.stall_budget.is_zero(),
            "WatchdogPolicy::stall_budget must be non-zero"
        );
        assert!(
            !self.poll_interval.is_zero(),
            "WatchdogPolicy::poll_interval must be non-zero"
        );
    }

    /// Pure stall predicate: has a flush running `elapsed` exceeded the
    /// budget? Exclusive boundary — exactly `stall_budget` is not yet a
    /// stall.
    pub fn is_stalled(&self, elapsed: Duration) -> bool {
        elapsed > self.stall_budget
    }
}

/// Degradation levels a service steps through under sustained pressure,
/// most degraded last. Each level includes every effect of the levels
/// before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum BrownoutLevel {
    /// Full service quality.
    #[default]
    Normal = 0,
    /// New lane warm-ups plan unsegmented (cheaper plans, less peak
    /// concurrency per request). Existing lanes keep their plans.
    NoSegmentation = 1,
    /// Additionally, dispatchers halve their effective `max_batch`
    /// (smaller flushes bound per-flush latency and workspace pressure).
    HalfBatch = 2,
    /// Additionally, cold shapes are declined at the router
    /// ([`SubmitError::MemoryPressure`](crate::SubmitError::MemoryPressure))
    /// instead of creating new lanes.
    DeclineColdShapes = 3,
}

impl BrownoutLevel {
    /// Recovers a level from its `u8` encoding (out-of-range saturates to
    /// the most degraded level — fail safe, not fail open).
    pub fn from_u8(raw: u8) -> Self {
        match raw {
            0 => Self::Normal,
            1 => Self::NoSegmentation,
            2 => Self::HalfBatch,
            _ => Self::DeclineColdShapes,
        }
    }

    /// The effective batch cap at this level: halved (min 1) from
    /// [`HalfBatch`](Self::HalfBatch) up.
    pub fn effective_max_batch(self, max_batch: usize) -> usize {
        if self >= Self::HalfBatch {
            (max_batch / 2).max(1)
        } else {
            max_batch
        }
    }
}

/// Hysteresis thresholds for the brownout controller, enabled via
/// [`ServeConfig::brownout`](crate::ServeConfig::brownout).
///
/// Each supervisor poll computes the service's shed *rate* (refusals per
/// attempt over the poll window) and memory-budget utilization, classifies
/// the window as hot, calm, or neutral ([`BrownoutPolicy::signal`]), and
/// feeds it to [`BrownoutState::observe`]: only
/// [`hot_polls`](Self::hot_polls) *consecutive* hot windows step service
/// quality down one [`BrownoutLevel`], and only
/// [`calm_polls`](Self::calm_polls) consecutive calm windows step it back
/// up — a flapping load pattern holds the current level rather than
/// oscillating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutPolicy {
    /// Shed rate (refused / attempts, in `[0, 1]`) at or above which a
    /// window is hot.
    pub shed_rate_high: f64,
    /// Shed rate strictly below which a window can be calm.
    pub shed_rate_low: f64,
    /// Memory-budget utilization (reserved / limit) at or above which a
    /// window is hot regardless of shed rate. Ignored when no budget is
    /// configured.
    pub budget_high: f64,
    /// Consecutive hot windows required to step down one level.
    pub hot_polls: u32,
    /// Consecutive calm windows required to step back up one level.
    pub calm_polls: u32,
}

impl Default for BrownoutPolicy {
    /// Step down after 3 consecutive windows shedding ≥ 20 % (or ≥ 90 %
    /// budget use); step up after 10 consecutive windows under 5 %.
    fn default() -> Self {
        Self {
            shed_rate_high: 0.20,
            shed_rate_low: 0.05,
            budget_high: 0.90,
            hot_polls: 3,
            calm_polls: 10,
        }
    }
}

impl BrownoutPolicy {
    /// Panics if thresholds are inconsistent (`low > high`, rates outside
    /// `[0, 1]`, or zero streak requirements).
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.shed_rate_high) && (0.0..=1.0).contains(&self.shed_rate_low),
            "BrownoutPolicy: shed rates must be in [0, 1]"
        );
        assert!(
            self.shed_rate_low <= self.shed_rate_high,
            "BrownoutPolicy: shed_rate_low must be <= shed_rate_high"
        );
        assert!(
            (0.0..=1.0).contains(&self.budget_high),
            "BrownoutPolicy: budget_high must be in [0, 1]"
        );
        assert!(
            self.hot_polls > 0 && self.calm_polls > 0,
            "BrownoutPolicy: hot_polls and calm_polls must be non-zero"
        );
    }

    /// Classifies one poll window. `refused` / `attempts` are deltas over
    /// the window; `budget_utilization` is `None` when no budget is
    /// configured. A window with no attempts has no shed signal: it is
    /// calm unless the budget alone is hot.
    pub fn signal(
        &self,
        refused: u64,
        attempts: u64,
        budget_utilization: Option<f64>,
    ) -> BrownoutSignal {
        let budget_hot = budget_utilization.is_some_and(|u| u >= self.budget_high);
        let shed_rate = if attempts == 0 {
            0.0
        } else {
            refused as f64 / attempts as f64
        };
        if budget_hot || (attempts > 0 && shed_rate >= self.shed_rate_high) {
            BrownoutSignal::Hot
        } else if shed_rate < self.shed_rate_low {
            BrownoutSignal::Calm
        } else {
            BrownoutSignal::Neutral
        }
    }
}

/// One poll window's pressure classification (see
/// [`BrownoutPolicy::signal`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrownoutSignal {
    /// Pressure above the step-down thresholds.
    Hot,
    /// Pressure below the step-up thresholds.
    Calm,
    /// In the hysteresis band: hold the current level and reset streaks.
    Neutral,
}

/// The brownout controller's pure state machine: level plus hot/calm
/// streak counters. Owned by the supervisor thread; unit-testable without
/// any service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BrownoutState {
    level: BrownoutLevel,
    hot_streak: u32,
    calm_streak: u32,
}

impl BrownoutState {
    /// The current degradation level.
    pub fn level(&self) -> BrownoutLevel {
        self.level
    }

    /// Feeds one window's signal; returns the (possibly stepped) level.
    /// Steps are single: even a long hot streak descends one level per
    /// [`BrownoutPolicy::hot_polls`] windows, and any step resets both
    /// streaks.
    pub fn observe(&mut self, signal: BrownoutSignal, policy: &BrownoutPolicy) -> BrownoutLevel {
        match signal {
            BrownoutSignal::Hot => {
                self.calm_streak = 0;
                self.hot_streak += 1;
                if self.hot_streak >= policy.hot_polls
                    && self.level < BrownoutLevel::DeclineColdShapes
                {
                    self.level = BrownoutLevel::from_u8(self.level as u8 + 1);
                    self.hot_streak = 0;
                }
            }
            BrownoutSignal::Calm => {
                self.hot_streak = 0;
                self.calm_streak += 1;
                if self.calm_streak >= policy.calm_polls && self.level > BrownoutLevel::Normal {
                    self.level = BrownoutLevel::from_u8(self.level as u8 - 1);
                    self.calm_streak = 0;
                }
            }
            BrownoutSignal::Neutral => {
                self.hot_streak = 0;
                self.calm_streak = 0;
            }
        }
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_adopts_first_sample_then_blends() {
        assert_eq!(ewma_update(0, 8000), 8000);
        let next = ewma_update(8000, 16000);
        assert_eq!(next, 8000 - 1000 + 2000);
        // Converges toward a constant stream.
        let mut e = 0;
        for _ in 0..200 {
            e = ewma_update(e, 1_000_000);
        }
        assert!(e > 990_000 && e <= 1_000_000, "converged near 1ms: {e}");
    }

    #[test]
    fn predicted_wait_counts_full_flushes_ahead() {
        let ewma = Duration::from_millis(2);
        // Position 1..=max_batch: one flush away.
        assert_eq!(predicted_wait(1, 8, ewma), ewma);
        assert_eq!(predicted_wait(8, 8, ewma), ewma);
        // Position max_batch+1: two flushes.
        assert_eq!(predicted_wait(9, 8, ewma), ewma * 2);
        assert_eq!(predicted_wait(0, 8, ewma), Duration::ZERO);
    }

    #[test]
    fn feasibility_boundary_is_exclusive_and_cold_start_never_sheds() {
        let p = FeasibilityPolicy { min_flushes: 8 };
        let ewma = Duration::from_millis(1);
        // Exactly-equal predicted wait is still feasible.
        assert!(!p.sheds(4, 4, Some(ewma), Duration::from_millis(1)));
        assert!(p.sheds(5, 4, Some(ewma), Duration::from_millis(1)));
        // Below the cold-start gate there is no estimate → no shedding,
        // whatever the deadline.
        assert!(!p.sheds(1000, 1, None, Duration::ZERO));
    }

    #[test]
    fn watchdog_stall_boundary_is_exclusive() {
        let w = WatchdogPolicy {
            stall_budget: Duration::from_millis(50),
            poll_interval: Duration::from_millis(5),
        };
        w.validate();
        assert!(!w.is_stalled(Duration::from_millis(50)));
        assert!(w.is_stalled(Duration::from_millis(51)));
    }

    #[test]
    #[should_panic(expected = "stall_budget must be non-zero")]
    fn zero_stall_budget_rejected() {
        WatchdogPolicy {
            stall_budget: Duration::ZERO,
            poll_interval: Duration::from_millis(5),
        }
        .validate();
    }

    #[test]
    fn brownout_levels_order_and_effective_batch() {
        assert!(BrownoutLevel::Normal < BrownoutLevel::NoSegmentation);
        assert!(BrownoutLevel::HalfBatch < BrownoutLevel::DeclineColdShapes);
        assert_eq!(
            BrownoutLevel::from_u8(200),
            BrownoutLevel::DeclineColdShapes
        );
        assert_eq!(BrownoutLevel::Normal.effective_max_batch(8), 8);
        assert_eq!(BrownoutLevel::NoSegmentation.effective_max_batch(8), 8);
        assert_eq!(BrownoutLevel::HalfBatch.effective_max_batch(8), 4);
        assert_eq!(BrownoutLevel::DeclineColdShapes.effective_max_batch(1), 1);
    }

    #[test]
    fn brownout_steps_down_with_hysteresis_and_recovers() {
        let p = BrownoutPolicy {
            hot_polls: 3,
            calm_polls: 2,
            ..BrownoutPolicy::default()
        };
        p.validate();
        let mut s = BrownoutState::default();
        // Two hot polls are not enough; a neutral poll resets the streak.
        s.observe(BrownoutSignal::Hot, &p);
        s.observe(BrownoutSignal::Hot, &p);
        s.observe(BrownoutSignal::Neutral, &p);
        assert_eq!(s.level(), BrownoutLevel::Normal);
        // Three consecutive hot polls step down exactly one level.
        for _ in 0..3 {
            s.observe(BrownoutSignal::Hot, &p);
        }
        assert_eq!(s.level(), BrownoutLevel::NoSegmentation);
        // Sustained heat keeps descending one level per hot_polls window.
        for _ in 0..6 {
            s.observe(BrownoutSignal::Hot, &p);
        }
        assert_eq!(s.level(), BrownoutLevel::DeclineColdShapes);
        // And stays pinned at the floor.
        for _ in 0..9 {
            s.observe(BrownoutSignal::Hot, &p);
        }
        assert_eq!(s.level(), BrownoutLevel::DeclineColdShapes);
        // Recovery: calm_polls consecutive calm windows per step up.
        for _ in 0..2 {
            s.observe(BrownoutSignal::Calm, &p);
        }
        assert_eq!(s.level(), BrownoutLevel::HalfBatch);
        for _ in 0..4 {
            s.observe(BrownoutSignal::Calm, &p);
        }
        assert_eq!(s.level(), BrownoutLevel::Normal);
    }

    #[test]
    fn brownout_signal_classification() {
        let p = BrownoutPolicy::default();
        assert_eq!(p.signal(20, 100, None), BrownoutSignal::Hot);
        assert_eq!(p.signal(0, 100, None), BrownoutSignal::Calm);
        assert_eq!(p.signal(10, 100, None), BrownoutSignal::Neutral);
        // Budget pressure alone is hot, even with zero shedding.
        assert_eq!(p.signal(0, 100, Some(0.95)), BrownoutSignal::Hot);
        // No attempts and a healthy budget: calm.
        assert_eq!(p.signal(0, 0, Some(0.1)), BrownoutSignal::Calm);
        assert_eq!(p.signal(0, 0, None), BrownoutSignal::Calm);
    }

    #[test]
    #[should_panic(expected = "shed_rate_low must be <=")]
    fn inverted_brownout_thresholds_rejected() {
        BrownoutPolicy {
            shed_rate_low: 0.5,
            shed_rate_high: 0.1,
            ..BrownoutPolicy::default()
        }
        .validate();
    }
}
