//! Unified retry policy for transient submit refusals.
//!
//! Before this module, retry behavior lived as hard-coded constants in
//! `crates/models` (a 5 s budget spinning on a fixed 100 µs backoff) and
//! covered only the refusals that crate happened to hit. [`RetryPolicy`]
//! centralizes the decision in [`ServeConfig`](crate::ServeConfig): one
//! policy object — budget, exponential backoff with a cap, and
//! deterministic jitter — covering every *transient* refusal
//! ([`LaneWarming`](crate::SubmitError::LaneWarming),
//! [`Shed`](crate::SubmitError::Shed),
//! [`Backpressure`](crate::SubmitError::Backpressure),
//! [`Quarantined`](crate::SubmitError::Quarantined), and
//! [`MemoryPressure`](crate::SubmitError::MemoryPressure) — memory
//! pressure subsides as lanes drain and release their reservations).
//! [`Shutdown`](crate::SubmitError::Shutdown),
//! [`TicketInFlight`](crate::SubmitError::TicketInFlight), and
//! [`Infeasible`](crate::SubmitError::Infeasible) are never retried: the
//! first is permanent, the second is a caller bug, and the third would
//! face the same queue and the same latency estimate on the very next
//! attempt — retrying an infeasible request only deepens the overload
//! that refused it (see [`SubmitRefusal::is_transient`](crate::SubmitRefusal::is_transient)).
//!
//! Jitter is a pure function of `(jitter_seed, attempt)` — retries are
//! de-synchronized across callers (different seeds) yet every run of the
//! same caller replays the same schedule, keeping chaos tests and CI
//! deterministic.

use std::time::Duration;

/// Budget + backoff + jitter for retrying transient submit refusals. Used
/// by [`BppsaService::submit_retrying`](crate::BppsaService::submit_retrying)
/// and consumed by `bppsa-models`' served training paths via
/// [`ServeConfig::retry`](crate::ServeConfig::retry).
///
/// # Examples
///
/// ```
/// use bppsa_serve::RetryPolicy;
/// use std::time::Duration;
///
/// let policy = RetryPolicy::default();
/// // Exponential: attempt 3 waits ~8x the initial backoff (± jitter)...
/// assert!(policy.backoff_for(3) >= policy.initial_backoff * 4);
/// // ...but never beyond the cap (+ jitter headroom).
/// assert!(policy.backoff_for(60) <= policy.max_backoff * 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total wall-clock budget across all attempts of one submit. When an
    /// attempt fails and the budget is spent, the refusal is returned to
    /// the caller instead of retried.
    pub budget: Duration,
    /// Backoff before the first retry; attempt `n` waits
    /// `initial_backoff * 2^n` (clamped to [`max_backoff`](Self::max_backoff)).
    pub initial_backoff: Duration,
    /// Upper bound on a single backoff sleep (pre-jitter).
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each sleep is scaled by a deterministic
    /// factor drawn from `[1 - jitter, 1 + jitter]`. `0` disables jitter.
    pub jitter: f64,
    /// Seed for the jitter draws. Give concurrent callers distinct seeds to
    /// de-synchronize their retries; the schedule for one seed is identical
    /// on every run.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// The values `crates/models` previously hard-coded (5 s budget, 100 µs
    /// base backoff), now with an exponential ramp capped at 10 ms and 25 %
    /// jitter.
    fn default() -> Self {
        Self {
            budget: Duration::from_secs(5),
            initial_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(10),
            jitter: 0.25,
            jitter_seed: 0x5EED,
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// A policy that never retries: the first refusal is returned as-is.
    pub fn none() -> Self {
        Self {
            budget: Duration::ZERO,
            ..Self::default()
        }
    }

    /// Panics if the policy is not internally consistent (jitter outside
    /// `[0, 1]`, or a backoff cap below the initial backoff).
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.jitter),
            "RetryPolicy::jitter must be in [0, 1], got {}",
            self.jitter
        );
        assert!(
            self.max_backoff >= self.initial_backoff,
            "RetryPolicy::max_backoff ({:?}) must be >= initial_backoff ({:?})",
            self.max_backoff,
            self.initial_backoff
        );
    }

    /// The sleep before retry number `attempt` (counted from `0`):
    /// exponential from [`initial_backoff`](Self::initial_backoff), clamped
    /// to [`max_backoff`](Self::max_backoff), scaled by the deterministic
    /// jitter draw for `(jitter_seed, attempt)`.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        // `attempt.min(31)` keeps the shift in range (attempts past 31 all
        // price as 2^31); saturating_mul absorbs the Duration overflow.
        let base = self
            .initial_backoff
            .saturating_mul(1u32 << attempt.min(31))
            .min(self.max_backoff);
        if self.jitter == 0.0 {
            return base;
        }
        // Uniform in [0, 1), pure in (seed, attempt).
        let u = (splitmix64(self.jitter_seed ^ splitmix64(attempt as u64)) >> 11) as f64
            * (1.0 / (1u64 << 53) as f64);
        let scale = 1.0 + self.jitter * (2.0 * u - 1.0);
        base.mul_f64(scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_ramps_exponentially_then_caps() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_for(0), Duration::from_micros(100));
        assert_eq!(p.backoff_for(1), Duration::from_micros(200));
        assert_eq!(p.backoff_for(4), Duration::from_micros(1600));
        assert_eq!(p.backoff_for(20), p.max_backoff);
        // Shift amounts far past u32::BITS must not panic or wrap.
        assert_eq!(p.backoff_for(u32::MAX), p.max_backoff);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy::default();
        for attempt in 0..32 {
            let d = p.backoff_for(attempt);
            let base = (p.initial_backoff * 1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                .min(p.max_backoff);
            assert!(d >= base.mul_f64(1.0 - p.jitter), "attempt {attempt}");
            assert!(d <= base.mul_f64(1.0 + p.jitter), "attempt {attempt}");
            assert_eq!(d, p.backoff_for(attempt), "same (seed, attempt) replays");
        }
        let other = RetryPolicy {
            jitter_seed: 99,
            ..p
        };
        assert!(
            (0..32).any(|a| other.backoff_for(a) != p.backoff_for(a)),
            "different seeds must de-synchronize"
        );
    }

    #[test]
    fn none_policy_has_zero_budget() {
        let p = RetryPolicy::none();
        p.validate();
        assert_eq!(p.budget, Duration::ZERO);
    }

    #[test]
    fn backoff_shift_cap_prices_every_attempt_past_31_identically() {
        // A cap far above initial * 2^31 makes the shift clamp — not the
        // max_backoff clamp — the active boundary: attempt 31 reaches
        // 2^31 * initial exactly, and every later attempt (32, 33, the
        // extreme u32::MAX) prices identically with no overflow or wrap.
        let p = RetryPolicy {
            jitter: 0.0,
            initial_backoff: Duration::from_nanos(1),
            max_backoff: Duration::MAX,
            ..RetryPolicy::default()
        };
        p.validate();
        let capped = p.backoff_for(31);
        assert_eq!(capped, Duration::from_nanos(1u64 << 31));
        for attempt in [32u32, 33, 64, u32::MAX] {
            assert_eq!(p.backoff_for(attempt), capped, "attempt {attempt}");
        }
        // With jitter on, the same attempts stay bounded by the jitter
        // envelope around that capped base.
        let jittered = RetryPolicy {
            initial_backoff: Duration::from_nanos(1),
            max_backoff: Duration::MAX,
            ..RetryPolicy::default()
        };
        for attempt in [31u32, 32, u32::MAX] {
            let d = jittered.backoff_for(attempt);
            assert!(
                d >= capped.mul_f64(1.0 - jittered.jitter),
                "attempt {attempt}"
            );
            assert!(
                d <= capped.mul_f64(1.0 + jittered.jitter),
                "attempt {attempt}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "jitter must be in")]
    fn invalid_jitter_is_rejected() {
        RetryPolicy {
            jitter: 1.5,
            ..RetryPolicy::default()
        }
        .validate();
    }
}
