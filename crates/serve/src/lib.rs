//! # bppsa-serve — a deadline micro-batching front door for the planned
//! backward pass
//!
//! The library below this crate executes *caller-provided* batches:
//! [`BatchedBackward`](bppsa_core::BatchedBackward) fans a slice of
//! same-shape chains over pooled workspaces of one compiled
//! [`PlannedScan`](bppsa_core::PlannedScan). A serving shard, however,
//! receives **independently-arriving, heterogeneously-shaped** requests.
//! This crate turns the library into that shard: [`BppsaService`] accepts
//! single backward requests ([`JacobianChain`](bppsa_core::JacobianChain) +
//! [`Ticket`] completion handle), routes each by shape to a per-plan lane,
//! and coalesces every lane's queue into wide batched fan-outs under a
//! deadline policy — flush at [`ServeConfig::max_batch`], or when the
//! earliest pending request's delay budget expires.
//!
//! Coalescing is how the paper's formulation keeps paying off under
//! traffic: BPPSA's parallel scan (Wang, Bai & Pekhimenko, MLSys 2020)
//! shortens one request's critical path to `O(log n)`, and trading a small,
//! bounded delay for cross-request batch width keeps that critical path
//! *fed* — the same delay-for-parallelism trade Decoupled Parallel
//! Backpropagation makes across layers, made here across requests.
//!
//! Everything is std threads and condvars (the workspace is offline;
//! see `ARCHITECTURE.md`'s shims/no-network constraint), and the
//! steady-state request loop — refresh a reclaimed chain in place,
//! resubmit, wait, read — performs **zero heap allocations** end to end,
//! like every other hot path in this workspace.
//!
//! ## Quickstart
//!
//! ```
//! use bppsa_core::{JacobianChain, ScanElement};
//! use bppsa_serve::{BppsaService, ServeConfig, Ticket};
//! use bppsa_sparse::Csr;
//! use bppsa_tensor::Vector;
//!
//! let service = BppsaService::<f64>::new(ServeConfig::default());
//!
//! // Independently submitted requests of one shape coalesce into a lane.
//! let tickets: Vec<Ticket<f64>> = (0..3).map(|_| Ticket::new()).collect();
//! for (k, ticket) in tickets.iter().enumerate() {
//!     let mut chain = JacobianChain::new(Vector::from_vec(vec![1.0 + k as f64, -1.0]));
//!     chain.push(ScanElement::Sparse(Csr::from_diagonal(&[2.0, 0.5])));
//!     service.submit(chain, ticket).expect("service accepting");
//! }
//! for ticket in &tickets {
//!     ticket.wait().expect("request served");
//!     ticket.with_result(|r| assert_eq!(r.grads().len(), 1));
//! }
//! assert_eq!(service.lanes(), 1);
//! ```
//!
//! ## Observability and load shedding
//!
//! Lane bring-up is **non-blocking**: a cold shape inserts only a
//! placeholder under the router lock, and the symbolic planner runs on the
//! new lane's dispatcher thread (`Warming → Live → Draining → Retired`,
//! see [`LaneState`]). Every lane keeps lock-free counters readable via
//! [`BppsaService::metrics`], and a [`ShedPolicy`] can turn doomed
//! requests away at submit time instead of letting them queue:
//!
//! ```
//! use bppsa_core::{JacobianChain, ScanElement};
//! use bppsa_serve::{BppsaService, FlushCause, LaneState, ServeConfig, Ticket};
//! use bppsa_sparse::Csr;
//! use bppsa_tensor::Vector;
//!
//! let service = BppsaService::<f64>::new(ServeConfig::default());
//! let ticket = Ticket::new();
//! let mut chain = JacobianChain::new(Vector::from_vec(vec![1.0, -2.0]));
//! chain.push(ScanElement::Sparse(Csr::from_diagonal(&[3.0, 0.5])));
//! service.submit(chain, &ticket).expect("service accepting");
//! ticket.wait().expect("request served");
//!
//! // One snapshot per lane ever created, in creation order.
//! let lanes = service.metrics();
//! assert_eq!(lanes.len(), 1);
//! let lane = &lanes[0];
//! assert_eq!(lane.state, LaneState::Live);
//! assert_eq!(lane.submitted, 1);
//! assert_eq!(lane.flushes(), 1);
//! assert_eq!(lane.flushes_of(FlushCause::Deadline), 1);
//! assert_eq!(lane.requests_flushed(), 1);
//! assert!(lane.warmup_time >= lane.plan_time);
//! ```
//!
//! ## Supervision, circuit breaking, and fault injection
//!
//! Every failure a lane can suffer is mapped to a terminal ticket outcome —
//! no accepted request ever hangs (see the [`service`](BppsaService) docs'
//! *failure domains* section). A [`BreakerPolicy`] quarantines a shape
//! whose batches panic repeatedly ([`LaneState::Quarantined`], refusals as
//! [`SubmitError::Quarantined`]) and re-admits it through a single
//! half-open probe after a cool-down; a hard [`DeadlinePolicy`] fails
//! requests whose budget expired while queued with
//! [`ServeError::DeadlineExceeded`]; a [`RetryPolicy`] in [`ServeConfig`]
//! drives [`BppsaService::submit_retrying`] for transient refusals. All of
//! it is testable deterministically through the seeded, scriptable
//! [`FaultInjector`] — a disabled injector (the default) is a single
//! pointer check on the hot path.
//!
//! See the [`service`](BppsaService) docs for the lane lifecycle, deadline
//! policy, backpressure/shedding, panic attribution, and shutdown
//! semantics.

#![warn(missing_docs)]

mod fault;
mod metrics;
mod overload;
mod retry;
mod service;
mod ticket;

pub use fault::{FaultAction, FaultInjector, FaultRates, FaultScript, InjectionPoint};
pub use metrics::{FlushCause, LaneMetricsSnapshot, LaneState, RetiredRollup};
pub use overload::{
    ewma_update, predicted_wait, BrownoutLevel, BrownoutPolicy, BrownoutSignal, BrownoutState,
    FeasibilityPolicy, WatchdogPolicy, EWMA_SHIFT,
};
// Re-exported so metrics consumers can name the snapshot's plan-profile
// fields without a direct `bppsa-core` dependency, and so the memory
// budget a `ServeConfig` carries can be built without one either.
pub use bppsa_core::{KernelCounts, MemoryBudget, PlanKind};
pub use retry::RetryPolicy;
pub use service::{
    flush_decision, lane_plan_options, BppsaService, BreakerPolicy, DeadlinePolicy, FlushDecision,
    ServeConfig, ShedPolicy, SubmitError, SubmitRefusal, LANE_SEGMENTS, LANE_SEGMENT_MIN_LAYERS,
};
pub use ticket::{ServeError, Ticket};
