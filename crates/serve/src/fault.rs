//! Deterministic fault injection for the serving stack.
//!
//! PRs 3–4 found real serving races (orphaned warming lanes, livelocked
//! shapes, cross-batch panic leaks) only *incidentally*, while building
//! features. This module makes failure a first-class, scriptable input: a
//! [`FaultInjector`] is plumbed through [`ServeConfig`](crate::ServeConfig)
//! and consulted at a small set of **named injection points** threaded
//! through the lane lifecycle — warm-up planning, batch execution, flush
//! timing, and the dispatcher thread itself — so a chaos test can script
//! "the planner panics on lane 2's warm-up, then batch 3 of lane 0 panics,
//! then lane 1's flush stalls 50 ms" and assert the service's terminal-state
//! invariants instead of hoping a scheduler interleaving reproduces them.
//!
//! Two modes:
//!
//! * **Scripted** ([`FaultInjector::scripted`]): an explicit, ordered-free
//!   list of [`FaultScript`] rules, each matching a point (kind, optionally
//!   lane and per-lane flush index) and firing an action a bounded number
//!   of times. Fully deterministic regardless of thread interleaving —
//!   rules match on the *identity* of the point, not on arrival order.
//! * **Seeded** ([`FaultInjector::seeded`]): probabilistic chaos whose
//!   decisions are a **pure function of `(seed, point)`** — each point
//!   hashes with the seed into a SplitMix64 draw compared against the
//!   configured [`FaultRates`]. The same seed produces the same fault set
//!   on every run and under every interleaving, so a seeded storm that
//!   finds a bug is a deterministic regression test.
//!
//! The default injector is [disabled](FaultInjector::disabled): firing a
//! point is a single `Option` check, no locks, no allocation — the
//! steady-state serving path stays strictly zero-alloc and effectively
//! zero-cost (asserted by `crates/serve/tests/alloc_free_serve.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// A named place in the serving stack where a fault can strike. Lanes are
/// identified by their creation-ordered id (the same
/// [`lane_id`](crate::LaneMetricsSnapshot::lane_id) the metrics report);
/// flush indices count a lane's flushes from `0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionPoint {
    /// Inside a lane's warm-up `catch_unwind`, just before symbolic
    /// planning. [`FaultAction::Panic`] here exercises the
    /// [`PlanPanicked`](crate::ServeError::PlanPanicked) path (and, with a
    /// breaker armed, plan-panic quarantine);
    /// [`FaultAction::Stall`] lengthens the warm-up window.
    PlanBuild {
        /// Creation-ordered lane id.
        lane: usize,
    },
    /// Inside a flush's `catch_unwind`, just before batch execution.
    /// [`FaultAction::Panic`] here exercises the
    /// [`BatchPanicked`](crate::ServeError::BatchPanicked) attribution and
    /// feeds the lane's consecutive-panic breaker.
    BatchExecute {
        /// Creation-ordered lane id.
        lane: usize,
        /// Per-lane flush index, counted from `0`.
        flush: u64,
    },
    /// In the dispatcher loop after batch assembly, **outside** every
    /// `catch_unwind`. [`FaultAction::Stall`] here is injected flush
    /// latency (queued requests age past their deadlines — the hard
    /// deadline mode's test vector); [`FaultAction::Panic`] kills the
    /// dispatcher thread itself, exercising lane supervision
    /// ([`LaneDied`](crate::ServeError::LaneDied)).
    FlushTiming {
        /// Creation-ordered lane id.
        lane: usize,
        /// Per-lane flush index, counted from `0`.
        flush: u64,
    },
    /// At dispatcher thread entry, before warm-up, outside every
    /// `catch_unwind`. [`FaultAction::Panic`] kills the dispatcher before
    /// it ever serves — every request the lane accepted must still reach a
    /// terminal state ([`LaneDied`](crate::ServeError::LaneDied)).
    DispatcherStart {
        /// Creation-ordered lane id.
        lane: usize,
    },
}

impl InjectionPoint {
    fn kind(self) -> u8 {
        match self {
            InjectionPoint::PlanBuild { .. } => 0,
            InjectionPoint::BatchExecute { .. } => 1,
            InjectionPoint::FlushTiming { .. } => 2,
            InjectionPoint::DispatcherStart { .. } => 3,
        }
    }

    fn lane(self) -> usize {
        match self {
            InjectionPoint::PlanBuild { lane }
            | InjectionPoint::BatchExecute { lane, .. }
            | InjectionPoint::FlushTiming { lane, .. }
            | InjectionPoint::DispatcherStart { lane } => lane,
        }
    }

    fn flush(self) -> Option<u64> {
        match self {
            InjectionPoint::BatchExecute { flush, .. }
            | InjectionPoint::FlushTiming { flush, .. } => Some(flush),
            _ => None,
        }
    }
}

/// What happens when a fault fires at an [`InjectionPoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// `panic!` at the point. Inside a `catch_unwind` (plan build, batch
    /// execution) this exercises the corresponding failure policy; outside
    /// one (flush timing, dispatcher start) it kills the dispatcher thread
    /// and exercises supervision.
    Panic,
    /// Sleep for the given duration at the point — injected latency.
    Stall(Duration),
}

#[derive(Debug, Clone)]
struct Rule {
    kind: u8,
    lane: Option<usize>,
    flush: Option<u64>,
    action: FaultAction,
    /// Remaining firings; rules with `0` left are inert.
    remaining: u32,
}

impl Rule {
    fn matches(&self, point: InjectionPoint) -> bool {
        self.remaining > 0
            && self.kind == point.kind()
            && self.lane.is_none_or(|l| l == point.lane())
            && self.flush.is_none_or(|f| Some(f) == point.flush())
    }
}

/// An explicit fault schedule: a list of rules, each matching one kind of
/// [`InjectionPoint`] (optionally narrowed to a lane and flush index) and
/// firing a [`FaultAction`] a bounded number of times. Build one with the
/// named helpers and hand it to [`FaultInjector::scripted`].
///
/// # Examples
///
/// ```
/// use bppsa_serve::{FaultInjector, FaultScript};
/// use std::time::Duration;
///
/// let injector = FaultInjector::scripted(
///     FaultScript::new()
///         .plan_panic(2)                                  // lane 2's warm-up dies
///         .batch_panic(0, 3)                              // batch 3 of lane 0 dies
///         .flush_stall(1, 0, Duration::from_millis(50)),  // lane 1's first flush stalls
/// );
/// assert!(injector.is_enabled());
/// assert_eq!(injector.fired(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    rules: Vec<Rule>,
}

impl FaultScript {
    /// An empty schedule (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    fn rule(
        mut self,
        kind: u8,
        lane: Option<usize>,
        flush: Option<u64>,
        action: FaultAction,
        times: u32,
    ) -> Self {
        self.rules.push(Rule {
            kind,
            lane,
            flush,
            action,
            remaining: times,
        });
        self
    }

    /// Lane `lane`'s warm-up planner panics (once).
    pub fn plan_panic(self, lane: usize) -> Self {
        self.rule(0, Some(lane), None, FaultAction::Panic, 1)
    }

    /// Lane `lane`'s warm-up stalls for `delay` before planning (once).
    pub fn plan_stall(self, lane: usize, delay: Duration) -> Self {
        self.rule(0, Some(lane), None, FaultAction::Stall(delay), 1)
    }

    /// Batch execution of lane `lane`'s flush number `flush` panics.
    pub fn batch_panic(self, lane: usize, flush: u64) -> Self {
        self.rule(1, Some(lane), Some(flush), FaultAction::Panic, 1)
    }

    /// Every batch execution on lane `lane` panics, `times` times total —
    /// the breaker-tripping workload.
    pub fn batch_panic_times(self, lane: usize, times: u32) -> Self {
        self.rule(1, Some(lane), None, FaultAction::Panic, times)
    }

    /// Lane `lane`'s flush number `flush` stalls for `delay` before
    /// executing (injected flush latency, outside the panic guard).
    pub fn flush_stall(self, lane: usize, flush: u64, delay: Duration) -> Self {
        self.rule(2, Some(lane), Some(flush), FaultAction::Stall(delay), 1)
    }

    /// Lane `lane`'s dispatcher thread is killed at entry, before warm-up.
    pub fn kill_dispatcher_at_start(self, lane: usize) -> Self {
        self.rule(3, Some(lane), None, FaultAction::Panic, 1)
    }

    /// Lane `lane`'s dispatcher thread is killed right before executing
    /// flush number `flush` — with the batch already assembled, outside the
    /// panic guard.
    pub fn kill_dispatcher_at_flush(self, lane: usize, flush: u64) -> Self {
        self.rule(2, Some(lane), Some(flush), FaultAction::Panic, 1)
    }
}

/// Per-point fault probabilities for [`FaultInjector::seeded`]. Each
/// probability is in `[0, 1]`; a point fires when its pure
/// `(seed, point)`-derived draw falls below the rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability that a lane's warm-up planning panics.
    pub plan_panic: f64,
    /// Probability that one batch execution panics.
    pub batch_panic: f64,
    /// Probability that one flush stalls for [`FaultRates::stall`] before
    /// executing.
    pub flush_stall: f64,
    /// The injected latency when a flush stall fires.
    pub stall: Duration,
}

impl FaultRates {
    /// No faults at any rate (useful as a base for struct update syntax).
    pub fn none() -> Self {
        Self {
            plan_panic: 0.0,
            batch_panic: 0.0,
            flush_stall: 0.0,
            stall: Duration::ZERO,
        }
    }
}

#[derive(Debug)]
enum Mode {
    Script(Mutex<Vec<Rule>>),
    Seeded { seed: u64, rates: FaultRates },
}

#[derive(Debug)]
struct Inner {
    mode: Mode,
    fired: AtomicU64,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` draw that is a pure function of `(seed, point, salt)` —
/// deterministic across runs and thread interleavings.
fn point_draw(seed: u64, point: InjectionPoint, salt: u64) -> f64 {
    let key = seed
        ^ splitmix64(point.kind() as u64 ^ salt.rotate_left(17))
        ^ splitmix64((point.lane() as u64).wrapping_mul(0x9E37_79B9))
        ^ splitmix64(point.flush().unwrap_or(u64::MAX).wrapping_add(salt));
    (splitmix64(key) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Inner {
    fn decide(&self, point: InjectionPoint) -> Option<FaultAction> {
        match &self.mode {
            Mode::Script(rules) => {
                let mut rules = rules.lock().unwrap_or_else(PoisonError::into_inner);
                let rule = rules.iter_mut().find(|r| r.matches(point))?;
                rule.remaining -= 1;
                Some(rule.action)
            }
            // Seeded chaos never kills dispatchers: an uncaught panic's
            // *observable* consequences depend on how far the dispatcher
            // got, which only a scripted schedule can pin down.
            Mode::Seeded { seed, rates } => match point {
                InjectionPoint::PlanBuild { .. } => {
                    (point_draw(*seed, point, 1) < rates.plan_panic).then_some(FaultAction::Panic)
                }
                InjectionPoint::BatchExecute { .. } => {
                    (point_draw(*seed, point, 2) < rates.batch_panic).then_some(FaultAction::Panic)
                }
                InjectionPoint::FlushTiming { .. } => (point_draw(*seed, point, 3)
                    < rates.flush_stall)
                    .then_some(FaultAction::Stall(rates.stall)),
                InjectionPoint::DispatcherStart { .. } => None,
            },
        }
    }
}

/// A handle to a fault schedule, plumbed through
/// [`ServeConfig::faults`](crate::ServeConfig::faults). Cloning shares the
/// schedule (scripted rule consumption is global, not per clone). The
/// [default](FaultInjector::disabled) is a no-op whose firing check is a
/// single branch — the steady-state serving path pays nothing for the
/// harness existing.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<Inner>>,
}

impl FaultInjector {
    /// The no-op injector (the default): every injection point is a single
    /// `Option` check, no locks, no allocation.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An injector driven by an explicit [`FaultScript`].
    pub fn scripted(script: FaultScript) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                mode: Mode::Script(Mutex::new(script.rules)),
                fired: AtomicU64::new(0),
            })),
        }
    }

    /// A probabilistic injector whose per-point decisions are a pure
    /// function of `(seed, point)` — the same seed yields the same fault
    /// set on every run and under every thread interleaving. Seeded mode
    /// never kills dispatchers (see [`FaultScript::kill_dispatcher_at_start`]
    /// for that); it panics plans and batches and stalls flushes.
    pub fn seeded(seed: u64, rates: FaultRates) -> Self {
        for (name, p) in [
            ("plan_panic", rates.plan_panic),
            ("batch_panic", rates.batch_panic),
            ("flush_stall", rates.flush_stall),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "FaultRates::{name} must be a probability in [0, 1], got {p}"
            );
        }
        Self {
            inner: Some(Arc::new(Inner {
                mode: Mode::Seeded { seed, rates },
                fired: AtomicU64::new(0),
            })),
        }
    }

    /// Whether any schedule is armed (`false` for the disabled default).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// How many faults have fired so far (0 for a disabled injector).
    pub fn fired(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.fired.load(Ordering::Relaxed))
    }

    /// Evaluates the schedule at `point`, executing whatever action it
    /// prescribes (sleeping in place, or panicking — the caller's
    /// surrounding policy decides what that panic *means*). The disabled
    /// injector returns immediately.
    #[inline]
    pub(crate) fn fire(&self, point: InjectionPoint) {
        let Some(inner) = &self.inner else {
            return;
        };
        let Some(action) = inner.decide(point) else {
            return;
        };
        inner.fired.fetch_add(1, Ordering::Relaxed);
        match action {
            FaultAction::Stall(delay) => std::thread::sleep(delay),
            FaultAction::Panic => panic!("bppsa-serve fault injection: panic at {point:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn disabled_injector_never_fires() {
        let inj = FaultInjector::disabled();
        for lane in 0..4 {
            inj.fire(InjectionPoint::PlanBuild { lane });
            inj.fire(InjectionPoint::BatchExecute { lane, flush: 0 });
        }
        assert_eq!(inj.fired(), 0);
        assert!(!inj.is_enabled());
    }

    #[test]
    fn scripted_rules_match_point_identity_and_consume() {
        let inj = FaultInjector::scripted(FaultScript::new().batch_panic(1, 3));
        // Wrong lane, wrong flush: nothing fires.
        inj.fire(InjectionPoint::BatchExecute { lane: 0, flush: 3 });
        inj.fire(InjectionPoint::BatchExecute { lane: 1, flush: 2 });
        assert_eq!(inj.fired(), 0);
        // Exact point: fires once, then the rule is spent.
        let hit = catch_unwind(AssertUnwindSafe(|| {
            inj.fire(InjectionPoint::BatchExecute { lane: 1, flush: 3 });
        }));
        assert!(hit.is_err(), "matching point must panic");
        assert_eq!(inj.fired(), 1);
        inj.fire(InjectionPoint::BatchExecute { lane: 1, flush: 3 });
        assert_eq!(inj.fired(), 1, "a spent rule is inert");
    }

    #[test]
    fn bounded_rule_fires_exactly_n_times() {
        let inj = FaultInjector::scripted(FaultScript::new().batch_panic_times(0, 2));
        for flush in 0..5 {
            let _ = catch_unwind(AssertUnwindSafe(|| {
                inj.fire(InjectionPoint::BatchExecute { lane: 0, flush });
            }));
        }
        assert_eq!(inj.fired(), 2);
    }

    #[test]
    fn stall_action_sleeps_instead_of_panicking() {
        let inj =
            FaultInjector::scripted(FaultScript::new().flush_stall(0, 0, Duration::from_millis(5)));
        let t0 = std::time::Instant::now();
        inj.fire(InjectionPoint::FlushTiming { lane: 0, flush: 0 });
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert_eq!(inj.fired(), 1);
    }

    #[test]
    fn seeded_decisions_are_pure_in_seed_and_point() {
        let rates = FaultRates {
            batch_panic: 0.5,
            ..FaultRates::none()
        };
        let a = FaultInjector::seeded(42, rates);
        let b = FaultInjector::seeded(42, rates);
        // The two injectors agree on every point, in any evaluation order.
        let mut fired_points = Vec::new();
        for flush in 0..64 {
            let pa = catch_unwind(AssertUnwindSafe(|| {
                a.fire(InjectionPoint::BatchExecute { lane: 0, flush });
            }))
            .is_err();
            fired_points.push(pa);
        }
        for flush in (0..64).rev() {
            let pb = catch_unwind(AssertUnwindSafe(|| {
                b.fire(InjectionPoint::BatchExecute { lane: 0, flush });
            }))
            .is_err();
            assert_eq!(
                pb, fired_points[flush as usize],
                "seeded decision must not depend on evaluation order (flush {flush})"
            );
        }
        // Rate 0.5 over 64 draws: both outcomes occur.
        assert!(fired_points.iter().any(|&p| p));
        assert!(fired_points.iter().any(|&p| !p));
        // A different seed gives a different fault set.
        let c = FaultInjector::seeded(43, rates);
        let differs = (0..64).any(|flush| {
            let pc = catch_unwind(AssertUnwindSafe(|| {
                c.fire(InjectionPoint::BatchExecute { lane: 0, flush });
            }))
            .is_err();
            pc != fired_points[flush as usize]
        });
        assert!(differs, "seed must matter");
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn out_of_range_rate_is_rejected() {
        let _ = FaultInjector::seeded(
            1,
            FaultRates {
                plan_panic: 1.5,
                ..FaultRates::none()
            },
        );
    }
}
