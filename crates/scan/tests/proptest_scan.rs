//! Property-based tests: every schedule × executor combination must agree
//! with the serial left-fold oracle, for commutative and non-commutative
//! operators alike.

use bppsa_scan::{
    execute_in_place, hillis_steele_exclusive, hillis_steele_inclusive, serial_exclusive_scan,
    serial_inclusive_scan, Executor, ScanOp, ScanSchedule,
};
use proptest::prelude::*;

struct Concat;
impl ScanOp<String> for Concat {
    fn combine(&self, a: &String, b: &String) -> String {
        format!("{a}{b}")
    }
    fn identity(&self) -> String {
        String::new()
    }
}

struct Affine;
impl ScanOp<(i64, i64)> for Affine {
    fn combine(&self, f: &(i64, i64), g: &(i64, i64)) -> (i64, i64) {
        (
            g.0.wrapping_mul(f.0),
            g.0.wrapping_mul(f.1).wrapping_add(g.1),
        )
    }
    fn identity(&self) -> (i64, i64) {
        (1, 0)
    }
}

/// Wrapping 2×2 integer matrices under multiplication: associative,
/// non-commutative, exact — a miniature of BPPSA's Jacobian elements.
#[derive(Debug, Clone, PartialEq)]
struct M2([i64; 4]);
struct MatMul;
impl ScanOp<M2> for MatMul {
    fn combine(&self, a: &M2, b: &M2) -> M2 {
        let (x, y) = (&a.0, &b.0);
        M2([
            x[0].wrapping_mul(y[0])
                .wrapping_add(x[1].wrapping_mul(y[2])),
            x[0].wrapping_mul(y[1])
                .wrapping_add(x[1].wrapping_mul(y[3])),
            x[2].wrapping_mul(y[0])
                .wrapping_add(x[3].wrapping_mul(y[2])),
            x[2].wrapping_mul(y[1])
                .wrapping_add(x[3].wrapping_mul(y[3])),
        ])
    }
    fn identity(&self) -> M2 {
        M2([1, 0, 0, 1])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn full_blelloch_equals_oracle_strings(items in proptest::collection::vec("[a-c]{0,2}", 0..70)) {
        let items: Vec<String> = items;
        let expect = serial_exclusive_scan(&Concat, &items);
        let mut a = items.clone();
        execute_in_place(&ScanSchedule::full(items.len()), &Concat, &mut a, Executor::Serial);
        prop_assert_eq!(a, expect);
    }

    #[test]
    fn hybrid_equals_oracle_affine(
        items in proptest::collection::vec((-9i64..9, -9i64..9), 0..70),
        k in 0usize..8,
    ) {
        let expect = serial_exclusive_scan(&Affine, &items);
        let mut a = items.clone();
        let schedule = ScanSchedule::with_up_levels(items.len(), k);
        execute_in_place(&schedule, &Affine, &mut a, Executor::Serial);
        prop_assert_eq!(a, expect);
    }

    #[test]
    fn threaded_equals_oracle_matrices(
        items in proptest::collection::vec(
            proptest::array::uniform4(-5i64..5).prop_map(M2), 0..60),
        threads in 2usize..6,
    ) {
        let expect = serial_exclusive_scan(&MatMul, &items);
        let mut a = items.clone();
        execute_in_place(
            &ScanSchedule::full(items.len()),
            &MatMul,
            &mut a,
            Executor::Threaded(threads),
        );
        prop_assert_eq!(a, expect);
    }

    #[test]
    fn hillis_steele_equals_oracles(items in proptest::collection::vec("[a-c]{0,2}", 0..50)) {
        let items: Vec<String> = items;
        let mut inc = items.clone();
        hillis_steele_inclusive(&Concat, &mut inc);
        prop_assert_eq!(inc, serial_inclusive_scan(&Concat, &items));

        let mut exc = items.clone();
        hillis_steele_exclusive(&Concat, &mut exc);
        prop_assert_eq!(exc, serial_exclusive_scan(&Concat, &items));
    }

    #[test]
    fn schedule_invariants_hold(len in 0usize..200, k in 0usize..10) {
        let s = ScanSchedule::with_up_levels(len, k);
        s.assert_levels_disjoint();
        if len > 0 {
            // Combine count is linear in len for any cutoff: W = Θ(n), Eq. 7.
            prop_assert!(s.combine_count() <= 2 * len);
            prop_assert!(s.combine_count() + 1 >= len);
            // Block roots are strictly ascending and end at n.
            let roots = s.block_roots();
            prop_assert!(roots.windows(2).all(|w| w[0] < w[1]));
            prop_assert_eq!(*roots.last().unwrap(), len - 1);
        }
    }

    #[test]
    fn exclusive_scan_prefix_property(
        items in proptest::collection::vec((-9i64..9, -9i64..9), 1..50),
    ) {
        // output[i+1] == combine(output[i], items[i]) — the defining relation.
        let out = serial_exclusive_scan(&Affine, &items);
        for i in 0..items.len() - 1 {
            prop_assert_eq!(out[i + 1], Affine.combine(&out[i], &items[i]));
        }
        prop_assert_eq!(out[0], Affine.identity());
    }
}
