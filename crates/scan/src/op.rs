//! The scan-operator abstraction.

/// A binary, associative (not necessarily commutative) operator with an
/// identity element, in the sense of the paper's §2.3.
///
/// `combine(a, b)` computes `a ⊕ b`. Implementations must satisfy, up to
/// floating-point rounding:
///
/// * associativity: `combine(&combine(a, b), c) == combine(a, &combine(b, c))`
/// * identity: `combine(&identity(), a) == a == combine(a, &identity())`
///
/// Commutativity is *not* required — BPPSA's operator `A ⊙ B = B·A` is
/// non-commutative, which is why Algorithm 1 reverses the operand order in
/// the down-sweep.
///
/// # Examples
///
/// ```
/// use bppsa_scan::ScanOp;
///
/// struct Add;
/// impl ScanOp<i64> for Add {
///     fn combine(&self, a: &i64, b: &i64) -> i64 { a + b }
///     fn identity(&self) -> i64 { 0 }
/// }
/// assert_eq!(Add.combine(&2, &3), 5);
/// ```
pub trait ScanOp<T> {
    /// Computes `a ⊕ b`.
    fn combine(&self, a: &T, b: &T) -> T;
    /// The identity element of `⊕`.
    fn identity(&self) -> T;
}

/// Blanket implementation so `&Op` can be passed wherever `Op` is expected.
impl<T, Op: ScanOp<T> + ?Sized> ScanOp<T> for &Op {
    fn combine(&self, a: &T, b: &T) -> T {
        (**self).combine(a, b)
    }
    fn identity(&self) -> T {
        (**self).identity()
    }
}

#[cfg(test)]
pub(crate) mod test_ops {
    use super::ScanOp;

    /// Integer addition (commutative; the classic prefix-sum).
    pub struct Add;
    impl ScanOp<i64> for Add {
        fn combine(&self, a: &i64, b: &i64) -> i64 {
            a.wrapping_add(*b)
        }
        fn identity(&self) -> i64 {
            0
        }
    }

    /// String concatenation (associative, non-commutative) — the canonical
    /// witness that operand ordering in the down-sweep is correct.
    pub struct Concat;
    impl ScanOp<String> for Concat {
        fn combine(&self, a: &String, b: &String) -> String {
            let mut s = a.clone();
            s.push_str(b);
            s
        }
        fn identity(&self) -> String {
            String::new()
        }
    }

    /// Affine-map composition: `(a, b)` represents `x ↦ a·x + b` over
    /// wrapping i64, composed left-to-right (apply the left map first).
    /// Associative and non-commutative, with exact integer arithmetic.
    pub struct Affine;
    impl ScanOp<(i64, i64)> for Affine {
        fn combine(&self, f: &(i64, i64), g: &(i64, i64)) -> (i64, i64) {
            // (f then g)(x) = g(f(x)) = g.0*(f.0*x + f.1) + g.1
            (
                g.0.wrapping_mul(f.0),
                g.0.wrapping_mul(f.1).wrapping_add(g.1),
            )
        }
        fn identity(&self) -> (i64, i64) {
            (1, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_ops::*;
    use super::*;

    #[test]
    fn add_identity_laws() {
        assert_eq!(Add.combine(&Add.identity(), &7), 7);
        assert_eq!(Add.combine(&7, &Add.identity()), 7);
    }

    #[test]
    fn concat_is_noncommutative() {
        let (a, b) = ("ab".to_string(), "cd".to_string());
        assert_ne!(Concat.combine(&a, &b), Concat.combine(&b, &a));
    }

    #[test]
    fn affine_associativity() {
        let f = (2, 3);
        let g = (5, 7);
        let h = (11, 13);
        let left = Affine.combine(&Affine.combine(&f, &g), &h);
        let right = Affine.combine(&f, &Affine.combine(&g, &h));
        assert_eq!(left, right);
    }

    #[test]
    fn reference_to_op_also_implements() {
        fn scan_with<T, Op: ScanOp<T>>(op: Op, a: &T, b: &T) -> T {
            op.combine(a, b)
        }
        assert_eq!(scan_with(&Add, &1, &2), 3);
    }
}
