//! The Hillis–Steele scan (Hillis & Steele 1986), included as the classic
//! alternative parallel-scan algorithm the paper cites alongside Blelloch.
//!
//! Hillis–Steele is step-optimal (`⌈log₂ n⌉` levels, no down-sweep) but
//! work-inefficient (`Θ(n log n)` combines vs. Blelloch's `Θ(n)`), which is
//! why the paper builds on Blelloch: with Jacobian-sized elements, the extra
//! work means extra matrix–matrix products.

use crate::ScanOp;

/// In-place inclusive Hillis–Steele scan: `a[i] ← a₀ ⊕ … ⊕ a_i`.
///
/// Uses double buffering, so it allocates one scratch copy of the input.
///
/// # Examples
///
/// ```
/// use bppsa_scan::{hillis_steele_inclusive, ScanOp};
///
/// struct Add;
/// impl ScanOp<i64> for Add {
///     fn combine(&self, a: &i64, b: &i64) -> i64 { a + b }
///     fn identity(&self) -> i64 { 0 }
/// }
///
/// let mut a = vec![1, 2, 3, 4];
/// hillis_steele_inclusive(&Add, &mut a);
/// assert_eq!(a, vec![1, 3, 6, 10]);
/// ```
pub fn hillis_steele_inclusive<T: Clone, Op: ScanOp<T>>(op: &Op, a: &mut [T]) {
    let n = a.len();
    if n <= 1 {
        return;
    }
    let mut src: Vec<T> = a.to_vec();
    let mut dst: Vec<T> = a.to_vec();
    let mut d = 1usize;
    while d < n {
        for i in 0..n {
            if i >= d {
                dst[i] = op.combine(&src[i - d], &src[i]);
            } else {
                dst[i] = src[i].clone();
            }
        }
        std::mem::swap(&mut src, &mut dst);
        d <<= 1;
    }
    a.clone_from_slice(&src);
}

/// In-place exclusive Hillis–Steele scan: the inclusive scan shifted right
/// by one with the identity in front.
pub fn hillis_steele_exclusive<T: Clone, Op: ScanOp<T>>(op: &Op, a: &mut [T]) {
    let n = a.len();
    if n == 0 {
        return;
    }
    hillis_steele_inclusive(op, a);
    for i in (1..n).rev() {
        a[i] = a[i - 1].clone();
    }
    a[0] = op.identity();
}

/// Number of combines Hillis–Steele performs on `n` elements:
/// `Σ_{d=1,2,4,…<n} (n − d)` — the `Θ(n log n)` work bound.
pub fn hillis_steele_work(n: usize) -> usize {
    let mut work = 0usize;
    let mut d = 1usize;
    while d < n {
        work += n - d;
        d <<= 1;
    }
    work
}

/// Number of levels (steps with unbounded workers): `⌈log₂ n⌉`.
pub fn hillis_steele_steps(n: usize) -> usize {
    crate::ceil_log2(n) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute::{serial_exclusive_scan, serial_inclusive_scan};
    use crate::op::test_ops::{Add, Concat};

    #[test]
    fn inclusive_matches_oracle_across_sizes() {
        for n in 0..40usize {
            let items: Vec<String> = (0..n).map(|i| format!("<{i}>")).collect();
            let mut a = items.clone();
            hillis_steele_inclusive(&Concat, &mut a);
            assert_eq!(a, serial_inclusive_scan(&Concat, &items), "n={n}");
        }
    }

    #[test]
    fn exclusive_matches_oracle_across_sizes() {
        for n in 0..40usize {
            let items: Vec<String> = (0..n).map(|i| format!("<{i}>")).collect();
            let mut a = items.clone();
            hillis_steele_exclusive(&Concat, &mut a);
            assert_eq!(a, serial_exclusive_scan(&Concat, &items), "n={n}");
        }
    }

    #[test]
    fn work_is_superlinear() {
        // n log n vs Blelloch's ~2n: at n=1024 Hillis-Steele does ~9x the work.
        let hs = hillis_steele_work(1024);
        let blelloch = crate::ScanSchedule::full(1024).combine_count();
        assert!(hs > 4 * blelloch, "hs={hs} blelloch={blelloch}");
    }

    #[test]
    fn steps_are_logarithmic() {
        assert_eq!(hillis_steele_steps(1), 0);
        assert_eq!(hillis_steele_steps(2), 1);
        assert_eq!(hillis_steele_steps(1024), 10);
    }

    #[test]
    fn numeric_inclusive_small() {
        let mut a = vec![5i64];
        hillis_steele_inclusive(&Add, &mut a);
        assert_eq!(a, vec![5]);
    }
}
