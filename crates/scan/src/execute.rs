//! Executors: run a [`ScanSchedule`] over a slice of elements, serially or
//! with a pool of threads per level.
//!
//! The threaded executor mirrors the paper's CUDA implementation shape: "each
//! level during the up-/down-sweep phase requires a single CUDA kernel
//! launch, therefore synchronization is ensured between two consecutive
//! levels". Here each level is one crossbeam scope (the join is the level
//! barrier) and each thread handles a contiguous chunk of the level's pairs.

use crate::pool::SendPtr;
use crate::{Pair, ScanOp, ScanSchedule};

/// How a schedule's parallel levels are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Executor {
    /// All pairs run on the calling thread.
    #[default]
    Serial,
    /// Pairs in each level are split across this many freshly-spawned OS
    /// threads (values `0` and `1` behave like [`Executor::Serial`]).
    /// Simple, but pays a spawn per level — prefer [`Executor::Pooled`] for
    /// repeated scans.
    Threaded(usize),
    /// Pairs in each level run on the shared persistent worker pool
    /// ([`crate::global_pool`]) — the CPU analogue of the paper's
    /// one-kernel-per-level CUDA execution on persistent SMs.
    Pooled,
}

/// Up-sweep combine at one pair: `a[r] ← a[l] ⊕ a[r]` (Algorithm 1 line 4).
///
/// # Safety
///
/// `l != r`, both in bounds, and no other thread touches either index.
#[inline]
unsafe fn up_pair<T, Op: ScanOp<T>>(base: *mut T, op: &Op, p: Pair) {
    let l = &*base.add(p.l);
    let r_ptr = base.add(p.r);
    let old_r = std::ptr::read(r_ptr);
    let new_r = op.combine(l, &old_r);
    std::ptr::write(r_ptr, new_r);
    drop(old_r);
}

/// Down-sweep combine at one pair (Algorithm 1 lines 11–13, with the
/// paper's reversed operand order): `t ← a[l]; a[l] ← a[r]; a[r] ← a[r] ⊕ t`.
///
/// # Safety
///
/// `l != r`, both in bounds, and no other thread touches either index.
#[inline]
unsafe fn down_pair<T, Op: ScanOp<T>>(base: *mut T, op: &Op, p: Pair) {
    let l_ptr = base.add(p.l);
    let r_ptr = base.add(p.r);
    let t = std::ptr::read(l_ptr);
    let r_val = std::ptr::read(r_ptr);
    let new_r = op.combine(&r_val, &t); // a[r] ⊕ t — operand order reversed.
    std::ptr::write(l_ptr, r_val);
    std::ptr::write(r_ptr, new_r);
    drop(t);
}

fn run_level_serial<T, Op: ScanOp<T>>(a: &mut [T], op: &Op, pairs: &[Pair], down: bool) {
    let base = a.as_mut_ptr();
    for &p in pairs {
        debug_assert!(p.l < p.r && p.r < a.len());
        unsafe {
            if down {
                down_pair(base, op, p);
            } else {
                up_pair(base, op, p);
            }
        }
    }
}

fn run_level_threaded<T: Send, Op: ScanOp<T> + Sync>(
    a: &mut [T],
    op: &Op,
    pairs: &[Pair],
    down: bool,
    threads: usize,
) {
    if pairs.is_empty() {
        return;
    }
    let threads = threads.min(pairs.len());
    if threads <= 1 {
        run_level_serial(a, op, pairs, down);
        return;
    }
    let base = SendPtr(a.as_mut_ptr());
    let len = a.len();
    let chunk = pairs.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for chunk_pairs in pairs.chunks(chunk) {
            scope.spawn(move |_| {
                let base = base; // move the Copy wrapper into the closure
                for &p in chunk_pairs {
                    debug_assert!(p.l < p.r && p.r < len);
                    // SAFETY: pairs within a level are pairwise disjoint
                    // (schedule invariant), so no two threads alias.
                    unsafe {
                        if down {
                            down_pair(base.0, op, p);
                        } else {
                            up_pair(base.0, op, p);
                        }
                    }
                }
            });
        }
    })
    .expect("scan worker thread panicked");
}

/// Runs the serial exclusive scan across the block roots (the schedule's
/// middle phase): replaces each root's fold with the exclusive prefix of the
/// preceding blocks' folds.
fn run_middle<T, Op: ScanOp<T>>(a: &mut [T], op: &Op, roots: &[usize]) {
    let mut running = op.identity();
    for &p in roots {
        let old = std::mem::replace(&mut a[p], op.identity());
        let next = op.combine(&running, &old);
        a[p] = std::mem::replace(&mut running, next);
    }
}

/// Executes `schedule` in place over `a`, transforming the input array
/// `[a₀, …, a_n]` into the exclusive scan `[I, a₀, a₀⊕a₁, …, a₀⊕…⊕a_{n−1}]`.
///
/// # Panics
///
/// Panics if `a.len() != schedule.len()`, or if a worker thread panics.
///
/// # Examples
///
/// ```
/// use bppsa_scan::{execute_in_place, Executor, ScanOp, ScanSchedule};
///
/// struct Add;
/// impl ScanOp<i64> for Add {
///     fn combine(&self, a: &i64, b: &i64) -> i64 { a + b }
///     fn identity(&self) -> i64 { 0 }
/// }
///
/// let mut a = vec![1, 2, 3, 4];
/// execute_in_place(&ScanSchedule::full(4), &Add, &mut a, Executor::Serial);
/// assert_eq!(a, vec![0, 1, 3, 6]);
/// ```
pub fn execute_in_place<T: Send, Op: ScanOp<T> + Sync>(
    schedule: &ScanSchedule,
    op: &Op,
    a: &mut [T],
    executor: Executor,
) {
    assert_eq!(
        a.len(),
        schedule.len(),
        "execute_in_place: array length {} does not match schedule length {}",
        a.len(),
        schedule.len()
    );
    let run_level = |a: &mut [T], pairs: &[Pair], down: bool| match executor {
        Executor::Serial => run_level_serial(a, op, pairs, down),
        Executor::Threaded(t) if t > 1 => run_level_threaded(a, op, pairs, down, t),
        Executor::Threaded(_) => run_level_serial(a, op, pairs, down),
        Executor::Pooled => run_level_pooled(a, op, pairs, down, crate::global_pool()),
    };
    for level in schedule.up_levels() {
        run_level(a, level, false);
    }
    run_middle(a, op, schedule.block_roots());
    for level in schedule.down_levels() {
        run_level(a, level, true);
    }
}

/// Runs one level on a persistent pool: pairs are split into
/// `pool.size() + 1` contiguous chunks claimed via the pool's index-parallel
/// batch, whose barrier is the level synchronization. Zero allocations per
/// level in the steady state.
fn run_level_pooled<T: Send, Op: ScanOp<T> + Sync>(
    a: &mut [T],
    op: &Op,
    pairs: &[Pair],
    down: bool,
    pool: &crate::WorkerPool,
) {
    // Small levels (the deep portion of the tree) are cheaper on the caller
    // thread than a pool wakeup. Width is the only signal available here:
    // the generic executor knows nothing about element sizes, so a
    // FLOP-based decision is impossible at this layer — PlannedScan in
    // bppsa-core, which does know each combine's planned FLOPs, prices its
    // levels instead of using this heuristic.
    if pairs.len() < 4 {
        run_level_serial(a, op, pairs, down);
        return;
    }
    let chunks = (pool.size() + 1).min(pairs.len());
    let base = SendPtr(a.as_mut_ptr());
    let len = a.len();
    pool.run_indexed(chunks, &|c| {
        // Capture the whole `SendPtr` wrapper (not the raw field) so the
        // closure's captures stay `Sync` under edition-2021 precise capture.
        let base: SendPtr<T> = base;
        // Balanced partition: chunk c covers [c·n/chunks, (c+1)·n/chunks).
        let start = c * pairs.len() / chunks;
        let end = (c + 1) * pairs.len() / chunks;
        for &p in &pairs[start..end] {
            debug_assert!(p.l < p.r && p.r < len);
            // SAFETY: pairs within a level are pairwise disjoint (schedule
            // invariant), so no two chunks alias.
            unsafe {
                if down {
                    down_pair(base.0, op, p);
                } else {
                    up_pair(base.0, op, p);
                }
            }
        }
    });
}

/// Reference serial exclusive scan (left fold), used as the correctness
/// oracle for every schedule/executor combination.
///
/// Returns `[I, a₀, a₀⊕a₁, …]` with the same length as `items`.
pub fn serial_exclusive_scan<T: Clone, Op: ScanOp<T>>(op: &Op, items: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(items.len());
    let mut acc = op.identity();
    for x in items {
        out.push(acc.clone());
        acc = op.combine(&acc, x);
    }
    out
}

/// Reference serial *inclusive* scan: `[a₀, a₀⊕a₁, …, a₀⊕…⊕a_n]`.
pub fn serial_inclusive_scan<T: Clone, Op: ScanOp<T>>(op: &Op, items: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(items.len());
    let mut acc: Option<T> = None;
    for x in items {
        acc = Some(match acc {
            None => x.clone(),
            Some(a) => op.combine(&a, x),
        });
        out.push(acc.clone().expect("acc set above"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::test_ops::{Add, Affine, Concat};

    fn strings(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("[{i}]")).collect()
    }

    #[test]
    fn serial_oracle_exclusive_matches_manual() {
        let out = serial_exclusive_scan(&Add, &[1, 2, 3, 4]);
        assert_eq!(out, vec![0, 1, 3, 6]);
    }

    #[test]
    fn serial_oracle_inclusive_matches_manual() {
        let out = serial_inclusive_scan(&Add, &[1, 2, 3, 4]);
        assert_eq!(out, vec![1, 3, 6, 10]);
    }

    #[test]
    fn full_schedule_matches_oracle_all_small_sizes() {
        for m in 0..66usize {
            let items = strings(m);
            let expect = serial_exclusive_scan(&Concat, &items);
            let mut a = items.clone();
            execute_in_place(&ScanSchedule::full(m), &Concat, &mut a, Executor::Serial);
            assert_eq!(a, expect, "m={m}");
        }
    }

    #[test]
    fn hybrid_schedules_match_oracle_all_cutoffs() {
        for m in [1usize, 2, 3, 5, 7, 8, 13, 16, 31, 33, 64] {
            let items = strings(m);
            let expect = serial_exclusive_scan(&Concat, &items);
            for k in 0..9 {
                let mut a = items.clone();
                let s = ScanSchedule::with_up_levels(m, k);
                execute_in_place(&s, &Concat, &mut a, Executor::Serial);
                assert_eq!(a, expect, "m={m} k={k}");
            }
        }
    }

    #[test]
    fn threaded_matches_serial_for_noncommutative_op() {
        for m in [5usize, 64, 127, 128, 1000] {
            let items: Vec<(i64, i64)> = (0..m as i64).map(|i| (2 * i + 1, 3 * i - 7)).collect();
            let expect = serial_exclusive_scan(&Affine, &items);
            for threads in [2usize, 4, 8] {
                let mut a = items.clone();
                execute_in_place(
                    &ScanSchedule::full(m),
                    &Affine,
                    &mut a,
                    Executor::Threaded(threads),
                );
                assert_eq!(a, expect, "m={m} threads={threads}");
            }
        }
    }

    #[test]
    fn linear_schedule_equals_oracle() {
        let items: Vec<i64> = (1..=10).collect();
        let mut a = items.clone();
        execute_in_place(&ScanSchedule::linear(10), &Add, &mut a, Executor::Serial);
        assert_eq!(a, serial_exclusive_scan(&Add, &items));
    }

    #[test]
    fn empty_input_is_a_noop() {
        let mut a: Vec<i64> = vec![];
        execute_in_place(&ScanSchedule::full(0), &Add, &mut a, Executor::Serial);
        assert!(a.is_empty());
    }

    #[test]
    fn singleton_becomes_identity() {
        let mut a = vec![41i64];
        execute_in_place(&ScanSchedule::full(1), &Add, &mut a, Executor::Serial);
        assert_eq!(a, vec![0]);
    }

    #[test]
    #[should_panic(expected = "does not match schedule length")]
    fn length_mismatch_panics() {
        let mut a = vec![1i64, 2];
        execute_in_place(&ScanSchedule::full(3), &Add, &mut a, Executor::Serial);
    }

    #[test]
    fn executor_default_is_serial() {
        assert_eq!(Executor::default(), Executor::Serial);
    }

    #[test]
    fn pooled_matches_serial_for_noncommutative_op() {
        for m in [5usize, 64, 127, 1000] {
            let items: Vec<(i64, i64)> = (0..m as i64).map(|i| (3 * i - 1, 2 * i + 5)).collect();
            let expect = serial_exclusive_scan(&Affine, &items);
            let mut a = items.clone();
            execute_in_place(&ScanSchedule::full(m), &Affine, &mut a, Executor::Pooled);
            assert_eq!(a, expect, "m={m}");
        }
    }

    #[test]
    fn pooled_hybrid_schedules_agree() {
        let items = strings(41);
        let expect = serial_exclusive_scan(&Concat, &items);
        for k in 0..7 {
            let mut a = items.clone();
            let s = ScanSchedule::with_up_levels(41, k);
            execute_in_place(&s, &Concat, &mut a, Executor::Pooled);
            assert_eq!(a, expect, "k={k}");
        }
    }

    #[test]
    fn threaded_with_zero_or_one_thread_degenerates_to_serial() {
        let items = strings(17);
        let expect = serial_exclusive_scan(&Concat, &items);
        for t in [0usize, 1] {
            let mut a = items.clone();
            execute_in_place(
                &ScanSchedule::full(17),
                &Concat,
                &mut a,
                Executor::Threaded(t),
            );
            assert_eq!(a, expect);
        }
    }
}
