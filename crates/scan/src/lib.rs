//! # bppsa-scan — generic parallel-scan framework
//!
//! The scan (prefix-aggregation) machinery at the heart of BPPSA,
//! implemented generically over any associative operator so the same code is
//! property-tested with integers/strings/affine maps and reused by
//! `bppsa-core` with Jacobian-sized matrix elements.
//!
//! Provided algorithms:
//!
//! * [`serial_exclusive_scan`] / [`serial_inclusive_scan`] — the `Θ(n)`-step
//!   reference (the paper's "linear scan" baseline, equivalent in step count
//!   to ordinary back-propagation);
//! * [`ScanSchedule::full`] — the paper's **modified Blelloch scan
//!   (Algorithm 1)** with the reversed-operand down-sweep needed for the
//!   non-commutative `A ⊙ B = B·A`;
//! * [`ScanSchedule::with_up_levels`] — the §5.2 **hybrid/truncated**
//!   schedule: `k` up-sweep levels, a serial scan over block roots, `k`
//!   down-sweep levels (interpolates between linear scan and full Blelloch);
//! * [`hillis_steele_inclusive`] — the step-optimal but work-inefficient
//!   alternative, for comparison benches.
//!
//! Execution is split from scheduling: a [`ScanSchedule`] is a pure
//! description of level-synchronous pair updates, executed by
//! [`execute_in_place`] either serially, with threads per level, or on the
//! persistent [`WorkerPool`] (the in-process stand-in for the paper's
//! one-CUDA-kernel-per-level structure on persistent SMs; its
//! [`WorkerPool::run_indexed`] publishes batches into a reused
//! generation-stamped header, so steady-state fan-outs allocate nothing).
//! A schedule can also be *priced* — without executing — by the
//! `bppsa-pram` simulator.
//!
//! ## Example: exclusive scan with a non-commutative operator
//!
//! ```
//! use bppsa_scan::{execute_in_place, Executor, ScanOp, ScanSchedule};
//!
//! /// Function composition over affine maps x ↦ a·x + b.
//! struct Compose;
//! impl ScanOp<(f64, f64)> for Compose {
//!     fn combine(&self, f: &(f64, f64), g: &(f64, f64)) -> (f64, f64) {
//!         (g.0 * f.0, g.0 * f.1 + g.1)
//!     }
//!     fn identity(&self) -> (f64, f64) { (1.0, 0.0) }
//! }
//!
//! let mut maps = vec![(2.0, 1.0), (3.0, 0.0), (1.0, -1.0)];
//! execute_in_place(&ScanSchedule::full(3), &Compose, &mut maps, Executor::Threaded(2));
//! assert_eq!(maps[0], (1.0, 0.0));        // identity
//! assert_eq!(maps[1], (2.0, 1.0));        // first map
//! assert_eq!(maps[2], (6.0, 3.0));        // composition of first two
//! ```

#![warn(missing_docs)]

mod execute;
mod hillis_steele;
mod op;
mod pool;
mod schedule;

pub use execute::{execute_in_place, serial_exclusive_scan, serial_inclusive_scan, Executor};
pub use hillis_steele::{
    hillis_steele_exclusive, hillis_steele_inclusive, hillis_steele_steps, hillis_steele_work,
};
pub use op::ScanOp;
pub use pool::{global_pool, SendPtr, Slot, WorkerGroup, WorkerPool};
pub use schedule::{ceil_log2, Pair, PhaseInfo, PhaseKind, ScanSchedule};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScanSchedule>();
        assert_send_sync::<Pair>();
        assert_send_sync::<Executor>();
        assert_send_sync::<PhaseInfo>();
    }
}
