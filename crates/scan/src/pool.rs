//! A persistent worker pool for level-synchronous execution.
//!
//! [`Executor::Threaded`](crate::Executor::Threaded) spawns OS threads per
//! level — simple but expensive when a level's combines are microseconds of
//! work (a 20×20 matmul). The paper's CUDA kernels don't pay that cost: SMs
//! persist across kernel launches. [`WorkerPool`] is the CPU analogue — a
//! fixed set of threads that stay parked between levels.
//!
//! Design: one condvar broadcast publishes a *batch* (a `Fn(usize)` task and
//! an index count) into a **reused, generation-stamped header**; workers
//! claim indices from a shared atomic counter until the batch drains; the
//! caller participates too and the last finisher signals completion.
//! Per-batch overhead is two futex transitions, not one per job, and the
//! steady state performs **zero heap allocations per level** — the header is
//! pool-owned state, not a per-call `Arc`.
//!
//! # The stale-worker story
//!
//! Reusing one header means a slow worker can wake up holding state from a
//! batch that already completed, while the header has been republished for a
//! newer batch. Two defenses make that safe:
//!
//! 1. **Generation-validated claims.** The claim counter packs
//!    `(generation, next index)` into a single atomic word, and indices are
//!    claimed by compare-and-swap. A stale worker's CAS carries the old
//!    generation and can never claim (or skip) an index of a newer batch; it
//!    observes the mismatch and goes back to sleep.
//! 2. **Barrier-bounded task lifetime.** A successful claim of index `i`
//!    proves batch `remaining > 0` at the claim instant, which pins the
//!    publishing `run_indexed` call (and therefore the task borrow) until
//!    the claimer finishes `task(i)` and decrements `remaining`.
//!
//! A header is only republished by the thread that owns the `busy` flag, and
//! only after it observed `remaining == 0` — so `remaining` decrements can
//! never cross generations either. Nested or concurrent `run_indexed` calls
//! (the flag is already taken) fall back to inline serial execution, which
//! keeps the pool deadlock-free when a pooled task itself fans out.
//!
//! Panic signals follow the same discipline: a job panic is recorded as a
//! **generation-tagged** poison word, and the publisher consumes (and
//! re-raises) only a poison carrying its own batch's generation, *before*
//! releasing the header. An unscoped flag checked after the release used to
//! let a subsequent publisher's batch consume the previous batch's panic —
//! repanicking the wrong caller and losing the original signal.

use parking_lot::{Condvar, Mutex};
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Raw pointer to the current batch's task closure. Valid for the batch's
/// lifetime only; stale workers can never call through it because claims
/// are generation-validated (see the module docs).
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// Packs a batch generation and a claim index into one atomic word.
///
/// 32 bits each: a stale worker would have to sleep across 2^32 batch
/// publications *while holding a loaded claim word* for the generation tag
/// to alias (the classic ABA window) — not reachable in practice.
#[inline]
fn pack(generation: u32, index: u32) -> u64 {
    (u64::from(generation) << 32) | u64::from(index)
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

struct Shared {
    slot: Mutex<BatchSlot>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Panic signal of the *current published batch*, scoped to its
    /// generation: `0` when clean, else `pack(generation, 1)` of the batch
    /// whose job panicked. Generation scoping (plus the publisher clearing
    /// it *before* releasing `busy`) ensures one batch's panic can never be
    /// consumed by — or re-raised at — a different batch's caller.
    poisoned: AtomicU64,
    shutdown: AtomicBool,
    /// Exclusive right to publish into the reused header. Taken for the
    /// whole duration of a pooled `run_indexed`; contenders run inline.
    busy: AtomicBool,
    /// `(generation, next claim index)` — the generation-validated claim
    /// counter of the current batch (see module docs).
    next: AtomicU64,
    /// Unfinished jobs of the current batch. Never crosses generations:
    /// republication requires observing zero first.
    remaining: AtomicUsize,
}

/// Mutex-guarded half of the reused batch header: what a worker must read
/// consistently with the generation it wakes up for.
struct BatchSlot {
    generation: u32,
    task: Option<TaskPtr>,
    count: usize,
}

/// Claims and runs indices of batch `generation` until none remain (or the
/// header moved on to a newer batch). Safe for stale callers: every claim
/// re-validates the generation via CAS.
fn drain(shared: &Shared, generation: u32, task: TaskPtr, count: usize) {
    loop {
        let word = shared.next.load(Ordering::Relaxed);
        let (gen, index) = unpack(word);
        if gen != generation || index as usize >= count {
            return;
        }
        // Acquire on success pairs with the publisher's release store of
        // `next`, making the task/count/remaining writes visible.
        if shared
            .next
            .compare_exchange_weak(
                word,
                pack(generation, index + 1),
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_err()
        {
            continue;
        }
        // SAFETY: the successful generation-validated claim above proves
        // `remaining > 0` for this batch until we decrement it below, which
        // pins the publishing `run_indexed` frame — so the task reference
        // is alive for the duration of this call.
        let task_ref = unsafe { &*task.0 };
        if catch_unwind(AssertUnwindSafe(|| task_ref(index as usize))).is_err() {
            // Tag the poison with this batch's generation. The store happens
            // before our `remaining` decrement, so the publisher (which only
            // reads the flag after observing `remaining == 0`) is guaranteed
            // to see it — and a claim of a *newer* batch can never have run
            // this line for an older generation.
            shared.poisoned.store(pack(generation, 1), Ordering::SeqCst);
        }
        shared.remaining.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A fixed-size pool of persistent worker threads executing index-parallel
/// batches with a completion barrier — the level-synchronous primitive the
/// scan executor needs.
///
/// # Examples
///
/// ```
/// use bppsa_scan::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = WorkerPool::new(4);
/// let counter = AtomicUsize::new(0);
/// pool.run_indexed(32, &|_i| {
///     counter.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(counter.load(Ordering::Relaxed), 32);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let size = threads.max(1);
        let shared = Arc::new(Shared {
            slot: Mutex::new(BatchSlot {
                generation: 0,
                task: None,
                count: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            poisoned: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            busy: AtomicBool::new(false),
            next: AtomicU64::new(0),
            remaining: AtomicUsize::new(0),
        });
        let workers = (0..size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bppsa-scan-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn scan worker")
            })
            .collect();
        Self {
            shared,
            workers,
            size,
        }
    }

    /// Number of worker threads (the caller participates too, so up to
    /// `size() + 1` indices run concurrently).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs `task(0..count)` across the pool (and the calling thread),
    /// blocking until every index completed. The task may borrow from the
    /// caller's stack — the barrier guarantees the borrows outlive all use.
    ///
    /// Allocation-free: the batch is published into a reused
    /// generation-stamped header owned by the pool, so the steady state of
    /// a planned scan performs **zero** heap allocations per level.
    ///
    /// Single-index batches, nested calls (a pooled task fanning out
    /// again), and calls racing another thread's in-flight batch run the
    /// task inline on the calling thread instead — same semantics, no
    /// deadlock, no corrupted header.
    ///
    /// # Panics
    ///
    /// Panics if any task invocation panicked.
    pub fn run_indexed<'scope>(&self, count: usize, task: &(dyn Fn(usize) + Sync + 'scope)) {
        if count == 0 {
            return;
        }
        assert!(count <= u32::MAX as usize, "run_indexed: batch too large");
        // SAFETY: only erases the `'scope` lifetime; the barrier below keeps
        // the reference alive for exactly as long as workers may call it.
        let task: &(dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        if count == 1
            || self
                .shared
                .busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            // Trivial, nested, or concurrent batch: run inline. Panics
            // propagate directly from the job.
            for i in 0..count {
                task(i);
            }
            return;
        }
        let generation = {
            let mut slot = self.shared.slot.lock();
            let generation = slot.generation.wrapping_add(1);
            slot.generation = generation;
            slot.task = Some(TaskPtr(task as *const _));
            slot.count = count;
            // `remaining` before `next`: the release store of `next` (and
            // the mutex) publish both to claimers.
            self.shared.remaining.store(count, Ordering::Relaxed);
            self.shared
                .next
                .store(pack(generation, 0), Ordering::Release);
            self.shared.work_cv.notify_all();
            generation
        };
        // The caller works too — for small batches it often drains
        // everything before a worker even wakes.
        drain(&self.shared, generation, TaskPtr(task as *const _), count);
        if self.shared.remaining.load(Ordering::Acquire) > 0 {
            let mut slot = self.shared.slot.lock();
            while self.shared.remaining.load(Ordering::Acquire) > 0 {
                self.shared.done_cv.wait(&mut slot);
            }
        }
        // Consume this batch's panic signal *before* releasing the header:
        // once `busy` drops, another publisher may start (and finish) a new
        // batch, and an unscoped flag read after that point could consume
        // the newer batch's signal — repanicking the wrong caller or losing
        // the panic entirely. The compare-exchange only clears a poison
        // carrying *our* generation, so even a reordered reader could never
        // eat another batch's mark.
        let poisoned = self
            .shared
            .poisoned
            .compare_exchange(pack(generation, 1), 0, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        // Release the header only after `remaining == 0`: no stale claim or
        // cross-generation decrement is possible past this point.
        self.shared.busy.store(false, Ordering::Release);
        if poisoned {
            panic!("a scan worker job panicked");
        }
    }

    /// Convenience wrapper: runs a vector of one-shot closures as a batch.
    ///
    /// # Panics
    ///
    /// Panics if any job panicked.
    pub fn run_batch<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if jobs.is_empty() {
            return;
        }
        let slots: Vec<Slot<Box<dyn FnOnce() + Send + 'scope>>> =
            jobs.into_iter().map(Slot::with).collect();
        self.run_indexed(slots.len(), &|i| {
            // SAFETY: run_indexed hands index `i` to exactly one task, so
            // this is slot i's unique accessor; the fill above
            // happens-before via the batch publication.
            unsafe { slots[i].take()() };
        });
    }
}

/// A lock-free single-writer, single-taker slot for index-parallel staging.
///
/// The shared utility behind [`WorkerPool::run_indexed`]-style fan-outs:
/// allocate one slot per index, let the task that claims index `i` be the
/// only one to [`Slot::set`] or [`Slot::take`] slot `i`, and rely on the
/// batch barrier for publication. Avoids `Mutex<Option<T>>` overhead where
/// the index-disjointness invariant already rules out contention.
///
/// (Previously duplicated as a private type inside `bppsa-core`'s planned
/// executor; it lives here so every crate staging per-index results on the
/// pool shares one audited implementation.)
///
/// All accessors are `unsafe fn`: the exclusion invariant below cannot be
/// checked by this type, so the proof obligation sits with each call site.
///
/// # Safety contract
///
/// For each slot, at most one thread may call [`Slot::set`] / [`Slot::take`]
/// / [`Slot::is_set`] at a time, and calls must be ordered by an external
/// synchronization edge (the pool's batch barrier, a join, …). The pool's
/// index disjointness — every index claimed by exactly one task — provides
/// this for the one-slot-per-index pattern.
///
/// # Examples
///
/// ```
/// use bppsa_scan::{Slot, WorkerPool};
///
/// let pool = WorkerPool::new(2);
/// let staged: Vec<Slot<usize>> = (0..8).map(|_| Slot::new()).collect();
/// // SAFETY: run_indexed hands each index to exactly one task, and its
/// // barrier orders every set before the takes below.
/// pool.run_indexed(8, &|i| unsafe { staged[i].set(i * i) });
/// assert_eq!(unsafe { staged[3].take() }, 9);
/// ```
pub struct Slot<T>(UnsafeCell<Option<T>>);

// SAFETY: per the safety contract, each slot is accessed by at most one
// thread at a time with accesses ordered by external synchronization.
unsafe impl<T: Send> Sync for Slot<T> {}

impl<T> Slot<T> {
    /// An empty slot.
    pub fn new() -> Self {
        Slot(UnsafeCell::new(None))
    }

    /// A slot pre-filled with `value`.
    pub fn with(value: T) -> Self {
        Slot(UnsafeCell::new(Some(value)))
    }

    /// Stores `value`.
    ///
    /// # Safety
    ///
    /// The caller must be the slot's unique accessor for the duration of
    /// the call (see the type-level safety contract).
    pub unsafe fn set(&self, value: T) {
        *self.0.get() = Some(value)
    }

    /// Removes and returns the stored value.
    ///
    /// # Safety
    ///
    /// The caller must be the slot's unique accessor for the duration of
    /// the call (see the type-level safety contract).
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub unsafe fn take(&self) -> T {
        (*self.0.get()).take().expect("Slot::take: slot is empty")
    }

    /// Whether a value is currently stored.
    ///
    /// # Safety
    ///
    /// The caller must be the slot's unique accessor for the duration of
    /// the call (see the type-level safety contract).
    pub unsafe fn is_set(&self) -> bool {
        (*self.0.get()).is_some()
    }
}

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A `Send + Sync` wrapper for a raw mutable pointer, for fanning writes to
/// pairwise-disjoint regions across pool tasks.
///
/// Shared by the scan executors, the row-parallel numeric SpGEMM, and the
/// planned-scan instruction executor (one audited definition instead of one
/// per crate). The wrapper itself is sound to share — dereferencing the
/// pointer still requires `unsafe`, where the call site must prove its
/// disjointness invariant (no two tasks touch the same element) and that a
/// barrier orders the writes against later reads.
pub struct SendPtr<T>(pub *mut T);

unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: sharing the *pointer value* is harmless; all dereferences are
// `unsafe` and carry their own aliasing proof at the call site.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> std::fmt::Debug for SendPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SendPtr({:p})", self.0)
    }
}

impl<T> std::fmt::Debug for Slot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately does not peek inside: Debug must stay callable
        // without the unique-accessor guarantee.
        write!(f, "Slot<{}>", std::any::type_name::<T>())
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_generation = 0u32;
    loop {
        let (generation, task, count) = {
            let mut slot = shared.slot.lock();
            while slot.generation == seen_generation && !shared.shutdown.load(Ordering::SeqCst) {
                shared.work_cv.wait(&mut slot);
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            seen_generation = slot.generation;
            (slot.generation, slot.task, slot.count)
        };
        if let Some(task) = task {
            drain(shared, generation, task, count);
            // Whoever observes the drained batch wakes the publisher; the
            // lock round-trip avoids a missed-wakeup race with `done_cv`.
            // If the header was already republished, `remaining` belongs to
            // the newer batch — then this batch's publisher has long
            // returned and needs no wakeup.
            if shared.remaining.load(Ordering::Acquire) == 0 {
                let _guard = shared.slot.lock();
                shared.done_cv.notify_all();
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let _guard = self.shared.slot.lock();
            self.shared.shutdown.store(true, Ordering::SeqCst);
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkerPool(size={})", self.size)
    }
}

/// The process-wide shared pool (sized to the available parallelism),
/// created lazily on first use — what [`crate::Executor::Pooled`] runs on.
pub fn global_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
        WorkerPool::new(threads)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_indexed_covers_every_index_exactly_once() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        pool.run_indexed(500, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn batch_runs_all_jobs() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..100)
            .map(|_| {
                let c = &counter;
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_batch(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn sequential_batches_form_barriers() {
        // Writes from batch 1 must be visible to batch 2 (level sync).
        let pool = WorkerPool::new(4);
        let data: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run_indexed(64, &|i| {
            data[i].store(1, Ordering::Release);
        });
        pool.run_indexed(64, &|i| {
            let v = data[i].load(Ordering::Acquire);
            assert_eq!(v, 1, "batch 1 write not visible");
            data[i].store(v + 1, Ordering::Release);
        });
        assert!(data.iter().all(|x| x.load(Ordering::Relaxed) == 2));
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = WorkerPool::new(2);
        pool.run_indexed(0, &|_| unreachable!());
        pool.run_batch(Vec::new());
    }

    #[test]
    fn pool_survives_many_batches() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.run_indexed(3, &|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1500);
    }

    #[test]
    #[should_panic(expected = "worker job panicked")]
    fn job_panic_propagates() {
        let pool = WorkerPool::new(2);
        pool.run_indexed(4, &|i| {
            if i == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn pool_is_usable_after_a_panic() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(1, &|_| panic!("first"));
        }));
        assert!(result.is_err());
        let counter = AtomicUsize::new(0);
        pool.run_indexed(8, &|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn concurrent_batches_attribute_panics_to_the_right_caller() {
        // Regression test for the cross-batch poisoning bug: the panic flag
        // used to be a single batch-global bool checked *after* the header
        // was released, so a concurrent caller's clean batch could consume
        // a panicking batch's signal — panicking the wrong caller and
        // silently absolving the right one. With generation-scoped
        // poisoning, across many racing rounds the panicking caller must
        // observe its panic every single time and the clean caller never.
        let pool = WorkerPool::new(2);
        let rounds = 300;
        std::thread::scope(|s| {
            let panicking = s.spawn(|| {
                for round in 0..rounds {
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        pool.run_indexed(4, &|i| {
                            if i == 2 {
                                panic!("poisoned job, round {round}");
                            }
                        });
                    }));
                    assert!(
                        result.is_err(),
                        "round {round}: the panicking batch's panic was lost"
                    );
                }
            });
            let clean = s.spawn(|| {
                let counter = AtomicUsize::new(0);
                for round in 0..rounds {
                    // A clean batch must never observe another batch's
                    // panic, whether it wins the header or runs inline.
                    pool.run_indexed(4, &|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                    assert_eq!(counter.load(Ordering::Relaxed), (round + 1) * 4);
                }
            });
            panicking.join().expect("panicking caller misattributed");
            clean.join().expect("clean caller caught a foreign panic");
        });
        // The pool stays fully usable afterwards.
        let counter = AtomicUsize::new(0);
        pool.run_indexed(16, &|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn global_pool_is_shared() {
        let a = global_pool() as *const _;
        let b = global_pool() as *const _;
        assert_eq!(a, b);
        assert!(global_pool().size() >= 1);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).size(), 1);
    }

    #[test]
    fn slot_stages_per_index_results_across_the_barrier() {
        let pool = WorkerPool::new(3);
        let staged: Vec<Slot<usize>> = (0..64).map(|_| Slot::new()).collect();
        // SAFETY: unique index per task; barrier orders sets before takes.
        pool.run_indexed(64, &|i| unsafe { staged[i].set(i + 100) });
        for (i, s) in staged.iter().enumerate() {
            // SAFETY: single-threaded after the barrier.
            unsafe {
                assert!(s.is_set());
                assert_eq!(s.take(), i + 100);
                assert!(!s.is_set());
            }
        }
    }

    #[test]
    #[should_panic(expected = "slot is empty")]
    fn slot_take_of_empty_panics() {
        let s: Slot<i32> = Slot::default();
        // SAFETY: this thread is trivially the unique accessor.
        let _ = unsafe { s.take() };
    }

    #[test]
    fn nested_run_indexed_falls_back_inline() {
        // A pooled task fanning out again must not deadlock on the reused
        // header: the inner call detects the busy header and runs inline.
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        pool.run_indexed(4, &|_| {
            pool.run_indexed(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn concurrent_run_indexed_from_many_threads_is_exact() {
        // Racing publishers: one wins the header, the rest run inline —
        // every index of every batch still runs exactly once.
        let pool = WorkerPool::new(4);
        let hits: Vec<Vec<AtomicUsize>> = (0..8)
            .map(|_| (0..100).map(|_| AtomicUsize::new(0)).collect())
            .collect();
        std::thread::scope(|s| {
            for caller in 0..8 {
                let pool = &pool;
                let hits = &hits;
                s.spawn(move || {
                    for _ in 0..20 {
                        pool.run_indexed(100, &|i| {
                            hits[caller][i].fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        for row in &hits {
            assert!(row.iter().all(|h| h.load(Ordering::Relaxed) == 20));
        }
    }

    #[test]
    fn heavy_contention_smoke() {
        // Many small batches from the caller thread; exercises the
        // generation/stale-batch logic.
        let pool = WorkerPool::new(8);
        let total = AtomicUsize::new(0);
        for round in 0..200 {
            let count = 1 + round % 17;
            pool.run_indexed(count, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        let expect: usize = (0..200).map(|r| 1 + r % 17).sum();
        assert_eq!(total.load(Ordering::Relaxed), expect);
    }
}
