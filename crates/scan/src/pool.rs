//! A persistent worker pool for level-synchronous execution.
//!
//! [`Executor::Threaded`](crate::Executor::Threaded) spawns OS threads per
//! level — simple but expensive when a level's combines are microseconds of
//! work (a 20×20 matmul). The paper's CUDA kernels don't pay that cost: SMs
//! persist across kernel launches. [`WorkerPool`] is the CPU analogue — a
//! fixed set of threads that stay parked between levels.
//!
//! Design: a small fixed array of **reused, generation-stamped batch
//! headers** lets several batches be in flight at once. A publisher claims a
//! free header, publishes a *batch* (a `Fn(usize)` task, an index count, and
//! a worker-index mask) into it, and bumps a global epoch to broadcast one
//! condvar wakeup; workers scan the headers for batches whose mask covers
//! them and claim indices from the header's atomic counter until the batch
//! drains; the caller participates too and the last finisher signals the
//! header's completion condvar. Per-batch overhead is a few futex
//! transitions, not one per job, and the steady state performs **zero heap
//! allocations per batch** — headers are pool-owned state, not per-call
//! `Arc`s.
//!
//! Multiple headers are what make fan-outs *compose*: a pooled task that
//! fans out again (a segment driver running a row-parallel product, a
//! batched backward whose chains are themselves segmented) publishes to
//! another free header instead of collapsing to inline execution. Only when
//! every header is busy does a publisher run its batch inline — same
//! semantics, no deadlock.
//!
//! [`WorkerPool::carve`] partitions the worker indices into disjoint
//! contiguous [`WorkerGroup`]s; a group's `run_indexed` publishes with the
//! group's mask so only its workers participate — concurrent groups never
//! steal each other's CPUs, which is how segmented scans keep K segments on
//! K disjoint worker sets (see `bppsa-core`'s segmented executor).
//!
//! # The stale-worker story
//!
//! Reusing headers means a slow worker can wake up holding state from a
//! batch that already completed, while the header has been republished for a
//! newer batch. Two defenses make that safe:
//!
//! 1. **Generation-validated claims.** Each header's claim counter packs
//!    `(generation, next index)` into a single atomic word, and indices are
//!    claimed by compare-and-swap. A stale worker's CAS carries the old
//!    generation and can never claim (or skip) an index of a newer batch; it
//!    observes the mismatch and moves on.
//! 2. **Barrier-bounded task lifetime.** A successful claim of index `i`
//!    proves batch `remaining > 0` at the claim instant, which pins the
//!    publishing `run_indexed` call (and therefore the task borrow) until
//!    the claimer finishes `task(i)` and decrements `remaining`.
//!
//! A header is only republished by a thread that owns its `busy` flag, and
//! only after the previous owner observed `remaining == 0` — so `remaining`
//! decrements can never cross generations either.
//!
//! Panic signals follow the same discipline per header: a job panic is
//! recorded as a **generation-tagged** poison word, and the publisher
//! consumes (and re-raises) only a poison carrying its own batch's
//! generation, *before* releasing the header. An unscoped flag checked after
//! the release used to let a subsequent publisher's batch consume the
//! previous batch's panic — repanicking the wrong caller and losing the
//! original signal.

use parking_lot::{Condvar, Mutex};
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Raw pointer to the current batch's task closure. Valid for the batch's
/// lifetime only; stale workers can never call through it because claims
/// are generation-validated (see the module docs).
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// Packs a batch generation and a claim index into one atomic word.
///
/// 32 bits each: a stale worker would have to sleep across 2^32 publications
/// *of the same header* while holding a loaded claim word for the generation
/// tag to alias (the classic ABA window) — not reachable in practice.
#[inline]
fn pack(generation: u32, index: u32) -> u64 {
    (u64::from(generation) << 32) | u64::from(index)
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// One reusable batch header. The pool owns a small fixed array of these;
/// each in-flight batch occupies exactly one.
struct Header {
    slot: Mutex<BatchSlot>,
    done_cv: Condvar,
    /// Panic signal of this header's *current published batch*, scoped to
    /// its generation: `0` when clean, else `pack(generation, 1)` of the
    /// batch whose job panicked. Generation scoping (plus the publisher
    /// clearing it *before* releasing `busy`) ensures one batch's panic can
    /// never be consumed by — or re-raised at — a different batch's caller.
    poisoned: AtomicU64,
    /// Exclusive right to publish into this header. Taken for the whole
    /// duration of a pooled `run_indexed`; when every header is taken,
    /// contenders run inline.
    busy: AtomicBool,
    /// `(generation, next claim index)` — the generation-validated claim
    /// counter of the header's current batch (see module docs).
    next: AtomicU64,
    /// Unfinished jobs of the current batch. Never crosses generations:
    /// republication requires observing zero first.
    remaining: AtomicUsize,
}

impl Header {
    fn new() -> Self {
        Header {
            slot: Mutex::new(BatchSlot {
                generation: 0,
                task: None,
                count: 0,
                lo: 0,
                hi: 0,
            }),
            done_cv: Condvar::new(),
            poisoned: AtomicU64::new(0),
            busy: AtomicBool::new(false),
            next: AtomicU64::new(0),
            remaining: AtomicUsize::new(0),
        }
    }
}

/// Mutex-guarded half of a batch header: what a worker must read
/// consistently with the generation it acts on.
struct BatchSlot {
    generation: u32,
    task: Option<TaskPtr>,
    count: usize,
    /// Worker-index mask `lo..hi`: only workers in the range participate.
    lo: usize,
    hi: usize,
}

struct Shared {
    headers: Vec<Header>,
    /// Global publication counter: bumped (under the lock) after every
    /// header publication so parked workers wake and rescan the headers.
    epoch: Mutex<u64>,
    work_cv: Condvar,
    shutdown: AtomicBool,
}

/// Claims and runs indices of batch `generation` in `header` until none
/// remain (or the header moved on to a newer batch). Safe for stale
/// callers: every claim re-validates the generation via CAS.
fn drain(header: &Header, generation: u32, task: TaskPtr, count: usize) {
    loop {
        let word = header.next.load(Ordering::Relaxed);
        let (gen, index) = unpack(word);
        if gen != generation || index as usize >= count {
            return;
        }
        // Acquire on success pairs with the publisher's release store of
        // `next`, making the task/count/remaining writes visible.
        if header
            .next
            .compare_exchange_weak(
                word,
                pack(generation, index + 1),
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_err()
        {
            continue;
        }
        // SAFETY: the successful generation-validated claim above proves
        // `remaining > 0` for this batch until we decrement it below, which
        // pins the publishing `run_indexed` frame — so the task reference
        // is alive for the duration of this call.
        let task_ref = unsafe { &*task.0 };
        if catch_unwind(AssertUnwindSafe(|| task_ref(index as usize))).is_err() {
            // Tag the poison with this batch's generation. The store happens
            // before our `remaining` decrement, so the publisher (which only
            // reads the flag after observing `remaining == 0`) is guaranteed
            // to see it — and a claim of a *newer* batch can never have run
            // this line for an older generation.
            header.poisoned.store(pack(generation, 1), Ordering::SeqCst);
        }
        header.remaining.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A fixed-size pool of persistent worker threads executing index-parallel
/// batches with a completion barrier — the level-synchronous primitive the
/// scan executor needs.
///
/// # Examples
///
/// ```
/// use bppsa_scan::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = WorkerPool::new(4);
/// let counter = AtomicUsize::new(0);
/// pool.run_indexed(32, &|_i| {
///     counter.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(counter.load(Ordering::Relaxed), 32);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let size = threads.max(1);
        // Enough headers for a segment fan-out publishing nested row-chunk
        // batches on every driver, with headroom for concurrent callers;
        // publishers beyond this run inline, which is always correct.
        let headers = (size + 1).clamp(2, 8);
        let shared = Arc::new(Shared {
            headers: (0..headers).map(|_| Header::new()).collect(),
            epoch: Mutex::new(0),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bppsa-scan-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn scan worker")
            })
            .collect();
        Self {
            shared,
            workers,
            size,
        }
    }

    /// Number of worker threads (the caller participates too, so up to
    /// `size() + 1` indices run concurrently).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs `task(0..count)` across the pool (and the calling thread),
    /// blocking until every index completed. The task may borrow from the
    /// caller's stack — the barrier guarantees the borrows outlive all use.
    ///
    /// Allocation-free: the batch is published into a reused
    /// generation-stamped header owned by the pool, so the steady state of
    /// a planned scan performs **zero** heap allocations per level.
    ///
    /// Fan-outs compose: a pooled task fanning out again (or a call racing
    /// another thread's in-flight batch) publishes to a *different* free
    /// header, so nested parallelism — segment drivers running row-parallel
    /// products, batched backwards over segmented plans — actually runs
    /// concurrently. Single-index batches and calls finding every header
    /// busy run the task inline on the calling thread instead — same
    /// semantics, no deadlock, no corrupted header.
    ///
    /// # Panics
    ///
    /// Panics if any task invocation panicked.
    pub fn run_indexed<'scope>(&self, count: usize, task: &(dyn Fn(usize) + Sync + 'scope)) {
        self.run_masked(0, self.size, count, task);
    }

    /// Splits the workers into `groups` disjoint contiguous [`WorkerGroup`]s
    /// covering all worker indices (sizes differ by at most one; with more
    /// groups than workers the trailing groups are empty and their batches
    /// run entirely on their callers — correct, just unaccelerated).
    pub fn carve(&self, groups: usize) -> Vec<WorkerGroup<'_>> {
        let groups = groups.max(1);
        (0..groups)
            .map(|g| {
                let lo = g * self.size / groups;
                let hi = (g + 1) * self.size / groups;
                WorkerGroup { pool: self, lo, hi }
            })
            .collect()
    }

    /// A [`WorkerGroup`] over the worker-index range `lo..hi` (both clamped
    /// to the pool size). Ranges handed to concurrently-publishing groups
    /// should be disjoint — that is the point of carving — but overlap is
    /// safe (workers just serve both batches).
    pub fn group(&self, lo: usize, hi: usize) -> WorkerGroup<'_> {
        let lo = lo.min(self.size);
        let hi = hi.min(self.size).max(lo);
        WorkerGroup { pool: self, lo, hi }
    }

    /// Publishes a batch restricted to workers `lo..hi` (the caller always
    /// participates). See [`WorkerPool::run_indexed`].
    fn run_masked<'scope>(
        &self,
        lo: usize,
        hi: usize,
        count: usize,
        task: &(dyn Fn(usize) + Sync + 'scope),
    ) {
        if count == 0 {
            return;
        }
        assert!(count <= u32::MAX as usize, "run_indexed: batch too large");
        // SAFETY: only erases the `'scope` lifetime; the barrier below keeps
        // the reference alive for exactly as long as workers may call it.
        let task: &(dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        // Trivial batches and empty worker masks gain nothing from a
        // header round-trip: run inline. Panics propagate directly.
        if count == 1 || hi <= lo {
            for i in 0..count {
                task(i);
            }
            return;
        }
        // Claim a free header; with every header in flight, run inline.
        let Some(header) = self.shared.headers.iter().find(|h| {
            h.busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        }) else {
            for i in 0..count {
                task(i);
            }
            return;
        };
        let generation = {
            let mut slot = header.slot.lock();
            let generation = slot.generation.wrapping_add(1);
            slot.generation = generation;
            slot.task = Some(TaskPtr(task as *const _));
            slot.count = count;
            slot.lo = lo;
            slot.hi = hi;
            // `remaining` before `next`: the release store of `next` (and
            // the mutex) publish both to claimers.
            header.remaining.store(count, Ordering::Relaxed);
            header.next.store(pack(generation, 0), Ordering::Release);
            generation
        };
        {
            let mut epoch = self.shared.epoch.lock();
            *epoch = epoch.wrapping_add(1);
            self.shared.work_cv.notify_all();
        }
        // The caller works too — for small batches it often drains
        // everything before a worker even wakes.
        drain(header, generation, TaskPtr(task as *const _), count);
        if header.remaining.load(Ordering::Acquire) > 0 {
            let mut slot = header.slot.lock();
            while header.remaining.load(Ordering::Acquire) > 0 {
                header.done_cv.wait(&mut slot);
            }
        }
        // Consume this batch's panic signal *before* releasing the header:
        // once `busy` drops, another publisher may start (and finish) a new
        // batch here, and an unscoped flag read after that point could
        // consume the newer batch's signal — repanicking the wrong caller
        // or losing the panic entirely. The compare-exchange only clears a
        // poison carrying *our* generation, so even a reordered reader
        // could never eat another batch's mark.
        let poisoned = header
            .poisoned
            .compare_exchange(pack(generation, 1), 0, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        // Release the header only after `remaining == 0`: no stale claim or
        // cross-generation decrement is possible past this point.
        header.busy.store(false, Ordering::Release);
        if poisoned {
            panic!("a scan worker job panicked");
        }
    }

    /// Convenience wrapper: runs a vector of one-shot closures as a batch.
    ///
    /// # Panics
    ///
    /// Panics if any job panicked.
    pub fn run_batch<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if jobs.is_empty() {
            return;
        }
        let slots: Vec<Slot<Box<dyn FnOnce() + Send + 'scope>>> =
            jobs.into_iter().map(Slot::with).collect();
        self.run_indexed(slots.len(), &|i| {
            // SAFETY: run_indexed hands index `i` to exactly one task, so
            // this is slot i's unique accessor; the fill above
            // happens-before via the batch publication.
            unsafe { slots[i].take()() };
        });
    }
}

/// A disjoint slice of a [`WorkerPool`]'s workers, from
/// [`WorkerPool::carve`] / [`WorkerPool::group`].
///
/// `run_indexed` through a group publishes batches that only the group's
/// workers (plus the caller) serve — concurrent groups never contend for
/// each other's CPUs. An empty group (more groups than workers) degrades to
/// caller-only inline execution, which keeps short tail segments correct on
/// narrow hosts.
///
/// # Examples
///
/// ```
/// use bppsa_scan::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = WorkerPool::new(4);
/// let groups = pool.carve(2);
/// let counter = AtomicUsize::new(0);
/// groups[0].run_indexed(16, &|_| {
///     counter.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(counter.load(Ordering::Relaxed), 16);
/// ```
#[derive(Clone, Copy)]
pub struct WorkerGroup<'p> {
    pool: &'p WorkerPool,
    lo: usize,
    hi: usize,
}

impl WorkerGroup<'_> {
    /// Number of pool workers in this group (the caller participates too,
    /// so up to `workers() + 1` indices run concurrently).
    pub fn workers(&self) -> usize {
        self.hi - self.lo
    }

    /// The worker-index range `lo..hi` this group covers.
    pub fn bounds(&self) -> (usize, usize) {
        (self.lo, self.hi)
    }

    /// Runs `task(0..count)` across this group's workers and the calling
    /// thread, blocking until every index completed — the group-masked
    /// [`WorkerPool::run_indexed`].
    ///
    /// # Panics
    ///
    /// Panics if any task invocation panicked.
    pub fn run_indexed<'scope>(&self, count: usize, task: &(dyn Fn(usize) + Sync + 'scope)) {
        self.pool.run_masked(self.lo, self.hi, count, task);
    }
}

impl std::fmt::Debug for WorkerGroup<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkerGroup({}..{})", self.lo, self.hi)
    }
}

/// A lock-free single-writer, single-taker slot for index-parallel staging.
///
/// The shared utility behind [`WorkerPool::run_indexed`]-style fan-outs:
/// allocate one slot per index, let the task that claims index `i` be the
/// only one to [`Slot::set`] or [`Slot::take`] slot `i`, and rely on the
/// batch barrier for publication. Avoids `Mutex<Option<T>>` overhead where
/// the index-disjointness invariant already rules out contention.
///
/// (Previously duplicated as a private type inside `bppsa-core`'s planned
/// executor; it lives here so every crate staging per-index results on the
/// pool shares one audited implementation.)
///
/// All accessors are `unsafe fn`: the exclusion invariant below cannot be
/// checked by this type, so the proof obligation sits with each call site.
///
/// # Safety contract
///
/// For each slot, at most one thread may call [`Slot::set`] / [`Slot::take`]
/// / [`Slot::is_set`] at a time, and calls must be ordered by an external
/// synchronization edge (the pool's batch barrier, a join, …). The pool's
/// index disjointness — every index claimed by exactly one task — provides
/// this for the one-slot-per-index pattern.
///
/// # Examples
///
/// ```
/// use bppsa_scan::{Slot, WorkerPool};
///
/// let pool = WorkerPool::new(2);
/// let staged: Vec<Slot<usize>> = (0..8).map(|_| Slot::new()).collect();
/// // SAFETY: run_indexed hands each index to exactly one task, and its
/// // barrier orders every set before the takes below.
/// pool.run_indexed(8, &|i| unsafe { staged[i].set(i * i) });
/// assert_eq!(unsafe { staged[3].take() }, 9);
/// ```
pub struct Slot<T>(UnsafeCell<Option<T>>);

// SAFETY: per the safety contract, each slot is accessed by at most one
// thread at a time with accesses ordered by external synchronization.
unsafe impl<T: Send> Sync for Slot<T> {}

impl<T> Slot<T> {
    /// An empty slot.
    pub fn new() -> Self {
        Slot(UnsafeCell::new(None))
    }

    /// A slot pre-filled with `value`.
    pub fn with(value: T) -> Self {
        Slot(UnsafeCell::new(Some(value)))
    }

    /// Stores `value`.
    ///
    /// # Safety
    ///
    /// The caller must be the slot's unique accessor for the duration of
    /// the call (see the type-level safety contract).
    pub unsafe fn set(&self, value: T) {
        *self.0.get() = Some(value)
    }

    /// Removes and returns the stored value.
    ///
    /// # Safety
    ///
    /// The caller must be the slot's unique accessor for the duration of
    /// the call (see the type-level safety contract).
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub unsafe fn take(&self) -> T {
        (*self.0.get()).take().expect("Slot::take: slot is empty")
    }

    /// Whether a value is currently stored.
    ///
    /// # Safety
    ///
    /// The caller must be the slot's unique accessor for the duration of
    /// the call (see the type-level safety contract).
    pub unsafe fn is_set(&self) -> bool {
        (*self.0.get()).is_some()
    }
}

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A `Send + Sync` wrapper for a raw mutable pointer, for fanning writes to
/// pairwise-disjoint regions across pool tasks.
///
/// Shared by the scan executors, the row-parallel numeric SpGEMM, and the
/// planned-scan instruction executor (one audited definition instead of one
/// per crate). The wrapper itself is sound to share — dereferencing the
/// pointer still requires `unsafe`, where the call site must prove its
/// disjointness invariant (no two tasks touch the same element) and that a
/// barrier orders the writes against later reads.
pub struct SendPtr<T>(pub *mut T);

unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: sharing the *pointer value* is harmless; all dereferences are
// `unsafe` and carry their own aliasing proof at the call site.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> std::fmt::Debug for SendPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SendPtr({:p})", self.0)
    }
}

impl<T> std::fmt::Debug for Slot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately does not peek inside: Debug must stay callable
        // without the unique-accessor guarantee.
        write!(f, "Slot<{}>", std::any::type_name::<T>())
    }
}

fn worker_loop(shared: &Shared, worker_index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        {
            let mut epoch = shared.epoch.lock();
            while *epoch == seen_epoch && !shared.shutdown.load(Ordering::SeqCst) {
                shared.work_cv.wait(&mut epoch);
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            seen_epoch = *epoch;
        }
        // Scan every header for batches whose mask covers this worker, and
        // keep rescanning while publications keep landing: a batch
        // published mid-scan into a header we already passed bumps the
        // epoch, so the re-check below catches it before we park.
        loop {
            for header in &shared.headers {
                let (generation, task, count, covered) = {
                    let slot = header.slot.lock();
                    (
                        slot.generation,
                        slot.task,
                        slot.count,
                        slot.lo <= worker_index && worker_index < slot.hi,
                    )
                };
                if !covered {
                    continue;
                }
                if let Some(task) = task {
                    // Drained or republished batches are screened out inside
                    // `drain` by the generation-validated claim — a stale
                    // task pointer is never dereferenced.
                    drain(header, generation, task, count);
                    // Whoever observes the drained batch wakes the
                    // publisher; the lock round-trip avoids a missed-wakeup
                    // race with `done_cv`. If the header was already
                    // republished, `remaining` belongs to the newer batch —
                    // then this batch's publisher has long returned and
                    // needs no wakeup.
                    if header.remaining.load(Ordering::Acquire) == 0 {
                        let _guard = header.slot.lock();
                        header.done_cv.notify_all();
                    }
                }
            }
            let epoch = *shared.epoch.lock();
            if epoch == seen_epoch {
                break;
            }
            seen_epoch = epoch;
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let _guard = self.shared.epoch.lock();
            self.shared.shutdown.store(true, Ordering::SeqCst);
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkerPool(size={})", self.size)
    }
}

/// The process-wide shared pool (sized to the available parallelism),
/// created lazily on first use — what [`crate::Executor::Pooled`] runs on.
pub fn global_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
        WorkerPool::new(threads)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_indexed_covers_every_index_exactly_once() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        pool.run_indexed(500, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn batch_runs_all_jobs() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..100)
            .map(|_| {
                let c = &counter;
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_batch(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn sequential_batches_form_barriers() {
        // Writes from batch 1 must be visible to batch 2 (level sync).
        let pool = WorkerPool::new(4);
        let data: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run_indexed(64, &|i| {
            data[i].store(1, Ordering::Release);
        });
        pool.run_indexed(64, &|i| {
            let v = data[i].load(Ordering::Acquire);
            assert_eq!(v, 1, "batch 1 write not visible");
            data[i].store(v + 1, Ordering::Release);
        });
        assert!(data.iter().all(|x| x.load(Ordering::Relaxed) == 2));
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = WorkerPool::new(2);
        pool.run_indexed(0, &|_| unreachable!());
        pool.run_batch(Vec::new());
    }

    #[test]
    fn pool_survives_many_batches() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.run_indexed(3, &|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1500);
    }

    #[test]
    #[should_panic(expected = "worker job panicked")]
    fn job_panic_propagates() {
        let pool = WorkerPool::new(2);
        pool.run_indexed(4, &|i| {
            if i == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn pool_is_usable_after_a_panic() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(1, &|_| panic!("first"));
        }));
        assert!(result.is_err());
        let counter = AtomicUsize::new(0);
        pool.run_indexed(8, &|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn concurrent_batches_attribute_panics_to_the_right_caller() {
        // Regression test for the cross-batch poisoning bug: the panic flag
        // used to be a single batch-global bool checked *after* the header
        // was released, so a concurrent caller's clean batch could consume
        // a panicking batch's signal — panicking the wrong caller and
        // silently absolving the right one. With per-header
        // generation-scoped poisoning, across many racing rounds the
        // panicking caller must observe its panic every single time and the
        // clean caller never — whether the two batches share a header in
        // sequence or occupy different headers concurrently.
        let pool = WorkerPool::new(2);
        let rounds = 300;
        std::thread::scope(|s| {
            let panicking = s.spawn(|| {
                for round in 0..rounds {
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        pool.run_indexed(4, &|i| {
                            if i == 2 {
                                panic!("poisoned job, round {round}");
                            }
                        });
                    }));
                    assert!(
                        result.is_err(),
                        "round {round}: the panicking batch's panic was lost"
                    );
                }
            });
            let clean = s.spawn(|| {
                let counter = AtomicUsize::new(0);
                for round in 0..rounds {
                    // A clean batch must never observe another batch's
                    // panic, whichever header it lands on (or inline).
                    pool.run_indexed(4, &|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                    assert_eq!(counter.load(Ordering::Relaxed), (round + 1) * 4);
                }
            });
            panicking.join().expect("panicking caller misattributed");
            clean.join().expect("clean caller caught a foreign panic");
        });
        // The pool stays fully usable afterwards.
        let counter = AtomicUsize::new(0);
        pool.run_indexed(16, &|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn global_pool_is_shared() {
        let a = global_pool() as *const _;
        let b = global_pool() as *const _;
        assert_eq!(a, b);
        assert!(global_pool().size() >= 1);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).size(), 1);
    }

    #[test]
    fn slot_stages_per_index_results_across_the_barrier() {
        let pool = WorkerPool::new(3);
        let staged: Vec<Slot<usize>> = (0..64).map(|_| Slot::new()).collect();
        // SAFETY: unique index per task; barrier orders sets before takes.
        pool.run_indexed(64, &|i| unsafe { staged[i].set(i + 100) });
        for (i, s) in staged.iter().enumerate() {
            // SAFETY: single-threaded after the barrier.
            unsafe {
                assert!(s.is_set());
                assert_eq!(s.take(), i + 100);
                assert!(!s.is_set());
            }
        }
    }

    #[test]
    #[should_panic(expected = "slot is empty")]
    fn slot_take_of_empty_panics() {
        let s: Slot<i32> = Slot::default();
        // SAFETY: this thread is trivially the unique accessor.
        let _ = unsafe { s.take() };
    }

    #[test]
    fn nested_run_indexed_composes_or_falls_back_inline() {
        // A pooled task fanning out again must not deadlock: the inner call
        // publishes to a free header (composing the fan-outs) or, with
        // every header busy, runs inline. Either way every index runs
        // exactly once.
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        pool.run_indexed(4, &|_| {
            pool.run_indexed(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn deeply_nested_fanouts_exhaust_headers_without_deadlock() {
        // Nesting deeper than the header array forces the innermost levels
        // through the all-headers-busy inline path; counts stay exact.
        let pool = WorkerPool::new(2);
        let total = AtomicUsize::new(0);
        fn fan(pool: &WorkerPool, depth: usize, total: &AtomicUsize) {
            if depth == 0 {
                total.fetch_add(1, Ordering::Relaxed);
                return;
            }
            pool.run_indexed(2, &|_| fan(pool, depth - 1, total));
        }
        fan(&pool, 12, &total);
        assert_eq!(total.load(Ordering::Relaxed), 1 << 12);
    }

    #[test]
    fn concurrent_run_indexed_from_many_threads_is_exact() {
        // Racing publishers spread across the header array (and fall back
        // inline past it) — every index of every batch still runs exactly
        // once.
        let pool = WorkerPool::new(4);
        let hits: Vec<Vec<AtomicUsize>> = (0..8)
            .map(|_| (0..100).map(|_| AtomicUsize::new(0)).collect())
            .collect();
        std::thread::scope(|s| {
            for caller in 0..8 {
                let pool = &pool;
                let hits = &hits;
                s.spawn(move || {
                    for _ in 0..20 {
                        pool.run_indexed(100, &|i| {
                            hits[caller][i].fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        for row in &hits {
            assert!(row.iter().all(|h| h.load(Ordering::Relaxed) == 20));
        }
    }

    #[test]
    fn heavy_contention_smoke() {
        // Many small batches from the caller thread; exercises the
        // generation/stale-batch logic.
        let pool = WorkerPool::new(8);
        let total = AtomicUsize::new(0);
        for round in 0..200 {
            let count = 1 + round % 17;
            pool.run_indexed(count, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        let expect: usize = (0..200).map(|r| 1 + r % 17).sum();
        assert_eq!(total.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn carve_partitions_workers_exactly() {
        let pool = WorkerPool::new(5);
        let groups = pool.carve(3);
        assert_eq!(groups.len(), 3);
        let mut covered = 0usize;
        let mut prev_hi = 0usize;
        for g in &groups {
            let (lo, hi) = g.bounds();
            assert_eq!(lo, prev_hi, "groups must be contiguous and disjoint");
            assert!(hi >= lo);
            covered += g.workers();
            prev_hi = hi;
        }
        assert_eq!(prev_hi, pool.size());
        assert_eq!(covered, pool.size());
        // Sizes differ by at most one.
        let sizes: Vec<usize> = groups.iter().map(|g| g.workers()).collect();
        let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        assert!(max - min <= 1, "unbalanced carve: {sizes:?}");
    }

    #[test]
    fn empty_group_runs_inline_on_the_caller() {
        // More groups than workers: the tail groups are empty and their
        // batches must run entirely (and correctly) on the caller.
        let pool = WorkerPool::new(1);
        let groups = pool.carve(4);
        assert_eq!(groups[0].workers(), 0, "leading groups are the empty ones");
        let caller = std::thread::current().id();
        let counter = AtomicUsize::new(0);
        groups[0].run_indexed(16, &|_| {
            assert_eq!(std::thread::current().id(), caller);
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn disjoint_groups_run_batches_concurrently_and_exactly() {
        // Two carved groups publishing from two caller threads: all indices
        // of both batches run exactly once, across many rounds, without the
        // groups interfering with each other's headers.
        let pool = WorkerPool::new(4);
        let groups = pool.carve(2);
        let hits: Vec<Vec<AtomicUsize>> = (0..2)
            .map(|_| (0..64).map(|_| AtomicUsize::new(0)).collect())
            .collect();
        std::thread::scope(|s| {
            for (which, group) in groups.iter().enumerate() {
                let hits = &hits;
                let group = *group;
                s.spawn(move || {
                    for _ in 0..50 {
                        group.run_indexed(64, &|i| {
                            hits[which][i].fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        for row in &hits {
            assert!(row.iter().all(|h| h.load(Ordering::Relaxed) == 50));
        }
    }

    #[test]
    fn group_panic_attribution_is_exact() {
        // A panic inside one group's batch re-raises at that group's
        // publisher and never leaks to a concurrent clean group.
        let pool = WorkerPool::new(4);
        let groups = pool.carve(2);
        std::thread::scope(|s| {
            let g0 = groups[0];
            let g1 = groups[1];
            let dirty = s.spawn(move || {
                for _ in 0..100 {
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        g0.run_indexed(4, &|i| {
                            if i == 1 {
                                panic!("group batch panic");
                            }
                        });
                    }));
                    assert!(result.is_err());
                }
            });
            let clean = s.spawn(move || {
                let counter = AtomicUsize::new(0);
                for round in 0..100 {
                    g1.run_indexed(4, &|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                    assert_eq!(counter.load(Ordering::Relaxed), (round + 1) * 4);
                }
            });
            dirty.join().expect("dirty group lost its panic");
            clean.join().expect("clean group caught a foreign panic");
        });
    }
}
